#!/usr/bin/env python3
"""Schema check for the bench_serving DW_BENCH_JSON artifact.

CI runs `bench_serving --smoke` per commit and validates the artifact with
this script, so downstream consumers (perf dashboards, trend diffs over the
archived artifacts) cannot be broken silently by a field rename. Checks
presence and types, not values: perf numbers are noisy, shapes are not.

Usage: validate_bench_json.py <artifact.json>
"""
import json
import numbers
import sys


def fail(msg):
    print(f"SCHEMA FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj, key, typ, where):
    if key not in obj:
        fail(f"missing key '{key}' in {where}")
    if typ is numbers.Number:
        ok = isinstance(obj[key], numbers.Number) and not isinstance(
            obj[key], bool)
    else:
        ok = isinstance(obj[key], typ)
    if not ok:
        fail(f"key '{key}' in {where} has type {type(obj[key]).__name__}, "
             f"want {getattr(typ, '__name__', typ)}")
    return obj[key]


NUM = numbers.Number

TOP_LEVEL = {
    "bench": str,
    "schema_version": NUM,
    "smoke": bool,
    "unix_time": NUM,
    "topology": str,
    "dataset": str,
    "dataset_rows": NUM,
    "dataset_cols": NUM,
    "serve_rows": NUM,
    "replication_runs": list,
    "batched_vs_scalar": dict,
    "slo": dict,
    "families": list,
}

REPLICATION_RUN = {
    "replication": str,
    "threads": NUM,
    "measured_rows_per_sec": NUM,
    "model_rows_per_sec": NUM,
    "p50_ms": NUM,
    "p99_ms": NUM,
    "remote_mb": NUM,
}

BATCHED = {
    "dense_rows": NUM,
    "dense_dim": NUM,
    "threads": NUM,
    "scalar_rows_per_sec": NUM,
    "batched_rows_per_sec": NUM,
    "speedup": NUM,
    "min_speedup_gate": NUM,
}

SLO = {
    "target_p99_ms": NUM,
    "unthrottled_rows_per_sec": NUM,
    "max_rows_per_sec_under_slo": NUM,
    "trials": list,
}

SLO_TRIAL = {
    "offered_rows_per_sec": NUM,
    "achieved_rows_per_sec": NUM,
    "p50_ms": NUM,
    "p99_ms": NUM,
    "max_ms": NUM,
    "meets_slo": bool,
}

FEATURE_STORE = {
    "store_rows": NUM,
    "dim": NUM,
    "requests": NUM,
    "runs": list,
}

STORE_RUN = {
    "mode": str,
    "placement": str,
    "placement_rationale": str,
    "measured_rows_per_sec": NUM,
    "model_rows_per_sec": NUM,
    "p50_ms": NUM,
    "p99_ms": NUM,
    "local_feature_mb": NUM,
    "remote_feature_mb": NUM,
}

FAMILY = {
    "family": str,
    "replication": str,
    "replication_rationale": str,
    "requests": NUM,
    "rows_per_sec": NUM,
    "p50_ms": NUM,
    "p99_ms": NUM,
    "max_ms": NUM,
    "accepted": NUM,
    "rejected": NUM,
    "queue_depth": NUM,
    "flush_size": NUM,
    "flush_deadline": NUM,
    "flush_drain": NUM,
    "mean_staleness_ms": NUM,
    "max_staleness_ms": NUM,
    "mean_versions_behind": NUM,
    "max_versions_behind": NUM,
    "exporter_period_ms": NUM,
    "exporter_publishes": NUM,
    "publish_mean_ms": NUM,
    "publish_max_ms": NUM,
}

# Schema v4: cost-aware admission. Families additionally carry the
# controller's estimates, the cost-rejection split, per-client counters,
# and the exporter's latency-derived pacing.
FAMILY_V4_EXTRA = {
    "rejected_cost": NUM,
    "prior_row_us": NUM,
    "est_row_us": NUM,
    "measured_row_us_ewma": NUM,
    "cost_reports": NUM,
    "clients": list,
    "exporter_effective_period_ms": NUM,
    "exporter_paced_periods": NUM,
}

FAMILY_CLIENT = {
    "client": str,
    "weight": NUM,
    "accepted": NUM,
    "rejected": NUM,
    "served": NUM,
}

ADMISSION = {
    "dim": NUM,
    "store_rows": NUM,
    "duration_sec": NUM,
    "delay_budget_ms": NUM,
    "hogs": NUM,
    "mice": NUM,
    "mice_interval_us": NUM,
    "runs": list,
    "prior_row_us": NUM,
    "est_row_us": NUM,
    "measured_row_us_ewma": NUM,
    "cost_reports": NUM,
    "est_over_measured": NUM,
    "estimate_converged": bool,
    "fair_beats_fifo": bool,
}

ADMISSION_RUN = {
    "mode": str,
    "mice_p99_ms": NUM,
    "mice_served_fraction": NUM,
    "hog_served_fraction": NUM,
    "rejected_cost": NUM,
    "clients": list,
}

ADMISSION_CLIENT = {
    "client": str,
    "hog": bool,
    "submitted": NUM,
    "accepted": NUM,
    "rejected": NUM,
    "p50_ms": NUM,
    "p99_ms": NUM,
}

# Schema v5: the telemetry overhead + stage decomposition experiment
# (obs::Registry instruments vs the no-op registry, and the per-stage
# latency means against the measured end-to-end mean).
TELEMETRY = {
    "trials": NUM,
    "requests": NUM,
    "threads": NUM,
    "off_rows_per_sec": NUM,
    "on_rows_per_sec": NUM,
    "off_trial_rows_per_sec": list,
    "on_trial_rows_per_sec": list,
    "overhead_fraction": NUM,
    "overhead_gate": NUM,
    "overhead_ok": bool,
    "mean_stage_us": dict,
    "stage_sum_us": NUM,
    "e2e_mean_us": NUM,
    "decomposition_ratio": NUM,
    "decomposition_ok": bool,
    "spans_recorded": NUM,
    "registry_metrics": NUM,
    "exporter_snapshots": NUM,
    "exporter_last_render_ms": NUM,
    "exporter_prometheus_bytes": NUM,
}

TELEMETRY_STAGES = ("admit", "queue", "batch_form", "gather", "score",
                    "complete")

# Schema v6: the SIMD dispatch-level + int8 quantized scoring experiment
# (per-ISA-level PredictBatch throughput on the exp-2 dense workload, the
# dequantize-free int8 path, and its documented error-contract audit).
KERNELS = {
    "dense_rows": NUM,
    "dense_dim": NUM,
    "threads": NUM,
    "detected_level": str,
    "active_level": str,
    "block_cols": NUM,
    "levels": list,
    "best_simd_level": str,
    "best_simd_rows_per_sec": NUM,
    "simd_over_scalar": NUM,
    "simd_min_ratio_gate": NUM,
    "simd_ok": bool,
    "int8_rows_per_sec": NUM,
    "int8_over_f64": NUM,
    "int8_scale": NUM,
    "int8_max_abs_err": NUM,
    "int8_err_bound": NUM,
    "int8_within_bound": bool,
    "kernels_ok": bool,
}

KERNEL_LEVEL = {
    "level": str,
    "supported": bool,
    "rows_per_sec": NUM,
}

KERNEL_LEVEL_NAMES = ("scalar", "avx2", "avx512")

# Schema v7: the live placement-tuning experiment (opt::PlacementTuner
# migrating a frozen kPerMachine/kSharded serving setup across a
# publish-heavy -> read-heavy traffic shift, with the full decision audit
# trail and the shift-recovery gates).
TUNER = {
    "scans": NUM,
    "flips": NUM,
    "period_adjustments": NUM,
    "final_model_replication": str,
    "final_store_placement": str,
    "served": NUM,
    "failed": NUM,
    "phase_a_rows_per_sec": NUM,
    "post_flip_rows_per_sec": NUM,
    "static_optimal_rows_per_sec": NUM,
    "recovery": NUM,
    "min_recovery_gate": NUM,
    "decisions": list,
    "tuner_flip_ok": bool,
    "tuner_zero_failed": bool,
    "tuner_recovered": bool,
    "tuner_ok": bool,
}

TUNER_DECISION = {
    "scan": NUM,
    "family": str,
    "kind": str,
    "from": str,
    "to": str,
    "migrated": bool,
    "observed_reads_per_period": NUM,
    "observed_rows": NUM,
    "observed_staleness_ms": NUM,
    "incumbent_cost_sec": NUM,
    "challenger_cost_sec": NUM,
    "advantage": NUM,
    "rationale": str,
}

TUNER_DECISION_KINDS = ("replication", "store_placement", "exporter_period")

# Schema v8: the KV feature-store delta experiment (copy-on-write page
# deltas vs full rewrites across a churn sweep, plus the by-key request
# path against the by-id baseline), nested under feature_store.delta.
# v8 also reworks the telemetry gate onto a best-of-k pair-ratio
# estimator, recording every interleaved pair ratio, their median, the
# best ratio the gate ran on, and the tuner decisions' observed churn.
DELTA = {
    "store_rows": NUM,
    "dim": NUM,
    "page_rows": NUM,
    "churn_sweep": list,
    "ratio_at_1pct_churn": NUM,
    "max_ratio_gate": NUM,
    "ratio_ok": bool,
    "key_path": dict,
    "delta_ok": bool,
}

DELTA_CHURN_POINT = {
    "churn": NUM,
    "keys": NUM,
    "delta_bytes": NUM,
    "full_bytes": NUM,
    "ratio": NUM,
    "publish_ms": NUM,
}

DELTA_KEY_PATH = {
    "pairs": NUM,
    "requests": NUM,
    "id_rows_per_sec": NUM,
    "id_p50_ms": NUM,
    "id_p99_ms": NUM,
    "key_rows_per_sec": NUM,
    "key_p50_ms": NUM,
    "key_p99_ms": NUM,
    "key_over_id_p99": NUM,
    "p99_tolerance_gate": NUM,
    "key_p99_ok": bool,
}

TELEMETRY_V8_EXTRA = {
    "estimator": str,
    "pair_ratios": list,
    "median_pair_ratio": NUM,
    "best_pair_ratio": NUM,
}


def check_all(obj, spec, where):
    for key, typ in spec.items():
        require(obj, key, typ, where)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_bench_json.py <artifact.json>")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    check_all(doc, TOP_LEVEL, "top level")
    if doc["bench"] != "serving":
        fail(f"bench is '{doc['bench']}', want 'serving'")
    if doc["schema_version"] < 2:
        fail(f"schema_version {doc['schema_version']} < 2")

    if not doc["replication_runs"]:
        fail("replication_runs is empty")
    for i, run in enumerate(doc["replication_runs"]):
        check_all(run, REPLICATION_RUN, f"replication_runs[{i}]")

    check_all(doc["batched_vs_scalar"], BATCHED, "batched_vs_scalar")

    check_all(doc["slo"], SLO, "slo")
    if not doc["slo"]["trials"]:
        fail("slo.trials is empty")
    for i, trial in enumerate(doc["slo"]["trials"]):
        check_all(trial, SLO_TRIAL, f"slo.trials[{i}]")

    if len(doc["families"]) < 2:
        fail(f"families has {len(doc['families'])} entries, want >= 2 "
             "(multi-family serving is the point)")
    family_spec = dict(FAMILY)
    if doc["schema_version"] >= 4:
        family_spec.update(FAMILY_V4_EXTRA)
    for i, fam in enumerate(doc["families"]):
        check_all(fam, family_spec, f"families[{i}]")
        if doc["schema_version"] >= 4:
            for k, client in enumerate(fam["clients"]):
                check_all(client, FAMILY_CLIENT,
                          f"families[{i}].clients[{k}]")
    reps = {f["replication"] for f in doc["families"]}
    if not reps <= {"PerNode", "PerMachine"}:
        fail(f"unknown replication strings: {reps}")

    # Schema v3: the collocated-fetch experiment (id-keyed scoring through
    # a FeatureStore vs request-carried features, the Fig. 9 serving
    # analogue).
    store_runs = 0
    if doc["schema_version"] >= 3:
        fs = require(doc, "feature_store", dict, "top level")
        check_all(fs, FEATURE_STORE, "feature_store")
        if not fs["runs"]:
            fail("feature_store.runs is empty")
        for i, run in enumerate(fs["runs"]):
            check_all(run, STORE_RUN, f"feature_store.runs[{i}]")
        modes = {r["mode"] for r in fs["runs"]}
        want_modes = {"id-replicated", "id-sharded", "carried"}
        if not want_modes <= modes:
            fail(f"feature_store.runs missing modes: {want_modes - modes} "
                 "(the collocated-vs-carried comparison is the point)")
        placements = {r["placement"] for r in fs["runs"]}
        if not placements <= {"Replicated", "Sharded", "-"}:
            fail(f"unknown store placement strings: {placements}")
        store_runs = len(fs["runs"])

    # Schema v4: the admission overload experiment (cost-aware admission
    # + per-client fair queuing vs the FIFO baseline).
    admission_runs = 0
    if doc["schema_version"] >= 4:
        adm = require(doc, "admission", dict, "top level")
        check_all(adm, ADMISSION, "admission")
        if not adm["runs"]:
            fail("admission.runs is empty")
        for i, run in enumerate(adm["runs"]):
            check_all(run, ADMISSION_RUN, f"admission.runs[{i}]")
            if not run["clients"]:
                fail(f"admission.runs[{i}].clients is empty")
            for k, client in enumerate(run["clients"]):
                check_all(client, ADMISSION_CLIENT,
                          f"admission.runs[{i}].clients[{k}]")
        modes = {r["mode"] for r in adm["runs"]}
        if not {"fifo", "fair"} <= modes:
            fail(f"admission.runs missing modes: {({'fifo', 'fair'}) - modes} "
                 "(the fair-vs-FIFO comparison is the point)")
        admission_runs = len(adm["runs"])

    # Schema v5: the telemetry overhead + stage decomposition experiment.
    telemetry_trials = 0
    if doc["schema_version"] >= 5:
        tel = require(doc, "telemetry", dict, "top level")
        telemetry_spec = dict(TELEMETRY)
        if doc["schema_version"] >= 8:
            telemetry_spec.update(TELEMETRY_V8_EXTRA)
        check_all(tel, telemetry_spec, "telemetry")
        if doc["schema_version"] >= 8:
            if not tel["pair_ratios"]:
                fail("telemetry.pair_ratios is empty")
            for i, v in enumerate(tel["pair_ratios"]):
                if not isinstance(v, numbers.Number) or isinstance(v, bool):
                    fail(f"telemetry.pair_ratios[{i}] is not a number")
            if len(tel["pair_ratios"]) != len(tel["on_trial_rows_per_sec"]):
                fail("telemetry.pair_ratios length does not match the "
                     "trial count (one ratio per interleaved pair)")
        for side in ("off_trial_rows_per_sec", "on_trial_rows_per_sec"):
            if not tel[side]:
                fail(f"telemetry.{side} is empty")
            for i, v in enumerate(tel[side]):
                if not isinstance(v, numbers.Number) or isinstance(v, bool):
                    fail(f"telemetry.{side}[{i}] is not a number")
        missing = set(TELEMETRY_STAGES) - set(tel["mean_stage_us"])
        if missing:
            fail(f"telemetry.mean_stage_us missing stages: {missing} "
                 "(the full lifecycle decomposition is the point)")
        for stage in TELEMETRY_STAGES:
            v = tel["mean_stage_us"][stage]
            if not isinstance(v, numbers.Number) or isinstance(v, bool):
                fail(f"telemetry.mean_stage_us.{stage} is not a number")
        telemetry_trials = len(tel["on_trial_rows_per_sec"])

    # Schema v6: the SIMD dispatch + int8 quantization experiment.
    kernel_levels = 0
    if doc["schema_version"] >= 6:
        ker = require(doc, "kernels", dict, "top level")
        check_all(ker, KERNELS, "kernels")
        if not ker["levels"]:
            fail("kernels.levels is empty")
        for i, lvl in enumerate(ker["levels"]):
            check_all(lvl, KERNEL_LEVEL, f"kernels.levels[{i}]")
        names = {l["level"] for l in ker["levels"]}
        if set(KERNEL_LEVEL_NAMES) != names:
            fail(f"kernels.levels names {sorted(names)}, want "
                 f"{sorted(KERNEL_LEVEL_NAMES)} (every dispatch level must "
                 "be reported even when unsupported)")
        if ker["active_level"] not in KERNEL_LEVEL_NAMES:
            fail(f"kernels.active_level '{ker['active_level']}' is not a "
                 "known dispatch level")
        scalar = next(l for l in ker["levels"] if l["level"] == "scalar")
        if not scalar["supported"]:
            fail("kernels.levels: scalar must always be supported")
        kernel_levels = len(ker["levels"])

    # Schema v7: the live placement-tuning experiment.
    tuner_decisions = 0
    if doc["schema_version"] >= 7:
        tun = require(doc, "tuner", dict, "top level")
        check_all(tun, TUNER, "tuner")
        decision_spec = dict(TUNER_DECISION)
        if doc["schema_version"] >= 8:
            decision_spec["observed_churn"] = NUM
        for i, dec in enumerate(tun["decisions"]):
            check_all(dec, decision_spec, f"tuner.decisions[{i}]")
            if dec["kind"] not in TUNER_DECISION_KINDS:
                fail(f"tuner.decisions[{i}].kind '{dec['kind']}' is not a "
                     f"known decision kind {TUNER_DECISION_KINDS}")
        if tun["final_model_replication"] not in ("PerNode", "PerMachine"):
            fail("tuner.final_model_replication "
                 f"'{tun['final_model_replication']}' is not a replication")
        if tun["final_store_placement"] not in ("Replicated", "Sharded"):
            fail("tuner.final_store_placement "
                 f"'{tun['final_store_placement']}' is not a placement")
        migrated = [d for d in tun["decisions"] if d["migrated"]]
        if tun["flips"] and not migrated:
            fail("tuner.flips > 0 but no decision is marked migrated "
                 "(the audit trail must record every migration)")
        tuner_decisions = len(tun["decisions"])

    # Schema v8: the KV feature-store delta experiment.
    delta_points = 0
    if doc["schema_version"] >= 8:
        fs = require(doc, "feature_store", dict, "top level")
        delta = require(fs, "delta", dict, "feature_store")
        check_all(delta, DELTA, "feature_store.delta")
        if not delta["churn_sweep"]:
            fail("feature_store.delta.churn_sweep is empty")
        for i, pt in enumerate(delta["churn_sweep"]):
            check_all(pt, DELTA_CHURN_POINT,
                      f"feature_store.delta.churn_sweep[{i}]")
        churns = {pt["churn"] for pt in delta["churn_sweep"]}
        if 0.01 not in churns:
            fail("feature_store.delta.churn_sweep has no 1% churn point "
                 "(the gated ratio is measured there)")
        check_all(delta["key_path"], DELTA_KEY_PATH,
                  "feature_store.delta.key_path")
        delta_points = len(delta["churn_sweep"])

    print(f"schema OK: {sys.argv[1]} "
          f"({len(doc['replication_runs'])} replication runs, "
          f"{len(doc['families'])} families, "
          f"{store_runs} feature-store runs, "
          f"{admission_runs} admission runs, "
          f"{telemetry_trials} telemetry trial pairs, "
          f"{kernel_levels} kernel levels, "
          f"{tuner_decisions} tuner decisions, "
          f"{delta_points} delta churn points)")


if __name__ == "__main__":
    main()
