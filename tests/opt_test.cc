// Tests for the cost model and optimizer: Fig. 6 formulas, the Fig. 7(b)
// cost ratio, robustness of the access-method decision over alpha in
// [4, 100] (paper Sec. 3.2), and the Fig. 14 plan table.
#include <gtest/gtest.h>

#include "data/paper_datasets.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "numa/memory_model.h"
#include "opt/cost_model.h"
#include "opt/optimizer.h"
#include "opt/serving_replication.h"
#include "opt/store_placement.h"

namespace dw::opt {
namespace {

using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

matrix::MatrixStats StatsOf(const data::Dataset& d) { return d.Stats(); }

TEST(CostModelTest, Figure6Formulas) {
  // Hand-checkable matrix: 3 rows with n_i = {2, 0, 2}, d = 3.
  auto m = matrix::CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
  ASSERT_TRUE(m.ok());
  const auto stats = matrix::ComputeStats(m.value());

  const AccessCost row_sparse = EstimateAccessCost(
      stats, AccessMethod::kRowWise, models::UpdateSparsity::kSparse);
  EXPECT_DOUBLE_EQ(row_sparse.reads, 4.0);      // sum n_i
  EXPECT_DOUBLE_EQ(row_sparse.writes, 4.0);     // sparse: sum n_i

  const AccessCost row_dense = EstimateAccessCost(
      stats, AccessMethod::kRowWise, models::UpdateSparsity::kDense);
  EXPECT_DOUBLE_EQ(row_dense.writes, 9.0);      // dense: d*N

  const AccessCost col = EstimateAccessCost(
      stats, AccessMethod::kColWise, models::UpdateSparsity::kSparse);
  EXPECT_DOUBLE_EQ(col.reads, 4.0);             // sum n_i
  EXPECT_DOUBLE_EQ(col.writes, 3.0);            // d

  const AccessCost ctr = EstimateAccessCost(
      stats, AccessMethod::kColToRow, models::UpdateSparsity::kSparse);
  EXPECT_DOUBLE_EQ(ctr.reads, 8.0);             // sum n_i^2
  EXPECT_DOUBLE_EQ(ctr.writes, 3.0);            // d

  EXPECT_DOUBLE_EQ(row_sparse.Total(10.0), 4.0 + 40.0);
}

TEST(CostModelTest, CostRatioMatchesPaperFormula) {
  const data::Dataset d = data::Rcv1(0.002);
  const auto stats = StatsOf(d);
  const double alpha = 10.0;
  const double expected = (1.0 + alpha) * stats.sum_ni /
                          (stats.sum_ni_sq + alpha * stats.cols);
  EXPECT_NEAR(CostRatio(stats, alpha), expected, 1e-12);
}

TEST(CostModelTest, TextCorporaFavorRowWise) {
  // RCV1-like text: rows carry ~77 nonzeros, so sum n_i^2 >> sum n_i and
  // the row-wise method must win for SVM/LR/LS (paper Fig. 14).
  const data::Dataset d = data::Rcv1(0.002);
  models::SvmSpec svm;
  for (double alpha : {4.0, 10.0, 40.0, 100.0}) {
    EXPECT_EQ(ChooseAccessMethod(StatsOf(d), svm, alpha),
              AccessMethod::kRowWise)
        << "alpha=" << alpha;
  }
}

TEST(CostModelTest, EdgeConstraintGraphsFavorColumns) {
  // LP rows have exactly 2 nonzeros: sum n_i^2 = 2 sum n_i, and writes
  // dominate, so the column method must win for all plausible alpha
  // (the Sec. 3.2 robustness claim: any alpha in [4, 100] gives the same
  // decision).
  const data::Dataset d = data::AmazonLp(0.002);
  models::LpSpec lp;
  for (double alpha : {4.0, 10.0, 40.0, 100.0}) {
    EXPECT_EQ(ChooseAccessMethod(StatsOf(d), lp, alpha),
              AccessMethod::kColToRow)
        << "alpha=" << alpha;
  }
}

TEST(CostModelTest, AlphaGrowsWithSocketCount) {
  EXPECT_LT(AlphaForTopology(numa::Local2()),
            AlphaForTopology(numa::Local4()));
  EXPECT_LT(AlphaForTopology(numa::Local4()),
            AlphaForTopology(numa::Local8()));
}

TEST(CostModelTest, HostAlphaMeasurementIsSane) {
  const double alpha = MeasureAlphaOnHost(2);
  EXPECT_GE(alpha, 1.0);
  EXPECT_LE(alpha, 100.0);
}

TEST(OptimizerTest, Figure14PlanTableSvmFamily) {
  // SVM/LR/LS on text + dense benchmarks: Row-wise, PerNode,
  // FullReplication (everything fits local2's 32 GB/node at bench scale).
  const numa::Topology topo = numa::Local2();
  models::SvmSpec svm;
  models::LogisticSpec lr;
  models::LeastSquaresSpec ls;
  for (const models::ModelSpec* spec :
       {static_cast<const models::ModelSpec*>(&svm),
        static_cast<const models::ModelSpec*>(&lr),
        static_cast<const models::ModelSpec*>(&ls)}) {
    for (const data::Dataset& d :
         {data::Reuters(0.1), data::Rcv1(0.002), data::Music(0.002)}) {
      const PlanChoice c = ChoosePlan(d, *spec, topo);
      EXPECT_EQ(c.access, AccessMethod::kRowWise)
          << spec->name() << "/" << d.name;
      EXPECT_EQ(c.model_rep, ModelReplication::kPerNode)
          << spec->name() << "/" << d.name;
      EXPECT_EQ(c.data_rep, DataReplication::kFullReplication)
          << spec->name() << "/" << d.name;
    }
  }
}

TEST(OptimizerTest, Figure14PlanTableLpQp) {
  // LP/QP on graphs: Column(-to-row), PerMachine, FullReplication.
  const numa::Topology topo = numa::Local2();
  models::LpSpec lp;
  models::QpSpec qp;
  {
    const PlanChoice c = ChoosePlan(data::AmazonLp(0.002), lp, topo);
    EXPECT_EQ(c.access, AccessMethod::kColToRow);
    EXPECT_EQ(c.model_rep, ModelReplication::kPerMachine);
    EXPECT_EQ(c.data_rep, DataReplication::kFullReplication);
  }
  {
    const PlanChoice c = ChoosePlan(data::GoogleQp(0.002), qp, topo);
    EXPECT_EQ(c.access, AccessMethod::kColWise);
    EXPECT_EQ(c.model_rep, ModelReplication::kPerMachine);
    EXPECT_EQ(c.data_rep, DataReplication::kFullReplication);
  }
}

TEST(OptimizerTest, HugeDatasetFallsBackToSharding) {
  // A topology with almost no RAM forces Sharding.
  numa::Topology tiny = numa::Local2();
  tiny.ram_per_node_gb = 1e-6;
  const PlanChoice c = ChoosePlan(data::Rcv1(0.002), models::SvmSpec(), tiny);
  EXPECT_EQ(c.data_rep, DataReplication::kSharding);
}

TEST(OptimizerTest, ApplyChoiceCopiesFields) {
  PlanChoice c;
  c.access = AccessMethod::kColWise;
  c.model_rep = ModelReplication::kPerMachine;
  c.data_rep = DataReplication::kSharding;
  engine::EngineOptions opts;
  ApplyChoice(c, &opts);
  EXPECT_EQ(opts.access, AccessMethod::kColWise);
  EXPECT_EQ(opts.model_rep, ModelReplication::kPerMachine);
  EXPECT_EQ(opts.data_rep, DataReplication::kSharding);
}

TEST(OptimizerTest, RationaleMentionsDecision) {
  const PlanChoice c =
      ChoosePlan(data::Reuters(0.1), models::SvmSpec(), numa::Local2());
  EXPECT_NE(c.rationale.find("Row-wise"), std::string::npos);
  EXPECT_NE(c.rationale.find("PerNode"), std::string::npos);
}

// Property: the optimizer picks the lower-cost method for whatever the
// dataset shape is (consistency of ChooseAccessMethod with the tables).
class CostConsistency : public ::testing::TestWithParam<double> {};

TEST_P(CostConsistency, ChosenMethodHasMinimalCost) {
  const double alpha = GetParam();
  const data::Dataset d = data::Reuters(0.1);
  models::SvmSpec svm;
  const auto stats = StatsOf(d);
  const AccessMethod chosen = ChooseAccessMethod(stats, svm, alpha);
  auto cost = [&](AccessMethod m) {
    return EstimateAccessCost(stats, m, svm.RowWriteSparsity(),
                              svm.ColumnStepMaintainsAux())
        .Total(alpha);
  };
  const double chosen_cost = cost(chosen);
  for (AccessMethod m : {AccessMethod::kRowWise, AccessMethod::kColWise,
                         AccessMethod::kColToRow}) {
    EXPECT_LE(chosen_cost, cost(m)) << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CostConsistency,
                         ::testing::Values(1.0, 4.0, 8.0, 12.0, 50.0, 100.0));

// --- serving replication chooser (paper Sec. 3.2-3.3, serving side) -------

ServingTrafficEstimate Traffic(matrix::Index dim, double reads_per_publish) {
  ServingTrafficEstimate t;
  t.dim = dim;
  t.reads_per_publish = reads_per_publish;
  return t;
}

TEST(ServingReplicationTest, Local8ReadHeavyPicksPerNode) {
  // The acceptance case, checked against the memory model's own numbers:
  // on the paper's 8-socket local8, a read-heavy family under kPerMachine
  // funnels 7/8 of all model reads through one interconnect, so its
  // period cost has a hard QPI lower bound that kPerNode (all-local
  // reads) beats outright.
  const numa::Topology topo = numa::Local8();
  const ServingTrafficEstimate t = Traffic(4096, /*reads_per_publish=*/4096);
  const ServingReplicationChoice c = ChooseServingReplication(topo, t);
  EXPECT_EQ(c.replication, serve::Replication::kPerNode);
  EXPECT_LT(c.per_node_cost_sec, c.per_machine_cost_sec);
  EXPECT_FALSE(c.rationale.empty());

  // The kPerMachine cost is bounded below by the interconnect transfer
  // the memory model charges: reads from the 7 remote sockets, one model
  // stream per flushed batch.
  const double model_bytes = 4096.0 * sizeof(double);
  const double batches = t.reads_per_publish / t.expected_batch_rows;
  const double remote_bytes = batches * (7.0 / 8.0) * model_bytes;
  const double qpi_floor_sec = remote_bytes / (topo.qpi_gbps * 1e9);
  EXPECT_GE(c.per_machine_cost_sec, qpi_floor_sec * 0.999);
  // And kPerNode dodges it entirely: its cost stays well under the floor.
  EXPECT_LT(c.per_node_cost_sec, qpi_floor_sec);
}

TEST(ServingReplicationTest, RepublishDominatedPicksPerMachine) {
  // A family that republishes constantly and serves almost no reads:
  // replicating every publish 8x costs 8x the write bandwidth for no
  // read-locality payoff.
  const ServingReplicationChoice c = ChooseServingReplication(
      numa::Local8(), Traffic(1 << 20, /*reads_per_publish=*/0.0));
  EXPECT_EQ(c.replication, serve::Replication::kPerMachine);
  EXPECT_LT(c.per_machine_cost_sec, c.per_node_cost_sec);
}

TEST(ServingReplicationTest, SingleSocketKeepsOneCopy) {
  numa::Topology topo = numa::Local2();
  topo.num_nodes = 1;  // one socket: the strategies are byte-identical
  const ServingReplicationChoice c =
      ChooseServingReplication(topo, Traffic(1024, 4096.0));
  EXPECT_EQ(c.replication, serve::Replication::kPerMachine);
  EXPECT_NE(c.rationale.find("single socket"), std::string::npos);
}

TEST(ServingReplicationTest, OversizedModelCannotDoubleBuffer) {
  // local2 has 32 GB per node; a 24 GB replica cannot hot-swap (old +
  // new both live) under kPerNode, whatever the traffic says.
  const ServingReplicationChoice c = ChooseServingReplication(
      numa::Local2(), Traffic(3'000'000'000u, /*reads_per_publish=*/1e6));
  EXPECT_EQ(c.replication, serve::Replication::kPerMachine);
  EXPECT_NE(c.rationale.find("double-buffer"), std::string::npos);
}

TEST(ServingReplicationTest, ReadShareMovesTheDecision) {
  // Sweeping the read/write asymmetry flips the choice exactly once:
  // once a family is read-heavy enough for kPerNode, more reads can only
  // reinforce it (the QPI term grows linearly while the publish term is
  // fixed).
  const numa::Topology topo = numa::Local8();
  bool seen_per_node = false;
  for (const double rpp : {0.0, 1.0, 64.0, 1024.0, 65536.0}) {
    const ServingReplicationChoice c =
        ChooseServingReplication(topo, Traffic(4096, rpp));
    if (c.replication == serve::Replication::kPerNode) {
      seen_per_node = true;
    } else {
      EXPECT_FALSE(seen_per_node)
          << "choice flipped back to PerMachine at " << rpp;
    }
  }
  EXPECT_TRUE(seen_per_node) << "no read share ever justified replication";
}

// --- feature-store placement chooser (Fig. 9's axis, serving side) --------

StoreTrafficEstimate StoreTraffic(matrix::Index rows, matrix::Index dim,
                                  double reads_per_refresh) {
  StoreTrafficEstimate t;
  t.rows = rows;
  t.dim = dim;
  t.reads_per_refresh = reads_per_refresh;
  return t;
}

TEST(StorePlacementTest, Local8ReadHeavyPicksReplicated) {
  // The Fig. 9 FullReplication regime, serving side: under kSharded a
  // balanced spray of row gathers sends 7/8 of all feature bytes over
  // the one shared interconnect, so the period cost has a hard QPI lower
  // bound that kReplicated (all-local gathers) beats outright.
  const numa::Topology topo = numa::Local8();
  const StoreTrafficEstimate t =
      StoreTraffic(4096, 2048, /*reads_per_refresh=*/65536.0);
  const StorePlacementChoice c = ChooseStorePlacement(topo, t);
  EXPECT_EQ(c.placement, serve::StorePlacement::kReplicated);
  EXPECT_LT(c.replicated_cost_sec, c.sharded_cost_sec);
  EXPECT_FALSE(c.rationale.empty());
  EXPECT_DOUBLE_EQ(c.table_bytes, 4096.0 * 2048.0 * sizeof(double));

  // The kSharded cost is bounded below by the interconnect transfer the
  // memory model charges for the remote 7/8 share of gathers.
  const double remote_bytes =
      t.reads_per_refresh * 2048.0 * sizeof(double) * (7.0 / 8.0);
  const double qpi_floor_sec = remote_bytes / (topo.qpi_gbps * 1e9);
  EXPECT_GE(c.sharded_cost_sec, qpi_floor_sec * 0.999);
  EXPECT_LT(c.replicated_cost_sec, qpi_floor_sec);
}

TEST(StorePlacementTest, RefreshDominatedPicksSharded) {
  // A table rebuilt constantly against almost no gathers: replicating
  // every refresh 8x costs 8x the write bandwidth for no payoff.
  const StorePlacementChoice c = ChooseStorePlacement(
      numa::Local8(), StoreTraffic(1 << 16, 1024, /*reads_per_refresh=*/0.0));
  EXPECT_EQ(c.placement, serve::StorePlacement::kSharded);
  EXPECT_LT(c.sharded_cost_sec, c.replicated_cost_sec);
}

TEST(StorePlacementTest, SingleSocketKeepsOneShard) {
  numa::Topology topo = numa::Local2();
  topo.num_nodes = 1;  // one socket: one shard is the whole table
  const StorePlacementChoice c =
      ChooseStorePlacement(topo, StoreTraffic(1024, 64, 65536.0));
  EXPECT_EQ(c.placement, serve::StorePlacement::kSharded);
  EXPECT_NE(c.rationale.find("single socket"), std::string::npos);
}

TEST(StorePlacementTest, OversizedTableCannotDoubleBuffer) {
  // local2 has 32 GB per node; a ~24 GB table cannot hot-swap whole
  // (old + new both live) under kReplicated, whatever the traffic says.
  const StorePlacementChoice c = ChooseStorePlacement(
      numa::Local2(),
      StoreTraffic(3'000'000u, 1000u, /*reads_per_refresh=*/1e7));
  EXPECT_EQ(c.placement, serve::StorePlacement::kSharded);
  EXPECT_NE(c.rationale.find("double-buffer"), std::string::npos);
}

TEST(StorePlacementTest, GatherShareMovesTheDecision) {
  // Sweeping gathers-per-refresh flips the choice exactly once: once the
  // store is read-heavy enough to replicate, more gathers can only
  // reinforce it (the QPI term grows linearly, the refresh term is
  // fixed).
  const numa::Topology topo = numa::Local8();
  bool seen_replicated = false;
  for (const double rpr : {0.0, 1.0, 64.0, 4096.0, 1e6}) {
    const StorePlacementChoice c =
        ChooseStorePlacement(topo, StoreTraffic(4096, 2048, rpr));
    if (c.placement == serve::StorePlacement::kReplicated) {
      seen_replicated = true;
    } else {
      EXPECT_FALSE(seen_replicated)
          << "choice flipped back to Sharded at " << rpr;
    }
  }
  EXPECT_TRUE(seen_replicated) << "no gather share ever justified replication";
}

}  // namespace
}  // namespace dw::opt
