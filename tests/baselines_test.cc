// Tests for the competitor baselines: each runner converges on its home
// turf, honors timeouts, and the parallel-sum variants all produce the
// correct total.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/parallel_sum.h"
#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "util/rng.h"

namespace dw::baselines {
namespace {

using data::Dataset;

Dataset SmallClassification(uint64_t seed = 3) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 400, .cols = 16, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, 16, 0.02, seed + 1);
  return d;
}

BaselineOptions FastOptions() {
  BaselineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.max_epochs = 15;
  o.step_size = 0.05;
  return o;
}

TEST(HogwildTest, ConvergesOnSvm) {
  const Dataset d = SmallClassification();
  models::SvmSpec svm;
  const auto rr = RunHogwild(d, svm, FastOptions());
  EXPECT_LT(rr.BestLoss(), 0.4);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

TEST(DimmWittedRunnerTest, UsesOptimizerPlanAndConverges) {
  const Dataset d = SmallClassification();
  models::SvmSpec svm;
  const auto rr = RunDimmWitted(d, svm, FastOptions());
  EXPECT_LT(rr.BestLoss(), 0.4);
}

TEST(GraphLabStyleTest, ConvergesOnLeastSquares) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 300, .cols = 20, .seed = 7});
  d.b = data::PlantRegressionTargets(d.a, 0.05, 8);
  models::LeastSquaresSpec ls;
  BaselineOptions o = FastOptions();
  o.step_size = 1.0;
  const auto rr = RunGraphLabStyle(d, ls, o);
  EXPECT_LT(rr.BestLoss(), 0.05);
}

TEST(GraphLabStyleTest, ConvergesOnLp) {
  const Dataset d = data::AmazonLp(0.001, 17);
  models::LpSpec lp;
  BaselineOptions o = FastOptions();
  o.max_epochs = 10;
  const auto rr = RunGraphLabStyle(d, lp, o);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

TEST(GraphChiStyleTest, MatchesGraphLabQualityWithReloadCost) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 300, .cols = 20, .seed = 9});
  d.b = data::PlantRegressionTargets(d.a, 0.05, 10);
  models::LeastSquaresSpec ls;
  BaselineOptions o = FastOptions();
  o.step_size = 1.0;
  o.max_epochs = 8;
  const auto chi = RunGraphChiStyle(d, ls, o);
  EXPECT_LT(chi.BestLoss(), 0.1);
}

TEST(MLlibStyleTest, MinibatchGradientConverges) {
  const Dataset d = SmallClassification(11);
  models::SvmSpec svm;
  BaselineOptions o = FastOptions();
  o.batch_fraction = 0.25;
  o.step_size = 0.5;
  o.max_epochs = 25;
  const auto rr = RunMLlibStyle(d, svm, o);
  EXPECT_LT(rr.BestLoss(), 0.5);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

TEST(MLlibStyleTest, NeedsMoreEpochsThanSgd) {
  // The Fig. 11 Forest analysis: batch gradient needs far more epochs to
  // reach the same loss than stochastic gradient (paper: 60x).
  const Dataset d = SmallClassification(13);
  models::SvmSpec svm;
  BaselineOptions o = FastOptions();
  o.max_epochs = 8;
  o.step_size = 0.05;
  const auto hog = RunHogwild(d, svm, o);
  o.batch_fraction = 1.0;  // full-batch gradient, MLlib's default flavor
  o.step_size = 0.5;
  const auto mllib = RunMLlibStyle(d, svm, o);
  EXPECT_LT(hog.BestLoss(), mllib.BestLoss());
}

TEST(BaselineTest, WallTimeoutStopsRun) {
  const Dataset d = SmallClassification(15);
  models::SvmSpec svm;
  BaselineOptions o = FastOptions();
  o.max_epochs = 100000;
  o.wall_timeout_sec = 0.05;
  const auto rr = RunHogwild(d, svm, o);
  EXPECT_LT(rr.epochs.size(), 100000u);
}

TEST(BaselineTest, StopLossEndsEarly) {
  const Dataset d = SmallClassification(17);
  models::SvmSpec svm;
  BaselineOptions o = FastOptions();
  o.stop_loss = 1e9;
  const auto rr = RunGraphLabStyle(
      d, models::LeastSquaresSpec(), o);
  EXPECT_EQ(rr.epochs.size(), 1u);
  (void)svm;
}

// --- parallel sum ----------------------------------------------------------

class SumStrategies : public ::testing::TestWithParam<SumStrategy> {};

TEST_P(SumStrategies, ComputesExactTotal) {
  Rng rng(23);
  std::vector<double> values(100'000);
  double expected = 0.0;
  for (auto& v : values) {
    v = rng.Uniform();
    expected += v;
  }
  const SumResult r = RunParallelSum(values, 2, GetParam());
  EXPECT_NEAR(r.sum, expected, 1e-6 * expected);
  EXPECT_GT(r.gb_per_sec, 0.0);
}

// Hogwild's racy adds may lose updates by design; the sum is bounded by
// the true total but must remain positive and substantial.
INSTANTIATE_TEST_SUITE_P(All, SumStrategies,
                         ::testing::Values(SumStrategy::kDimmWitted,
                                           SumStrategy::kGraphLabStyle,
                                           SumStrategy::kMLlibStyle));

TEST(SumStrategiesHogwild, RacyAddsAreBoundedByTrueTotal) {
  Rng rng(27);
  std::vector<double> values(100'000);
  double expected = 0.0;
  for (auto& v : values) {
    v = rng.Uniform();
    expected += v;
  }
  const SumResult r = RunParallelSum(values, 2, SumStrategy::kHogwild);
  EXPECT_GT(r.sum, 0.2 * expected);          // most updates land
  EXPECT_LE(r.sum, expected * (1 + 1e-9));   // none invented
  // Single-threaded, Hogwild is exact (no concurrent writers).
  const SumResult seq = RunParallelSum(values, 1, SumStrategy::kHogwild);
  EXPECT_NEAR(seq.sum, expected, 1e-6 * expected);
}

TEST(SumThroughputTest, DimmWittedBeatsHogwildSharedCell) {
  // Fig. 13's mechanism: per-node accumulators avoid the cacheline
  // ping-pong of the single shared copy. Even with 2 physical cores the
  // contended CAS loop is measurably slower.
  Rng rng(29);
  std::vector<double> values(2'000'000);
  for (auto& v : values) v = rng.Uniform();
  const SumResult dw = RunParallelSum(values, 2, SumStrategy::kDimmWitted);
  const SumResult hw = RunParallelSum(values, 2, SumStrategy::kHogwild);
  EXPECT_GT(dw.gb_per_sec, hw.gb_per_sec);
}

}  // namespace
}  // namespace dw::baselines
