// Tests for the DimmWitted engine: plan construction across the whole
// tradeoff space, convergence under every (access x model-rep x data-rep)
// combination, placement accounting, traffic counters, and the async
// averager.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "models/glm.h"
#include "models/graph_opt.h"

namespace dw::engine {
namespace {

using data::Dataset;
using matrix::Index;

Dataset SmallDense(uint64_t seed = 3) {
  Dataset d;
  d.name = "dense";
  d.a = data::MakeDenseTable({.rows = 400, .cols = 16, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, 16, 0.02, seed + 1);
  return d;
}

Dataset SmallSparse(uint64_t seed = 5) {
  Dataset d;
  d.name = "sparse";
  d.a = data::MakeSparseCorpus(
      {.rows = 600, .cols = 200, .avg_nnz_per_row = 10.0, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, 40, 0.02, seed + 1);
  return d;
}

EngineOptions SmallTopoOptions() {
  EngineOptions opts;
  opts.topology = numa::Local2();
  opts.topology.cores_per_node = 2;  // 2 nodes x 2 workers: fast tests
  opts.step_size = 0.05;
  opts.seed = 9;
  return opts;
}

TEST(PlanTest, ReplicaGeometryPerStrategy) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();

  opts.model_rep = ModelReplication::kPerCore;
  auto plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_replicas, 4);
  EXPECT_EQ(plan.value().sharing_sockets, 1);
  EXPECT_EQ(plan.value().replicas_per_node, 2);

  opts.model_rep = ModelReplication::kPerNode;
  plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_replicas, 2);
  EXPECT_EQ(plan.value().replica_node[0], 0);
  EXPECT_EQ(plan.value().replica_node[1], 1);

  opts.model_rep = ModelReplication::kPerMachine;
  plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_replicas, 1);
  EXPECT_EQ(plan.value().sharing_sockets, 2);
}

TEST(PlanTest, ShardingPartitionsWithoutOverlap) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.data_rep = DataReplication::kSharding;
  auto plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  std::vector<int> seen(d.a.rows(), 0);
  for (const auto& w : plan.value().workers) {
    for (Index i : w.work) ++seen[i];
  }
  for (Index i = 0; i < d.a.rows(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST(PlanTest, FullReplicationCoversDomainPerNode) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.data_rep = DataReplication::kFullReplication;
  auto plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  // Each node's workers together cover every row exactly once.
  for (int node = 0; node < 2; ++node) {
    std::vector<int> seen(d.a.rows(), 0);
    for (const auto& w : plan.value().workers) {
      if (w.node != node) continue;
      for (Index i : w.work) ++seen[i];
    }
    for (Index i = 0; i < d.a.rows(); ++i) EXPECT_EQ(seen[i], 1);
  }
}

TEST(PlanTest, RejectsUnsupportedAccessMethod) {
  const Dataset d = SmallDense();
  models::LpSpec lp;  // LP has f_ctr, not f_col
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kColWise;
  const matrix::CscMatrix csc = matrix::CscMatrix::FromCsr(d.a);
  EXPECT_FALSE(BuildPlan(d, lp, opts, &csc).ok());
  opts.access = AccessMethod::kColToRow;
  EXPECT_TRUE(BuildPlan(d, lp, opts, &csc).ok());
  // Column access without a CSC index is a precondition failure.
  EXPECT_FALSE(BuildPlan(d, lp, opts, nullptr).ok());
}

TEST(PlanTest, RejectsImportanceWithColumnAccess) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kColWise;
  opts.data_rep = DataReplication::kImportance;
  const matrix::CscMatrix csc = matrix::CscMatrix::FromCsr(d.a);
  EXPECT_FALSE(BuildPlan(d, svm, opts, &csc).ok());
}

TEST(PlanTest, TrafficCoefficientsMatchDatasetTotals) {
  const Dataset d = SmallSparse();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  auto plan = BuildPlan(d, svm, opts, nullptr);
  ASSERT_TRUE(plan.ok());
  uint64_t data_bytes = 0;
  for (const auto& w : plan.value().workers) data_bytes += w.data_bytes_per_epoch;
  // Sharding: one full scan per epoch = nnz * (8 value + 4 index) bytes.
  EXPECT_EQ(data_bytes, static_cast<uint64_t>(d.a.nnz()) * 12u);
}

TEST(EngineTest, SvmConvergesRowWisePerNode) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kRowWise;
  opts.model_rep = ModelReplication::kPerNode;
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 40;
  const RunResult rr = engine.Run(cfg);
  ASSERT_EQ(rr.epochs.size(), 40u);
  EXPECT_LT(rr.BestLoss(), 0.25);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

// Property sweep: every combination of the tradeoff space converges on a
// well-conditioned problem.
using Combo = std::tuple<ModelReplication, DataReplication>;

class TradeoffSweep : public ::testing::TestWithParam<Combo> {};

TEST_P(TradeoffSweep, SvmRowWiseConverges) {
  const auto [mrep, drep] = GetParam();
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kRowWise;
  opts.model_rep = mrep;
  opts.data_rep = drep;
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 30;
  const RunResult rr = engine.Run(cfg);
  EXPECT_LT(rr.BestLoss(), 0.4)
      << ToString(mrep) << "/" << ToString(drep);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TradeoffSweep,
    ::testing::Combine(::testing::Values(ModelReplication::kPerCore,
                                         ModelReplication::kPerNode,
                                         ModelReplication::kPerMachine),
                       ::testing::Values(DataReplication::kSharding,
                                         DataReplication::kFullReplication,
                                         DataReplication::kImportance)));

TEST(EngineTest, ColumnWiseLeastSquaresConverges) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 300, .cols = 24, .seed = 21});
  d.b = data::PlantRegressionTargets(d.a, 0.05, 22);
  models::LeastSquaresSpec ls;
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kColWise;
  opts.model_rep = ModelReplication::kPerMachine;  // SCD rule of thumb
  Engine engine(&d, &ls, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 25;
  const RunResult rr = engine.Run(cfg);
  EXPECT_LT(rr.BestLoss(), 0.05);
}

TEST(EngineTest, ColumnToRowLpConverges) {
  const Dataset d = data::AmazonLp(0.0005, 31);
  models::LpSpec lp;
  EngineOptions opts = SmallTopoOptions();
  opts.access = AccessMethod::kColToRow;
  opts.model_rep = ModelReplication::kPerMachine;
  Engine engine(&d, &lp, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 15;
  const RunResult rr = engine.Run(cfg);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

TEST(EngineTest, PerMachineProducesSharedWriteTraffic) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.model_rep = ModelReplication::kPerMachine;
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  (void)engine.RunEpochNoEval();
  const auto total = engine.last_epoch_sim().traffic.Total();
  EXPECT_GT(total.shared_write_bytes, 0u);
  EXPECT_EQ(total.local_write_bytes, 0u);
}

TEST(EngineTest, PerNodeKeepsWritesLocalAndCutsRemoteReads) {
  // The PMU story of Sec. 4.2: Hogwild! (PerMachine) incurs many more
  // cross-node DRAM requests than PerNode.
  const Dataset d = SmallDense();
  models::SvmSpec svm;

  EngineOptions opts = SmallTopoOptions();
  opts.model_rep = ModelReplication::kPerNode;
  Engine per_node(&d, &svm, opts);
  ASSERT_TRUE(per_node.Init().ok());
  (void)per_node.RunEpochNoEval();
  const auto node_traffic = per_node.last_epoch_sim().traffic.Total();

  opts.model_rep = ModelReplication::kPerMachine;
  Engine per_machine(&d, &svm, opts);
  ASSERT_TRUE(per_machine.Init().ok());
  (void)per_machine.RunEpochNoEval();
  const auto mach_traffic = per_machine.last_epoch_sim().traffic.Total();

  EXPECT_EQ(node_traffic.shared_write_bytes, 0u);
  EXPECT_GT(mach_traffic.remote_dram_requests(),
            node_traffic.remote_dram_requests());
}

TEST(EngineTest, SimulatedTimeRanksPerNodeFasterThanPerMachine) {
  // Fig. 8(b): on the virtual local2, an SGD epoch under PerNode must be
  // simulated as faster than under PerMachine. Needs enough traffic for
  // the bandwidth terms to dominate the fixed per-epoch overhead.
  Dataset d;
  d.a = data::MakeSparseCorpus(
      {.rows = 5000, .cols = 500, .avg_nnz_per_row = 30.0, .seed = 8});
  d.b = data::PlantClassificationLabels(d.a, 60, 0.02, 9);
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.topology = numa::Local2();  // full 12-core topology for the model

  opts.model_rep = ModelReplication::kPerNode;
  Engine per_node(&d, &svm, opts);
  ASSERT_TRUE(per_node.Init().ok());
  const double t_node = per_node.RunEpochNoEval().sim_sec;

  opts.model_rep = ModelReplication::kPerMachine;
  Engine per_machine(&d, &svm, opts);
  ASSERT_TRUE(per_machine.Init().ok());
  const double t_machine = per_machine.RunEpochNoEval().sim_sec;

  EXPECT_GT(t_machine, t_node);
}

TEST(EngineTest, LedgerReflectsPlacementDecisions) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;

  // Collocated full replication: every node holds a data copy.
  EngineOptions opts = SmallTopoOptions();
  opts.data_rep = DataReplication::kFullReplication;
  Engine coll(&d, &svm, opts);
  ASSERT_TRUE(coll.Init().ok());
  EXPECT_GT(coll.ledger().BytesOnNode(0), 0u);
  EXPECT_GT(coll.ledger().BytesOnNode(1), 0u);
  EXPECT_NEAR(static_cast<double>(coll.ledger().BytesOnNode(1)) /
                  coll.ledger().BytesOnNode(0),
              1.0, 0.1);

  // OS placement: all data lands on node 0.
  opts.collocate_data = false;
  opts.data_rep = DataReplication::kSharding;
  Engine os(&d, &svm, opts);
  ASSERT_TRUE(os.Init().ok());
  EXPECT_GT(os.ledger().BytesOnNode(0), os.ledger().BytesOnNode(1) * 5);
}

TEST(EngineTest, OsPlacementCausesRemoteReads) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.collocate_data = false;
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  (void)engine.RunEpochNoEval();
  const auto& per_node = engine.last_epoch_sim().traffic.per_node;
  EXPECT_GT(per_node[1].remote_read_bytes, 0u);   // node 1 pulls from node 0
  EXPECT_EQ(per_node[0].remote_read_bytes, 0u);
}

TEST(EngineTest, ConsensusModelAveragesReplicas) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.model_rep = ModelReplication::kPerNode;
  opts.sync_interval_us = 0;  // boundary-only averaging
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  (void)engine.RunEpochNoEval();
  // After the boundary sync all replicas agree, so consensus == replica.
  const auto consensus = engine.ConsensusModel();
  ASSERT_EQ(consensus.size(), 16u);
  double norm = 0.0;
  for (double v : consensus) norm += v * v;
  EXPECT_GT(norm, 0.0);  // training moved the model
}

TEST(EngineTest, StopLossEndsRunEarly) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 100;
  cfg.stop_loss = 1e9;  // satisfied immediately
  const RunResult rr = engine.Run(cfg);
  EXPECT_EQ(rr.epochs.size(), 1u);
}

TEST(EngineTest, ImportanceSamplingRunsAndConverges) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 500, .cols = 12, .seed = 41});
  d.b = data::PlantRegressionTargets(d.a, 0.05, 42);
  models::LeastSquaresSpec ls;
  EngineOptions opts = SmallTopoOptions();
  opts.data_rep = DataReplication::kImportance;
  opts.importance_epsilon = 0.3;
  opts.step_size = 0.02;
  Engine engine(&d, &ls, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 20;
  const RunResult rr = engine.Run(cfg);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
  // Sampled work exists and is bounded by the rule of Sec. C.4.
  for (const auto& w : engine.plan().workers) {
    EXPECT_GT(w.work.size(), 0u);
    EXPECT_LE(w.work.size(), d.a.rows());
  }
}

TEST(EngineTest, RunRecordsMonotoneCumulativeTimes) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 5;
  const RunResult rr = engine.Run(cfg);
  EXPECT_GT(rr.TotalWallSec(), 0.0);
  EXPECT_GT(rr.TotalSimSec(), 0.0);
  for (const auto& e : rr.epochs) {
    EXPECT_GE(e.wall_sec, 0.0);
    EXPECT_GT(e.sim_sec, 0.0);
  }
}

TEST(EngineTest, TargetLossHelpers) {
  EXPECT_NEAR(RunResult::TargetLoss(2.0, 0.5), 3.0, 1e-9);
  EXPECT_NEAR(RunResult::TargetLoss(-2.0, 0.5), -1.0, 1e-9);
  RunResult rr;
  rr.epochs.push_back(
      {.epoch = 0, .loss = 5.0, .wall_sec = 1.0, .sim_sec = 2.0,
       .loss_eval_sec = 0.0, .traffic = {}});
  rr.epochs.push_back(
      {.epoch = 1, .loss = 2.0, .wall_sec = 1.0, .sim_sec = 2.0,
       .loss_eval_sec = 0.0, .traffic = {}});
  EXPECT_EQ(rr.EpochsToLoss(2.5), 2);
  EXPECT_EQ(rr.EpochsToLoss(0.5), -1);
  EXPECT_NEAR(rr.WallSecToLoss(2.5), 2.0, 1e-9);
  EXPECT_NEAR(rr.SimSecToLoss(2.5), 4.0, 1e-9);
  EXPECT_TRUE(std::isinf(rr.WallSecToLoss(0.0)));
}

TEST(EngineTest, ReferenceOptimalLossIsLow) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  const double opt =
      ReferenceOptimalLoss(d, svm, AccessMethod::kRowWise, 60, 0.05);
  // SmallDense has 2% flipped labels, so the hinge optimum is not 0; the
  // reference run must still get well under the zero-model loss of 1.0.
  EXPECT_LT(opt, 0.3);
}

TEST(EngineTest, AsyncAveragerRunsForPerNode) {
  const Dataset d = SmallDense();
  models::SvmSpec svm;
  EngineOptions opts = SmallTopoOptions();
  opts.model_rep = ModelReplication::kPerNode;
  opts.sync_interval_us = 50;
  Engine engine(&d, &svm, opts);
  ASSERT_TRUE(engine.Init().ok());
  RunConfig cfg;
  cfg.max_epochs = 10;
  const RunResult rr = engine.Run(cfg);
  EXPECT_LT(rr.BestLoss(), 0.4);
}

}  // namespace
}  // namespace dw::engine
