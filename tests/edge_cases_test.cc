// Edge-case and failure-injection tests across modules: degenerate
// datasets, single-worker topologies, extreme options, and API misuse
// that must fail cleanly rather than crash.
#include <gtest/gtest.h>

#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "engine/engine.h"
#include "factor/gibbs.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "nn/mlp.h"
#include "opt/optimizer.h"

namespace dw {
namespace {

using data::Dataset;
using engine::AccessMethod;
using engine::DataReplication;
using engine::EngineOptions;
using engine::ModelReplication;

Dataset OneRowDataset() {
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(1, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  d.a = std::move(m).value();
  d.b = {1.0};
  d.name = "one-row";
  return d;
}

TEST(EdgeCaseTest, EmptyDatasetIsRejected) {
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(0, 0, {});
  // Zero-dimension matrices cannot even be built into a plan.
  models::SvmSpec svm;
  EngineOptions o;
  o.topology = numa::HostTopology();
  const auto plan = engine::BuildPlan(d, svm, o, nullptr);
  EXPECT_FALSE(plan.ok());
}

TEST(EdgeCaseTest, SingleRowDatasetTrains) {
  const Dataset d = OneRowDataset();
  models::SvmSpec svm;
  EngineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;  // more workers than rows
  engine::Engine eng(&d, &svm, o);
  ASSERT_TRUE(eng.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 3;
  const auto rr = eng.Run(cfg);
  EXPECT_EQ(rr.epochs.size(), 3u);
  EXPECT_LT(rr.BestLoss(), 1.0);  // the single example gets separated
}

TEST(EdgeCaseTest, SingleWorkerTopologyMatchesSequential) {
  // One node, one core: PerCore == PerNode == PerMachine exactly.
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 120, .cols = 8, .seed = 2});
  d.b = data::PlantClassificationLabels(d.a, 8, 0.0, 3);
  models::SvmSpec svm;
  double losses[3];
  int k = 0;
  for (auto mrep : {ModelReplication::kPerCore, ModelReplication::kPerNode,
                    ModelReplication::kPerMachine}) {
    EngineOptions o;
    o.topology.num_nodes = 1;
    o.topology.cores_per_node = 1;
    o.model_rep = mrep;
    o.seed = 7;
    o.pin_threads = false;
    engine::Engine eng(&d, &svm, o);
    ASSERT_TRUE(eng.Init().ok());
    engine::RunConfig cfg;
    cfg.max_epochs = 5;
    losses[k++] = eng.Run(cfg).epochs.back().loss;
  }
  EXPECT_DOUBLE_EQ(losses[0], losses[1]);
  EXPECT_DOUBLE_EQ(losses[1], losses[2]);
}

TEST(EdgeCaseTest, ZeroColumnEntriesAreSkippedByColumnSteps) {
  // A column with no entries must be a no-op for every column method.
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {1, 0, 2.0}});
  d.a = std::move(m).value();
  d.b = {1.0, -1.0};
  const matrix::CscMatrix csc = matrix::CscMatrix::FromCsr(d.a);
  models::LeastSquaresSpec ls;
  std::vector<double> model(3, 0.5);
  std::vector<double> aux(ls.AuxDim(d));
  ls.RefreshAux(d, model.data(), aux.data());
  models::StepContext ctx{&d, &csc, 0.1};
  ls.ColStep(ctx, 1, model.data(), aux.data());   // empty column
  ls.CtrStep(ctx, 2, model.data(), nullptr);      // empty column
  EXPECT_DOUBLE_EQ(model[1], 0.5);
  EXPECT_DOUBLE_EQ(model[2], 0.5);
}

TEST(EdgeCaseTest, WorkersNeverExceedDomain) {
  // 48 virtual workers over a 10-row dataset: sharding must not crash and
  // every row is still covered exactly once.
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 10, .cols = 4, .seed = 5});
  d.b = data::PlantClassificationLabels(d.a, 4, 0.0, 6);
  models::SvmSpec svm;
  EngineOptions o;
  o.topology = numa::Local8();  // 64 workers
  const auto plan = engine::BuildPlan(d, svm, o, nullptr);
  ASSERT_TRUE(plan.ok());
  int covered = 0;
  for (const auto& w : plan.value().workers) {
    covered += static_cast<int>(w.work.size());
  }
  EXPECT_EQ(covered, 10);
}

TEST(EdgeCaseTest, OptimizerHandlesDenseAndSparseExtremes) {
  // Fully dense single-column data and hyper-sparse data both get plans.
  models::LeastSquaresSpec ls;
  Dataset dense;
  dense.a = data::MakeDenseTable({.rows = 50, .cols = 1, .seed = 9});
  dense.b = data::PlantRegressionTargets(dense.a, 0.1, 10);
  const auto p1 = opt::ChoosePlan(dense, ls, numa::Local2());
  EXPECT_FALSE(p1.rationale.empty());

  Dataset sparse;
  auto m = matrix::CsrMatrix::FromTriplets(
      100, 100000, {{0, 99999, 1.0}, {99, 0, 1.0}});
  sparse.a = std::move(m).value();
  sparse.b.assign(100, 0.0);
  const auto p2 = opt::ChoosePlan(sparse, ls, numa::Local2());
  EXPECT_FALSE(p2.rationale.empty());
}

TEST(EdgeCaseTest, GibbsHandlesIsolatedVariables) {
  // A graph where one variable touches no factor: its marginal is 0.5.
  auto g = factor::FactorGraph::Build(
      3, {{factor::FactorKind::kUnary, 2.0, {0}},
          {factor::FactorKind::kIsing, 1.0, {0, 1}}});
  ASSERT_TRUE(g.ok());
  factor::GibbsOptions o;
  o.strategy = factor::GibbsStrategy::kSequential;
  o.sweeps = 3000;
  o.burn_in = 200;
  const auto r = factor::RunGibbs(g.value(), o);
  EXPECT_NEAR(r.marginals[2], 0.5, 0.05);  // variable 2 is isolated
}

TEST(EdgeCaseTest, MlpRejectsNothingButHandlesTinyNets) {
  nn::MlpConfig cfg;
  cfg.layer_sizes = {2, 2};  // minimal: input -> logits
  const nn::Mlp mlp(cfg);
  EXPECT_EQ(mlp.num_params(), 2u * 2 + 2);
  std::vector<double> params(mlp.num_params());
  mlp.InitParams(params.data(), 3);
  nn::MlpScratch scratch = mlp.MakeScratch();
  const double x[2] = {1.0, -1.0};
  const double loss = mlp.Forward(params.data(), x, 1, &scratch);
  EXPECT_TRUE(std::isfinite(loss));
  mlp.TrainExample(params.data(), x, 1, 0.1, &scratch);
  EXPECT_LT(mlp.Forward(params.data(), x, 1, &scratch), loss);
}

TEST(EdgeCaseTest, StepSizeZeroLeavesModelUntouched) {
  const Dataset d = OneRowDataset();
  models::LeastSquaresSpec ls;
  models::StepContext ctx{&d, nullptr, 0.0};
  std::vector<double> model(2, 0.25);
  ls.RowStep(ctx, 0, model.data(), nullptr);
  EXPECT_DOUBLE_EQ(model[0], 0.25);
  EXPECT_DOUBLE_EQ(model[1], 0.25);
}

TEST(EdgeCaseTest, ImportanceRequiresSmallModelDimension) {
  // Leverage scores need a dense Gram factorization; a huge d must fail
  // with a clean status, not crash.
  Dataset sparse;
  auto m = matrix::CsrMatrix::FromTriplets(10, 50000, {{0, 49999, 1.0}});
  sparse.a = std::move(m).value();
  sparse.b.assign(10, 1.0);
  models::LeastSquaresSpec ls;
  EngineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 1;
  o.data_rep = DataReplication::kImportance;
  engine::Engine eng(&sparse, &ls, o);
  EXPECT_FALSE(eng.Init().ok());
}

TEST(EdgeCaseTest, EngineInitTwiceFails) {
  const Dataset d = OneRowDataset();
  models::SvmSpec svm;
  EngineOptions o;
  o.topology.num_nodes = 1;
  o.topology.cores_per_node = 1;
  engine::Engine eng(&d, &svm, o);
  ASSERT_TRUE(eng.Init().ok());
  EXPECT_FALSE(eng.Init().ok());
}

TEST(EdgeCaseTest, HugeStepSizeStaysFiniteForBoundedModels) {
  // LP/QP clip into their boxes, so even absurd steps stay finite.
  const Dataset d = data::AmazonLp(0.001, 3);
  models::LpSpec lp;
  EngineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 1;
  o.access = AccessMethod::kRowWise;
  o.step_size = 1e6;
  engine::Engine eng(&d, &lp, o);
  ASSERT_TRUE(eng.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 2;
  const auto rr = eng.Run(cfg);
  EXPECT_TRUE(std::isfinite(rr.epochs.back().loss));
  for (double v : eng.ConsensusModel()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace dw
