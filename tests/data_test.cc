// Tests for src/data: generator shapes match the paper's Figure 10
// surrogates, transforms preserve invariants, leverage scores behave.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/graphs.h"
#include "matrix/csc_matrix.h"
#include "data/leverage.h"
#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "data/transforms.h"

namespace dw::data {
namespace {

using matrix::Index;

TEST(SyntheticTest, SparseCorpusShape) {
  SparseCorpusParams p;
  p.rows = 500;
  p.cols = 300;
  p.avg_nnz_per_row = 12.0;
  p.seed = 7;
  const auto m = MakeSparseCorpus(p);
  EXPECT_EQ(m.rows(), 500u);
  EXPECT_EQ(m.cols(), 300u);
  const auto stats = matrix::ComputeStats(m);
  EXPECT_NEAR(stats.avg_row_nnz, 12.0, 4.0);
  // Every row non-empty; column ids strictly increasing within a row.
  for (Index i = 0; i < m.rows(); ++i) {
    ASSERT_GE(m.RowNnz(i), 1u);
    const auto row = m.Row(i);
    for (size_t k = 1; k < row.nnz; ++k) {
      EXPECT_LT(row.indices[k - 1], row.indices[k]);
    }
  }
}

TEST(SyntheticTest, SparseCorpusIsDeterministicBySeed) {
  SparseCorpusParams p;
  p.rows = 100;
  p.cols = 80;
  p.seed = 5;
  const auto a = MakeSparseCorpus(p);
  const auto b = MakeSparseCorpus(p);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
}

TEST(SyntheticTest, ZipfSkewMakesHeadColumnsPopular) {
  SparseCorpusParams p;
  p.rows = 2000;
  p.cols = 500;
  p.avg_nnz_per_row = 10.0;
  p.zipf_s = 1.2;
  const auto m = MakeSparseCorpus(p);
  const auto csc = matrix::CscMatrix::FromCsr(m);
  // Column 0 (most popular under Zipf) should beat the median column.
  std::vector<size_t> col_nnz(m.cols());
  for (Index j = 0; j < m.cols(); ++j) col_nnz[j] = csc.ColNnz(j);
  std::vector<size_t> sorted = col_nnz;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(col_nnz[0], sorted[sorted.size() / 2] * 3);
}

TEST(SyntheticTest, DenseTableIsFullyDense) {
  DenseTableParams p;
  p.rows = 100;
  p.cols = 24;
  const auto m = MakeDenseTable(p);
  EXPECT_EQ(m.nnz(), 100 * 24);
  for (Index i = 0; i < m.rows(); ++i) EXPECT_EQ(m.RowNnz(i), 24u);
}

TEST(SyntheticTest, ClassificationLabelsAreSigns) {
  const auto m = MakeDenseTable({.rows = 200, .cols = 16, .seed = 3});
  const auto y = PlantClassificationLabels(m, 16, 0.0, 4);
  ASSERT_EQ(y.size(), 200u);
  int pos = 0;
  for (double v : y) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    pos += v > 0;
  }
  // A planted linear separator should give a non-degenerate split.
  EXPECT_GT(pos, 10);
  EXPECT_LT(pos, 190);
}

TEST(SyntheticTest, RegressionTargetsCorrelateWithPlantedModel) {
  const auto m = MakeDenseTable({.rows = 400, .cols = 8, .seed = 9});
  const auto y0 = PlantRegressionTargets(m, 0.0, 10);
  const auto y1 = PlantRegressionTargets(m, 0.0, 10);
  EXPECT_EQ(y0, y1);  // deterministic
  // Nonzero variance.
  double mean = std::accumulate(y0.begin(), y0.end(), 0.0) / y0.size();
  double var = 0.0;
  for (double v : y0) var += (v - mean) * (v - mean);
  EXPECT_GT(var, 1.0);
}

TEST(GraphTest, PowerLawGraphShape) {
  const auto g = MakePowerLawGraph(1000, 5000, 1.2, 11);
  EXPECT_EQ(g.num_vertices, 1000u);
  EXPECT_EQ(g.edges.size(), 5000u);
  for (const auto& [u, v] : g.edges) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, 1000u);
    EXPECT_LT(v, 1000u);
  }
}

TEST(GraphTest, DegreeDistributionIsHeavyTailed) {
  const auto g = MakePowerLawGraph(2000, 20000, 1.3, 13);
  std::vector<int> degree(2000, 0);
  for (const auto& [u, v] : g.edges) {
    ++degree[u];
    ++degree[v];
  }
  std::sort(degree.begin(), degree.end(), std::greater<>());
  // Top vertex dominates the median vertex.
  EXPECT_GT(degree[0], degree[1000] * 5);
}

TEST(GraphTest, VertexCoverLpShape) {
  const auto g = MakePowerLawGraph(300, 1500, 1.2, 17);
  const Dataset d = MakeVertexCoverLp(g, 18, "test-lp");
  EXPECT_EQ(d.a.rows(), 1500u);   // rows are edges
  EXPECT_EQ(d.a.cols(), 300u);    // cols are vertices
  EXPECT_EQ(d.a.nnz(), 3000);     // two endpoints per edge
  ASSERT_EQ(d.b.size(), 1500u);
  for (double rhs : d.b) EXPECT_DOUBLE_EQ(rhs, 1.0);
  ASSERT_EQ(d.c.size(), 300u);
  for (double cost : d.c) EXPECT_GT(cost, 0.0);
  for (Index e = 0; e < d.a.rows(); ++e) EXPECT_EQ(d.a.RowNnz(e), 2u);
}

TEST(GraphTest, LabelPropagationQpIsLaplacianPlusRidge) {
  const auto g = MakePowerLawGraph(200, 800, 1.2, 21);
  const double lambda = 1.0;
  const Dataset d = MakeLabelPropagationQp(g, lambda, 0.3, 22, "test-qp");
  EXPECT_EQ(d.a.rows(), 200u);
  EXPECT_EQ(d.a.cols(), 200u);
  // Row sums of a Laplacian are zero; ours adds lambda on the diagonal.
  for (Index i = 0; i < d.a.rows(); ++i) {
    const auto row = d.a.Row(i);
    double sum = 0.0;
    double diag = 0.0;
    for (size_t k = 0; k < row.nnz; ++k) {
      sum += row.values[k];
      if (row.indices[k] == i) diag = row.values[k];
    }
    EXPECT_NEAR(sum, lambda, 1e-9);
    EXPECT_GE(diag, lambda);  // degree + lambda
  }
  // b = lambda * y with y in {-1, 0, 1}.
  for (Index i = 0; i < d.a.rows(); ++i) {
    EXPECT_NEAR(d.b[i], lambda * d.c[i], 1e-12);
    EXPECT_TRUE(d.c[i] == 0.0 || d.c[i] == 1.0 || d.c[i] == -1.0);
  }
}

TEST(PaperDatasetsTest, ShapesFollowFigure10) {
  const Dataset rcv1 = Rcv1(0.003);
  EXPECT_GT(rcv1.a.rows(), rcv1.a.cols());  // underdetermined? no: N > d
  EXPECT_TRUE(rcv1.sparse);
  EXPECT_EQ(rcv1.b.size(), rcv1.a.rows());

  const Dataset reuters = Reuters(0.25);
  EXPECT_GT(reuters.a.cols(), reuters.a.rows());  // d > N

  const Dataset music = Music(0.003);
  EXPECT_EQ(music.a.cols(), 91u);
  EXPECT_FALSE(music.sparse);
  EXPECT_EQ(music.a.nnz(),
            static_cast<int64_t>(music.a.rows()) * 91);

  const Dataset forest = Forest(0.003);
  EXPECT_EQ(forest.a.cols(), 54u);
  for (double y : forest.b) EXPECT_TRUE(y == 1.0 || y == -1.0);

  const Dataset lp = AmazonLp(0.003);
  for (Index e = 0; e < lp.a.rows(); ++e) EXPECT_EQ(lp.a.RowNnz(e), 2u);

  const Dataset qp = AmazonQp(0.003);
  EXPECT_EQ(qp.a.rows(), qp.a.cols());
}

TEST(PaperDatasetsTest, ScaledCountHasFloor) {
  EXPECT_EQ(ScaledCount(1e6, 1e-9, 500), 500u);
  EXPECT_EQ(ScaledCount(1e6, 0.01, 500), 10000u);
}

TEST(PaperDatasetsTest, WithBinaryLabelsSplitsAtMedian) {
  Dataset music = Music(0.003);
  const Dataset bin = WithBinaryLabels(std::move(music));
  int pos = 0;
  for (double y : bin.b) {
    EXPECT_TRUE(y == 1.0 || y == -1.0);
    pos += y > 0;
  }
  const double frac = static_cast<double>(pos) / bin.b.size();
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(TransformsTest, SubsampleElementsReducesNnz) {
  const Dataset d = Rcv1(0.002);
  const Dataset sub = SubsampleElements(d, 0.3, 5);
  EXPECT_EQ(sub.a.rows(), d.a.rows());
  EXPECT_EQ(sub.a.cols(), d.a.cols());
  EXPECT_LT(sub.a.nnz(), d.a.nnz());
  EXPECT_NEAR(static_cast<double>(sub.a.nnz()) / d.a.nnz(), 0.3, 0.1);
  // No row lost all of its elements.
  for (Index i = 0; i < sub.a.rows(); ++i) {
    if (d.a.RowNnz(i) > 0) {
      EXPECT_GE(sub.a.RowNnz(i), 1u);
    }
  }
}

TEST(TransformsTest, SubsampleRowsKeepsLabelsAligned) {
  const Dataset d = Music(0.003);
  const Dataset sub = SubsampleRows(d, 0.5, 6);
  EXPECT_LT(sub.a.rows(), d.a.rows());
  EXPECT_EQ(sub.b.size(), sub.a.rows());
  EXPECT_EQ(sub.a.cols(), d.a.cols());
  EXPECT_NEAR(static_cast<double>(sub.a.rows()) / d.a.rows(), 0.5, 0.1);
}

TEST(TransformsTest, NormalizeRowsGivesUnitNorms) {
  const Dataset d = Rcv1(0.002);
  const Dataset norm = NormalizeRows(d);
  for (Index i = 0; i < norm.a.rows(); ++i) {
    const double sq = norm.a.Row(i).SquaredNorm();
    if (d.a.RowNnz(i) > 0) {
      EXPECT_NEAR(sq, 1.0, 1e-9);
    }
  }
}

TEST(CholeskyTest, FactorsAndSolves) {
  // SPD matrix [[4,2],[2,3]].
  std::vector<double> a{4, 2, 2, 3};
  ASSERT_TRUE(CholeskyFactor(a, 2));
  // Solve A x = [8, 7] -> x = [1.25, 1.5].
  const auto x = CholeskySolve(a, 2, {8, 7});
  EXPECT_NEAR(x[0], 1.25, 1e-9);
  EXPECT_NEAR(x[1], 1.5, 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  std::vector<double> a{1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(a, 2));
}

TEST(LeverageTest, UniformRowsGetUniformScores) {
  // Identity-ish design: each row is a distinct basis vector; all scores
  // must be equal.
  std::vector<matrix::Triplet> trips;
  for (Index i = 0; i < 8; ++i) trips.push_back({i, i % 4, 1.0});
  auto m = matrix::CsrMatrix::FromTriplets(8, 4, trips);
  ASSERT_TRUE(m.ok());
  auto scores = LeverageScores(m.value());
  ASSERT_TRUE(scores.ok());
  for (double s : scores.value()) {
    EXPECT_NEAR(s, scores.value()[0], 1e-9);
  }
}

TEST(LeverageTest, OutlierRowGetsHighScore) {
  // 50 near-identical rows plus one orthogonal outlier: the outlier's
  // direction is rare, so its leverage must dominate.
  std::vector<matrix::Triplet> trips;
  for (Index i = 0; i < 50; ++i) trips.push_back({i, 0, 1.0});
  trips.push_back({50, 1, 1.0});
  auto m = matrix::CsrMatrix::FromTriplets(51, 2, trips);
  ASSERT_TRUE(m.ok());
  auto scores = LeverageScores(m.value(), 1e-9);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores.value()[50], scores.value()[0] * 10);
}

TEST(LeverageTest, SampleByScoreFavorsHighScores) {
  std::vector<double> scores{0.01, 0.01, 10.0, 0.01};
  const auto sample = SampleByScore(scores, 2000, 31);
  ASSERT_EQ(sample.size(), 2000u);
  int hits = 0;
  for (Index i : sample) hits += (i == 2);
  EXPECT_GT(hits, 1800);
}

TEST(LeverageTest, SampleCountRule) {
  // m = 2 eps^-2 d log d.
  const size_t m = ImportanceSampleCount(0.1, 91);
  EXPECT_NEAR(static_cast<double>(m), 2.0 * 100 * 91 * std::log(91.0),
              2.0 * 100 * 91 * 0.01);
}

TEST(LeverageTest, RejectsHugeD) {
  auto m = matrix::CsrMatrix::FromTriplets(2, 10000, {{0, 9999, 1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(LeverageScores(m.value()).ok());
}

TEST(DatasetTest, ByteAccounting) {
  const Dataset d = Reuters(0.25);
  EXPECT_EQ(d.SparseBytes(),
            d.a.nnz() * 12 + static_cast<int64_t>(d.a.rows() + 1) * 8);
  EXPECT_EQ(d.DenseBytes(),
            static_cast<int64_t>(d.a.rows()) * d.a.cols() * 8);
  // Fig. 10's point: sparse text is far smaller than dense.
  EXPECT_LT(d.SparseBytes() * 10, d.DenseBytes());
}

}  // namespace
}  // namespace dw::data
