// Tests for src/models: gradient directions checked against numerical
// differentiation (property tests over random rows), convergence of every
// access method on small problems, and exactness of coordinate minimizers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/graphs.h"
#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "models/parallel_sum.h"
#include "util/rng.h"

namespace dw::models {
namespace {

using data::Dataset;
using matrix::CscMatrix;
using matrix::Index;

Dataset TinyClassification(Index rows, Index cols, uint64_t seed) {
  Dataset d;
  d.name = "tiny";
  d.a = data::MakeDenseTable({.rows = rows, .cols = cols, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, cols, 0.0, seed + 1);
  return d;
}

Dataset TinyRegression(Index rows, Index cols, uint64_t seed) {
  Dataset d;
  d.name = "tiny";
  d.a = data::MakeDenseTable({.rows = rows, .cols = cols, .seed = seed});
  d.b = data::PlantRegressionTargets(d.a, 0.05, seed + 1);
  return d;
}

// Numerical gradient of the spec's TOTAL loss at `model`.
std::vector<double> NumericalGradient(const ModelSpec& spec, const Dataset& d,
                                      std::vector<double> model) {
  const double h = 1e-6;
  std::vector<double> g(model.size());
  for (size_t k = 0; k < model.size(); ++k) {
    const double keep = model[k];
    model[k] = keep + h;
    const double up = spec.Loss(d, model.data());
    model[k] = keep - h;
    const double down = spec.Loss(d, model.data());
    model[k] = keep;
    g[k] = (up - down) / (2 * h);
  }
  return g;
}

// One full pass of row steps with a small step must reduce a smooth loss.
void ExpectRowPassReducesLoss(const ModelSpec& spec, const Dataset& d,
                              double step) {
  std::vector<double> model(spec.ModelDim(d), 0.0);
  const double before = spec.Loss(d, model.data());
  StepContext ctx{&d, nullptr, step};
  for (Index i = 0; i < d.a.rows(); ++i) {
    spec.RowStep(ctx, i, model.data(), nullptr);
  }
  const double after = spec.Loss(d, model.data());
  EXPECT_LT(after, before) << spec.name();
}

// Full epochs of column steps must reduce the loss too.
void ExpectColEpochsReduceLoss(const GlmSpec& spec, const Dataset& d,
                               double step, int epochs) {
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(spec.ModelDim(d), 0.0);
  std::vector<double> aux(spec.AuxDim(d), 0.0);
  spec.RefreshAux(d, model.data(), aux.data());
  const double before = spec.Loss(d, model.data());
  StepContext ctx{&d, &csc, step};
  for (int e = 0; e < epochs; ++e) {
    for (Index j = 0; j < d.a.cols(); ++j) {
      spec.ColStep(ctx, j, model.data(), aux.data());
    }
  }
  const double after = spec.Loss(d, model.data());
  EXPECT_LT(after, before) << spec.name();
  // The maintained aux must equal a fresh recomputation (invariant).
  std::vector<double> fresh(spec.AuxDim(d));
  spec.RefreshAux(d, model.data(), fresh.data());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_NEAR(aux[i], fresh[i], 1e-6) << "row " << i;
  }
}

// --- logistic regression: exact gradient check (smooth loss) -------------

class LrGradientCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LrGradientCheck, RowStepMatchesNumericalGradient) {
  const Dataset d = TinyClassification(6, 4, GetParam());
  LogisticSpec lr;
  Rng rng(GetParam());
  std::vector<double> model(4);
  for (auto& m : model) m = rng.Gaussian(0.0, 0.5);

  // Analytic full-batch gradient = average of per-row step directions
  // (RowStep moves by -step * grad_i, so sum of moves / (step*N) = -grad).
  const double step = 1e-7;  // tiny: curvature error negligible
  std::vector<double> moved = model;
  StepContext ctx{&d, nullptr, step};
  for (Index i = 0; i < d.a.rows(); ++i) {
    lr.RowStep(ctx, i, moved.data(), nullptr);
  }
  std::vector<double> analytic(4);
  for (size_t k = 0; k < 4; ++k) {
    analytic[k] = -(moved[k] - model[k]) / (step * d.a.rows());
  }
  const std::vector<double> numeric = NumericalGradient(lr, d, model);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(analytic[k], numeric[k], 1e-4) << "coord " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LrGradientCheck,
                         ::testing::Values(1, 2, 3, 7, 11, 13));

// --- least squares: exact gradient + exact coordinate minimizer ----------

TEST(LeastSquaresTest, RowStepMatchesNumericalGradient) {
  const Dataset d = TinyRegression(8, 5, 3);
  LeastSquaresSpec ls;
  std::vector<double> model(5, 0.1);
  const double step = 1e-7;
  std::vector<double> moved = model;
  StepContext ctx{&d, nullptr, step};
  for (Index i = 0; i < d.a.rows(); ++i) {
    ls.RowStep(ctx, i, moved.data(), nullptr);
  }
  const std::vector<double> numeric = NumericalGradient(ls, d, model);
  for (size_t k = 0; k < 5; ++k) {
    const double analytic = -(moved[k] - model[k]) / (step * d.a.rows());
    EXPECT_NEAR(analytic, numeric[k], 1e-3);
  }
}

TEST(LeastSquaresTest, ColStepIsExactCoordinateMinimizer) {
  const Dataset d = TinyRegression(10, 4, 5);
  LeastSquaresSpec ls;
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(4, 0.3);
  std::vector<double> aux(ls.AuxDim(d));
  ls.RefreshAux(d, model.data(), aux.data());

  StepContext ctx{&d, &csc, 0.1};
  ls.ColStep(ctx, 2, model.data(), aux.data());

  // After minimizing coordinate 2, the partial derivative wrt x_2 is 0.
  const auto grad = NumericalGradient(ls, d, model);
  EXPECT_NEAR(grad[2], 0.0, 1e-5);
}

TEST(LeastSquaresTest, ManyColEpochsReachLeastSquaresSolution) {
  // Overdetermined consistent-ish system: SCD (Gauss-Seidel on normal
  // equations) must drive the loss near the noise floor.
  const Dataset d = TinyRegression(60, 6, 7);
  LeastSquaresSpec ls;
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(6, 0.0);
  std::vector<double> aux(ls.AuxDim(d));
  ls.RefreshAux(d, model.data(), aux.data());
  StepContext ctx{&d, &csc, 1.0};
  for (int e = 0; e < 60; ++e) {
    for (Index j = 0; j < 6; ++j) ls.ColStep(ctx, j, model.data(), aux.data());
  }
  // Noise sigma is 0.05 => mean 0.5*r^2 ~ 0.00125.
  EXPECT_LT(ls.Loss(d, model.data()), 0.01);
}

// --- hinge/logistic descent behaviour -------------------------------------

TEST(SvmTest, RowPassReducesLoss) {
  ExpectRowPassReducesLoss(SvmSpec(), TinyClassification(50, 8, 11), 0.05);
}

TEST(SvmTest, ColEpochsReduceLossAndKeepAuxConsistent) {
  ExpectColEpochsReduceLoss(SvmSpec(), TinyClassification(40, 6, 13), 0.5, 10);
}

TEST(SvmTest, SeparableDataReachesZeroLoss) {
  const Dataset d = TinyClassification(80, 5, 17);  // noise-free labels
  SvmSpec svm;
  std::vector<double> model(5, 0.0);
  StepContext ctx{&d, nullptr, 0.1};
  Rng rng(1);
  std::vector<Index> order(d.a.rows());
  for (Index i = 0; i < d.a.rows(); ++i) order[i] = i;
  for (int e = 0; e < 200; ++e) {
    ctx.step_size = 0.1 * std::pow(0.98, e);
    rng.Shuffle(order);
    for (Index i : order) svm.RowStep(ctx, i, model.data(), nullptr);
  }
  EXPECT_LT(svm.Loss(d, model.data()), 0.05);
}

TEST(SvmTest, RowLossIsHinge) {
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0}, {1, 1, 1.0}});
  ASSERT_TRUE(m.ok());
  d.a = std::move(m).value();
  d.b = {1.0, -1.0};
  SvmSpec svm;
  const double model[2] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(svm.RowLoss(d, 0, model), 0.0);   // margin 2 >= 1
  EXPECT_DOUBLE_EQ(svm.RowLoss(d, 1, model), 2.0);   // margin -1
}

TEST(LogisticTest, RowPassReducesLoss) {
  ExpectRowPassReducesLoss(LogisticSpec(), TinyClassification(50, 8, 19),
                           0.1);
}

TEST(LogisticTest, ColEpochsReduceLossAndKeepAuxConsistent) {
  ExpectColEpochsReduceLoss(LogisticSpec(), TinyClassification(40, 6, 23),
                            1.0, 10);
}

TEST(LogisticTest, SigmoidAndLog1pExpAreStable) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Log1pExp(0.0), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Log1pExp(100.0), 100.0);
  EXPECT_DOUBLE_EQ(Log1pExp(-100.0), 0.0);
  EXPECT_FALSE(std::isnan(Log1pExp(1000.0)));
}

// --- LP -------------------------------------------------------------------

Dataset SmallLp(uint64_t seed) {
  const auto g = data::MakePowerLawGraph(60, 180, 1.2, seed);
  return data::MakeVertexCoverLp(g, seed + 1, "small-lp");
}

TEST(LpTest, CtrEpochsReduceObjective) {
  const Dataset d = SmallLp(31);
  LpSpec lp(5.0);
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(d.a.cols(), 0.0);
  const double before = lp.Loss(d, model.data());
  StepContext ctx{&d, &csc, 0.05};
  for (int e = 0; e < 30; ++e) {
    for (Index j = 0; j < d.a.cols(); ++j) {
      lp.CtrStep(ctx, j, model.data(), nullptr);
    }
  }
  const double after = lp.Loss(d, model.data());
  EXPECT_LT(after, before);
  // Box constraints hold.
  for (double x : model) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Penalty keeps constraints near-feasible: few badly violated edges.
  int violated = 0;
  for (Index e = 0; e < d.a.rows(); ++e) {
    const auto row = d.a.Row(e);
    double lhs = 0.0;
    for (size_t k = 0; k < row.nnz; ++k) lhs += model[row.indices[k]];
    violated += lhs < 0.5;
  }
  EXPECT_LT(violated, static_cast<int>(d.a.rows()) / 10);
}

TEST(LpTest, RowEpochsReduceObjective) {
  const Dataset d = SmallLp(37);
  LpSpec lp(5.0);
  std::vector<double> model(d.a.cols(), 0.0);
  const double before = lp.Loss(d, model.data());
  StepContext ctx{&d, nullptr, 0.05};
  for (int e = 0; e < 40; ++e) {
    for (Index i = 0; i < d.a.rows(); ++i) {
      lp.RowStep(ctx, i, model.data(), nullptr);
    }
  }
  EXPECT_LT(lp.Loss(d, model.data()), before);
  for (double x : model) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(LpTest, CtrBeatsNothingOnCoverQuality) {
  // Exact minimizer on a single-edge graph: both endpoints rise until the
  // constraint is satisfied against the cost.
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  ASSERT_TRUE(m.ok());
  d.a = std::move(m).value();
  d.b = {1.0};
  d.c = {0.1, 0.1};  // cheap vertices: cover should saturate
  LpSpec lp(10.0);
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(2, 0.0);
  StepContext ctx{&d, &csc, 0.1};
  for (int it = 0; it < 50; ++it) {
    lp.CtrStep(ctx, 0, model.data(), nullptr);
    lp.CtrStep(ctx, 1, model.data(), nullptr);
  }
  EXPECT_GT(model[0] + model[1], 0.9);
}

TEST(LpTest, ProjectClipsToUnitBox) {
  LpSpec lp;
  double m[3] = {-0.5, 0.5, 1.5};
  lp.Project(m, 3);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 0.5);
  EXPECT_DOUBLE_EQ(m[2], 1.0);
}

// --- QP -------------------------------------------------------------------

Dataset SmallQp(uint64_t seed) {
  const auto g = data::MakePowerLawGraph(50, 150, 1.2, seed);
  return data::MakeLabelPropagationQp(g, 1.0, 0.3, seed + 1, "small-qp");
}

TEST(QpTest, ColStepIsExactCoordinateMinimizer) {
  const Dataset d = SmallQp(41);
  QpSpec qp;
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  Rng rng(42);
  std::vector<double> model(d.a.cols());
  for (auto& x : model) x = rng.Uniform(-0.5, 0.5);

  StepContext ctx{&d, &csc, 0.1};
  qp.ColStep(ctx, 7, model.data(), nullptr);
  // Unless clipped, the partial derivative at coordinate 7 must vanish.
  if (model[7] > -1.0 + 1e-9 && model[7] < 1.0 - 1e-9) {
    const auto grad = NumericalGradient(qp, d, model);
    EXPECT_NEAR(grad[7], 0.0, 1e-5);
  }
}

TEST(QpTest, GaussSeidelEpochsConverge) {
  const Dataset d = SmallQp(43);
  QpSpec qp;
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(d.a.cols(), 0.0);
  const double before = qp.Loss(d, model.data());
  StepContext ctx{&d, &csc, 0.1};
  double prev = before;
  for (int e = 0; e < 25; ++e) {
    for (Index j = 0; j < d.a.cols(); ++j) {
      qp.ColStep(ctx, j, model.data(), nullptr);
    }
    const double cur = qp.Loss(d, model.data());
    EXPECT_LE(cur, prev + 1e-9);  // monotone (exact coordinate descent)
    prev = cur;
  }
  EXPECT_LT(prev, before);
  // Labeled vertices pull their neighborhoods: some nonzero structure.
  double maxabs = 0.0;
  for (double x : model) maxabs = std::max(maxabs, std::abs(x));
  EXPECT_GT(maxabs, 0.1);
}

TEST(QpTest, RowEpochsReduceObjective) {
  const Dataset d = SmallQp(47);
  QpSpec qp;
  std::vector<double> model(d.a.cols(), 0.0);
  const double before = qp.Loss(d, model.data());
  StepContext ctx{&d, nullptr, 0.05};
  for (int e = 0; e < 60; ++e) {
    for (Index i = 0; i < d.a.rows(); ++i) {
      qp.RowStep(ctx, i, model.data(), nullptr);
    }
  }
  EXPECT_LT(qp.Loss(d, model.data()), before);
}

TEST(QpTest, LossMatchesQuadraticForm) {
  // Loss must equal (0.5 x^T Q x - b^T x) / N.
  const Dataset d = SmallQp(53);
  QpSpec qp;
  Rng rng(54);
  std::vector<double> x(d.a.cols());
  for (auto& v : x) v = rng.Uniform(-1.0, 1.0);
  double quad = 0.0;
  for (Index i = 0; i < d.a.rows(); ++i) {
    quad += x[i] * (0.5 * d.a.Row(i).Dot(x.data()) - d.b[i]);
  }
  EXPECT_NEAR(qp.Loss(d, x.data()), quad / d.a.rows(), 1e-9);
}

// --- Predict (the serving entry point) -------------------------------------

// Predict must be consistent with the training losses: for every GLM the
// row loss is a fixed function of the predicted margin/estimate.

TEST(PredictTest, SvmPredictionIsTheMarginInsideRowLoss) {
  const Dataset d = TinyClassification(30, 6, 61);
  SvmSpec svm;
  Rng rng(62);
  std::vector<double> model(6);
  for (auto& m : model) m = rng.Gaussian(0.0, 0.7);
  for (Index i = 0; i < d.a.rows(); ++i) {
    const double decision = svm.Predict(model.data(), d.a.Row(i));
    const double margin = d.b[i] * decision;
    const double expected = margin < 1.0 ? 1.0 - margin : 0.0;
    EXPECT_NEAR(svm.RowLoss(d, i, model.data()), expected, 1e-12);
  }
}

TEST(PredictTest, LogisticPredictionIsTheProbabilityInsideRowLoss) {
  const Dataset d = TinyClassification(30, 6, 67);
  LogisticSpec lr;
  Rng rng(68);
  std::vector<double> model(6);
  for (auto& m : model) m = rng.Gaussian(0.0, 0.7);
  for (Index i = 0; i < d.a.rows(); ++i) {
    const double p = lr.Predict(model.data(), d.a.Row(i));
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    // RowLoss = -log P(y_i | a_i): P(+1) = p, P(-1) = 1 - p.
    const double p_label = d.b[i] > 0 ? p : 1.0 - p;
    EXPECT_NEAR(lr.RowLoss(d, i, model.data()), -std::log(p_label), 1e-9);
  }
}

TEST(PredictTest, LeastSquaresPredictionIsTheResidualInsideRowLoss) {
  const Dataset d = TinyRegression(30, 5, 71);
  LeastSquaresSpec ls;
  Rng rng(72);
  std::vector<double> model(5);
  for (auto& m : model) m = rng.Gaussian(0.0, 0.5);
  for (Index i = 0; i < d.a.rows(); ++i) {
    const double estimate = ls.Predict(model.data(), d.a.Row(i));
    const double r = estimate - d.b[i];
    EXPECT_NEAR(ls.RowLoss(d, i, model.data()), 0.5 * r * r, 1e-12);
  }
}

TEST(PredictTest, TrainedLeastSquaresPredictsTargetsWithinNoiseMargin) {
  // End-to-end: a model trained to the noise floor must predict every
  // target within a margin consistent with its final training loss.
  const Dataset d = TinyRegression(80, 6, 73);
  LeastSquaresSpec ls;
  const CscMatrix csc = CscMatrix::FromCsr(d.a);
  std::vector<double> model(6, 0.0);
  std::vector<double> aux(ls.AuxDim(d));
  ls.RefreshAux(d, model.data(), aux.data());
  StepContext ctx{&d, &csc, 1.0};
  for (int e = 0; e < 80; ++e) {
    for (Index j = 0; j < 6; ++j) ls.ColStep(ctx, j, model.data(), aux.data());
  }
  const double loss = ls.Loss(d, model.data());
  EXPECT_LT(loss, 0.01);
  // Mean 0.5 r^2 = loss => RMS residual = sqrt(2 loss); allow 6 sigma.
  const double margin = 6.0 * std::sqrt(2.0 * loss);
  for (Index i = 0; i < d.a.rows(); ++i) {
    EXPECT_NEAR(ls.Predict(model.data(), d.a.Row(i)), d.b[i], margin);
  }
}

TEST(PredictTest, DefaultPredictIsLinearDecisionValue) {
  // The base-class default (used by specs without a link function) is the
  // plain dot product.
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(1, 3, {{0, 0, 2.0}, {0, 2, 3.0}});
  ASSERT_TRUE(m.ok());
  d.a = std::move(m).value();
  d.b = {0.0};
  SvmSpec svm;
  const double model[3] = {1.0, 5.0, -1.0};
  EXPECT_DOUBLE_EQ(svm.Predict(model, d.a.Row(0)), 2.0 - 3.0);
}

// --- parallel sum ----------------------------------------------------------

TEST(ParallelSumTest, AccumulatesRowTotals) {
  Dataset d;
  auto m = matrix::CsrMatrix::FromTriplets(
      3, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {2, 1, 4.0}});
  ASSERT_TRUE(m.ok());
  d.a = std::move(m).value();
  d.b = {0, 0, 0};
  ParallelSumSpec sum;
  EXPECT_EQ(sum.ModelDim(d), 1u);
  double model[1] = {0.0};
  StepContext ctx{&d, nullptr, 1.0};
  for (Index i = 0; i < 3; ++i) sum.RowStep(ctx, i, model, nullptr);
  EXPECT_DOUBLE_EQ(model[0], 10.0);
  EXPECT_EQ(sum.RowWriteSparsity(), UpdateSparsity::kDense);
}

}  // namespace
}  // namespace dw::models
