// Tests for opt::PlacementTuner: the live control loop that re-runs the
// registration-time placement choosers on OBSERVED traffic and migrates
// model replication / store placement / exporter cadence at runtime.
// Covers the frozen-decision fix end-to-end (a family registered under
// the wrong strategy is flipped once real traffic disagrees), hysteresis
// (advantage gate + confirmation scans), the audit trail's cost-model
// inputs, admission re-pricing on migration, staleness-SLO exporter
// control, and the migration-under-load stress property: concurrent
// republishes tear nothing, versions stay monotone, and margins stay
// bitwise stable across placements.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/glm.h"
#include "opt/placement_tuner.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_exporter.h"

namespace dw::serve {
namespace {

using matrix::Index;

ServingFamilyOptions ServePinned(Index dim, Replication rep) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = rep;
  return o;
}

/// Manual-mode tuner options for deterministic tests: the test drives
/// every scan itself through ScanOnce().
opt::TunerOptions ManualTuner(double min_advantage = 1.05,
                              int confirm_scans = 1,
                              uint64_t min_observed_rows = 256) {
  opt::TunerOptions t;
  t.scan_period = std::chrono::milliseconds(0);
  t.min_advantage = min_advantage;
  t.confirm_scans = confirm_scans;
  t.min_observed_rows = min_observed_rows;
  return t;
}

/// Submits `rows` dense carried requests (all features 1.0) and waits for
/// every score, retrying only on back-pressure. Then settles briefly so
/// the workers' post-resolution counter flushes land before a scan reads
/// them (set_value precedes the registry adds in WorkerLoop).
void DriveCarried(ServingEngine& server, const std::string& family,
                  Index dim, int rows) {
  const std::vector<double> vals(dim, 1.0);
  std::vector<std::future<double>> futs;
  futs.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    for (;;) {
      auto fut = server.Score(family, std::vector<Index>{}, vals);
      if (fut.ok()) {
        futs.push_back(std::move(fut).value());
        break;
      }
      ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted)
          << fut.status().ToString();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (auto& f : futs) f.get();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

/// Id-keyed twin of DriveCarried: scores rows 0..store_rows-1 round-robin.
void DriveIdKeyed(ServingEngine& server, const std::string& family,
                  Index store_rows, int rows) {
  std::vector<std::future<double>> futs;
  futs.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    const Index row = static_cast<Index>(i) % store_rows;
    for (;;) {
      auto fut = server.Score(family, row);
      if (fut.ok()) {
        futs.push_back(std::move(fut).value());
        break;
      }
      ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted)
          << fut.status().ToString();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (auto& f : futs) f.get();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

/// An engine on the 2-socket test topology with fast flushes.
ServingOptions TunedEngineOptions() {
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::microseconds(100);
  return opts;
}

// --- replication flip -----------------------------------------------------

TEST(PlacementTunerTest, FlipsFrozenReplicationUnderReadHeavyTraffic) {
  // The frozen-decision bug this tuner fixes: a family registered
  // kPerMachine (right for a republish-heavy estimate) that then serves
  // read-heavy traffic pays the interconnect on every remote batch
  // forever. The tuner must observe the real read/publish asymmetry and
  // migrate to kPerNode.
  models::SvmSpec svm;
  constexpr Index kDim = 128;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());

  opt::PlacementTuner* tuner = server.EnableTuner(ManualTuner());
  ASSERT_NE(tuner, nullptr);
  EXPECT_EQ(server.tuner(), tuner);

  const double prior_per_machine = server.admission().Estimate(0).prior_row_sec;

  // 4096 reads against a single publish: on local2 the chooser models a
  // ~1.13x win for kPerNode at dim 128 (probed against the memory
  // model), comfortably past the 1.05 gate.
  DriveCarried(server, "m", kDim, 4096);
  EXPECT_EQ(tuner->flips(), 0u);
  EXPECT_EQ(tuner->ScanOnce(), 1);
  EXPECT_EQ(tuner->scans(), 1u);
  EXPECT_EQ(tuner->flips(), 1u);
  EXPECT_EQ(server.registry().FindFamily("m")->replication(),
            Replication::kPerNode);
  // The migration republished through the regular hot-swap path.
  EXPECT_EQ(server.registry().FindFamily("m")->current_version(), 2u);

  // The audit trail carries the cost-model inputs the decision ran on.
  const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
  ASSERT_EQ(decisions.size(), 1u);
  const opt::TunerDecision& d = decisions.back();
  EXPECT_EQ(d.scan, 1u);
  EXPECT_EQ(d.family, "m");
  EXPECT_EQ(d.kind, "replication");
  EXPECT_STREQ(d.from.c_str(), ToString(Replication::kPerMachine));
  EXPECT_STREQ(d.to.c_str(), ToString(Replication::kPerNode));
  EXPECT_TRUE(d.migrated);
  // Worker counter flushes may trail the last resolved future by a few
  // in-flight batches; the bulk of the interval's rows must be there.
  EXPECT_GE(d.observed_rows, 3000u);
  EXPECT_GE(d.observed_reads_per_period, 3000.0);
  EXPECT_GT(d.challenger_cost_sec, 0.0);
  EXPECT_GT(d.incumbent_cost_sec, d.challenger_cost_sec);
  EXPECT_GE(d.advantage, 1.05);
  EXPECT_FALSE(d.rationale.empty());

  // Satellite: migration re-priced admission (all-local reads are
  // cheaper than interconnect-shared ones) and reset the calibration
  // window -- the EWMA measured the OLD placement.
  const opt::AdmissionEstimate est = server.admission().Estimate(0);
  EXPECT_LT(est.prior_row_sec, prior_per_machine);
  EXPECT_EQ(est.reported_batches, 0u);
  EXPECT_DOUBLE_EQ(est.est_row_sec, est.prior_row_sec);

  // Service continues correctly under the new placement, and the next
  // busy interval endorses the incumbent: no decision, no flip-back.
  DriveCarried(server, "m", kDim, 4096);
  EXPECT_EQ(tuner->ScanOnce(), 0);
  EXPECT_EQ(tuner->flips(), 1u);
  EXPECT_EQ(tuner->Decisions().size(), 1u);
  auto s = server.ScoreSync("m", std::vector<Index>{},
                            std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), static_cast<double>(kDim));
  server.Stop();
}

// --- store placement flip -------------------------------------------------

TEST(PlacementTunerTest, FlipsStorePlacementAndKeepsMarginsExact) {
  // Store-side twin: a gather-heavy table frozen kSharded pays the
  // interconnect on half its gathers (local2). The tuner must migrate it
  // to kReplicated, and the migration must be invisible to correctness:
  // every margin is an integer sum, so scores are bitwise identical
  // before, during, and after.
  models::SvmSpec svm;
  constexpr Index kDim = 128;
  constexpr Index kRows = 128;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm, ServePinned(kDim, Replication::kPerNode))
          .ok());
  StoreOptions sopts;
  sopts.placement_override = StorePlacement::kSharded;
  ASSERT_TRUE(server.RegisterStore("m", kRows, kDim, sopts).ok());
  // Row r holds kDim copies of (r+1): with unit weights the margin is
  // exactly kDim * (r+1) in any summation order (integer doubles).
  std::vector<double> table(static_cast<size_t>(kRows) * kDim);
  for (Index r = 0; r < kRows; ++r) {
    for (Index c = 0; c < kDim; ++c) {
      table[static_cast<size_t>(r) * kDim + c] = static_cast<double>(r + 1);
    }
  }
  server.PublishStore("m", table);
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());
  const FeatureStore* store = server.FindStore("m");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->placement(), StorePlacement::kSharded);

  opt::PlacementTuner* tuner =
      server.EnableTuner(ManualTuner(/*min_advantage=*/1.2));

  for (const Index r : {Index{0}, Index{63}, Index{127}}) {
    auto s = server.ScoreSync("m", r);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value(), static_cast<double>(kDim) * (r + 1));
  }

  // 4096 gathers against zero refreshes: the chooser models a ~1.7x win
  // for kReplicated on this 128x128 table, past the 1.2 gate.
  DriveIdKeyed(server, "m", kRows, 4096);
  EXPECT_EQ(tuner->ScanOnce(), 1);
  EXPECT_EQ(tuner->flips(), 1u);
  EXPECT_EQ(store->placement(), StorePlacement::kReplicated);
  EXPECT_EQ(store->current_version(), 2u);

  const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
  ASSERT_EQ(decisions.size(), 1u);
  const opt::TunerDecision& d = decisions.back();
  EXPECT_EQ(d.kind, "store_placement");
  EXPECT_STREQ(d.from.c_str(), ToString(StorePlacement::kSharded));
  EXPECT_STREQ(d.to.c_str(), ToString(StorePlacement::kReplicated));
  EXPECT_TRUE(d.migrated);
  EXPECT_GE(d.observed_rows, 3000u);
  EXPECT_GT(d.incumbent_cost_sec, d.challenger_cost_sec);
  EXPECT_FALSE(d.rationale.empty());

  // The republished table serves the same bytes: margins unchanged,
  // bitwise.
  for (const Index r : {Index{0}, Index{63}, Index{127}}) {
    auto s = server.ScoreSync("m", r);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value(), static_cast<double>(kDim) * (r + 1));
  }
  server.Stop();
}

// --- hysteresis -----------------------------------------------------------

TEST(PlacementTunerTest, HysteresisRequiresConsecutiveConfirmingScans) {
  models::SvmSpec svm;
  constexpr Index kDim = 128;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());
  opt::PlacementTuner* tuner =
      server.EnableTuner(ManualTuner(/*min_advantage=*/1.05,
                                     /*confirm_scans=*/2));

  // First confirming scan: a vote, not a migration.
  DriveCarried(server, "m", kDim, 4096);
  EXPECT_EQ(tuner->ScanOnce(), 0);
  EXPECT_EQ(tuner->flips(), 0u);
  EXPECT_EQ(server.registry().FindFamily("m")->replication(),
            Replication::kPerMachine);
  {
    const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_FALSE(decisions[0].migrated);
    EXPECT_NE(decisions[0].rationale.find("awaiting confirmation (1/2"),
              std::string::npos)
        << decisions[0].rationale;
  }

  // Second consecutive confirming scan migrates.
  DriveCarried(server, "m", kDim, 4096);
  EXPECT_EQ(tuner->ScanOnce(), 1);
  EXPECT_EQ(tuner->flips(), 1u);
  EXPECT_EQ(server.registry().FindFamily("m")->replication(),
            Replication::kPerNode);
  const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_TRUE(decisions[1].migrated);
  server.Stop();
}

TEST(PlacementTunerTest, AdvantageGateHoldsMarginalWins) {
  // With an absurdly high gate, the chooser's flip never clears the
  // hysteresis: the tuner records held decisions (with the modeled
  // costs) and migrates nothing, however many scans confirm.
  models::SvmSpec svm;
  constexpr Index kDim = 128;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());
  opt::PlacementTuner* tuner =
      server.EnableTuner(ManualTuner(/*min_advantage=*/10.0));

  for (int scan = 0; scan < 2; ++scan) {
    DriveCarried(server, "m", kDim, 4096);
    EXPECT_EQ(tuner->ScanOnce(), 0);
  }
  EXPECT_EQ(tuner->flips(), 0u);
  EXPECT_EQ(server.registry().FindFamily("m")->replication(),
            Replication::kPerMachine);
  const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
  ASSERT_EQ(decisions.size(), 2u);
  for (const opt::TunerDecision& d : decisions) {
    EXPECT_FALSE(d.migrated);
    EXPECT_NE(d.rationale.find("under gate"), std::string::npos)
        << d.rationale;
    EXPECT_GT(d.advantage, 1.0);
    EXPECT_LT(d.advantage, 10.0);
  }
  // The holds surfaced on the engine's registry too.
  uint64_t holds = 0;
  for (const obs::MetricSnapshot& m : server.telemetry().Snapshot().metrics) {
    if (m.name == "tuner.holds") holds = m.counter_value;
  }
  EXPECT_EQ(holds, 2u);
  server.Stop();
}

TEST(PlacementTunerTest, QuietIntervalNeitherVotesNorDecides) {
  // An interval under the evidence floor says nothing about the traffic
  // mix: no vote, no audit entry, no migration -- whatever the chooser
  // would have said about 32 rows.
  models::SvmSpec svm;
  constexpr Index kDim = 128;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());
  opt::PlacementTuner* tuner = server.EnableTuner(
      ManualTuner(/*min_advantage=*/1.05, /*confirm_scans=*/1,
                  /*min_observed_rows=*/256));

  DriveCarried(server, "m", kDim, 32);
  EXPECT_EQ(tuner->ScanOnce(), 0);
  EXPECT_EQ(tuner->flips(), 0u);
  EXPECT_TRUE(tuner->Decisions().empty());
  EXPECT_EQ(server.registry().FindFamily("m")->replication(),
            Replication::kPerMachine);
  server.Stop();
}

// --- exporter period control ----------------------------------------------

/// Trainer + server + exporter triple for the staleness-SLO tests.
struct ExporterRig {
  data::Dataset dataset;
  models::LeastSquaresSpec spec;
  std::unique_ptr<engine::Engine> trainer;
  std::unique_ptr<ServingEngine> server;
  std::unique_ptr<SnapshotExporter> exporter;

  explicit ExporterRig(std::chrono::milliseconds period) {
    dataset.name = "tuner-exporter";
    dataset.a = data::MakeDenseTable(
        {.rows = 60, .cols = 8, .feature_correlation = 0.2, .seed = 91});
    dataset.b = data::PlantClassificationLabels(dataset.a, 8, 0.0, 92);
    engine::EngineOptions topts;
    topts.topology = numa::Local2();
    trainer = std::make_unique<engine::Engine>(&dataset, &spec, topts);
    DW_CHECK(trainer->Init().ok());
    ServingOptions opts;
    opts.topology = numa::Local2();
    opts.num_threads = 2;
    opts.batch.max_batch_size = 8;
    opts.batch.max_delay = std::chrono::microseconds(100);
    server = std::make_unique<ServingEngine>(opts);
    DW_CHECK(server
                 ->RegisterFamily("ls", &spec,
                                  ServePinned(8, Replication::kPerNode))
                 .ok());
    SnapshotExporter::Options eopts;
    eopts.period = period;
    exporter = std::make_unique<SnapshotExporter>(trainer.get(), server.get(),
                                                  "ls", eopts);
    exporter->Start();  // publish_on_start makes the family servable
    DW_CHECK(server->Start().ok());
  }
};

TEST(PlacementTunerTest, TightensExporterPeriodOverStalenessSlo) {
  ExporterRig rig(std::chrono::milliseconds(50));
  EXPECT_DOUBLE_EQ(rig.exporter->period_floor_ms(), 50.0);

  opt::TunerOptions topts = ManualTuner();
  // Placement tuning stays out of the way: the evidence floor is never
  // met, so only the exporter-period controller acts.
  topts.min_observed_rows = 1u << 30;
  // Any real staleness overshoots a microsecond SLO: the controller must
  // halve the floor.
  topts.staleness_slo_ms = 1e-3;
  opt::PlacementTuner* tuner = rig.server->EnableTuner(topts);
  tuner->AttachExporter("ls", rig.exporter.get());

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rig.server->ScoreSync("ls", {0}, {1.0}).ok());
  }
  EXPECT_EQ(tuner->ScanOnce(), 0);  // period changes are not migrations
  EXPECT_EQ(tuner->period_adjustments(), 1u);
  EXPECT_DOUBLE_EQ(rig.exporter->period_floor_ms(), 25.0);

  const std::vector<opt::TunerDecision> decisions = tuner->Decisions();
  ASSERT_EQ(decisions.size(), 1u);
  const opt::TunerDecision& d = decisions.back();
  EXPECT_EQ(d.kind, "exporter_period");
  EXPECT_EQ(d.from, "50ms");
  EXPECT_EQ(d.to, "25ms");
  EXPECT_GT(d.observed_staleness_ms, 0.0);
  EXPECT_NE(d.rationale.find("SLO"), std::string::npos);

  rig.exporter->Stop();
  rig.server->Stop();
}

TEST(PlacementTunerTest, StretchesExporterPeriodFarUnderSlo) {
  ExporterRig rig(std::chrono::milliseconds(50));

  opt::TunerOptions topts = ManualTuner();
  topts.min_observed_rows = 1u << 30;
  // A million-ms SLO with the default 0.25 slack: observed staleness sits
  // far under the stretch threshold, so the controller doubles the floor
  // to save publish bandwidth (capped at the SLO, far away here).
  topts.staleness_slo_ms = 1e6;
  opt::PlacementTuner* tuner = rig.server->EnableTuner(topts);
  tuner->AttachExporter("ls", rig.exporter.get());

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rig.server->ScoreSync("ls", {0}, {1.0}).ok());
  }
  EXPECT_EQ(tuner->ScanOnce(), 0);
  EXPECT_EQ(tuner->period_adjustments(), 1u);
  EXPECT_DOUBLE_EQ(rig.exporter->period_floor_ms(), 100.0);

  rig.exporter->Stop();
  rig.server->Stop();
}

// --- background thread ----------------------------------------------------

TEST(PlacementTunerTest, BackgroundThreadScansAndStopsIdempotently) {
  models::SvmSpec svm;
  constexpr Index kDim = 64;
  ServingEngine server(TunedEngineOptions());
  ASSERT_TRUE(
      server.RegisterFamily("m", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  server.Publish("m", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());

  opt::TunerOptions topts = ManualTuner();
  topts.scan_period = std::chrono::milliseconds(5);
  opt::PlacementTuner* tuner = server.EnableTuner(topts);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_GE(tuner->scans(), 2u);
  tuner->Stop();
  tuner->Stop();  // idempotent
  const uint64_t scans = tuner->scans();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(tuner->scans(), scans);  // no scans after Stop
  server.Stop();                     // engine Stop tolerates a stopped tuner
}

// --- migration under load -------------------------------------------------

TEST(PlacementTunerTest, MigrationUnderLoadNeverFailsOrTearsRequests) {
  // The stress acceptance test: producers hammer id-keyed requests while
  // (a) a hostile thread flip-flops the model's replication through
  // Republish, (b) the tuner live-migrates the store off its frozen
  // kSharded placement, and (c) a monitor watches both version chains.
  // Invariants: no request ever fails for any reason but back-pressure,
  // every margin is bitwise exact under every placement, and versions
  // never move backwards.
  models::SvmSpec svm;
  constexpr Index kDim = 64;
  constexpr Index kRows = 128;
  ServingOptions opts = TunedEngineOptions();
  opts.num_threads = 4;
  opts.batch.max_batch_size = 32;
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("hot", &svm,
                            ServePinned(kDim, Replication::kPerMachine))
          .ok());
  StoreOptions sopts;
  sopts.placement_override = StorePlacement::kSharded;
  ASSERT_TRUE(server.RegisterStore("hot", kRows, kDim, sopts).ok());
  std::vector<double> table(static_cast<size_t>(kRows) * kDim);
  for (Index r = 0; r < kRows; ++r) {
    for (Index c = 0; c < kDim; ++c) {
      table[static_cast<size_t>(r) * kDim + c] = static_cast<double>(r + 1);
    }
  }
  server.PublishStore("hot", table);
  server.Publish("hot", std::vector<double>(kDim, 1.0));
  ASSERT_TRUE(server.Start().ok());
  opt::PlacementTuner* tuner = server.EnableTuner(
      ManualTuner(/*min_advantage=*/1.0, /*confirm_scans=*/1,
                  /*min_observed_rows=*/64));

  ModelFamily* family = server.registry().FindFamily("hot");
  const FeatureStore* store = server.FindStore("hot");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      Index i = static_cast<Index>(p);
      std::vector<std::pair<Index, std::future<double>>> inflight;
      while (!stop.load(std::memory_order_acquire)) {
        // Keep a window of requests in flight so the scan intervals see
        // gather volume well past the chooser's crossover.
        inflight.clear();
        for (int k = 0; k < 64; ++k) {
          const Index row = i % kRows;
          i += 4;
          auto s = server.Score("hot", row);
          if (!s.ok()) {
            // Back-pressure is the only acceptable refusal under load.
            ASSERT_EQ(s.status().code(), Status::Code::kResourceExhausted)
                << s.status().ToString();
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            continue;
          }
          inflight.emplace_back(row, std::move(s).value());
        }
        for (auto& [row, fut] : inflight) {
          // Bitwise-stable margin whatever placement served it.
          ASSERT_EQ(fut.get(), static_cast<double>(kDim) * (row + 1))
              << "torn read at row " << row;
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Hostile republisher: flip-flops the model's replication through the
  // same live-migration path the tuner uses.
  std::thread flipper([&] {
    bool per_node = true;
    while (!stop.load(std::memory_order_acquire)) {
      family->Republish(per_node ? Replication::kPerNode
                                 : Replication::kPerMachine);
      per_node = !per_node;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Version chains must be monotone through every migration.
  std::thread monitor([&] {
    uint64_t model_v = 0;
    uint64_t store_v = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t mv = family->current_version();
      const uint64_t sv = store->current_version();
      ASSERT_GE(mv, model_v) << "model version went backwards";
      ASSERT_GE(sv, store_v) << "store version went backwards";
      model_v = mv;
      store_v = sv;
      std::this_thread::yield();
    }
  });

  for (int scan = 0; scan < 30; ++scan) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    tuner->ScanOnce();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  flipper.join();
  monitor.join();

  // The tuner flipped the store off its frozen placement mid-flood.
  EXPECT_GE(tuner->flips(), 1u);
  EXPECT_EQ(store->placement(), StorePlacement::kReplicated);
  EXPECT_GT(served.load(), 0u);
  server.Stop();

  // Nothing was dropped: every accepted request was served.
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_EQ(stats.families[0].requests, stats.families[0].accepted);
}

}  // namespace
}  // namespace dw::serve
