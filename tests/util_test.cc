// Unit tests for src/util: Status, logging, RNG, stats, table, barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/aligned.h"
#include "util/barrier.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), Status::Code::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BelowIsBoundedAndCoversSupport) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, ProducesSkewedFrequencies) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // Head must dominate the tail by a wide margin.
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfTest, StaysInSupport) {
  Rng rng(4);
  ZipfSampler zipf(17, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 17u);
}

TEST(SplitMixTest, ProducesDistinctStreams) {
  uint64_t state = 42;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
}

TEST(StatsTest, SummarizeBasics) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(StatsTest, EmptySummaryIsZero) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, RelativeError) {
  EXPECT_NEAR(RelativeError(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(RelativeError(0.0, 0.0), 0.0, 1e-12);
}

TEST(AlignedTest, ArrayIsCacheLineAligned) {
  AlignedArray<double> a(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % kCacheLineBytes, 0u);
  EXPECT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], 0.0);
}

TEST(AlignedTest, MoveTransfersOwnership) {
  AlignedArray<int> a(10);
  a[3] = 7;
  AlignedArray<int> b = std::move(a);
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(AlignedTest, PaddedOccupiesFullLine) {
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineBytes, 0u);
  EXPECT_GE(sizeof(Padded<int>), kCacheLineBytes);
}

TEST(BarrierTest, ReleasesAllParties) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      before.fetch_add(1);
      barrier.Wait();
      after.fetch_add(1);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(before.load(), kThreads);
  EXPECT_EQ(after.load(), kThreads);
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  constexpr int kThreads = 3;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> pool;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.Wait();
        // After the barrier every thread must observe a full round.
        if (counter.load() < kThreads * (r + 1)) ok.store(false);
        barrier.Wait();
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock mu;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> g(mu);
        ++counter;
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(TableTest, RendersAlignedCells) {
  Table t("demo");
  t.SetHeader({"a", "long-header"});
  t.AddRow({"1", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(TableTest, NumFormatsDigits) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

TEST(TableTest, TimeOrMarksTimeouts) {
  EXPECT_EQ(Table::TimeOr(500.0, 300.0), "> 300.0");
  EXPECT_EQ(Table::TimeOr(1.5, 300.0), "1.50");
}

TEST(ThreadUtilTest, PinAndUnpin) {
  EXPECT_GT(NumOnlineCpus(), 0);
  EXPECT_TRUE(PinCurrentThreadToCpu(0).ok());
  // Pinning to a virtual core beyond the host wraps around.
  EXPECT_TRUE(PinCurrentThreadToCpu(1000).ok());
  EXPECT_TRUE(UnpinCurrentThread().ok());
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.Seconds(), 0.009);
  t.Reset();
  EXPECT_LT(t.Seconds(), 0.009);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  DW_LOG(Info) << "suppressed";
  SetLogLevel(old);
}

TEST(RoundUpTest, Rounds) {
  EXPECT_EQ(RoundUp(1, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter j;
  j.BeginObject();
  j.Field("name", "bench");
  j.Field("count", 3);
  j.Field("rate", 1.5);
  j.Field("ok", true);
  j.Key("items").BeginArray();
  j.Number(1).Number(2.5).String("x").Bool(false).Null();
  j.BeginObject().Field("k", "v").EndObject();
  j.EndArray();
  j.Key("empty").BeginObject().EndObject();
  j.EndObject();
  EXPECT_EQ(j.str(),
            "{\"name\":\"bench\",\"count\":3,\"rate\":1.5,\"ok\":true,"
            "\"items\":[1,2.5,\"x\",false,null,{\"k\":\"v\"}],"
            "\"empty\":{}}");
}

TEST(JsonWriterTest, EscapesStringsAndHandlesNonFinite) {
  JsonWriter j;
  j.BeginObject();
  j.Field("quote\"back\\slash", "line\nbreak\ttab");
  j.Field("inf", std::numeric_limits<double>::infinity());
  j.Field("nan", std::nan(""));
  j.EndObject();
  EXPECT_EQ(j.str(),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\","
            "\"inf\":null,\"nan\":null}");
}

TEST(JsonWriterTest, TopLevelArrayOfNumbers) {
  JsonWriter j;
  j.BeginArray();
  j.Number(static_cast<uint64_t>(18446744073709551615ull));
  j.Number(static_cast<int64_t>(-42));
  j.EndArray();
  EXPECT_EQ(j.str(), "[18446744073709551615,-42]");
}

}  // namespace
}  // namespace dw
