// Tests for src/obs: log-linear bucket boundaries and the bounded
// percentile error guarantee against util::Percentile ground truth,
// concurrent sharded counter/histogram correctness (TSan-facing stress),
// the Prometheus text exposition golden rendering, JSON rendering, span
// ring-buffer wraparound, the disabled-registry no-op contract, and the
// background telemetry exporter lifecycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dw::obs {
namespace {

// --- bucket layout ---------------------------------------------------------

TEST(LogLinearBucketsTest, BoundaryValuesLandInTheirBucket) {
  // Every regular bucket is [LowerBound, UpperBound): its lower bound is
  // inside, and the value just below its upper bound is inside too.
  for (int b = 1; b <= LogLinearBuckets::kNumBuckets - 2; ++b) {
    const double lo = LogLinearBuckets::LowerBound(b);
    EXPECT_EQ(LogLinearBuckets::BucketFor(lo), b) << "lower bound of " << b;
    const double hi = LogLinearBuckets::UpperBound(b);
    EXPECT_EQ(LogLinearBuckets::BucketFor(std::nextafter(hi, 0.0)), b)
        << "just under upper bound of " << b;
    if (b < LogLinearBuckets::kNumBuckets - 2) {
      EXPECT_EQ(LogLinearBuckets::BucketFor(hi), b + 1)
          << "upper bound of " << b << " belongs to the next bucket";
    }
    // The layout is contiguous: each bucket starts where the previous
    // one ended.
    if (b > 1) {
      EXPECT_DOUBLE_EQ(lo, LogLinearBuckets::UpperBound(b - 1));
    }
    // Geometric growth bounds the relative width (the error guarantee).
    EXPECT_LT((hi - lo) / lo, LogLinearBuckets::kMaxRelativeError);
  }
}

TEST(LogLinearBucketsTest, UnderflowAndOverflow) {
  EXPECT_EQ(LogLinearBuckets::BucketFor(0.0), 0);
  EXPECT_EQ(LogLinearBuckets::BucketFor(-5.0), 0);
  EXPECT_EQ(LogLinearBuckets::BucketFor(std::nan("")), 0);
  EXPECT_EQ(LogLinearBuckets::BucketFor(1e-300), 0);
  EXPECT_EQ(LogLinearBuckets::BucketFor(1e300),
            LogLinearBuckets::kNumBuckets - 1);
  // Exact powers of two land on sub-bucket 0 of their octave.
  EXPECT_EQ(LogLinearBuckets::BucketFor(1.0),
            1 + (0 - LogLinearBuckets::kMinExp) *
                    LogLinearBuckets::kSubBucketsPerOctave);
}

// --- histogram snapshot ----------------------------------------------------

TEST(HistogramSnapshotTest, PercentileErrorBoundedAgainstGroundTruth) {
  // Log-uniform values over 6 decades: every quantile of the bucketed
  // histogram must be within kMaxRelativeError of the exact sample
  // percentile (plus the interpolation's own sub-sample wobble).
  Rng rng(42);
  HistogramSnapshot h;
  std::vector<double> exact;
  const int n = 20000;
  exact.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = std::pow(10.0, rng.Uniform(-3.0, 3.0));
    h.Record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double truth = PercentileSorted(exact, p);
    const double est = h.Percentile(p);
    EXPECT_LE(RelativeError(est, truth),
              LogLinearBuckets::kMaxRelativeError)
        << "p" << p << ": est " << est << " vs exact " << truth;
  }
  // Sum/count/min/max are exact regardless of bucketing.
  EXPECT_EQ(h.count, static_cast<uint64_t>(n));
  EXPECT_DOUBLE_EQ(h.min, exact.front());
  EXPECT_DOUBLE_EQ(h.max, exact.back());
  double sum = 0.0;
  for (const double v : exact) sum += v;
  EXPECT_NEAR(h.sum, sum, 1e-6 * sum);
}

TEST(HistogramSnapshotTest, ExtremeQuantilesClampToExactMinMax) {
  HistogramSnapshot h;
  h.Record(3.0);
  h.Record(7.0);
  // Quantiles never escape the exact observed range, and the top end
  // clamps to the exact max (in-bucket interpolation would overshoot).
  EXPECT_GE(h.Percentile(0.0), 3.0);
  EXPECT_LE(RelativeError(h.Percentile(0.0), 3.0),
            LogLinearBuckets::kMaxRelativeError);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
}

TEST(HistogramSnapshotTest, MergeAndWeightedRecord) {
  HistogramSnapshot a;
  HistogramSnapshot b;
  a.Record(1.0, 10);  // one batch-level stage attributed to 10 rows
  b.Record(100.0, 30);
  a.Merge(b);
  EXPECT_EQ(a.count, 40u);
  EXPECT_DOUBLE_EQ(a.sum, 10.0 * 1.0 + 30.0 * 100.0);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 100.0);
  // 75% of the mass sits at 100, so the median is the heavy value.
  EXPECT_LE(RelativeError(a.Percentile(60.0), 100.0),
            LogLinearBuckets::kMaxRelativeError);
  // An empty merge is a no-op in both directions.
  HistogramSnapshot empty;
  a.Merge(empty);
  EXPECT_EQ(a.count, 40u);
  empty.Merge(a);
  EXPECT_EQ(empty.count, 40u);
}

// --- concurrent instruments ------------------------------------------------

TEST(RegistryTest, ConcurrentCounterAddsNeverLoseIncrements) {
  Registry reg;
  Counter* c = reg.GetCounter("test.hits");
  const int kThreads = 8;
  const uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(RegistryTest, ConcurrentHistogramRecordsMergeExactly) {
  Registry reg;
  Histogram* h = reg.GetHistogram("test.latency");
  const int kThreads = 8;
  const uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      // Every thread records a distinct constant, so each bucket's final
      // count is known exactly.
      const double v = static_cast<double>(1 << t);  // 1, 2, 4, ... 128
      for (uint64_t i = 0; i < kPerThread; ++i) h->Record(v);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 128.0);
  double want_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += static_cast<double>(1 << t) * kPerThread;
    EXPECT_EQ(snap.counts[LogLinearBuckets::BucketFor(1 << t)], kPerThread);
  }
  EXPECT_DOUBLE_EQ(snap.sum, want_sum);
}

TEST(RegistryTest, GaugeLastWriteWins) {
  Registry reg;
  Gauge* g = reg.GetGauge("test.depth");
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  g->Set(4.25);
  EXPECT_DOUBLE_EQ(g->Value(), 4.25);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
}

// --- registry semantics ----------------------------------------------------

TEST(RegistryTest, InternsOnNameAndCanonicalizedLabels) {
  Registry reg;
  Counter* a = reg.GetCounter("q.accepted", {{"family", "ctr"}});
  // Re-Get of the same (name, labels) is idempotent: the SAME instrument.
  Counter* b = reg.GetCounter("q.accepted", {{"family", "ctr"}});
  Counter* c = reg.GetCounter("q.accepted", {{"family", "other"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(5);
  EXPECT_EQ(b->Value(), 5u);
  EXPECT_EQ(c->Value(), 0u);
  Counter* d = reg.GetCounter("q.accepted",
                              {{"node", "0"}, {"family", "ctr"}});
  Counter* e = reg.GetCounter("q.accepted",
                              {{"family", "ctr"}, {"node", "0"}});
  EXPECT_EQ(d, e);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, DisabledRegistryIsNoOp) {
  Registry reg(RegistryOptions{false});
  EXPECT_FALSE(reg.enabled());
  Counter* c = reg.GetCounter("x.count");
  Gauge* g = reg.GetGauge("x.gauge");
  Histogram* h = reg.GetHistogram("x.hist");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  c->Add(100);
  g->Set(3.0);
  h->Record(1.0);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.Snapshot().metrics.empty());
}

TEST(RegistryTest, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.GetCounter("a.first");
  reg.GetGauge("b.second");
  reg.GetHistogram("c.third");
  const RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.first");
  EXPECT_EQ(snap.metrics[1].name, "b.second");
  EXPECT_EQ(snap.metrics[2].name, "c.third");
  EXPECT_EQ(snap.metrics[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.metrics[1].type, MetricType::kGauge);
  EXPECT_EQ(snap.metrics[2].type, MetricType::kHistogram);
}

// --- snapshot deltas --------------------------------------------------------

TEST(SnapshotDeltaTest, CounterDeltaMeasuresTheInterval) {
  Registry reg;
  Counter* rows = reg.GetCounter("serve.rows", {{"family", "m"}});
  rows->Add(7);
  const RegistrySnapshot prev = reg.Snapshot();
  rows->Add(5);
  const SnapshotDelta delta(prev, reg.Snapshot());
  EXPECT_EQ(delta.CounterDelta("serve.rows", {{"family", "m"}}), 5u);
  // Unknown metric: zero, not a miss.
  EXPECT_EQ(delta.CounterDelta("serve.rows", {{"family", "ghost"}}), 0u);
}

TEST(SnapshotDeltaTest, LookupCanonicalizesLabelOrder) {
  Registry reg;
  Counter* c = reg.GetCounter("x.count", {{"b", "2"}, {"a", "1"}});
  const RegistrySnapshot prev = reg.Snapshot();
  c->Add(3);
  const SnapshotDelta delta(prev, reg.Snapshot());
  // The query's label order must not matter, as for registry interning.
  EXPECT_EQ(delta.CounterDelta("x.count", {{"a", "1"}, {"b", "2"}}), 3u);
}

TEST(SnapshotDeltaTest, MidIntervalRegistrationDiffsAgainstZero) {
  Registry reg;
  const RegistrySnapshot prev = reg.Snapshot();  // metric not born yet
  reg.GetCounter("late.count")->Add(9);
  const SnapshotDelta delta(prev, reg.Snapshot());
  EXPECT_EQ(delta.CounterDelta("late.count", {}), 9u);
}

TEST(SnapshotDeltaTest, GaugeReadsLatestWithFallback) {
  Registry reg;
  Gauge* g = reg.GetGauge("x.level");
  g->Set(2.0);
  const RegistrySnapshot prev = reg.Snapshot();
  g->Set(8.0);
  const SnapshotDelta delta(prev, reg.Snapshot());
  EXPECT_DOUBLE_EQ(delta.GaugeValue("x.level", {}), 8.0);
  EXPECT_DOUBLE_EQ(delta.GaugeValue("no.such", {}, -1.0), -1.0);
}

TEST(SnapshotDeltaTest, HistogramIntervalMeanIsExactOverTheInterval) {
  Registry reg;
  Histogram* h = reg.GetHistogram("x.lat");
  h->Record(1000.0);  // pre-interval noise the delta must exclude
  const RegistrySnapshot prev = reg.Snapshot();
  h->Record(10.0);
  h->Record(20.0);
  const SnapshotDelta delta(prev, reg.Snapshot());
  // (sum 30) / (count 2): exact from the snapshot sums, not bucketed.
  EXPECT_DOUBLE_EQ(delta.HistogramIntervalMean("x.lat", {}), 15.0);
  EXPECT_EQ(delta.HistogramIntervalCount("x.lat", {}), 2u);
}

TEST(SnapshotDeltaTest, EmptyIntervalReportsTheFallback) {
  Registry reg;
  Histogram* h = reg.GetHistogram("x.lat");
  h->Record(42.0);
  const RegistrySnapshot prev = reg.Snapshot();
  const SnapshotDelta delta(prev, reg.Snapshot());  // nothing recorded
  EXPECT_EQ(delta.HistogramIntervalCount("x.lat", {}), 0u);
  EXPECT_DOUBLE_EQ(delta.HistogramIntervalMean("x.lat", {}, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(delta.HistogramIntervalMean("no.such", {}, -2.0), -2.0);
}

// --- prometheus rendering --------------------------------------------------

std::string Le(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

TEST(RenderPrometheusTest, GoldenExposition) {
  Registry reg;
  reg.GetCounter("serve.rows", {{"family", "ctr"}})->Add(3);
  reg.GetGauge("admission.est_row_us", {{"family", "ctr"}})->Set(12.5);
  Histogram* h = reg.GetHistogram("serve.latency_ms");
  h->Record(1.0);
  h->Record(2.0);
  // A second family of the counter registered later must still render
  // contiguously under the first # TYPE header.
  reg.GetCounter("serve.rows", {{"family", "svm"}})->Add(7);

  const int b1 = LogLinearBuckets::BucketFor(1.0);
  const int b2 = LogLinearBuckets::BucketFor(2.0);
  const std::string expected =
      "# TYPE dw_serve_rows_total counter\n"
      "dw_serve_rows_total{family=\"ctr\"} 3\n"
      "dw_serve_rows_total{family=\"svm\"} 7\n"
      "# TYPE dw_admission_est_row_us gauge\n"
      "dw_admission_est_row_us{family=\"ctr\"} 12.5\n"
      "# TYPE dw_serve_latency_ms histogram\n"
      "dw_serve_latency_ms_bucket{le=\"" +
      Le(LogLinearBuckets::UpperBound(b1)) +
      "\"} 1\n"
      "dw_serve_latency_ms_bucket{le=\"" +
      Le(LogLinearBuckets::UpperBound(b2)) +
      "\"} 2\n"
      "dw_serve_latency_ms_bucket{le=\"+Inf\"} 2\n"
      "dw_serve_latency_ms_sum 3\n"
      "dw_serve_latency_ms_count 2\n";
  EXPECT_EQ(RenderPrometheus(reg.Snapshot()), expected);
}

TEST(RenderPrometheusTest, EscapesLabelValues) {
  Registry reg;
  reg.GetCounter("x.count", {{"client", "a\"b\\c\nd"}})->Add(1);
  const std::string out = RenderPrometheus(reg.Snapshot());
  EXPECT_NE(out.find("client=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << out;
}

TEST(RenderJsonTest, EmitsHistogramSummary) {
  Registry reg;
  Histogram* h = reg.GetHistogram("serve.latency_ms", {{"family", "ctr"}});
  h->Record(4.0);
  h->Record(4.0);
  const std::string out = RenderJson(reg.Snapshot());
  EXPECT_NE(out.find("\"name\":\"serve.latency_ms\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"family\":\"ctr\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
  EXPECT_NE(out.find("\"sum\":8"), std::string::npos);
  EXPECT_NE(out.find("\"mean\":4"), std::string::npos);
  EXPECT_NE(out.find("\"buckets\""), std::string::npos);
}

// --- span ring -------------------------------------------------------------

TEST(SpanRecorderTest, RingWrapsAroundKeepingNewest) {
  SpanRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord r;
    r.family = "f" + std::to_string(i);
    r.total_us = static_cast<double>(i);
    rec.Record(std::move(r));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  const std::vector<SpanRecord> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first: the ring kept the last four records, seq 6..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].seq, static_cast<uint64_t>(6 + i));
    EXPECT_EQ(spans[i].family, "f" + std::to_string(6 + i));
  }
}

TEST(SpanRecorderTest, PartialRingAndDisabled) {
  SpanRecorder rec(8);
  SpanRecord r;
  r.family = "only";
  rec.Record(std::move(r));
  const auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].seq, 0u);

  SpanRecorder off(0);
  off.Record(SpanRecord{});
  EXPECT_EQ(off.recorded(), 0u);
  EXPECT_TRUE(off.Snapshot().empty());
}

TEST(SpanRecorderTest, StageNamesCoverAllStages) {
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_STRNE(StageName(s), "?");
  }
  EXPECT_STREQ(StageName(Stage::kAdmit), "admit");
  EXPECT_STREQ(StageName(Stage::kComplete), "complete");
}

// --- telemetry exporter ----------------------------------------------------

std::string TempPath(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr ? dir : "/tmp";
  return base + "/" + stem + "." + std::to_string(::getpid());
}

TEST(TelemetryExporterTest, PeriodicExportReachesSinkAndFiles) {
  Registry reg;
  reg.GetCounter("test.ticks")->Add(11);
  TelemetryExporter::Options opts;
  opts.period = std::chrono::milliseconds(5);
  opts.prometheus_path = TempPath("dw_obs_test_prom");
  opts.json_path = TempPath("dw_obs_test_json");
  std::atomic<uint64_t> sink_calls{0};
  opts.sink = [&sink_calls](const std::string& prom,
                            const std::string& json) {
    EXPECT_NE(prom.find("dw_test_ticks_total 11"), std::string::npos);
    EXPECT_NE(json.find("\"test.ticks\""), std::string::npos);
    ++sink_calls;
  };
  {
    TelemetryExporter exporter(&reg, opts);
    exporter.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    exporter.Stop();
    // export_on_stop guarantees at least the final flush.
    EXPECT_GE(exporter.stats().snapshots, 1u);
    EXPECT_GT(exporter.stats().last_prometheus_bytes, 0u);
  }
  EXPECT_GE(sink_calls.load(), 1u);
  std::ifstream prom(opts.prometheus_path);
  ASSERT_TRUE(prom.good());
  std::stringstream prom_body;
  prom_body << prom.rdbuf();
  EXPECT_NE(prom_body.str().find("dw_test_ticks_total 11"),
            std::string::npos);
  std::ifstream json(opts.json_path);
  ASSERT_TRUE(json.good());
  std::stringstream json_body;
  json_body << json.rdbuf();
  EXPECT_NE(json_body.str().find("\"metrics\""), std::string::npos);
  std::remove(opts.prometheus_path.c_str());
  std::remove(opts.json_path.c_str());
}

TEST(TelemetryExporterTest, ExportOnceWorksWithoutStart) {
  Registry reg;
  reg.GetGauge("test.g")->Set(2.0);
  std::atomic<int> calls{0};
  TelemetryExporter::Options opts;
  opts.sink = [&calls](const std::string&, const std::string&) { ++calls; };
  TelemetryExporter exporter(&reg, opts);
  exporter.ExportOnce();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(exporter.stats().snapshots, 1u);
}

}  // namespace
}  // namespace dw::obs
