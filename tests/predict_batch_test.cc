// Equivalence suite for the batched scoring kernels: for every GLM spec,
// ModelSpec::PredictBatch must reproduce row-by-row Predict() on dense and
// sparse rows, across the kernel's blocking seams (ragged final column
// block, ragged final row chunk, batch size 1), and for the classifier
// fallbacks (unsorted rows, non-GLM specs using the reference default).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"
#include "kernels/score_kernels.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "serve/serving_engine.h"
#include "util/rng.h"

namespace dw::models {
namespace {

using matrix::Index;
using matrix::SparseVectorView;

/// Owned sparse rows (the views must point at stable storage).
struct RowSet {
  std::vector<std::vector<Index>> indices;
  std::vector<std::vector<double>> values;

  /// Mirrors serve::ScoreRequest::View(): empty indices with nonempty
  /// values is the explicit dense form (null index pointer).
  std::vector<SparseVectorView> Views() const {
    std::vector<SparseVectorView> v;
    v.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      v.push_back({indices[i].empty() ? nullptr : indices[i].data(),
                   values[i].data(), values[i].size()});
    }
    return v;
  }
};

std::vector<double> RandomModel(Index dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(dim);
  for (auto& x : w) x = rng.Gaussian(0.0, 1.0);
  return w;
}

/// `n` dense rows: the identity index pattern 0..dim-1.
RowSet DenseRows(size_t n, Index dim, uint64_t seed) {
  Rng rng(seed);
  RowSet rs;
  for (size_t r = 0; r < n; ++r) {
    std::vector<Index> idx(dim);
    std::vector<double> val(dim);
    for (Index j = 0; j < dim; ++j) {
      idx[j] = j;
      val[j] = rng.Gaussian(0.0, 1.0);
    }
    rs.indices.push_back(std::move(idx));
    rs.values.push_back(std::move(val));
  }
  return rs;
}

/// `n` sparse rows with sorted strictly-increasing indices spread over the
/// full dimension (so wide models cross several column blocks).
RowSet SparseRows(size_t n, Index dim, size_t nnz, uint64_t seed) {
  Rng rng(seed);
  RowSet rs;
  for (size_t r = 0; r < n; ++r) {
    std::vector<Index> idx;
    // Sample-without-replacement by stride jitter: sorted and unique.
    const Index stride = std::max<Index>(1, dim / static_cast<Index>(nnz));
    for (Index j = static_cast<Index>(rng.Below(stride)); j < dim && idx.size() < nnz;
         j += 1 + static_cast<Index>(rng.Below(2 * stride))) {
      idx.push_back(j);
    }
    if (idx.empty()) idx.push_back(static_cast<Index>(rng.Below(dim)));
    std::vector<double> val(idx.size());
    for (auto& v : val) v = rng.Gaussian(0.0, 1.0);
    rs.indices.push_back(std::move(idx));
    rs.values.push_back(std::move(val));
  }
  return rs;
}

/// Asserts PredictBatch matches per-row Predict for every row. The sparse
/// and fallback paths preserve accumulation order (bitwise equal); the
/// dense kernel uses multi-lane accumulators, so the bound is the
/// reassociation epsilon of a dot over `dim` terms.
void ExpectBatchMatchesScalar(const ModelSpec& spec,
                              const std::vector<double>& model, Index dim,
                              const RowSet& rows) {
  const std::vector<SparseVectorView> views = rows.Views();
  std::vector<double> batched(views.size(), -1e300);
  spec.PredictBatch(model.data(), dim, views.data(), views.size(),
                    batched.data());
  for (size_t r = 0; r < views.size(); ++r) {
    const double scalar = spec.Predict(model.data(), views[r]);
    EXPECT_NEAR(batched[r], scalar,
                1e-9 * std::max(1.0, std::abs(scalar)))
        << spec.name() << " row " << r;
  }
}

template <typename SpecT>
class GlmPredictBatchTest : public ::testing::Test {
 protected:
  SpecT spec;
};

using GlmSpecs =
    ::testing::Types<SvmSpec, LogisticSpec, LeastSquaresSpec>;
TYPED_TEST_SUITE(GlmPredictBatchTest, GlmSpecs);

TYPED_TEST(GlmPredictBatchTest, DenseRowsSmallModel) {
  // dim under one column block: the unblocked dense fast path.
  const Index dim = 96;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 1), dim,
                           DenseRows(40, dim, 2));
}

TYPED_TEST(GlmPredictBatchTest, DenseRowsWideModelRaggedFinalBlock) {
  // dim = 1.4 blocks: the last column block is ragged (not a multiple of
  // kPredictBlockCols), exercising the blocked dense kernel's tail.
  const Index dim = GlmSpec::kPredictBlockCols + 1700;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 3), dim,
                           DenseRows(9, dim, 4));
}

TYPED_TEST(GlmPredictBatchTest, SparseRowsSmallModel) {
  const Index dim = 300;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 5), dim,
                           SparseRows(64, dim, 12, 6));
}

TYPED_TEST(GlmPredictBatchTest, SparseRowsWideModelCrossBlockCursors) {
  // Sparse rows spanning three column blocks: the per-row cursor must
  // resume exactly where the previous block left off.
  const Index dim = 2 * GlmSpec::kPredictBlockCols + 777;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 7), dim,
                           SparseRows(50, dim, 40, 8));
}

TYPED_TEST(GlmPredictBatchTest, BatchSizeOne) {
  const Index dim = GlmSpec::kPredictBlockCols + 10;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 9), dim,
                           DenseRows(1, dim, 10));
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 11), dim,
                           SparseRows(1, dim, 5, 12));
}

TYPED_TEST(GlmPredictBatchTest, RaggedFinalRowChunk) {
  // n = one full row chunk plus a remainder: the chunk loop's tail.
  const size_t n = GlmSpec::kPredictRowChunk + 3;
  const Index dim = 128;
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 13), dim,
                           SparseRows(n, dim, 10, 14));
}

TYPED_TEST(GlmPredictBatchTest, MixedDenseSparseAndUnsortedRows) {
  const Index dim = GlmSpec::kPredictBlockCols + 50;
  const std::vector<double> model = RandomModel(dim, 15);
  RowSet rs = DenseRows(2, dim, 16);
  RowSet sparse = SparseRows(3, dim, 20, 17);
  for (size_t r = 0; r < sparse.values.size(); ++r) {
    rs.indices.push_back(std::move(sparse.indices[r]));
    rs.values.push_back(std::move(sparse.values[r]));
  }
  // An unsorted row (descending indices) must hit the reference fallback
  // and still match, interleaved with kernel-path rows.
  rs.indices.push_back({dim - 1, 40, 7});
  rs.values.push_back({0.5, -1.25, 2.0});
  // A duplicate-index row is "unsorted" to the classifier (not strictly
  // increasing); Dot semantics sum both entries.
  rs.indices.push_back({3, 3, 9});
  rs.values.push_back({1.0, 2.0, -0.5});
  ExpectBatchMatchesScalar(this->spec, model, dim, rs);
}

TYPED_TEST(GlmPredictBatchTest, EmptyBatchAndEmptyRows) {
  const Index dim = 64;
  const std::vector<double> model = RandomModel(dim, 19);
  // n = 0 must not touch out.
  this->spec.PredictBatch(model.data(), dim, nullptr, 0, nullptr);
  // A zero-nnz row scores Link(0), same as scalar Predict.
  RowSet rs;
  rs.indices.push_back({});
  rs.values.push_back({});
  ExpectBatchMatchesScalar(this->spec, model, dim, rs);
}

TYPED_TEST(GlmPredictBatchTest, ExplicitDenseViewsFullAndShort) {
  // Null-index dense views: six full-width rows (one 4-row register tile
  // plus two remainder rows) and short rows whose lengths straddle the
  // column-block boundary.
  const Index dim = GlmSpec::kPredictBlockCols + 900;
  Rng rng(31);
  RowSet rs;
  for (int r = 0; r < 6; ++r) {
    std::vector<double> val(dim);
    for (auto& v : val) v = rng.Gaussian(0.0, 1.0);
    rs.indices.push_back({});
    rs.values.push_back(std::move(val));
  }
  for (const size_t len : {size_t{1}, size_t{537},
                           size_t{GlmSpec::kPredictBlockCols + 1}}) {
    std::vector<double> val(len);
    for (auto& v : val) v = rng.Gaussian(0.0, 1.0);
    rs.indices.push_back({});
    rs.values.push_back(std::move(val));
  }
  ExpectBatchMatchesScalar(this->spec, RandomModel(dim, 32), dim, rs);
}

TYPED_TEST(GlmPredictBatchTest, RandomizedFuzzedBatchesMatchScalar) {
  // Property test over fuzzed batches: any mix of row shapes the serving
  // path can produce -- empty rows, explicit dense (full and short),
  // identity-indexed, sorted sparse, unsorted, duplicate indices -- must
  // match row-by-row Predict, at any dim/batch size across the kernel's
  // blocking seams. Seeded: a failure reproduces from kSeed and the
  // SCOPED_TRACE coordinates alone.
  constexpr uint64_t kSeed = 0xba7c4ed5eedULL;
  Rng rng(kSeed);
  for (int iter = 0; iter < 20; ++iter) {
    const Index dim = 1 + static_cast<Index>(rng.Below(
                              2 * GlmSpec::kPredictBlockCols + 500));
    const size_t n = 1 + rng.Below(GlmSpec::kPredictRowChunk + 33);
    RowSet rs;
    for (size_t r = 0; r < n; ++r) {
      std::vector<Index> idx;
      std::vector<double> val;
      switch (rng.Below(6)) {
        case 0:  // empty row: scores Link(0)
          break;
        case 1:  // explicit dense, full width (the register-tiled path)
          val.resize(dim);
          break;
        case 2:  // explicit dense, short prefix
          val.resize(1 + rng.Below(dim));
          break;
        case 3: {  // identity-indexed prefix (densified by real admission,
                   // but the kernel must also take it raw)
          const size_t len = 1 + rng.Below(dim);
          idx.resize(len);
          for (size_t k = 0; k < len; ++k) idx[k] = static_cast<Index>(k);
          val.resize(len);
          break;
        }
        case 4: {  // sorted sparse, unique indices
          const size_t want = 1 + rng.Below(64);
          idx.resize(want);
          for (auto& i : idx) i = static_cast<Index>(rng.Below(dim));
          std::sort(idx.begin(), idx.end());
          idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
          val.resize(idx.size());
          break;
        }
        default: {  // unsorted and/or duplicate indices: the reference
                    // fallback, interleaved with kernel-path rows
          const size_t len = 1 + rng.Below(64);
          idx.resize(len);
          for (auto& i : idx) i = static_cast<Index>(rng.Below(dim));
          val.resize(len);
          break;
        }
      }
      for (auto& v : val) v = rng.Gaussian(0.0, 1.0);
      rs.indices.push_back(std::move(idx));
      rs.values.push_back(std::move(val));
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + " dim " +
                 std::to_string(dim) + " n " + std::to_string(n));
    ExpectBatchMatchesScalar(this->spec, RandomModel(dim, rng.Next()), dim,
                             rs);
  }
}

/// Same fuzzed row-shape mix as RandomizedFuzzedBatchesMatchScalar (all
/// six classes the serving path can produce), factored out so the
/// per-ISA-level suite fuzzes identical batches.
RowSet FuzzedRows(Rng& rng, Index dim, size_t n) {
  RowSet rs;
  for (size_t r = 0; r < n; ++r) {
    std::vector<Index> idx;
    std::vector<double> val;
    switch (rng.Below(6)) {
      case 0:
        break;
      case 1:
        val.resize(dim);
        break;
      case 2:
        val.resize(1 + rng.Below(dim));
        break;
      case 3: {
        const size_t len = 1 + rng.Below(dim);
        idx.resize(len);
        for (size_t k = 0; k < len; ++k) idx[k] = static_cast<Index>(k);
        val.resize(len);
        break;
      }
      case 4: {
        const size_t want = 1 + rng.Below(64);
        idx.resize(want);
        for (auto& i : idx) i = static_cast<Index>(rng.Below(dim));
        std::sort(idx.begin(), idx.end());
        idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
        val.resize(idx.size());
        break;
      }
      default: {
        const size_t len = 1 + rng.Below(64);
        idx.resize(len);
        for (auto& i : idx) i = static_cast<Index>(rng.Below(dim));
        val.resize(len);
        break;
      }
    }
    for (auto& v : val) v = rng.Gaussian(0.0, 1.0);
    rs.indices.push_back(std::move(idx));
    rs.values.push_back(std::move(val));
  }
  return rs;
}

TYPED_TEST(GlmPredictBatchTest, SimdLevelsBitwiseEqualScalarOnFuzzedBatches) {
  // The CI dispatch matrix's in-process twin: for every supported ISA
  // level, a forced PredictBatch must reproduce the forced-scalar output
  // BITWISE (EXPECT_EQ on doubles, not NEAR) across all fuzzed row-shape
  // classes and blocking seams. Denormal-magnitude weights are mixed in:
  // equality has to hold where rounding is least forgiving.
  std::vector<kernels::KernelLevel> simd;
  for (kernels::KernelLevel l :
       {kernels::KernelLevel::kAvx2, kernels::KernelLevel::kAvx512}) {
    if (kernels::LevelSupported(l)) simd.push_back(l);
  }
  if (simd.empty()) {
    GTEST_SKIP() << "host CPU has no AVX2/AVX-512; scalar-only";
  }
  constexpr uint64_t kSeed = 0xba7c4ed5eedULL;
  Rng rng(kSeed);
  for (int iter = 0; iter < 12; ++iter) {
    const Index dim = 1 + static_cast<Index>(rng.Below(
                              2 * GlmSpec::kPredictBlockCols + 500));
    const size_t n = 1 + rng.Below(GlmSpec::kPredictRowChunk + 33);
    RowSet rs = FuzzedRows(rng, dim, n);
    std::vector<double> model = RandomModel(dim, rng.Next());
    // A few denormal / extreme weights per iteration.
    for (int k = 0; k < 8; ++k) {
      model[rng.Below(dim)] = rng.Gaussian(0.0, 1e-310);
      model[rng.Below(dim)] = rng.Gaussian(0.0, 1e120);
    }
    const std::vector<SparseVectorView> views = rs.Views();
    std::vector<double> ref(views.size()), got(views.size());
    {
      kernels::ScopedKernelLevelForTesting forced(
          kernels::KernelLevel::kScalar);
      this->spec.PredictBatch(model.data(), dim, views.data(), views.size(),
                              ref.data());
    }
    for (kernels::KernelLevel l : simd) {
      kernels::ScopedKernelLevelForTesting forced(l);
      this->spec.PredictBatch(model.data(), dim, views.data(), views.size(),
                              got.data());
      for (size_t r = 0; r < views.size(); ++r) {
        EXPECT_EQ(got[r], ref[r])
            << this->spec.name() << " level " << kernels::ToString(l)
            << " iter " << iter << " dim " << dim << " row " << r;
      }
    }
  }
}

TYPED_TEST(GlmPredictBatchTest, QuantizedBatchWithinDocumentedErrorBound) {
  // PredictBatchQuantized against float PredictBatch, per row:
  // |score_q - score| <= L * (scale/2) * sum|x| + slack, with L the link's
  // Lipschitz constant (sigmoid 1/4, identity otherwise). Also pinned
  // bitwise-equal across ISA levels like the float path.
  const double lipschitz =
      std::is_same<TypeParam, LogisticSpec>::value ? 0.25 : 1.0;
  constexpr uint64_t kSeed = 0x1be8f00dULL;
  Rng rng(kSeed);
  for (int iter = 0; iter < 8; ++iter) {
    const Index dim = 16 + static_cast<Index>(rng.Below(
                               GlmSpec::kPredictBlockCols + 700));
    const size_t n = 1 + rng.Below(80);
    RowSet rs = FuzzedRows(rng, dim, n);
    const std::vector<double> model = RandomModel(dim, rng.Next());
    std::vector<int8_t> q(dim);
    const double scale =
        kernels::QuantizeWeights(model.data(), dim, q.data());
    const std::vector<SparseVectorView> views = rs.Views();
    std::vector<double> f64(views.size()), i8(views.size());
    this->spec.PredictBatch(model.data(), dim, views.data(), views.size(),
                            f64.data());
    this->spec.PredictBatchQuantized(q.data(), scale, dim, views.data(),
                                     views.size(), i8.data());
    for (size_t r = 0; r < views.size(); ++r) {
      double abs_sum = 0.0;
      for (const double v : rs.values[r]) abs_sum += std::abs(v);
      const double bound =
          lipschitz * (scale / 2) * abs_sum + 1e-9 * (1.0 + abs_sum);
      EXPECT_LE(std::abs(i8[r] - f64[r]), bound)
          << this->spec.name() << " iter " << iter << " row " << r;
    }
    for (kernels::KernelLevel l :
         {kernels::KernelLevel::kAvx2, kernels::KernelLevel::kAvx512}) {
      if (!kernels::LevelSupported(l)) continue;
      std::vector<double> forced(views.size());
      kernels::ScopedKernelLevelForTesting scoped(l);
      this->spec.PredictBatchQuantized(q.data(), scale, dim, views.data(),
                                       views.size(), forced.data());
      for (size_t r = 0; r < views.size(); ++r) {
        EXPECT_EQ(forced[r], i8[r])
            << this->spec.name() << " level " << kernels::ToString(l)
            << " iter " << iter << " row " << r;
      }
    }
  }
}

TEST(PredictBatchDefaultTest, NonGlmSpecUsesRowByRowReference) {
  // LpSpec does not override PredictBatch: the ModelSpec default must
  // delegate to the spec's own Predict row by row.
  LpSpec lp;
  const Index dim = 50;
  const std::vector<double> model = RandomModel(dim, 21);
  ExpectBatchMatchesScalar(lp, model, dim, SparseRows(17, dim, 2, 22));
}

TEST(PredictBatchLinkTest, LogisticBatchAppliesSigmoid) {
  // Guards the Link() wiring: a batched LR score is a probability, not a
  // raw margin.
  LogisticSpec lr;
  const Index dim = 8;
  std::vector<double> model(dim, 1.0);
  RowSet rs = DenseRows(4, dim, 23);
  const std::vector<SparseVectorView> views = rs.Views();
  std::vector<double> out(views.size());
  lr.PredictBatch(model.data(), dim, views.data(), views.size(), out.data());
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_GT(out[r], 0.0);
    EXPECT_LT(out[r], 1.0);
    double margin = 0.0;
    for (Index j = 0; j < dim; ++j) margin += rs.values[r][j];
    EXPECT_NEAR(out[r], Sigmoid(margin), 1e-12);
  }
}

TEST(PredictBatchServingTest, BatchedKernelsServeEachFamilysOwnSpec) {
  // End-to-end through the multi-family serving engine in batched mode:
  // every flushed mini-batch is routed to ITS family's PredictBatch, so
  // two families with different link functions must each reproduce their
  // own scalar Predict on the same payloads.
  LogisticSpec lr;
  LeastSquaresSpec ls;
  const Index dim = 96;
  const std::vector<double> lr_model = RandomModel(dim, 31);
  const std::vector<double> ls_model = RandomModel(dim, 32);
  RowSet rs = SparseRows(40, dim, 12, 33);

  serve::ServingOptions opts;
  opts.topology = numa::Local2();
  opts.scoring = serve::ScoringMode::kBatched;
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  serve::ServingEngine server(opts);
  serve::ServingFamilyOptions fam;
  fam.traffic.dim = dim;
  fam.replication_override = serve::Replication::kPerNode;
  ASSERT_TRUE(server.RegisterFamily("lr", &lr, fam).ok());
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, fam).ok());
  server.Publish("lr", lr_model);
  server.Publish("ls", ls_model);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<SparseVectorView> views = rs.Views();
  for (size_t r = 0; r < views.size(); ++r) {
    auto from_lr = server.ScoreSync("lr", rs.indices[r], rs.values[r]);
    auto from_ls = server.ScoreSync("ls", rs.indices[r], rs.values[r]);
    ASSERT_TRUE(from_lr.ok());
    ASSERT_TRUE(from_ls.ok());
    EXPECT_NEAR(from_lr.value(), lr.Predict(lr_model.data(), views[r]), 1e-12)
        << "lr row " << r;
    EXPECT_NEAR(from_ls.value(), ls.Predict(ls_model.data(), views[r]), 1e-12)
        << "ls row " << r;
  }
  server.Stop();
}

TEST(PredictBatchServingTest, QuantizedFamilyServesWithinErrorBound) {
  // End-to-end int8 serving: a family registered with quantized=true is
  // scored by workers through PredictBatchQuantized against the int8
  // replicas Publish() built -- every score must match the spec's own
  // quantized reference exactly and stay within the documented bound of
  // the float score. A plain family on the same engine keeps serving f64.
  LeastSquaresSpec ls;
  const Index dim = 700;
  const std::vector<double> model = RandomModel(dim, 41);
  std::vector<int8_t> q(dim);
  const double scale = kernels::QuantizeWeights(model.data(), dim, q.data());
  RowSet rs = SparseRows(30, dim, 24, 42);

  serve::ServingOptions opts;
  opts.topology = numa::Local2();
  opts.scoring = serve::ScoringMode::kBatched;
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  serve::ServingEngine server(opts);
  serve::ServingFamilyOptions fam;
  fam.traffic.dim = dim;
  fam.replication_override = serve::Replication::kPerNode;
  ASSERT_TRUE(server.RegisterFamily("plain", &ls, fam).ok());
  fam.quantized = true;
  ASSERT_TRUE(server.RegisterFamily("int8", &ls, fam).ok());
  server.Publish("plain", model);
  server.Publish("int8", model);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<SparseVectorView> views = rs.Views();
  std::vector<double> want(views.size());
  ls.PredictBatchQuantized(q.data(), scale, dim, views.data(), views.size(),
                           want.data());
  for (size_t r = 0; r < views.size(); ++r) {
    auto from_q = server.ScoreSync("int8", rs.indices[r], rs.values[r]);
    auto from_f = server.ScoreSync("plain", rs.indices[r], rs.values[r]);
    ASSERT_TRUE(from_q.ok());
    ASSERT_TRUE(from_f.ok());
    // The worker ran the same deterministic quantized kernel.
    EXPECT_EQ(from_q.value(), want[r]) << "row " << r;
    // The f64 family is untouched by its neighbor's opt-in.
    EXPECT_EQ(from_f.value(), ls.Predict(model.data(), views[r]))
        << "row " << r;
    double abs_sum = 0.0;
    for (const double v : rs.values[r]) abs_sum += std::abs(v);
    EXPECT_LE(std::abs(from_q.value() - from_f.value()),
              (scale / 2) * abs_sum + 1e-9 * (1.0 + abs_sum))
        << "row " << r;
  }
  server.Stop();
  const serve::ServingStats stats = server.Stats();
  for (const serve::FamilyServingStats& f : stats.families) {
    EXPECT_EQ(f.quantized, f.family == "int8");
    EXPECT_EQ(f.kernel_level,
              kernels::ToString(kernels::ActiveKernelLevel()));
    EXPECT_EQ(f.kernel_rows, f.requests) << f.family;  // batched mode
  }
}

TEST(PredictBatchServingTest, QuantizedRefusedForSpecsWithoutSupport) {
  // The opt-in is validated at registration, not CHECK-failed in a
  // worker: LpSpec has no quantized kernel.
  LpSpec lp;
  serve::ServingOptions opts;
  opts.topology = numa::Local2();
  serve::ServingEngine server(opts);
  serve::ServingFamilyOptions fam;
  fam.traffic.dim = 32;
  fam.quantized = true;
  const Status s = server.RegisterFamily("lp", &lp, fam);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace dw::models
