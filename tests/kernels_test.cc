// Unit suite for the runtime-dispatched scoring kernels: level parsing /
// detection / forcing, per-machine tuning clamps, int8 quantization and
// its documented error contract, and -- the load-bearing property -- the
// bitwise equality of every supported SIMD level against the scalar
// reference on the raw kernel entry points, including denormal and
// mixed-magnitude inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"
#include "kernels/score_kernels.h"
#include "util/rng.h"

namespace dw::kernels {
namespace {

using matrix::Index;
using matrix::SparseVectorView;

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> out;
  for (KernelLevel l :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    if (LevelSupported(l)) out.push_back(l);
  }
  return out;
}

TEST(KernelDispatchTest, ParseAndToStringRoundTrip) {
  for (KernelLevel l :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512}) {
    KernelLevel parsed;
    ASSERT_TRUE(ParseKernelLevel(ToString(l), &parsed)) << ToString(l);
    EXPECT_EQ(parsed, l);
  }
  KernelLevel ignored;
  EXPECT_FALSE(ParseKernelLevel("", &ignored));
  EXPECT_FALSE(ParseKernelLevel("avx", &ignored));
  EXPECT_FALSE(ParseKernelLevel("AVX2", &ignored));
  EXPECT_FALSE(ParseKernelLevel("sse4", &ignored));
}

TEST(KernelDispatchTest, ScalarAlwaysSupportedAndDetectionIsMonotone) {
  EXPECT_TRUE(LevelSupported(KernelLevel::kScalar));
  // The tiers are strictly ordered: a CPU running AVX-512F runs AVX2.
  if (LevelSupported(KernelLevel::kAvx512)) {
    EXPECT_TRUE(LevelSupported(KernelLevel::kAvx2));
  }
  EXPECT_TRUE(LevelSupported(DetectKernelLevel()));
  EXPECT_TRUE(LevelSupported(ActiveKernelLevel()));
}

TEST(KernelDispatchTest, ScopedOverrideForcesAndRestores) {
  const KernelLevel before = ActiveKernelLevel();
  for (KernelLevel l : SupportedLevels()) {
    ScopedKernelLevelForTesting forced(l);
    EXPECT_EQ(ActiveKernelLevel(), l);
    // ActiveOps() must follow the override (the hot-path entry).
    EXPECT_EQ(&ActiveOps(), &OpsFor(l));
  }
  EXPECT_EQ(ActiveKernelLevel(), before);
}

TEST(KernelDispatchTest, TuningIsClampedAndStable) {
  const KernelTuning& t = Tuning();
  EXPECT_GE(t.block_cols, 512);
  EXPECT_LE(t.block_cols, 65536);
  EXPECT_EQ(t.block_cols % 8, 0) << "block must preserve the 8-lane seams";
  EXPECT_GT(t.row_chunk, 0u);
  // Resolved once per process: a second call returns the same object.
  EXPECT_EQ(&Tuning(), &t);
}

TEST(QuantizeWeightsTest, AllZeroModelUsesUnitScale) {
  const std::vector<double> w(17, 0.0);
  std::vector<int8_t> q(w.size(), 42);
  const double scale = QuantizeWeights(w.data(), w.size(), q.data());
  EXPECT_EQ(scale, 1.0);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeWeightsTest, RoundTripWithinHalfScaleAndMaxHits127) {
  Rng rng(0x9a51u);
  std::vector<double> w(513);
  for (auto& x : w) x = rng.Gaussian(0.0, 0.5);
  w[100] = 3.75;   // forced max: far outside the noise's reach
  w[200] = -3.75;
  std::vector<int8_t> q(w.size());
  const double scale = QuantizeWeights(w.data(), w.size(), q.data());
  EXPECT_DOUBLE_EQ(scale, 3.75 / 127.0);
  EXPECT_EQ(q[100], 127);
  EXPECT_EQ(q[200], -127);
  for (size_t j = 0; j < w.size(); ++j) {
    EXPECT_GE(q[j], -127);
    EXPECT_LE(q[j], 127);
    // The documented per-weight contract.
    EXPECT_LE(std::abs(w[j] - scale * q[j]), scale / 2 + 1e-15)
        << "weight " << j;
  }
}

/// Model/values generator mixing ordinary, huge, tiny, and DENORMAL
/// magnitudes: the bitwise contract has to hold where rounding is at its
/// least forgiving, not just on Gaussian data.
std::vector<double> EdgyVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    switch (rng.Below(8)) {
      case 0:
        x = 0.0;
        break;
      case 1:
        x = rng.Gaussian(0.0, 1e-310);  // denormal range
        break;
      case 2:
        x = rng.Gaussian(0.0, 1e150);
        break;
      case 3:
        x = rng.Gaussian(0.0, 1e-150);
        break;
      default:
        x = rng.Gaussian(0.0, 1.0);
        break;
    }
  }
  return v;
}

TEST(KernelBitwiseTest, DenseBlockDotMatchesScalarBitwise) {
  const std::vector<KernelLevel> levels = SupportedLevels();
  if (levels.size() == 1) {
    GTEST_LOG_(INFO) << "host runs scalar only; SIMD equality not covered";
  }
  // Block widths straddling the 8-lane seam: tails of every length.
  for (const Index dim : {Index{8}, Index{16}, Index{23}, Index{64},
                          Index{257}, Index{1000}}) {
    const std::vector<double> v = EdgyVector(dim, 0xd0d0 + dim);
    const std::vector<double> m = EdgyVector(dim, 0xa0d0 + dim);
    for (const Index lo : {Index{0}, Index{8}, Index{5}}) {
      if (lo >= dim) continue;
      const double ref = kScalarOps.dense_block_dot(v.data(), m.data(), lo,
                                                    dim);
      for (KernelLevel l : levels) {
        const double got = OpsFor(l).dense_block_dot(v.data(), m.data(), lo,
                                                     dim);
        EXPECT_EQ(got, ref) << ToString(l) << " dim " << dim << " lo " << lo;
      }
    }
  }
}

TEST(KernelBitwiseTest, Dense4BlockDotMatchesScalarBitwise) {
  for (const Index dim : {Index{8}, Index{31}, Index{512}, Index{777}}) {
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 4; ++r) rows.push_back(EdgyVector(dim, 70 + r));
    const std::vector<double> m = EdgyVector(dim, 99 + dim);
    const double* v4[4] = {rows[0].data(), rows[1].data(), rows[2].data(),
                           rows[3].data()};
    double ref[4] = {0.5, -1.0, 0.0, 2.0};  // seeded accumulators
    kScalarOps.dense4_block_dot(v4, m.data(), 0, dim, ref);
    for (KernelLevel l : SupportedLevels()) {
      double got[4] = {0.5, -1.0, 0.0, 2.0};
      OpsFor(l).dense4_block_dot(v4, m.data(), 0, dim, got);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(got[r], ref[r]) << ToString(l) << " dim " << dim << " row "
                                  << r;
      }
    }
  }
}

TEST(KernelBitwiseTest, SparseBlockAccMatchesScalarBitwiseAcrossBlocks) {
  Rng rng(0x5fa5e);
  const Index dim = 4096;
  const std::vector<double> m = EdgyVector(dim, 0xfeed);
  for (const size_t nnz : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                           size_t{8}, size_t{60}, size_t{300}}) {
    // Sorted unique indices over the full width.
    std::vector<Index> idx;
    Index j = static_cast<Index>(rng.Below(8));
    while (idx.size() < nnz && j < dim) {
      idx.push_back(j);
      j += 1 + static_cast<Index>(rng.Below(2 * dim / nnz + 1));
    }
    std::vector<double> val = EdgyVector(idx.size(), 0xabc + nnz);
    // Fold in two block steps so the cursor hand-off is exercised.
    const Index mid = dim / 2;
    size_t ref_cur = 0;
    double ref = kScalarOps.sparse_block_acc(0.25, idx.data(), val.data(),
                                             &ref_cur, idx.size(), m.data(),
                                             mid);
    ref = kScalarOps.sparse_block_acc(ref, idx.data(), val.data(), &ref_cur,
                                      idx.size(), m.data(), dim);
    EXPECT_EQ(ref_cur, idx.size());
    for (KernelLevel l : SupportedLevels()) {
      size_t cur = 0;
      double got = OpsFor(l).sparse_block_acc(0.25, idx.data(), val.data(),
                                              &cur, idx.size(), m.data(),
                                              mid);
      got = OpsFor(l).sparse_block_acc(got, idx.data(), val.data(), &cur,
                                       idx.size(), m.data(), dim);
      EXPECT_EQ(cur, idx.size()) << ToString(l) << " nnz " << nnz;
      EXPECT_EQ(got, ref) << ToString(l) << " nnz " << nnz;
    }
  }
}

TEST(KernelBitwiseTest, Int8KernelsMatchScalarBitwise) {
  Rng rng(0x17e8);
  const Index dim = 1003;
  std::vector<double> w(dim);
  for (auto& x : w) x = rng.Gaussian(0.0, 1.5);
  std::vector<int8_t> q(dim);
  QuantizeWeights(w.data(), dim, q.data());
  const std::vector<double> v = EdgyVector(dim, 0x1111);
  std::vector<std::vector<double>> rows;
  for (int r = 0; r < 4; ++r) rows.push_back(EdgyVector(dim, 0x2222 + r));
  const double* v4[4] = {rows[0].data(), rows[1].data(), rows[2].data(),
                         rows[3].data()};
  std::vector<Index> idx;
  for (Index j = 2; j < dim; j += 1 + static_cast<Index>(rng.Below(20))) {
    idx.push_back(j);
  }
  const std::vector<double> sval = EdgyVector(idx.size(), 0x3333);

  const double ref1 = kScalarOps.dense_block_dot_i8(v.data(), q.data(), 0,
                                                    dim);
  double ref4[4] = {0, 0, 0, 0};
  kScalarOps.dense4_block_dot_i8(v4, q.data(), 0, dim, ref4);
  size_t ref_cur = 0;
  const double refs = kScalarOps.sparse_block_acc_i8(
      0.0, idx.data(), sval.data(), &ref_cur, idx.size(), q.data(), dim);

  for (KernelLevel l : SupportedLevels()) {
    EXPECT_EQ(OpsFor(l).dense_block_dot_i8(v.data(), q.data(), 0, dim), ref1)
        << ToString(l);
    double got4[4] = {0, 0, 0, 0};
    OpsFor(l).dense4_block_dot_i8(v4, q.data(), 0, dim, got4);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(got4[r], ref4[r]) << ToString(l);
    size_t cur = 0;
    EXPECT_EQ(OpsFor(l).sparse_block_acc_i8(0.0, idx.data(), sval.data(),
                                            &cur, idx.size(), q.data(), dim),
              refs)
        << ToString(l);
    EXPECT_EQ(cur, idx.size());
  }
}

TEST(ScoreBatchMarginsTest, ExplicitOpsTablesAgreeBitwiseOnFuzzedBatches) {
  // The full driver (classification + blocking + per-row fold) under each
  // level's table: margins must agree bitwise with the scalar table on
  // mixed batches, at any block seam. Seeded property fuzz.
  Rng rng(0xca2a1u);
  for (int iter = 0; iter < 10; ++iter) {
    const Index dim = 9 + static_cast<Index>(rng.Below(9000));
    const size_t n = 1 + rng.Below(200);
    std::vector<double> model = EdgyVector(dim, rng.Next());
    std::vector<std::vector<Index>> indices(n);
    std::vector<std::vector<double>> values(n);
    std::vector<SparseVectorView> views;
    for (size_t r = 0; r < n; ++r) {
      switch (rng.Below(4)) {
        case 0:  // full-width dense (register-tiled path)
          values[r] = EdgyVector(dim, rng.Next());
          break;
        case 1:  // short dense prefix
          values[r] = EdgyVector(1 + rng.Below(dim), rng.Next());
          break;
        case 2: {  // sorted sparse
          Index j = static_cast<Index>(rng.Below(4));
          while (j < dim && indices[r].size() < 80) {
            indices[r].push_back(j);
            j += 1 + static_cast<Index>(rng.Below(64));
          }
          values[r] = EdgyVector(indices[r].size(), rng.Next());
          break;
        }
        default:  // unsorted (reference fallback)
          indices[r] = {static_cast<Index>(rng.Below(dim)),
                        static_cast<Index>(rng.Below(dim))};
          values[r] = EdgyVector(2, rng.Next());
          break;
      }
      views.push_back({indices[r].empty() ? nullptr : indices[r].data(),
                       values[r].data(), values[r].size()});
    }
    std::vector<double> ref(n), got(n);
    ScoreBatchMargins(model.data(), dim, views.data(), n, ref.data(),
                      &kScalarOps);
    for (KernelLevel l : SupportedLevels()) {
      ScoreBatchMargins(model.data(), dim, views.data(), n, got.data(),
                        &OpsFor(l));
      for (size_t r = 0; r < n; ++r) {
        EXPECT_EQ(got[r], ref[r])
            << ToString(l) << " iter " << iter << " row " << r;
      }
    }
  }
}

TEST(ScoreBatchMarginsInt8Test, MarginsWithinDocumentedBound) {
  // The quantized driver against the float driver: per row,
  // |margin_q - margin| <= (scale/2) * sum|x| plus reassociation slack.
  Rng rng(0xdeca8u);
  const Index dim = 6000;
  std::vector<double> model(dim);
  for (auto& x : model) x = rng.Gaussian(0.0, 1.0);
  std::vector<int8_t> q(dim);
  const double scale = QuantizeWeights(model.data(), dim, q.data());
  const size_t n = 40;
  std::vector<std::vector<Index>> indices(n);
  std::vector<std::vector<double>> values(n);
  std::vector<SparseVectorView> views;
  for (size_t r = 0; r < n; ++r) {
    if (r % 2 == 0) {
      values[r].resize(dim);
      for (auto& v : values[r]) v = rng.Gaussian(0.0, 1.0);
    } else {
      for (Index j = static_cast<Index>(rng.Below(16)); j < dim;
           j += 1 + static_cast<Index>(rng.Below(128))) {
        indices[r].push_back(j);
      }
      values[r].resize(indices[r].size());
      for (auto& v : values[r]) v = rng.Gaussian(0.0, 1.0);
    }
    views.push_back({indices[r].empty() ? nullptr : indices[r].data(),
                     values[r].data(), values[r].size()});
  }
  std::vector<double> f64(n), i8(n);
  ScoreBatchMargins(model.data(), dim, views.data(), n, f64.data());
  ScoreBatchMarginsInt8(q.data(), scale, dim, views.data(), n, i8.data());
  for (size_t r = 0; r < n; ++r) {
    double abs_sum = 0.0;
    for (const double v : values[r]) abs_sum += std::abs(v);
    const double bound = (scale / 2) * abs_sum + 1e-9 * (1.0 + abs_sum);
    EXPECT_LE(std::abs(i8[r] - f64[r]), bound) << "row " << r;
  }
}

}  // namespace
}  // namespace dw::kernels
