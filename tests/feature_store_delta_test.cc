// Tests for the KV-grade feature store surface: the sharded key index
// (load factor, tombstone reuse, shard balance), copy-on-write delta
// publishes (page sharing, byte accounting), clock eviction and its
// caller-visible miss semantics, delta-aware Republish, the engine's
// ScoreKey path (admission matrix, miss metrics), and a TSan-facing
// stress that pushes deltas + evictions under pipelined key scoring.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/glm.h"
#include "numa/numa_allocator.h"
#include "numa/topology.h"
#include "serve/feature_store.h"
#include "serve/serving_engine.h"
#include "util/rng.h"

namespace dw::serve {
namespace {

using matrix::Index;

StoreOptions PagedStore(StorePlacement p, Index page_rows) {
  StoreOptions o;
  o.placement_override = p;
  o.page_rows = page_rows;
  return o;
}

/// Row-major table with cell (r, j) = r * 1000 + j.
std::vector<double> CoordinateTable(Index rows, Index dim) {
  std::vector<double> t(static_cast<size_t>(rows) * dim);
  for (Index r = 0; r < rows; ++r) {
    for (Index j = 0; j < dim; ++j) {
      t[static_cast<size_t>(r) * dim + j] = 1000.0 * r + j;
    }
  }
  return t;
}

/// One delta block: every cell of key k's row = `value`.
std::vector<double> UniformRows(size_t keys, Index dim, double value) {
  return std::vector<double>(keys * static_cast<size_t>(dim), value);
}

// --- copy-on-write page chain ---------------------------------------------

TEST(FeatureStoreDeltaTest, DeltaSharesUntouchedPagesWithPreviousVersion) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 16;
  const Index dim = 4;
  // 4 pages of 4 rows.
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  store.Publish(CoordinateTable(rows, dim));
  const auto v1 = store.Acquire();
  ASSERT_NE(v1, nullptr);

  // Overwrite two keys in page 1 (slots 4..7). Only that page clones.
  const StorePublishReport rep =
      store.PublishDelta({5, 6}, UniformRows(2, dim, 7.0));
  EXPECT_EQ(rep.version, 2u);
  EXPECT_EQ(rep.touched_pages, 1u);
  EXPECT_EQ(rep.evicted_keys, 0u);
  EXPECT_EQ(rep.live_rows, static_cast<uint64_t>(rows));
  EXPECT_LT(rep.delta_bytes, rep.full_bytes);

  const auto v2 = store.Acquire();
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version(), 2u);
  for (Index r = 0; r < rows; ++r) {
    const bool touched_page = r / 4 == 1;
    if (touched_page) {
      // The cloned page is NEW storage; untouched rows in it carry the
      // old values.
      EXPECT_NE(v1->RowForNode(0, r), v2->RowForNode(0, r)) << "row " << r;
    } else {
      // Untouched pages are SHARED: same bytes, same address.
      EXPECT_EQ(v1->RowForNode(0, r), v2->RowForNode(0, r)) << "row " << r;
    }
  }
  // Values: 5 and 6 overwritten, everything else (page 1 included) keeps
  // the v1 contents -- and v1 itself is untouched.
  for (Index r = 0; r < rows; ++r) {
    const double expect0 = (r == 5 || r == 6) ? 7.0 : 1000.0 * r;
    EXPECT_DOUBLE_EQ(v2->RowForNode(0, r)[0], expect0) << "row " << r;
    EXPECT_DOUBLE_EQ(v1->RowForNode(0, r)[0], 1000.0 * r) << "v1 row " << r;
  }
  // Keys resolve through the index on both versions.
  EXPECT_EQ(v2->LookupSlot(5), std::optional<Index>(5));
  EXPECT_EQ(v2->LookupSlot(99), std::nullopt);
}

TEST(FeatureStoreDeltaTest, DeltaBootstrapsAnEmptyStoreAndAddsKeys) {
  // PublishDelta without a prior full Publish: only the touched pages
  // materialize; the rest of the chain stays unallocated.
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index dim = 4;
  FeatureStore store("f", alloc, 16, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  const StorePublishReport rep =
      store.PublishDelta({100, 200}, UniformRows(2, dim, 3.0));
  EXPECT_EQ(rep.version, 1u);
  EXPECT_EQ(rep.touched_pages, 1u);
  EXPECT_EQ(rep.live_rows, 2u);

  const auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->live_rows(), 2u);
  const auto slot100 = snap->LookupSlot(100);
  const auto slot200 = snap->LookupSlot(200);
  ASSERT_TRUE(slot100.has_value());
  ASSERT_TRUE(slot200.has_value());
  EXPECT_TRUE(snap->SlotLive(*slot100));
  EXPECT_FALSE(snap->SlotLive(15));  // tail page never populated
  EXPECT_DOUBLE_EQ(snap->RowForNode(1, *slot100)[dim - 1], 3.0);
  EXPECT_TRUE(store.ContainsKey(200));
  EXPECT_FALSE(store.ContainsKey(300));
}

TEST(FeatureStoreDeltaTest, ShardedDeltaKeepsRowGranularInterleave) {
  // Sharding stays row-granular round-robin under pages: delta rows land
  // on the fragment their slot owns, and gathers agree from every node.
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 8;
  const Index dim = 3;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kSharded, 4));
  store.Publish(CoordinateTable(rows, dim));
  store.PublishDelta({1, 2}, UniformRows(2, dim, 42.0));

  const auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  for (Index r = 0; r < rows; ++r) {
    const numa::NodeId owner = static_cast<numa::NodeId>(r % 2);
    EXPECT_EQ(snap->OwnerNodeFor(0, r), owner);
    EXPECT_EQ(snap->RowForNode(0, r), snap->RowForNode(1, r));
    const double expect = (r == 1 || r == 2) ? 42.0 : 1000.0 * r;
    EXPECT_DOUBLE_EQ(snap->RowForNode(0, r)[0], expect) << "row " << r;
  }
}

// --- key index: load factor, tombstones, balance --------------------------

TEST(FeatureStoreDeltaTest, IndexLoadFactorStaysUnderTheGrowKnee) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 256;
  const Index dim = 2;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 16));
  store.Publish(CoordinateTable(rows, dim));
  Rng rng(7);
  uint64_t next_key = 1000;
  for (int round = 0; round < 20; ++round) {
    // Mixed churn: some fresh keys (forcing evictions once full), some
    // overwrites of the previous round's keys.
    std::vector<uint64_t> keys;
    for (int i = 0; i < 48; ++i) keys.push_back(next_key++);
    store.PublishDelta(keys, UniformRows(keys.size(), dim, round));
    uint64_t live_total = 0;
    for (const StoreIndexShardStats& st : store.Acquire()->IndexStats()) {
      ASSERT_GT(st.capacity, 0u);
      // Power-of-two capacity, occupancy bounded by the 0.7 grow knee.
      EXPECT_EQ(st.capacity & (st.capacity - 1), 0u);
      EXPECT_LE((st.live + st.tombstones) * 10, st.capacity * 7)
          << "round " << round << " shard " << st.node;
      live_total += st.live;
    }
    EXPECT_EQ(live_total, store.Acquire()->live_rows());
  }
}

TEST(FeatureStoreDeltaTest, EvictionTombstonesAreReusedOnReinsert) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 8;
  const Index dim = 2;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  store.Publish(CoordinateTable(rows, dim));  // identity keys 0..7, full

  // One fresh key with every slot live: the clock must evict a page.
  const StorePublishReport rep =
      store.PublishDelta({100}, UniformRows(1, dim, 1.0));
  EXPECT_EQ(rep.evicted_keys, 4u);  // one page of 4 slots
  EXPECT_EQ(rep.live_rows, 5u);
  EXPECT_EQ(store.evictions_total(), 4u);

  const auto after_evict = store.Acquire();
  uint64_t tombs_before = 0;
  for (const auto& st : after_evict->IndexStats()) {
    tombs_before += st.tombstones;
  }
  // 4 keys tombstoned; the new key may have reused one grave on its
  // probe path.
  EXPECT_GE(tombs_before, 3u);
  EXPECT_TRUE(store.ContainsKey(100));

  // Re-insert three of the evicted keys: each probe crosses its own
  // grave, so the tombstone count must drop by exactly 3 (no growth at
  // this occupancy).
  const std::vector<uint64_t> evicted = [&] {
    std::vector<uint64_t> out;
    for (uint64_t k = 0; k < 8 && out.size() < 3; ++k) {
      if (!store.ContainsKey(k)) out.push_back(k);
    }
    return out;
  }();
  ASSERT_EQ(evicted.size(), 3u);
  store.PublishDelta(evicted, UniformRows(3, dim, 2.0));
  uint64_t tombs_after = 0;
  for (const auto& st : store.Acquire()->IndexStats()) {
    tombs_after += st.tombstones;
  }
  EXPECT_EQ(tombs_after, tombs_before - 3);
  for (const uint64_t k : evicted) EXPECT_TRUE(store.ContainsKey(k));
}

TEST(FeatureStoreDeltaTest, IndexShardsBalanceAcrossNodes) {
  const numa::Topology topo = numa::Local8();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 4096;
  const Index dim = 2;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kSharded, 64));
  store.Publish(CoordinateTable(rows, dim));
  const auto stats = store.Acquire()->IndexStats();
  ASSERT_EQ(stats.size(), 8u);
  const double mean = static_cast<double>(rows) / 8.0;
  uint64_t total = 0;
  for (const StoreIndexShardStats& st : stats) {
    // The mixed key stream spreads within +/-25% of the mean shard load
    // (identity keys through splitmix64; a lopsided shard means the
    // shard choice is reading unmixed bits).
    EXPECT_GT(st.live, mean * 0.75) << "shard " << st.node;
    EXPECT_LT(st.live, mean * 1.25) << "shard " << st.node;
    total += st.live;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(rows));
}

// --- eviction + misses -----------------------------------------------------

TEST(FeatureStoreDeltaTest, EvictedKeysMissAndTheirSlotsRecycle) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 8;
  const Index dim = 2;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  store.Publish(CoordinateTable(rows, dim));

  // 5 fresh keys into a full 8-slot store: the first eviction frees one
  // page (4 slots), the fifth key forces a second.
  const StorePublishReport rep = store.PublishDelta(
      {100, 101, 102, 103, 104}, UniformRows(5, dim, 9.0));
  EXPECT_EQ(rep.evicted_keys, 8u);
  EXPECT_EQ(rep.live_rows, 5u);

  const auto snap = store.Acquire();
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(snap->LookupSlot(k), std::nullopt) << "key " << k;
  }
  for (uint64_t k = 100; k < 105; ++k) {
    const auto slot = snap->LookupSlot(k);
    ASSERT_TRUE(slot.has_value()) << "key " << k;
    EXPECT_TRUE(snap->SlotLive(*slot));
    EXPECT_DOUBLE_EQ(snap->RowForNode(0, *slot)[0], 9.0);
  }
}

TEST(FeatureStoreDeltaTest, GatherTouchesSteerTheClockAwayFromHotPages) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 8;
  const Index dim = 2;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  store.Publish(CoordinateTable(rows, dim));

  // Page 0 is hot (its rows were just gathered); the clock's second
  // chance must spend page 0's reference and evict page 1 instead.
  const auto snap = store.Acquire();
  for (Index r = 0; r < 4; ++r) snap->TouchRow(r);
  store.PublishDelta({100}, UniformRows(1, dim, 1.0));
  EXPECT_TRUE(store.ContainsKey(0));
  EXPECT_TRUE(store.ContainsKey(3));
  EXPECT_FALSE(store.ContainsKey(4));
  EXPECT_FALSE(store.ContainsKey(7));
}

// --- delta-aware Republish -------------------------------------------------

TEST(FeatureStoreDeltaTest, RepublishMovesOnlyResidentPagesAndSharesIndex) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 16;
  const Index dim = 4;
  FeatureStore store("f", alloc, rows, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  // Bootstrap by delta: 2 live keys in one page, 3 pages never exist.
  store.PublishDelta({7, 11}, UniformRows(2, dim, 5.0));
  const uint64_t delta_before = store.delta_bytes_total();

  const uint64_t v = store.Republish(StorePlacement::kSharded);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(store.placement(), StorePlacement::kSharded);
  const uint64_t republish_bytes = store.delta_bytes_total() - delta_before;
  // One 4-row page re-laid once (sharded = single copy) -- strictly less
  // than any full-table rewrite under either placement.
  EXPECT_EQ(republish_bytes, 4u * dim * sizeof(double));
  EXPECT_LT(republish_bytes,
            static_cast<uint64_t>(rows) * dim * sizeof(double));

  const auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->live_rows(), 2u);
  for (const uint64_t k : {uint64_t{7}, uint64_t{11}}) {
    const auto slot = snap->LookupSlot(k);
    ASSERT_TRUE(slot.has_value());
    for (Index j = 0; j < dim; ++j) {
      EXPECT_DOUBLE_EQ(snap->RowForNode(0, *slot)[j], 5.0) << "key " << k;
    }
  }
  // Same placement again: no new version, no bytes moved.
  const uint64_t bytes_now = store.delta_bytes_total();
  EXPECT_EQ(store.Republish(StorePlacement::kSharded), 2u);
  EXPECT_EQ(store.delta_bytes_total(), bytes_now);
}

// --- shape/contract violations die -----------------------------------------

TEST(FeatureStoreDeltaDeathTest, ContractViolationsDie) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  const Index dim = 2;
  FeatureStore store("f", alloc, 8, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  store.Publish(CoordinateTable(8, dim));
  // Dim mismatch: 2 keys need 2 * dim doubles.
  EXPECT_DEATH(store.PublishDelta({1, 2}, UniformRows(3, dim, 1.0)),
               "shape mismatch");
  // Duplicate key within one delta.
  EXPECT_DEATH(store.PublishDelta({3, 3}, UniformRows(2, dim, 1.0)),
               "duplicate key");
  // Empty delta.
  EXPECT_DEATH(store.PublishDelta({}, {}), "empty delta publish");
  // More keys than slots can ever hold.
  EXPECT_DEATH(
      store.PublishDelta(
          {1, 2, 3, 4, 5, 6, 7, 8, 9},
          UniformRows(9, dim, 1.0)),
      "exceeds the capacity");
  // Gathering from a page with no storage (bootstrap delta touched only
  // page 0; the tail page was never allocated) without the SlotLive
  // screen. NOTE: slots freed by EVICTION are reused by the very delta
  // that evicted them, so their pages stay resident -- an unbacked page
  // only arises on a never-published range.
  FeatureStore fresh("g", alloc, 8, dim,
                     PagedStore(StorePlacement::kReplicated, 4));
  fresh.PublishDelta({1, 2}, UniformRows(2, dim, 1.0));
  const auto snap = fresh.Acquire();
  ASSERT_FALSE(snap->SlotLive(6));
  EXPECT_DEATH(snap->RowForNode(0, 6), "evicted page");
}

// --- engine integration: ScoreKey ------------------------------------------

ServingFamilyOptions ServeFamily(Index dim) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = Replication::kPerNode;
  return o;
}

TEST(ScoreKeyServingTest, KeyAdmissionMatrixAndMissMetrics) {
  models::LeastSquaresSpec ls;
  const Index rows = 8;
  const Index dim = 4;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, ServeFamily(dim)).ok());
  server.Publish("ls", std::vector<double>(dim, 1.0));

  // Unknown family / no store: same codes as the id form.
  EXPECT_EQ(server.ScoreKey("nope", uint64_t{0}).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(server.ScoreKey("ls", uint64_t{0}).status().code(),
            Status::Code::kFailedPrecondition);

  ASSERT_TRUE(server
                  .RegisterStore("ls", rows, dim,
                                 PagedStore(StorePlacement::kReplicated, 4))
                  .ok());
  // Store registered but nothing published yet.
  EXPECT_EQ(server.ScoreKey("ls", uint64_t{0}).status().code(),
            Status::Code::kFailedPrecondition);
  server.PublishStore("ls", CoordinateTable(rows, dim));
  // A key the index has never seen: NotFound, counted as a miss.
  EXPECT_EQ(server.ScoreKey("ls", uint64_t{999}).status().code(),
            Status::Code::kNotFound);
  // Valid key, engine not started yet.
  EXPECT_EQ(server.ScoreKey("ls", uint64_t{3}).status().code(),
            Status::Code::kFailedPrecondition);

  ASSERT_TRUE(server.Start().ok());
  // A full publish installs identity keys: ScoreKey(r) == Score(row r),
  // bitwise (both gather the same snapshot row).
  for (Index r = 0; r < rows; ++r) {
    auto by_key = server.ScoreKeySync("ls", static_cast<uint64_t>(r));
    auto by_id = server.ScoreSync("ls", r);
    ASSERT_TRUE(by_key.ok());
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ(by_key.value(), by_id.value()) << "row " << r;
  }
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_EQ(stats.families[0].key_rows, static_cast<uint64_t>(rows));
  EXPECT_EQ(stats.families[0].key_misses, 1u);
  EXPECT_EQ(stats.families[0].store_live_rows, static_cast<uint64_t>(rows));
  // Full publishes write everything: delta bytes == full bytes so far.
  EXPECT_GT(stats.families[0].store_full_bytes, 0u);
  EXPECT_GE(stats.families[0].store_delta_bytes,
            stats.families[0].store_full_bytes);
}

TEST(ScoreKeyServingTest, StringKeysRoundTripThroughTheHash) {
  models::LeastSquaresSpec ls;
  const Index dim = 4;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("kv", &ls, ServeFamily(dim)).ok());
  ASSERT_TRUE(server
                  .RegisterStore("kv", 8, dim,
                                 PagedStore(StorePlacement::kSharded, 4))
                  .ok());
  server.Publish("kv", std::vector<double>(dim, 1.0));
  // Entity rows keyed by name: publish under HashKey, score by string.
  const StorePublishReport rep = server.PublishStoreDelta(
      "kv", {FeatureStore::HashKey("alice"), FeatureStore::HashKey("bob")},
      {1, 1, 1, 1, 2, 2, 2, 2});
  EXPECT_EQ(rep.live_rows, 2u);
  ASSERT_TRUE(server.Start().ok());
  auto alice = server.ScoreKeySync("kv", std::string_view("alice"));
  auto bob = server.ScoreKeySync("kv", std::string_view("bob"));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  EXPECT_DOUBLE_EQ(alice.value(), 4.0);
  EXPECT_DOUBLE_EQ(bob.value(), 8.0);
  EXPECT_EQ(server.ScoreKeySync("kv", std::string_view("carol"))
                .status()
                .code(),
            Status::Code::kNotFound);
  server.Stop();
}

TEST(ScoreKeyServingTest, EvictionSurfacesAsNotFoundWithMetrics) {
  models::LeastSquaresSpec ls;
  const Index rows = 8;
  const Index dim = 4;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, ServeFamily(dim)).ok());
  ASSERT_TRUE(server
                  .RegisterStore("ls", rows, dim,
                                 PagedStore(StorePlacement::kReplicated, 4))
                  .ok());
  server.Publish("ls", std::vector<double>(dim, 1.0));
  server.PublishStore("ls", CoordinateTable(rows, dim));
  ASSERT_TRUE(server.Start().ok());

  // Refresh by delta while serving: 5 fresh entities overflow the 8-slot
  // store, evicting every original key.
  const StorePublishReport rep = server.PublishStoreDelta(
      "ls", {100, 101, 102, 103, 104}, UniformRows(5, dim, 2.0));
  EXPECT_EQ(rep.evicted_keys, 8u);
  // Evicted keys now miss with NotFound; survivors score.
  EXPECT_EQ(server.ScoreKeySync("ls", uint64_t{0}).status().code(),
            Status::Code::kNotFound);
  auto hit = server.ScoreKeySync("ls", uint64_t{102});
  ASSERT_TRUE(hit.ok());
  EXPECT_DOUBLE_EQ(hit.value(), 2.0 * dim);
  server.Stop();

  const FamilyServingStats fam = server.Stats().families[0];
  EXPECT_EQ(fam.store_evictions, 8u);
  EXPECT_GE(fam.key_misses, 1u);
  EXPECT_EQ(fam.store_live_rows, 5u);
  // The delta moved O(churn) bytes while a full rewrite was accounted as
  // the alternative.
  EXPECT_GT(fam.store_full_bytes, 0u);
}

// --- TSan stress: deltas + evictions under pipelined key scoring ----------

TEST(FeatureStoreDeltaStressTest, HostileDeltasNeverTearKeyedScores) {
  // Hostile publisher: a delta storm (fresh keys forcing evictions +
  // overwrites of the hot set) racing 4 pipelined producers scoring by
  // key. Every row of delta version v holds 2^(v mod 40) in all dim
  // cells, so a valid margin is exactly dim * 2^m -- and a TORN row
  // (cells from two versions) can never fake one: a*2^i + b*2^j with
  // a+b=dim and i != j always carries an odd factor > 1 (checked for
  // dim=16 below), while every untorn gather is bitwise one version.
  models::LeastSquaresSpec ls;
  const Index rows = 64;
  const Index dim = 16;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 4;
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(50);
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("kv", &ls, ServeFamily(dim)).ok());
  ASSERT_TRUE(server
                  .RegisterStore("kv", rows, dim,
                                 PagedStore(StorePlacement::kSharded, 8))
                  .ok());
  server.Publish("kv", std::vector<double>(dim, 1.0));
  // Version 1: every key holds 2^(1 % 40) = 2.
  {
    std::vector<uint64_t> keys(rows);
    for (Index r = 0; r < rows; ++r) keys[r] = r;
    server.PublishStoreDelta("kv", keys, UniformRows(rows, dim, 2.0));
  }
  ASSERT_TRUE(server.Start().ok());

  // The publisher storms deltas until every producer has drained its
  // fixed score budget -- so the race spans the whole producer run no
  // matter how the scheduler interleaves them.
  std::atomic<int> producers_done{0};
  std::thread publisher([&] {
    Rng rng(99);
    uint64_t fresh = 1000;
    for (int v = 2; producers_done.load(std::memory_order_acquire) < 4;
         ++v) {
      std::vector<uint64_t> keys;
      // Half overwrites of the resident range, half fresh keys that
      // force clock evictions.
      for (int i = 0; i < 4; ++i) {
        keys.push_back(rng.Below(static_cast<uint64_t>(rows) / 2));
      }
      for (int i = 0; i < 4; ++i) keys.push_back(fresh++);
      // Dedup (rng may repeat a resident key).
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      const double cell = std::ldexp(1.0, v % 40);
      server.PublishStoreDelta("kv", keys,
                               UniformRows(keys.size(), dim, cell));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(17 + t);
      for (int iter = 0; iter < 400; ++iter) {
        // Mix resident row-range keys with recently-churned fresh keys.
        const uint64_t key = rng.Below(2) == 0
                                 ? rng.Below(static_cast<uint64_t>(rows))
                                 : 1000 + rng.Below(600);
        const auto score = server.ScoreKeySync("kv", key);
        if (!score.ok()) {
          ASSERT_EQ(score.status().code(), Status::Code::kNotFound);
          misses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        hits.fetch_add(1, std::memory_order_relaxed);
        // Margin = dim * 2^m for some published version -- no torn rows,
        // no stale-beyond-published values.
        const double per_cell = score.value() / dim;
        const int m = std::ilogb(per_cell);
        ASSERT_EQ(std::ldexp(1.0, m), per_cell)
            << "torn margin " << score.value();
        ASSERT_GE(m, 0);
        ASSERT_LT(m, 40);
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (auto& p : producers) p.join();
  publisher.join();
  server.Stop();
  // The stress must actually exercise every path: clean gathers, misses
  // (evicted or never-published keys), and clock evictions.
  EXPECT_GT(hits.load(), 100u);
  EXPECT_GT(misses.load(), 0u);
  EXPECT_GT(server.Stats().families[0].store_evictions, 0u);
  EXPECT_GT(server.FindStore("kv")->current_version(), 1u);
}

}  // namespace
}  // namespace dw::serve
