// Unit tests for src/numa: topologies, allocator ledger, counters, memory
// model, bandwidth probe.
#include <gtest/gtest.h>

#include "numa/access_counters.h"
#include "numa/bandwidth_probe.h"
#include "numa/memory_model.h"
#include "numa/numa_allocator.h"
#include "numa/topology.h"

namespace dw::numa {
namespace {

TEST(TopologyTest, PaperPresetsMatchFigure3) {
  const Topology l2 = Local2();
  EXPECT_EQ(l2.num_nodes, 2);
  EXPECT_EQ(l2.cores_per_node, 6);
  EXPECT_EQ(l2.total_cores(), 12);
  EXPECT_DOUBLE_EQ(l2.llc_mb, 12);

  const Topology l4 = Local4();
  EXPECT_EQ(l4.num_nodes, 4);
  EXPECT_EQ(l4.cores_per_node, 10);
  EXPECT_DOUBLE_EQ(l4.cpu_ghz, 2.0);

  const Topology l8 = Local8();
  EXPECT_EQ(l8.num_nodes, 8);
  EXPECT_EQ(l8.cores_per_node, 8);
  EXPECT_EQ(l8.total_cores(), 64);

  EXPECT_EQ(Ec2_1().num_nodes, 2);
  EXPECT_EQ(Ec2_2().cores_per_node, 8);
  EXPECT_EQ(PaperMachines().size(), 5u);
}

TEST(TopologyTest, AlphaGrowsWithSockets) {
  // Paper Sec 3.2: alpha in [4,12], grows with socket count.
  EXPECT_LT(Local2().alpha, Local4().alpha);
  EXPECT_LT(Local4().alpha, Local8().alpha);
  EXPECT_GE(Local2().alpha, 4.0);
  EXPECT_LE(Local8().alpha, 12.0);
}

TEST(TopologyTest, NodeOfCoreIsNodeMajor) {
  const Topology l2 = Local2();
  EXPECT_EQ(l2.NodeOfCore(0), 0);
  EXPECT_EQ(l2.NodeOfCore(5), 0);
  EXPECT_EQ(l2.NodeOfCore(6), 1);
  EXPECT_EQ(l2.NodeOfCore(11), 1);
}

TEST(TopologyTest, CoresOfNodeEnumerates) {
  const Topology l2 = Local2();
  const auto cores = l2.CoresOfNode(1);
  ASSERT_EQ(cores.size(), 6u);
  EXPECT_EQ(cores.front(), 6);
  EXPECT_EQ(cores.back(), 11);
}

TEST(TopologyTest, PhysicalMappingInterleavesNodes) {
  const Topology l2 = Local2();
  // With 2 physical CPUs, node 0 and node 1 workers land on different CPUs.
  EXPECT_NE(l2.PhysicalCpuOfCore(0, 2), l2.PhysicalCpuOfCore(6, 2));
  // All mappings stay in range.
  for (int c = 0; c < l2.total_cores(); ++c) {
    EXPECT_GE(l2.PhysicalCpuOfCore(c, 2), 0);
    EXPECT_LT(l2.PhysicalCpuOfCore(c, 2), 2);
  }
}

TEST(TopologyTest, LookupByNameAndAbbrev) {
  auto t1 = TopologyByName("local4");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value().num_nodes, 4);
  auto t2 = TopologyByName("l8");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value().num_nodes, 8);
  EXPECT_FALSE(TopologyByName("bogus").ok());
}

TEST(TopologyTest, HostTopologyIsSane) {
  const Topology host = HostTopology();
  EXPECT_GE(host.num_nodes, 1);
  EXPECT_GE(host.total_cores(), 1);
}

TEST(LedgerTest, TracksPerNodeBytes) {
  NodeLedger ledger(2);
  ledger.Add(0, 100);
  ledger.Add(1, 50);
  ledger.Add(0, 10);
  EXPECT_EQ(ledger.BytesOnNode(0), 110u);
  EXPECT_EQ(ledger.BytesOnNode(1), 50u);
  ledger.Sub(0, 100);
  EXPECT_EQ(ledger.BytesOnNode(0), 10u);
}

TEST(AllocatorTest, ArraysAreTaggedAndLedgered) {
  NumaAllocator alloc(Local2());
  {
    NodeArray<double> a = alloc.AllocateOnNode<double>(1, 1000);
    EXPECT_EQ(a.node(), 1);
    EXPECT_EQ(a.size(), 1000u);
    EXPECT_EQ(alloc.ledger().BytesOnNode(1), 8000u);
    EXPECT_EQ(alloc.ledger().BytesOnNode(0), 0u);
    a[999] = 3.5;
    EXPECT_DOUBLE_EQ(a[999], 3.5);
  }
  // Destruction returns the bytes.
  EXPECT_EQ(alloc.ledger().BytesOnNode(1), 0u);
}

TEST(AllocatorTest, MoveKeepsLedgerBalanced) {
  NumaAllocator alloc(Local2());
  NodeArray<int> a = alloc.AllocateOnNode<int>(0, 10);
  NodeArray<int> b = std::move(a);
  EXPECT_EQ(alloc.ledger().BytesOnNode(0), 40u);
  NodeArray<int> c = alloc.AllocateOnNode<int>(0, 10);
  c = std::move(b);
  EXPECT_EQ(alloc.ledger().BytesOnNode(0), 40u);
}

TEST(CountersTest, MergeAndDerivedCounts) {
  AccessCounters a, b;
  a.local_read_bytes = 640;
  a.remote_read_bytes = 1280;
  b.local_read_bytes = 60;
  b.shared_write_bytes = 100;
  a.Merge(b);
  EXPECT_EQ(a.local_read_bytes, 700u);
  EXPECT_EQ(a.remote_dram_requests(), 20u);
  EXPECT_EQ(a.total_write_bytes(), 100u);
  a.Reset();
  EXPECT_EQ(a.total_read_bytes(), 0u);
}

TEST(CountersTest, NodeTrafficAggregates) {
  NodeTraffic t(2);
  AccessCounters c;
  c.local_read_bytes = 10;
  t.Add(0, c);
  t.Add(1, c);
  t.Add(1, c);
  EXPECT_EQ(t.per_node[0].local_read_bytes, 10u);
  EXPECT_EQ(t.per_node[1].local_read_bytes, 20u);
  EXPECT_EQ(t.Total().local_read_bytes, 30u);
}

TEST(MemoryModelTest, MoreSharersMeansMoreExpensiveWrites) {
  const MemoryModel model(Local8());
  EXPECT_DOUBLE_EQ(model.WriteAmplification(1), 1.0);
  EXPECT_LT(model.WriteAmplification(2), model.WriteAmplification(4));
  EXPECT_LT(model.WriteAmplification(4), model.WriteAmplification(8));
  EXPECT_DOUBLE_EQ(model.WriteAmplification(8), Local8().alpha);
}

TEST(MemoryModelTest, RemoteTrafficCostsMoreThanLocal) {
  const Topology l2 = Local2();
  const MemoryModel model(l2);

  SimulationInput local_in(2), remote_in(2);
  for (auto* in : {&local_in, &remote_in}) {
    in->active_workers = {6, 6};
    in->model_bytes = 1 << 30;  // force DRAM path
  }
  local_in.traffic.per_node[0].local_read_bytes = 1e9;
  remote_in.traffic.per_node[0].remote_read_bytes = 1e9;

  const double t_local = model.SimulateEpoch(local_in).total_sec;
  const double t_remote = model.SimulateEpoch(remote_in).total_sec;
  EXPECT_GT(t_remote, t_local);
}

TEST(MemoryModelTest, SharedWritesDominateOnManySockets) {
  const Topology l8 = Local8();
  const MemoryModel model(l8);
  SimulationInput priv(8), shared(8);
  for (auto* in : {&priv, &shared}) {
    in->active_workers.assign(8, 8);
    in->model_bytes = 1 << 30;
  }
  priv.model_sharing_sockets = 1;
  shared.model_sharing_sockets = 8;
  for (int n = 0; n < 8; ++n) {
    priv.traffic.per_node[n].local_write_bytes = 1e8;
    shared.traffic.per_node[n].shared_write_bytes = 1e8;
  }
  const double t_priv = model.SimulateEpoch(priv).total_sec;
  const double t_shared = model.SimulateEpoch(shared).total_sec;
  EXPECT_GT(t_shared, t_priv * 5.0);  // alpha = 12 on local8
}

TEST(MemoryModelTest, SmallModelServedFromLlcIsFaster) {
  const Topology l2 = Local2();
  const MemoryModel model(l2);
  SimulationInput small(2), big(2);
  for (auto* in : {&small, &big}) {
    in->active_workers = {6, 6};
    in->traffic.per_node[0].model_read_bytes = 1e9;
  }
  small.model_bytes = 1 << 20;   // 1 MB fits in 12 MB LLC
  big.model_bytes = 1 << 28;     // 256 MB does not
  EXPECT_LT(model.SimulateEpoch(small).total_sec,
            model.SimulateEpoch(big).total_sec);
}

TEST(MemoryModelTest, EpochTimeScalesWithTraffic) {
  const MemoryModel model(Local2());
  SimulationInput x1(2), x4(2);
  for (auto* in : {&x1, &x4}) {
    in->active_workers = {6, 6};
    in->model_bytes = 1 << 30;
  }
  x1.traffic.per_node[0].local_read_bytes = 1e8;
  x4.traffic.per_node[0].local_read_bytes = 4e8;
  const double t1 = model.SimulateEpoch(x1).total_sec;
  const double t4 = model.SimulateEpoch(x4).total_sec;
  EXPECT_NEAR(t4 / t1, 4.0, 0.5);
}

TEST(BandwidthProbeTest, MeasuresPositiveBandwidth) {
  // Tiny arrays: this is a smoke test, not a benchmark.
  const BandwidthResult r = MeasureBandwidth(2, 1 << 18, 1);
  EXPECT_GT(r.copy_gbps, 0.0);
  EXPECT_GT(r.scale_gbps, 0.0);
  EXPECT_GT(r.add_gbps, 0.0);
  EXPECT_GT(r.triad_gbps, 0.0);
}

TEST(BandwidthProbeTest, ContendedWritesCostMoreThanReads) {
  const double ratio = MeasureWriteReadCostRatio(2, 1);
  // The exact value is machine-dependent; contended RMWs are always
  // slower per operation than streaming reads.
  EXPECT_GT(ratio, 1.0);
}

}  // namespace
}  // namespace dw::numa
