// Unit + property tests for src/matrix: CSR/CSC equivalence, dense layouts,
// stats, and I/O round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "matrix/csc_matrix.h"
#include "matrix/csr_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/io.h"
#include "matrix/matrix_stats.h"
#include "util/rng.h"

namespace dw::matrix {
namespace {

CsrMatrix SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  auto m = CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

CsrMatrix RandomMatrix(Index rows, Index cols, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> trips;
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (rng.Bernoulli(density)) {
        trips.push_back({i, j, rng.Gaussian()});
      }
    }
  }
  auto m = CsrMatrix::FromTriplets(rows, cols, std::move(trips));
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(CsrTest, BuildsFromTriplets) {
  const CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 2u);
  EXPECT_EQ(m.RowNnz(1), 0u);
  EXPECT_EQ(m.RowNnz(2), 2u);
}

TEST(CsrTest, RowViewDotAndAxpy) {
  const CsrMatrix m = SmallMatrix();
  const double x[3] = {1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(m.Row(0).Dot(x), 1.0 + 200.0);
  EXPECT_DOUBLE_EQ(m.Row(2).Dot(x), 3.0 + 40.0);

  double y[3] = {0, 0, 0};
  m.Row(2).Axpy(2.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  auto m = CsrMatrix::FromTriplets(1, 2, {{0, 1, 1.5}, {0, 1, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().nnz(), 1);
  EXPECT_DOUBLE_EQ(m.value().Row(0).values[0], 4.0);
}

TEST(CsrTest, RejectsOutOfBoundsTriplets) {
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(CsrMatrix::FromTriplets(2, 2, {{0, 5, 1.0}}).ok());
}

TEST(CsrTest, FromCsrArraysValidates) {
  // Valid.
  EXPECT_TRUE(
      CsrMatrix::FromCsrArrays(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0}).ok());
  // row_ptr wrong size.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 2}, {0, 1}, {1.0, 2.0}).ok());
  // decreasing row_ptr.
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}).ok());
  // col out of range.
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(2, 2, {0, 1, 2}, {0, 9}, {1.0, 2.0}).ok());
  // endpoint mismatch.
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(2, 2, {1, 1, 2}, {0, 1}, {1.0, 2.0}).ok());
}

TEST(CscTest, TransposeOfSmallMatrix) {
  const CsrMatrix csr = SmallMatrix();
  const CscMatrix csc = CscMatrix::FromCsr(csr);
  EXPECT_EQ(csc.rows(), 3u);
  EXPECT_EQ(csc.cols(), 3u);
  EXPECT_EQ(csc.nnz(), 4);
  // Column 0 holds rows {0, 2} with values {1, 3}.
  const SparseVectorView c0 = csc.Col(0);
  ASSERT_EQ(c0.nnz, 2u);
  EXPECT_EQ(c0.indices[0], 0u);
  EXPECT_EQ(c0.indices[1], 2u);
  EXPECT_DOUBLE_EQ(c0.values[0], 1.0);
  EXPECT_DOUBLE_EQ(c0.values[1], 3.0);
  // Column 1 holds row {2} with value {4}.
  EXPECT_EQ(csc.ColNnz(1), 1u);
  EXPECT_EQ(csc.Col(1).indices[0], 2u);
}

// Property: CSR->CSC preserves every entry, for random matrices.
class CscRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CscRoundTrip, EntriesPreserved) {
  const CsrMatrix csr = RandomMatrix(23, 17, 0.2, GetParam());
  const CscMatrix csc = CscMatrix::FromCsr(csr);
  ASSERT_EQ(csc.nnz(), csr.nnz());
  // Reconstruct a dense image from both and compare.
  DenseMatrix from_csr(23, 17, Layout::kRowMajor);
  for (Index i = 0; i < csr.rows(); ++i) {
    const auto row = csr.Row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      from_csr.At(i, row.indices[k]) = row.values[k];
    }
  }
  DenseMatrix from_csc(23, 17, Layout::kRowMajor);
  for (Index j = 0; j < csc.cols(); ++j) {
    const auto col = csc.Col(j);
    for (size_t k = 0; k < col.nnz; ++k) {
      from_csc.At(col.indices[k], j) = col.values[k];
    }
  }
  for (Index i = 0; i < 23; ++i) {
    for (Index j = 0; j < 17; ++j) {
      EXPECT_DOUBLE_EQ(from_csr.At(i, j), from_csc.At(i, j));
    }
  }
  // Row ids within each CSC column are sorted (counting-sort guarantee).
  for (Index j = 0; j < csc.cols(); ++j) {
    const auto col = csc.Col(j);
    for (size_t k = 1; k < col.nnz; ++k) {
      EXPECT_LT(col.indices[k - 1], col.indices[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CscRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99));

TEST(DenseTest, LayoutsAgreeElementwise) {
  DenseMatrix rm(4, 3, Layout::kRowMajor);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 3; ++j) rm.At(i, j) = i * 10.0 + j;
  }
  const DenseMatrix cm = rm.WithLayout(Layout::kColMajor);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(cm.At(i, j), rm.At(i, j));
  }
  // Contiguous views match the logical slices.
  const DenseVectorView row1 = rm.Row(1);
  EXPECT_DOUBLE_EQ(row1.values[2], 12.0);
  const DenseVectorView col2 = cm.Col(2);
  EXPECT_DOUBLE_EQ(col2.values[3], 32.0);
}

TEST(StatsTest, ComputesShapeNumbers) {
  const CsrMatrix m = SmallMatrix();
  const MatrixStats s = ComputeStats(m);
  EXPECT_EQ(s.nnz, 4);
  EXPECT_EQ(s.sum_ni, 4);
  EXPECT_EQ(s.sum_ni_sq, 4 + 0 + 4);
  EXPECT_NEAR(s.avg_row_nnz, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.sparsity, 4.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.max_row_nnz, 2.0);
}

TEST(StatsTest, CostRatioMatchesFormula) {
  const MatrixStats s = ComputeStats(SmallMatrix());
  const double alpha = 10.0;
  const double expected = (1.0 + alpha) * 4.0 / (8.0 + alpha * 3.0);
  EXPECT_NEAR(s.CostRatio(alpha), expected, 1e-12);
}

TEST(StatsTest, DenserRowsRaiseColumnCost) {
  // Long rows blow up sum n_i^2 relative to sum n_i, lowering the ratio
  // (favoring row-wise) -- exactly the Fig. 7(b) x-axis.
  const CsrMatrix sparse_rows = RandomMatrix(50, 40, 0.05, 1);
  const CsrMatrix dense_rows = RandomMatrix(50, 40, 0.8, 1);
  EXPECT_GT(ComputeStats(sparse_rows).CostRatio(10.0),
            ComputeStats(dense_rows).CostRatio(10.0));
}

TEST(IoTest, LibsvmRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dw_io_test.libsvm";
  LabeledData data{SmallMatrix(), {1.0, -1.0, 1.0}};
  ASSERT_TRUE(WriteLibsvm(path, data).ok());
  auto rt = ReadLibsvm(path, 3);
  ASSERT_TRUE(rt.ok());
  const LabeledData& got = rt.value();
  EXPECT_EQ(got.a.rows(), 3u);
  EXPECT_EQ(got.a.cols(), 3u);
  EXPECT_EQ(got.a.nnz(), 4);
  EXPECT_EQ(got.b, data.b);
  EXPECT_DOUBLE_EQ(got.a.Row(2).values[1], 4.0);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dw_io_test.bin";
  LabeledData data{RandomMatrix(31, 19, 0.3, 77), {}};
  data.b.resize(31);
  for (size_t i = 0; i < data.b.size(); ++i) data.b[i] = i * 0.5;
  ASSERT_TRUE(WriteBinary(path, data).ok());
  auto rt = ReadBinary(path);
  ASSERT_TRUE(rt.ok());
  const LabeledData& got = rt.value();
  EXPECT_EQ(got.a.rows(), data.a.rows());
  EXPECT_EQ(got.a.nnz(), data.a.nnz());
  EXPECT_EQ(got.b, data.b);
  EXPECT_EQ(got.a.row_ptr(), data.a.row_ptr());
  EXPECT_EQ(got.a.col_idx(), data.a.col_idx());
  EXPECT_EQ(got.a.values(), data.a.values());
  std::remove(path.c_str());
}

TEST(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadLibsvm("/nonexistent/file.libsvm").ok());
  EXPECT_FALSE(ReadBinary("/nonexistent/file.bin").ok());
}

TEST(IoTest, BinaryRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/dw_io_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t junk = 0xdeadbeef;
  std::fwrite(&junk, sizeof(junk), 1, f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(ScanBytesTest, CountsValuePlusIndexBytes) {
  const CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.ScanBytes(), 4 * (8 + 4));
  const CscMatrix c = CscMatrix::FromCsr(m);
  EXPECT_EQ(c.ScanBytes(), 4 * (8 + 4));
  DenseMatrix d(3, 3, Layout::kRowMajor);
  EXPECT_EQ(d.ScanBytes(), 9 * 8);
}

}  // namespace
}  // namespace dw::matrix
