// Tests for the MLP substrate: parameter geometry, gradient checking of
// back-propagation against numerical differentiation, training progress,
// and the two Fig. 17(b) strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace dw::nn {
namespace {

MlpConfig TinyConfig(uint64_t seed = 1) {
  MlpConfig c;
  c.layer_sizes = {6, 5, 4, 3};
  c.seed = seed;
  return c;
}

TEST(MlpTest, ParameterCountMatchesGeometry) {
  const Mlp mlp(TinyConfig());
  // (6*5 + 5) + (5*4 + 4) + (4*3 + 3) = 35 + 24 + 15.
  EXPECT_EQ(mlp.num_params(), 74u);
  EXPECT_EQ(mlp.neurons_per_example(), 6u + 5 + 4 + 3);
  EXPECT_EQ(mlp.num_layers(), 4);
}

TEST(MlpTest, DefaultGeometryIsThePaperSevenLayerNet) {
  const Mlp mlp((MlpConfig()));
  EXPECT_EQ(mlp.num_layers(), 7);
  // ~0.8M parameters (Sec. 5.2: "0.8 million parameters").
  EXPECT_GT(mlp.num_params(), 700'000u);
  EXPECT_LT(mlp.num_params(), 900'000u);
}

TEST(MlpTest, ForwardLossIsFiniteAndPositive) {
  const Mlp mlp(TinyConfig());
  std::vector<double> params(mlp.num_params());
  mlp.InitParams(params.data(), 3);
  MlpScratch scratch = mlp.MakeScratch();
  const double input[6] = {0.2, 0.4, 0.1, 0.9, 0.5, 0.3};
  const double loss = mlp.Forward(params.data(), input, 1, &scratch);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
}

TEST(MlpTest, BackpropMatchesNumericalGradient) {
  const Mlp mlp(TinyConfig());
  std::vector<double> params(mlp.num_params());
  mlp.InitParams(params.data(), 5);
  MlpScratch scratch = mlp.MakeScratch();
  Rng rng(7);
  std::vector<double> input(6);
  for (auto& x : input) x = rng.Uniform();
  const int label = 2;

  // Analytic gradient from one TrainExample with a tiny step.
  const double step = 1e-7;
  std::vector<double> moved = params;
  mlp.TrainExample(moved.data(), input.data(), label, step, &scratch);

  // Spot-check 30 random parameters against central differences.
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = rng.Below(mlp.num_params());
    const double analytic = -(moved[k] - params[k]) / step;
    const double h = 1e-6;
    std::vector<double> probe = params;
    probe[k] = params[k] + h;
    const double up = mlp.Forward(probe.data(), input.data(), label, &scratch);
    probe[k] = params[k] - h;
    const double dn = mlp.Forward(probe.data(), input.data(), label, &scratch);
    const double numeric = (up - dn) / (2 * h);
    EXPECT_NEAR(analytic, numeric, 5e-4) << "param " << k;
  }
}

TEST(MlpTest, SgdLearnsSeparableToyProblem) {
  const Mlp mlp(TinyConfig());
  std::vector<double> params(mlp.num_params());
  mlp.InitParams(params.data(), 11);
  MlpScratch scratch = mlp.MakeScratch();

  // Three clusters in 6-d, labels 0..2.
  Rng rng(13);
  std::vector<double> inputs;
  std::vector<int> labels;
  for (int e = 0; e < 300; ++e) {
    const int c = static_cast<int>(rng.Below(3));
    labels.push_back(c);
    for (int k = 0; k < 6; ++k) {
      inputs.push_back((k % 3 == c ? 1.0 : 0.0) + rng.Gaussian(0.0, 0.1));
    }
  }
  const double before =
      mlp.MeanLoss(params.data(), inputs, labels, 6, &scratch);
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (int e = 0; e < 300; ++e) {
      mlp.TrainExample(params.data(), inputs.data() + e * 6, labels[e], 0.05,
                       &scratch);
    }
  }
  const double after = mlp.MeanLoss(params.data(), inputs, labels, 6, &scratch);
  EXPECT_LT(after, before * 0.3);
}

TEST(DigitDataTest, GeneratorShape) {
  const DigitData d = MakeMnistLike(50, 3);
  EXPECT_EQ(d.num_examples(), 50);
  EXPECT_EQ(d.images.size(), 50u * 784);
  for (double v : d.images) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (int label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(TrainerTest, BothStrategiesLearn) {
  MlpConfig cfg;
  cfg.layer_sizes = {784, 32, 10};
  const Mlp mlp(cfg);
  const DigitData data = MakeMnistLike(400, 21);

  NnTrainOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.epochs = 4;
  o.learning_rate = 0.05;

  o.strategy = NnStrategy::kClassic;
  const NnTrainResult classic = TrainParallel(mlp, data, o);
  ASSERT_EQ(classic.loss_per_epoch.size(), 4u);
  EXPECT_LT(classic.loss_per_epoch.back(), classic.loss_per_epoch.front());

  o.strategy = NnStrategy::kDimmWitted;
  const NnTrainResult dw = TrainParallel(mlp, data, o);
  EXPECT_LT(dw.loss_per_epoch.back(), dw.loss_per_epoch.front());

  // FullReplication processes nodes x examples per epoch.
  EXPECT_EQ(dw.examples_processed, 2 * classic.examples_processed);
  EXPECT_EQ(dw.neurons_processed,
            dw.examples_processed * mlp.neurons_per_example());
}

TEST(TrainerTest, SimulatedThroughputFavorsDimmWitted) {
  // Fig. 17(b): PerNode + FullReplication beats the classic
  // PerMachine + Sharding choice in variables/second under the NUMA model
  // (the paper reports over an order of magnitude).
  MlpConfig cfg;
  cfg.layer_sizes = {784, 64, 32, 10};
  const Mlp mlp(cfg);
  const DigitData data = MakeMnistLike(64, 33);

  NnTrainOptions o;
  o.topology = numa::Local4();
  o.workers_per_node = 2;
  o.epochs = 1;
  o.eval_examples = 16;

  o.strategy = NnStrategy::kClassic;
  const NnTrainResult classic = TrainParallel(mlp, data, o);
  o.strategy = NnStrategy::kDimmWitted;
  const NnTrainResult dw = TrainParallel(mlp, data, o);

  EXPECT_GT(dw.SimNeuronsPerSec(), classic.SimNeuronsPerSec());
}

}  // namespace
}  // namespace dw::nn
