// Tests for the factor-graph + Gibbs substrate. The strongest checks
// compare sampled marginals against exact enumeration on small graphs,
// for the sequential chain, the Hogwild! (PerMachine) sampler, and the
// PerNode multi-chain sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "factor/factor_graph.h"
#include "factor/gibbs.h"

namespace dw::factor {
namespace {

TEST(FactorGraphTest, BuildValidates) {
  EXPECT_FALSE(FactorGraph::Build(2, {{FactorKind::kUnary, 1.0, {}}}).ok());
  EXPECT_FALSE(FactorGraph::Build(2, {{FactorKind::kUnary, 1.0, {5}}}).ok());
  EXPECT_FALSE(
      FactorGraph::Build(2, {{FactorKind::kUnary, 1.0, {0, 1}}}).ok());
  EXPECT_FALSE(FactorGraph::Build(2, {{FactorKind::kIsing, 1.0, {0}}}).ok());
  EXPECT_TRUE(FactorGraph::Build(2, {{FactorKind::kIsing, 1.0, {0, 1}}}).ok());
}

TEST(FactorGraphTest, BipartiteIndexesAreInverse) {
  const FactorGraph g = MakeChainIsing(5, 0.7, 0.2);
  // 5 unary + 4 pairwise factors.
  EXPECT_EQ(g.num_factors(), 9u);
  EXPECT_EQ(g.num_edges(), 5 + 8);
  // Middle variable sees: its unary + two pairwise.
  size_t nf = 0;
  (void)g.VarFactors(2, &nf);
  EXPECT_EQ(nf, 3u);
  // Every factor->var edge appears in var->factor.
  for (FactorId f = 0; f < g.num_factors(); ++f) {
    size_t nv = 0;
    const VarId* vars = g.FactorVars(f, &nv);
    for (size_t k = 0; k < nv; ++k) {
      size_t cnt = 0;
      const FactorId* fs = g.VarFactors(vars[k], &cnt);
      bool found = false;
      for (size_t t = 0; t < cnt; ++t) found |= fs[t] == f;
      EXPECT_TRUE(found);
    }
  }
}

TEST(FactorGraphTest, EnergiesMatchDefinitions) {
  auto g = FactorGraph::Build(
      3, {{FactorKind::kUnary, 2.0, {0}},
          {FactorKind::kIsing, 1.5, {0, 1}},
          {FactorKind::kAnd, 0.5, {0, 1, 2}}});
  ASSERT_TRUE(g.ok());
  const FactorGraph& graph = g.value();
  uint8_t a[3] = {1, 1, 0};
  EXPECT_DOUBLE_EQ(graph.FactorEnergy(0, a), 2.0);   // x0 = 1
  EXPECT_DOUBLE_EQ(graph.FactorEnergy(1, a), 1.5);   // x0 == x1
  EXPECT_DOUBLE_EQ(graph.FactorEnergy(2, a), 0.0);   // AND fails (x2=0)
  a[2] = 1;
  EXPECT_DOUBLE_EQ(graph.FactorEnergy(2, a), 0.5);
  a[1] = 0;
  EXPECT_DOUBLE_EQ(graph.FactorEnergy(1, a), 0.0);   // x0 != x1
  EXPECT_DOUBLE_EQ(graph.TotalEnergy(a), 2.0);
}

TEST(FactorGraphTest, ConditionalLogOddsOfIsolatedUnary) {
  auto g = FactorGraph::Build(1, {{FactorKind::kUnary, 1.3, {0}}});
  ASSERT_TRUE(g.ok());
  uint8_t a[1] = {0};
  EXPECT_NEAR(g.value().ConditionalLogOdds(0, a), 1.3, 1e-12);
  EXPECT_EQ(a[0], 0);  // assignment restored
}

TEST(FactorGraphTest, SampleReadBytesGrowsWithDegree) {
  const FactorGraph g = MakeChainIsing(6, 0.5, 0.1);
  // Endpoint variables touch 2 factors; middle ones touch 3.
  EXPECT_LT(g.SampleReadBytes(0), g.SampleReadBytes(3));
}

TEST(ExactMarginalsTest, SingleVariableMatchesSigmoid) {
  auto g = FactorGraph::Build(1, {{FactorKind::kUnary, 0.8, {0}}});
  ASSERT_TRUE(g.ok());
  const auto m = ExactMarginals(g.value());
  EXPECT_NEAR(m[0], 1.0 / (1.0 + std::exp(-0.8)), 1e-12);
}

TEST(GibbsTest, SequentialMatchesExactOnChain) {
  const FactorGraph g = MakeChainIsing(8, 0.8, 0.3);
  const auto exact = ExactMarginals(g);
  GibbsOptions o;
  o.strategy = GibbsStrategy::kSequential;
  o.sweeps = 4000;
  o.burn_in = 400;
  o.seed = 5;
  const GibbsResult r = RunGibbs(g, o);
  ASSERT_EQ(r.marginals.size(), 8u);
  for (VarId v = 0; v < 8; ++v) {
    EXPECT_NEAR(r.marginals[v], exact[v], 0.05) << "var " << v;
  }
}

TEST(GibbsTest, HogwildMatchesExactOnGrid) {
  const FactorGraph g = MakeGridIsing(4, 4, 0.4, 0.2, 9);
  const auto exact = ExactMarginals(g);
  GibbsOptions o;
  o.strategy = GibbsStrategy::kPerMachine;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.sweeps = 4000;
  o.burn_in = 400;
  o.seed = 6;
  const GibbsResult r = RunGibbs(g, o);
  for (VarId v = 0; v < g.num_vars(); ++v) {
    EXPECT_NEAR(r.marginals[v], exact[v], 0.06) << "var " << v;
  }
}

TEST(GibbsTest, PerNodeChainsMatchExactOnChain) {
  const FactorGraph g = MakeChainIsing(8, 0.6, -0.2);
  const auto exact = ExactMarginals(g);
  GibbsOptions o;
  o.strategy = GibbsStrategy::kPerNode;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.sweeps = 2500;
  o.burn_in = 300;
  o.seed = 7;
  const GibbsResult r = RunGibbs(g, o);
  for (VarId v = 0; v < 8; ++v) {
    EXPECT_NEAR(r.marginals[v], exact[v], 0.05) << "var " << v;
  }
}

TEST(GibbsTest, PerNodeProducesMoreSamplesPerSweep) {
  const FactorGraph g = MakeGridIsing(8, 8, 0.3, 0.1, 3);
  GibbsOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.sweeps = 10;
  o.burn_in = 2;
  o.strategy = GibbsStrategy::kPerMachine;
  const GibbsResult shared = RunGibbs(g, o);
  o.strategy = GibbsStrategy::kPerNode;
  const GibbsResult chains = RunGibbs(g, o);
  // PerNode runs one full chain per node: double the samples on local2.
  EXPECT_EQ(chains.samples, 2 * shared.samples);
}

TEST(GibbsTest, SimulatedThroughputFavorsPerNode) {
  // Fig. 17(b): the PerNode strategy achieves higher sample throughput
  // than PerMachine under the NUMA cost model (paper reports ~4x).
  const FactorGraph g = MakePaleoLike(1e-4, 11);
  GibbsOptions o;
  o.topology = numa::Local4();
  o.sweeps = 3;
  o.burn_in = 1;
  o.strategy = GibbsStrategy::kPerMachine;
  const GibbsResult shared = RunGibbs(g, o);
  o.strategy = GibbsStrategy::kPerNode;
  const GibbsResult chains = RunGibbs(g, o);
  EXPECT_GT(chains.SimSamplesPerSec(), shared.SimSamplesPerSec());
}

TEST(PaleoLikeTest, ShapeRoughlyMatchesFigure10Ratios) {
  const FactorGraph g = MakePaleoLike(1e-4, 13);
  // factors/vars ~ 69/30, edges/factors ~ 108/69.
  const double fv = static_cast<double>(g.num_factors()) / g.num_vars();
  const double ef = static_cast<double>(g.num_edges()) / g.num_factors();
  EXPECT_NEAR(fv, 69.0 / 30.0, 0.6);
  EXPECT_NEAR(ef, 108.0 / 69.0, 0.3);
}

}  // namespace
}  // namespace dw::factor
