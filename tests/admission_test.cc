// Tests for cost-aware admission control and per-client fair queuing:
// opt::AdmissionController (memory-model prior, EWMA calibration, drain
// and budget estimates), RequestBatcher's per-client DRR queues and
// delay-budget admission, ClientId validation, and the end-to-end
// hog-vs-mice fairness property through ServingEngine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "models/glm.h"
#include "opt/admission_controller.h"
#include "serve/request_batcher.h"
#include "serve/serving_engine.h"
#include "util/rng.h"

namespace dw::serve {
namespace {

using matrix::Index;

// --- AdmissionController --------------------------------------------------

opt::AdmissionFamilyProfile Profile(Index dim, int sharing_sockets = 1,
                                    double batch_rows = 64.0) {
  opt::AdmissionFamilyProfile p;
  p.dim = dim;
  p.model_sharing_sockets = sharing_sockets;
  p.expected_batch_rows = batch_rows;
  return p;
}

TEST(AdmissionControllerTest, PriorScalesWithRowWidthAndPlacement) {
  opt::AdmissionController ctl(numa::Local2());
  const int narrow = ctl.AddFamily(Profile(64));
  const int wide = ctl.AddFamily(Profile(16384));
  const int wide_shared =
      ctl.AddFamily(Profile(16384, /*sharing_sockets=*/2));
  EXPECT_EQ(ctl.num_families(), 3);
  // A 256x wider row streams more bytes and more flops per row: the
  // memory-model prior must order the families before any traffic runs.
  EXPECT_GT(ctl.EstimatedRowSeconds(wide), ctl.EstimatedRowSeconds(narrow));
  // A replica shared across sockets serves most model reads over the
  // interconnect; the prior can only get slower, never faster.
  EXPECT_GE(ctl.EstimatedRowSeconds(wide_shared),
            ctl.EstimatedRowSeconds(wide));
  const opt::AdmissionEstimate est = ctl.Estimate(narrow);
  EXPECT_GT(est.prior_row_sec, 0.0);
  EXPECT_DOUBLE_EQ(est.est_row_sec, est.prior_row_sec);  // no reports yet
  EXPECT_EQ(est.reported_batches, 0u);
}

TEST(AdmissionControllerTest, EwmaCalibratesEstimateTowardMeasured) {
  opt::AdmissionController ctl(numa::Local2());
  const int f = ctl.AddFamily(Profile(128));
  const double measured_row_sec = 5e-6;
  for (int i = 0; i < 32; ++i) {
    ctl.ReportBatch(f, 32, 32 * measured_row_sec);
  }
  const opt::AdmissionEstimate est = ctl.Estimate(f);
  EXPECT_EQ(est.reported_batches, 32u);
  EXPECT_NEAR(est.measured_row_sec_ewma, measured_row_sec,
              1e-9 * measured_row_sec);
  // The acceptance-criterion shape: the calibrated estimate converges to
  // within 2x of the measured EWMA (here it lands exactly on it because
  // the measured/prior ratio is inside the clamp).
  EXPECT_GE(est.est_row_sec, 0.5 * est.measured_row_sec_ewma);
  EXPECT_LE(est.est_row_sec, 2.0 * est.measured_row_sec_ewma);
}

TEST(AdmissionControllerTest, CalibrationIsClampedAgainstGarbage) {
  opt::AdmissionControllerOptions opts;
  opts.max_calibration = 4.0;
  opt::AdmissionController ctl(numa::Local2(), opts);
  const int f = ctl.AddFamily(Profile(128));
  const double prior = ctl.Estimate(f).prior_row_sec;
  // One absurd measurement (a descheduled batch billed a full second).
  ctl.ReportBatch(f, 1, 1.0);
  EXPECT_LE(ctl.EstimatedRowSeconds(f), 4.0 * prior + 1e-15);
  // And an absurdly fast one cannot drop the estimate below prior/clamp.
  for (int i = 0; i < 64; ++i) ctl.ReportBatch(f, 1 << 20, 1e-9);
  EXPECT_GE(ctl.EstimatedRowSeconds(f), prior / 4.0 - 1e-15);
}

TEST(AdmissionControllerTest, DegenerateReportsAreDropped) {
  opt::AdmissionController ctl(numa::Local2());
  const int f = ctl.AddFamily(Profile(32));
  ctl.ReportBatch(f, 0, 1.0);    // no rows
  ctl.ReportBatch(f, 16, 0.0);   // clock-granularity zero
  ctl.ReportBatch(f, 16, -1.0);  // impossible
  EXPECT_EQ(ctl.Estimate(f).reported_batches, 0u);
}

TEST(AdmissionControllerTest, DrainScalesWithBacklogAndWorkers) {
  opt::AdmissionControllerOptions one;
  one.drain_workers = 1;
  opt::AdmissionControllerOptions four;
  four.drain_workers = 4;
  opt::AdmissionController ctl1(numa::Local2(), one);
  opt::AdmissionController ctl4(numa::Local2(), four);
  const int f1 = ctl1.AddFamily(Profile(256));
  const int f4 = ctl4.AddFamily(Profile(256));
  EXPECT_DOUBLE_EQ(ctl1.EstimatedDrainSeconds(f1, 0), 0.0);
  EXPECT_GT(ctl1.EstimatedDrainSeconds(f1, 100),
            ctl1.EstimatedDrainSeconds(f1, 10));
  // Four workers retire the same backlog four times faster.
  EXPECT_NEAR(ctl4.EstimatedDrainSeconds(f4, 100),
              ctl1.EstimatedDrainSeconds(f1, 100) / 4.0, 1e-15);
}

TEST(AdmissionControllerTest, BudgetConvertsRowBoundUnlessExplicit) {
  opt::AdmissionController ctl(numa::Local2());
  const int f = ctl.AddFamily(Profile(256));
  // No explicit budget: max_queue_rows is converted into time at the
  // current estimate, i.e. the delay test degenerates to the row bound.
  EXPECT_DOUBLE_EQ(ctl.BudgetSeconds(f, 1024, 0.0),
                   ctl.EstimatedDrainSeconds(f, 1024));
  // An explicit budget wins regardless of the row bound.
  EXPECT_DOUBLE_EQ(ctl.BudgetSeconds(f, 1024, 0.25), 0.25);
}

TEST(AdmissionControllerTest, UpdateModelSharingRepricesPriorAndResetsEwma) {
  // The placement tuner's re-pricing hook: after a replication
  // migration, the family's prior must reflect the NEW placement and the
  // EWMA window must restart -- every batch time in it measured the old
  // byte path.
  opt::AdmissionController ctl(numa::Local2());
  const int f = ctl.AddFamily(Profile(128, /*sharing_sockets=*/2));
  for (int i = 0; i < 4; ++i) ctl.ReportBatch(f, 64, 64 * 3e-6);
  const opt::AdmissionEstimate before = ctl.Estimate(f);
  EXPECT_EQ(before.reported_batches, 4u);

  // kPerMachine -> kPerNode: model reads go local, the prior can only
  // get cheaper; calibration restarts from the fresh prior.
  ctl.UpdateModelSharing(f, 1);
  const opt::AdmissionEstimate after = ctl.Estimate(f);
  EXPECT_LT(after.prior_row_sec, before.prior_row_sec);
  EXPECT_EQ(after.reported_batches, 0u);
  EXPECT_DOUBLE_EQ(after.est_row_sec, after.prior_row_sec);
  EXPECT_DOUBLE_EQ(after.measured_row_sec_ewma, 0.0);

  // Same-value update is a no-op: an unflipped scan must not keep
  // throwing away calibration.
  ctl.ReportBatch(f, 64, 64 * 3e-6);
  ctl.UpdateModelSharing(f, 1);
  EXPECT_EQ(ctl.Estimate(f).reported_batches, 1u);
}

TEST(AdmissionControllerDeathTest, RejectsInvalidProfiles) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  opt::AdmissionController ctl(numa::Local2());
  EXPECT_DEATH(ctl.AddFamily(Profile(0)), "dim");
  const int f = ctl.AddFamily(Profile(8));
  (void)f;
  EXPECT_DEATH(ctl.EstimatedRowSeconds(3), "");
}

// --- ClientId validation --------------------------------------------------

TEST(ClientIdTest, ValidationBoundsTheIdentifier) {
  EXPECT_TRUE(ValidateClientId(ClientId("tenant-a")).ok());
  EXPECT_TRUE(
      ValidateClientId(ClientId(std::string(kMaxClientIdBytes, 'x'))).ok());
  EXPECT_EQ(ValidateClientId(ClientId()).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ValidateClientId(ClientId("")).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(
      ValidateClientId(ClientId(std::string(kMaxClientIdBytes + 1, 'x')))
          .code(),
      Status::Code::kInvalidArgument);
}

TEST(ClientIdTest, BatcherRejectsBadClientsOnBothRequestForms) {
  RequestBatcher b;
  RequestBatcher::Options o;
  o.max_batch_size = 8;
  o.max_delay = std::chrono::seconds(10);
  const FamilyId f = b.AddQueue(o);
  // Both forms share the Enqueue validation tail: identical codes.
  EXPECT_EQ(b.Submit(f, {0}, {1.0}, ClientId("")).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(b.SubmitId(f, 0, ClientId("")).status().code(),
            Status::Code::kInvalidArgument);
  const ClientId oversized(std::string(kMaxClientIdBytes + 1, 'c'));
  EXPECT_EQ(b.Submit(f, {0}, {1.0}, oversized).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(b.SubmitId(f, 0, oversized).status().code(),
            Status::Code::kInvalidArgument);
  // Nothing was admitted or counted.
  EXPECT_EQ(b.queue_stats(f).accepted, 0u);
  EXPECT_TRUE(b.queue_stats(f).clients.empty());
}

TEST(ClientIdDeathTest, OperatorConfigDiesOnInvalidClientOrWeight) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  RequestBatcher b;
  RequestBatcher::Options o;
  const FamilyId f = b.AddQueue(o);
  // SetClientWeight is operator configuration, not request input: an
  // empty or oversized id and a non-positive weight die loudly.
  EXPECT_DEATH(b.SetClientWeight(f, ClientId(""), 1.0), "client id");
  EXPECT_DEATH(
      b.SetClientWeight(f, ClientId(std::string(65, 'x')), 1.0),
      "client id");
  EXPECT_DEATH(b.SetClientWeight(f, ClientId("ok"), 0.0), "weight");
  EXPECT_DEATH(b.SetClientWeight(f, ClientId("ok"), -1.0), "weight");
}

// --- per-client queues in the batcher -------------------------------------

RequestBatcher::Options FairOpts(size_t max_batch, size_t quantum,
                                 size_t max_rows = 1 << 16) {
  RequestBatcher::Options o;
  o.max_batch_size = max_batch;
  o.max_delay = std::chrono::seconds(10);
  o.max_queue_rows = max_rows;
  o.drr_quantum_rows = quantum;
  return o;
}

void MustSubmitAs(RequestBatcher& b, FamilyId f, const ClientId& c,
                  double v) {
  auto fut = b.Submit(f, {0}, {v}, c);
  ASSERT_TRUE(fut.ok()) << fut.status().ToString();
}

TEST(FairQueuingTest, SizeFlushInterleavesClientsByDeficitRoundRobin) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(FairOpts(/*max_batch=*/8, /*quantum=*/4));
  const ClientId hog("hog");
  const ClientId mouse("mouse");
  for (int i = 0; i < 100; ++i) MustSubmitAs(b, f, hog, i);
  for (int i = 0; i < 4; ++i) MustSubmitAs(b, f, mouse, i);
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 8u);
  EXPECT_EQ(batch.reason, FlushReason::kSize);
  // DRR with quantum 4 and equal weights: the hog contributes its 4-row
  // quantum, then the mouse spends its own -- the hog's 100-row backlog
  // cannot squeeze the mouse out of the batch.
  size_t hog_rows = 0;
  size_t mouse_rows = 0;
  for (const ScoreRequest& r : batch.requests) {
    (r.client == hog ? hog_rows : mouse_rows) += 1;
  }
  EXPECT_EQ(hog_rows, 4u);
  EXPECT_EQ(mouse_rows, 4u);
}

TEST(FairQueuingTest, WeightsScaleTheClientsBatchShare) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(FairOpts(/*max_batch=*/12, /*quantum=*/2));
  const ClientId heavy("heavy");
  const ClientId light("light");
  b.SetClientWeight(f, heavy, 2.0);
  b.SetClientWeight(f, light, 1.0);
  for (int i = 0; i < 64; ++i) MustSubmitAs(b, f, heavy, i);
  for (int i = 0; i < 64; ++i) MustSubmitAs(b, f, light, i);
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 12u);
  size_t heavy_rows = 0;
  for (const ScoreRequest& r : batch.requests) {
    if (r.client == heavy) ++heavy_rows;
  }
  // quantum*weight = 4 vs 2 per rotation: a 2:1 split of every batch.
  EXPECT_EQ(heavy_rows, 8u);
}

TEST(FairQueuingTest, FifoModePreservesArrivalOrderAcrossClients) {
  RequestBatcher b;
  RequestBatcher::Options o = FairOpts(/*max_batch=*/6, /*quantum=*/1);
  o.fair_queuing = false;
  const FamilyId f = b.AddQueue(o);
  const ClientId a("a");
  const ClientId c("c");
  const std::vector<const ClientId*> arrivals = {&a, &c, &c, &a, &c, &a};
  for (size_t i = 0; i < arrivals.size(); ++i) {
    MustSubmitAs(b, f, *arrivals[i], static_cast<double>(i));
  }
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 6u);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(batch.requests[i].client, *arrivals[i]) << "slot " << i;
    EXPECT_DOUBLE_EQ(batch.requests[i].values[0], static_cast<double>(i));
  }
}

TEST(FairQueuingTest, PerClientSharesSplitTheRowCap) {
  // Family cap 8, two equal clients: each may hold 4 queued rows. The
  // hog's 5th submit is refused while the mouse's slots stay open.
  RequestBatcher b;
  const FamilyId f =
      b.AddQueue(FairOpts(/*max_batch=*/64, /*quantum=*/4, /*max_rows=*/8));
  const ClientId hog("hog");
  const ClientId mouse("mouse");
  b.SetClientWeight(f, hog, 1.0);
  b.SetClientWeight(f, mouse, 1.0);
  for (int i = 0; i < 4; ++i) MustSubmitAs(b, f, hog, i);
  EXPECT_EQ(b.Submit(f, {0}, {9.0}, hog).status().code(),
            Status::Code::kResourceExhausted);
  for (int i = 0; i < 4; ++i) MustSubmitAs(b, f, mouse, i);
  const RequestBatcher::QueueStats qs = b.queue_stats(f);
  EXPECT_EQ(qs.accepted, 8u);
  EXPECT_EQ(qs.rejected_full, 1u);
  ASSERT_EQ(qs.clients.size(), 2u);
  EXPECT_EQ(qs.clients[0].client, hog);
  EXPECT_EQ(qs.clients[0].rejected, 1u);
  EXPECT_EQ(qs.clients[1].client, mouse);
  EXPECT_EQ(qs.clients[1].rejected, 0u);
}

TEST(FairQueuingTest, ClientRosterIsBoundedAgainstIdAbuse) {
  // Client ids cross a trust boundary: a caller misusing per-request ids
  // as client ids must be refused past max_clients, not allowed to grow
  // server state and dilute every tenant's share without bound.
  RequestBatcher b;
  RequestBatcher::Options o = FairOpts(/*max_batch=*/8, /*quantum=*/4);
  o.max_clients = 2;
  const FamilyId f = b.AddQueue(o);
  MustSubmitAs(b, f, ClientId("tenant-a"), 1.0);
  MustSubmitAs(b, f, ClientId("tenant-b"), 2.0);
  // A third distinct id is refused WITHOUT registering the client...
  EXPECT_EQ(b.Submit(f, {0}, {3.0}, ClientId("req-123")).status().code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(b.queue_stats(f).clients.size(), 2u);
  // ...while known clients keep submitting.
  MustSubmitAs(b, f, ClientId("tenant-a"), 4.0);
}

TEST(FairQueuingDeathTest, OperatorRosterOverflowDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  RequestBatcher b;
  RequestBatcher::Options o;
  o.max_clients = 1;
  const FamilyId f = b.AddQueue(o);
  b.SetClientWeight(f, ClientId("only"), 2.0);
  b.SetClientWeight(f, ClientId("only"), 3.0);  // re-weighting is fine
  EXPECT_DEATH(b.SetClientWeight(f, ClientId("second"), 1.0),
               "roster full");
}

TEST(FairQueuingTest, CostAwareAdmissionRejectsOverDelayBudget) {
  // A controller whose measured service time is enormous: the second
  // request's estimated wait behind the first blows the 1us budget.
  opt::AdmissionControllerOptions copts;
  copts.drain_workers = 1;
  opt::AdmissionController ctl(numa::Local2(), copts);
  ASSERT_EQ(ctl.AddFamily(Profile(64)), 0);
  for (int i = 0; i < 8; ++i) ctl.ReportBatch(0, 1, 1.0);  // 1 s per row

  RequestBatcher b;
  b.AttachController(&ctl);
  RequestBatcher::Options o = FairOpts(/*max_batch=*/64, /*quantum=*/4);
  o.queue_delay_budget = std::chrono::microseconds(1);
  const FamilyId f = b.AddQueue(o);
  // An empty queue is always admissible (zero wait)...
  MustSubmitAs(b, f, kDefaultClient, 1.0);
  // ...but the next request would wait ~seconds behind it: over budget,
  // and the refusal is accounted as a COST rejection, not a full queue.
  auto fut = b.Submit(f, {0}, {2.0}, kDefaultClient);
  ASSERT_FALSE(fut.ok());
  EXPECT_EQ(fut.status().code(), Status::Code::kResourceExhausted);
  const RequestBatcher::QueueStats qs = b.queue_stats(f);
  EXPECT_EQ(qs.rejected_cost, 1u);
  EXPECT_EQ(qs.rejected_full, 0u);
  // The id-keyed form hits the identical budget check.
  EXPECT_EQ(b.SubmitId(f, 0, kDefaultClient).status().code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(b.queue_stats(f).rejected_cost, 2u);
}

TEST(FairQueuingTest, SeededOverloadBoundsMiceRejections) {
  // Property test (seeded, single-threaded, deterministic): a hog
  // submitting 4 rows per tick against three mice submitting one row
  // each per tick, under a tight family cap, with one synthetic drain
  // per full batch. Per-client shares must keep the mice's rejection
  // ratio bounded while the hog eats rejections for its burst.
  Rng rng(1234);
  RequestBatcher b;
  const FamilyId f =
      b.AddQueue(FairOpts(/*max_batch=*/16, /*quantum=*/4, /*max_rows=*/64));
  const ClientId hog("hog");
  const std::vector<ClientId> mice = {ClientId("m0"), ClientId("m1"),
                                      ClientId("m2")};
  uint64_t hog_submitted = 0;
  uint64_t hog_rejected = 0;
  uint64_t mice_submitted = 0;
  uint64_t mice_rejected = 0;
  Batch batch;
  for (int tick = 0; tick < 2000; ++tick) {
    for (int k = 0; k < 12; ++k) {
      ++hog_submitted;
      auto fut = b.Submit(f, {0}, {1.0}, hog);
      if (!fut.ok()) {
        ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted);
        ++hog_rejected;
      }
    }
    const ClientId& m = mice[rng.Below(mice.size())];
    ++mice_submitted;
    auto fut = b.Submit(f, {0}, {1.0}, m);
    if (!fut.ok()) {
      ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted);
      ++mice_rejected;
    }
    // Drain one 16-row batch every OTHER tick: ~8 rows/tick of service
    // against 13 offered -- sustained overload that only the hog's
    // backlog can absorb (its share of the 64-row cap is 16 rows).
    if (tick % 2 == 0 && b.pending() >= 16) {
      ASSERT_TRUE(b.NextBatch(&batch));
    }
  }
  const double hog_ratio =
      static_cast<double>(hog_rejected) / static_cast<double>(hog_submitted);
  const double mice_ratio = static_cast<double>(mice_rejected) /
                            static_cast<double>(mice_submitted);
  // The hog is genuinely overloaded...
  EXPECT_GT(hog_ratio, 0.15) << "overload never materialized";
  // ...while the mice's rejection ratio stays bounded and far below the
  // hog's: their reserved share keeps their queue near-empty.
  EXPECT_LT(mice_ratio, 0.05);
  EXPECT_LT(mice_ratio, hog_ratio / 4.0);
  b.Shutdown();
  while (b.NextBatch(&batch)) {
  }
  EXPECT_EQ(b.pending(), 0u);
}

TEST(FairQueuingTest, IdleClientsAgeOutAndTheirShareReturns) {
  // One-shot clients dilute every tenant's admission share for as long
  // as they sit in the roster. With aging enabled, a departed hog must
  // fall out after client_idle_timeout and its share must flow back --
  // while a pinned operator tenant survives any amount of idleness.
  RequestBatcher b;
  RequestBatcher::Options o =
      FairOpts(/*max_batch=*/4, /*quantum=*/4, /*max_rows=*/12);
  o.client_idle_timeout = std::chrono::milliseconds(50);
  const FamilyId f = b.AddQueue(o);
  const ClientId hog("hog");
  const ClientId mouse("mouse");
  const ClientId vip("vip");
  b.SetClientWeight(f, vip, 1.0);    // pinned, never submits
  b.SetClientWeight(f, mouse, 1.0);  // pinned resident tenant

  // Three clients, equal weights: cap 12 splits to 4 queued rows each.
  for (int i = 0; i < 4; ++i) MustSubmitAs(b, f, hog, i);
  EXPECT_EQ(b.Submit(f, {0}, {9.0}, hog).status().code(),
            Status::Code::kResourceExhausted);
  for (int i = 0; i < 4; ++i) MustSubmitAs(b, f, mouse, i);

  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_TRUE(b.NextBatch(&batch));  // both queues drained
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // The next submit ages the hog out of the roster (idle, empty,
  // unpinned); the mouse's share grows from a third to a half, so it can
  // now hold 6 rows where 4 was its former ceiling.
  for (int i = 0; i < 6; ++i) MustSubmitAs(b, f, mouse, i);
  EXPECT_EQ(b.Submit(f, {0}, {9.0}, mouse).status().code(),
            Status::Code::kResourceExhausted);

  const RequestBatcher::QueueStats qs = b.queue_stats(f);
  bool saw_hog = false;
  bool saw_vip = false;
  for (const RequestBatcher::ClientStats& cs : qs.clients) {
    if (cs.client == hog) saw_hog = true;
    if (cs.client == vip) saw_vip = true;
  }
  EXPECT_FALSE(saw_hog) << "idle hog still holds a roster slot";
  EXPECT_TRUE(saw_vip) << "pinned tenant was aged out";
}

TEST(FairQueuingTest, ReweightResetsEarnedDeficit) {
  // Deficit earned at an old weight must not carry into the new one: a
  // demoted client would otherwise keep draining at its former share
  // for a full earned-credit's worth of rows.
  RequestBatcher b;
  const FamilyId f = b.AddQueue(FairOpts(/*max_batch=*/32, /*quantum=*/16));
  const ClientId big("big");
  const ClientId small("small");
  b.SetClientWeight(f, big, 4.0);
  b.SetClientWeight(f, small, 1.0);
  for (int i = 0; i < 64; ++i) MustSubmitAs(b, f, big, i);
  for (int i = 0; i < 64; ++i) MustSubmitAs(b, f, small, i);

  // weight 4 x quantum 16 = 64 rows of credit: the first batch is all
  // big's, with 32 rows of credit left unspent.
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 32u);
  size_t big_rows = 0;
  for (const ScoreRequest& r : batch.requests) {
    if (r.client == big) ++big_rows;
  }
  EXPECT_EQ(big_rows, 32u);

  // Demotion forfeits the unspent credit: the next batch serves big at
  // the NEW weight (quantum*0.25 = 4 rows per visit), not out of the 32
  // banked rows.
  b.SetClientWeight(f, big, 0.25);
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 32u);
  big_rows = 0;
  size_t small_rows = 0;
  for (const ScoreRequest& r : batch.requests) {
    (r.client == big ? big_rows : small_rows) += 1;
  }
  EXPECT_LE(big_rows, 12u) << "stale deficit survived the reweight";
  EXPECT_GE(small_rows, 20u);
}

TEST(FairQueuingTest, ReweightRacesSubmittersWithoutCorruption) {
  // TSan leg: SetClientWeight is an operator hot-reconfig that runs
  // against live Submit/NextBatch traffic. The weight flip, the deficit
  // reset, and the share-cap reads must all agree under the queue lock;
  // the observable contract here is simply that every accepted row is
  // served exactly once while the weights thrash.
  RequestBatcher b;
  RequestBatcher::Options o =
      FairOpts(/*max_batch=*/16, /*quantum=*/4, /*max_rows=*/256);
  o.max_delay = std::chrono::milliseconds(1);
  const FamilyId f = b.AddQueue(o);
  const ClientId a("a");
  const ClientId c("c");
  b.SetClientWeight(f, a, 1.0);
  b.SetClientWeight(f, c, 1.0);

  constexpr int kPerClient = 400;
  std::atomic<bool> done{false};
  std::thread reweigher([&] {
    double w = 1.0;
    while (!done.load(std::memory_order_acquire)) {
      b.SetClientWeight(f, a, w);
      w = (w == 1.0) ? 4.0 : 1.0;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (const ClientId* id : {&a, &c}) {
    producers.emplace_back([&b, f, id] {
      for (int i = 0; i < kPerClient;) {
        auto fut = b.Submit(f, {0}, {1.0}, *id);
        if (fut.ok()) {
          ++i;
          continue;
        }
        ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted)
            << fut.status().ToString();
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  size_t served = 0;
  Batch batch;
  while (served < 2 * kPerClient) {
    if (b.NextBatch(&batch)) served += batch.rows();
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reweigher.join();
  EXPECT_EQ(served, 2u * kPerClient);
  b.Shutdown();
  while (b.NextBatch(&batch)) {
  }
  EXPECT_EQ(b.pending(), 0u);
}

// --- engine end-to-end ----------------------------------------------------

ServingFamilyOptions ServeFamily(Index dim) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = Replication::kPerNode;
  return o;
}

TEST(AdmissionEngineTest, ClientIdThreadsThroughScoreAndStats) {
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ServingFamilyOptions fam = ServeFamily(8);
  fam.client_weights = {{ClientId("alpha"), 2.0}, {ClientId("beta"), 1.0}};
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, fam).ok());
  server.Publish("ls", std::vector<double>(8, 0.5));
  ASSERT_TRUE(server.Start().ok());

  // Bad client ids are refused at admission on both request forms.
  EXPECT_EQ(server.Score("ls", {0}, {1.0}, ClientId("")).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Score("ls", {0}, {1.0},
                         ClientId(std::string(65, 'y')))
                .status()
                .code(),
            Status::Code::kInvalidArgument);

  for (int i = 0; i < 24; ++i) {
    auto s = server.ScoreSync("ls", {0}, {2.0}, ClientId("alpha"));
    ASSERT_TRUE(s.ok());
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
  }
  for (int i = 0; i < 8; ++i) {
    auto s = server.ScoreSync("ls", {0}, {2.0}, ClientId("beta"));
    ASSERT_TRUE(s.ok());
  }
  // The client-less overloads land on kDefaultClient.
  ASSERT_TRUE(server.ScoreSync("ls", {0}, {2.0}).ok());
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  const FamilyServingStats& f = stats.families[0];
  EXPECT_EQ(f.requests, 33u);
  ASSERT_EQ(f.clients.size(), 3u);  // alpha, beta, default (seen order)
  EXPECT_EQ(f.clients[0].client, "alpha");
  EXPECT_DOUBLE_EQ(f.clients[0].weight, 2.0);
  EXPECT_EQ(f.clients[0].accepted, 24u);
  EXPECT_EQ(f.clients[0].served, 24u);
  EXPECT_EQ(f.clients[1].client, "beta");
  EXPECT_EQ(f.clients[1].accepted, 8u);
  EXPECT_EQ(f.clients[2].client, "default");
  EXPECT_EQ(f.clients[2].accepted, 1u);
  uint64_t accepted = 0;
  for (const ClientServingStats& c : f.clients) accepted += c.accepted;
  EXPECT_EQ(accepted, f.accepted);
  // The workers reported measured batch times into the controller, and
  // the calibrated estimate tracks the EWMA within the clamp.
  EXPECT_GT(f.cost_reports, 0u);
  EXPECT_GT(f.prior_row_us, 0.0);
  EXPECT_GT(f.measured_row_us_ewma, 0.0);
  EXPECT_GT(f.est_row_us, 0.0);
}

TEST(AdmissionEngineTest, HogCannotStarveMiceUnderOverload) {
  // End-to-end fairness: one unthrottled hog floods a one-worker engine
  // while three mice trickle synchronous requests. Per-client shares
  // must keep the mice's rejection ratio well under the hog's.
  models::LogisticSpec lr;
  const Index dim = 128;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(100);
  opts.batch.max_queue_rows = 128;
  ServingEngine server(opts);
  ServingFamilyOptions fam = ServeFamily(dim);
  fam.client_weights = {{ClientId("hog"), 1.0},
                        {ClientId("m0"), 1.0},
                        {ClientId("m1"), 1.0},
                        {ClientId("m2"), 1.0}};
  ASSERT_TRUE(server.RegisterFamily("lr", &lr, fam).ok());
  server.Publish("lr", std::vector<double>(dim, 0.01));
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hog_submitted{0};
  std::atomic<uint64_t> hog_rejected{0};
  std::thread hog([&] {
    std::vector<double> row(dim, 1.0);
    std::vector<std::future<double>> futures;
    while (!stop.load(std::memory_order_acquire)) {
      auto fut = server.Score("lr", {}, row, ClientId("hog"));
      hog_submitted.fetch_add(1);
      if (fut.ok()) {
        futures.push_back(std::move(fut).value());
        if (futures.size() >= 512) {
          for (auto& ff : futures) ff.get();
          futures.clear();
        }
      } else {
        hog_rejected.fetch_add(1);
      }
    }
    for (auto& ff : futures) ff.get();
  });

  uint64_t mice_submitted = 0;
  uint64_t mice_rejected = 0;
  const std::vector<ClientId> mice = {ClientId("m0"), ClientId("m1"),
                                      ClientId("m2")};
  std::vector<double> row(dim, 1.0);
  for (int i = 0; i < 300; ++i) {
    const ClientId& m = mice[i % mice.size()];
    ++mice_submitted;
    auto s = server.ScoreSync("lr", {}, row, m);
    if (!s.ok()) {
      ASSERT_EQ(s.status().code(), Status::Code::kResourceExhausted);
      ++mice_rejected;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_release);
  hog.join();
  server.Stop();

  const double mice_ratio = static_cast<double>(mice_rejected) /
                            static_cast<double>(mice_submitted);
  // The mice keep almost all of their traffic regardless of what the
  // hog managed to do to the queue (generous bound: CI machines vary).
  EXPECT_LT(mice_ratio, 0.2);
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  uint64_t stats_hog_rejected = 0;
  for (const ClientServingStats& c : stats.families[0].clients) {
    if (c.client == "hog") stats_hog_rejected = c.rejected;
  }
  EXPECT_EQ(stats_hog_rejected, hog_rejected.load());
}

}  // namespace
}  // namespace dw::serve
