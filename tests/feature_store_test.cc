// Tests for the serving-time feature store: snapshot layout and ledger
// placement under both placements, publish/hot-swap semantics, the
// id-keyed scoring path end to end (bitwise equality against
// carried-feature requests, per GLM spec), admission edge cases, and a
// TSan-facing stress that hot-swaps table versions under pinned workers
// scoring id-keyed batches.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/glm.h"
#include "numa/numa_allocator.h"
#include "numa/topology.h"
#include "serve/feature_store.h"
#include "serve/serving_engine.h"
#include "util/rng.h"

namespace dw::serve {
namespace {

using matrix::Index;

StoreOptions PinnedStore(StorePlacement p) {
  StoreOptions o;
  o.placement_override = p;
  return o;
}

/// Row-major table with cell (r, j) = r * 1000 + j (every cell names its
/// own coordinates, so a misrouted gather is self-evident).
std::vector<double> CoordinateTable(Index rows, Index dim) {
  std::vector<double> t(static_cast<size_t>(rows) * dim);
  for (Index r = 0; r < rows; ++r) {
    for (Index j = 0; j < dim; ++j) {
      t[static_cast<size_t>(r) * dim + j] = 1000.0 * r + j;
    }
  }
  return t;
}

std::vector<double> RandomTable(Index rows, Index dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> t(static_cast<size_t>(rows) * dim);
  for (auto& v : t) v = rng.Gaussian(0.0, 1.0);
  return t;
}

// --- snapshot layout and ledger -------------------------------------------

TEST(FeatureStoreTest, EmptyUntilFirstPublish) {
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  FeatureStore store("f", alloc, 8, 4,
                     PinnedStore(StorePlacement::kReplicated));
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_EQ(store.Acquire(), nullptr);
  EXPECT_EQ(store.rows(), 8u);
  EXPECT_EQ(store.dim(), 4u);
  EXPECT_EQ(store.rationale(), "explicit override");
}

TEST(FeatureStoreTest, ReplicatedPlacesFullTablePerNode) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 6;
  const Index dim = 4;
  FeatureStore store("f", alloc, rows, dim,
                     PinnedStore(StorePlacement::kReplicated));
  EXPECT_EQ(store.Publish(CoordinateTable(rows, dim)), 1u);

  const auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_shards(), topo.num_nodes);
  EXPECT_EQ(snap->rows(), rows);
  EXPECT_EQ(snap->dim(), dim);
  for (int n = 0; n < topo.num_nodes; ++n) {
    // Every node holds a full copy, so every gather is the reader's own.
    EXPECT_EQ(alloc->ledger().BytesOnNode(n),
              static_cast<size_t>(rows) * dim * sizeof(double));
    for (Index r = 0; r < rows; ++r) {
      EXPECT_EQ(snap->OwnerNodeFor(n, r), n);
      const double* row = snap->RowForNode(n, r);
      for (Index j = 0; j < dim; ++j) {
        EXPECT_DOUBLE_EQ(row[j], 1000.0 * r + j) << "node " << n;
      }
    }
  }
}

TEST(FeatureStoreTest, ShardedInterleavesRowsAcrossNodes) {
  const numa::Topology topo = numa::Local2();
  auto alloc = std::make_shared<numa::NumaAllocator>(topo);
  const Index rows = 7;  // odd: shard 0 holds 4 rows, shard 1 holds 3
  const Index dim = 3;
  FeatureStore store("f", alloc, rows, dim,
                     PinnedStore(StorePlacement::kSharded));
  store.Publish(CoordinateTable(rows, dim));

  const auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_shards(), topo.num_nodes);
  EXPECT_EQ(alloc->ledger().BytesOnNode(0), 4u * dim * sizeof(double));
  EXPECT_EQ(alloc->ledger().BytesOnNode(1), 3u * dim * sizeof(double));
  for (Index r = 0; r < rows; ++r) {
    // Round-robin ownership; the same shard serves readers on BOTH nodes
    // (the remote gather is the point of the Fig. 9 comparison).
    const numa::NodeId owner = static_cast<numa::NodeId>(r % 2);
    EXPECT_EQ(snap->OwnerNodeFor(0, r), owner);
    EXPECT_EQ(snap->OwnerNodeFor(1, r), owner);
    EXPECT_EQ(snap->RowForNode(0, r), snap->RowForNode(1, r));
    const double* row = snap->RowForNode(0, r);
    for (Index j = 0; j < dim; ++j) {
      EXPECT_DOUBLE_EQ(row[j], 1000.0 * r + j) << "row " << r;
    }
  }
}

TEST(FeatureStoreTest, CostModelChoosesPlacement) {
  // No override: the chooser decides from the traffic estimate, exactly
  // like the model-side registry does.
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local8());
  StoreOptions read_heavy;
  read_heavy.reads_per_refresh = 1 << 20;
  FeatureStore hot("hot", alloc, 4096, 2048, read_heavy);
  EXPECT_EQ(hot.placement(), StorePlacement::kReplicated);
  EXPECT_FALSE(hot.rationale().empty());

  StoreOptions refresh_heavy;
  refresh_heavy.reads_per_refresh = 0.0;
  FeatureStore churn("churn", alloc, 4096, 2048, refresh_heavy);
  EXPECT_EQ(churn.placement(), StorePlacement::kSharded);
  EXPECT_FALSE(churn.rationale().empty());
}

TEST(FeatureStoreTest, RepublishSwapsVersionAndOldSnapshotStaysValid) {
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  FeatureStore store("f", alloc, 4, 2,
                     PinnedStore(StorePlacement::kReplicated));
  store.Publish(std::vector<double>(8, 1.0));
  const auto old_snap = store.Acquire();
  EXPECT_EQ(store.Publish(std::vector<double>(8, 2.0)), 2u);
  EXPECT_EQ(store.current_version(), 2u);
  // The old table stays valid while referenced (an in-flight batch keeps
  // gathering from it)...
  EXPECT_DOUBLE_EQ(old_snap->RowForNode(0, 3)[1], 1.0);
  EXPECT_DOUBLE_EQ(store.Acquire()->RowForNode(0, 3)[1], 2.0);
  // ...and both versions' bytes are live until the old one is released.
  EXPECT_EQ(alloc->ledger().BytesOnNode(0), 2u * 8 * sizeof(double));
}

TEST(FeatureStoreTest, SnapshotOutlivesStore) {
  std::shared_ptr<const FeatureStoreSnapshot> snap;
  {
    auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
    FeatureStore store("f", alloc, 2, 2,
                       PinnedStore(StorePlacement::kSharded));
    store.Publish({1.0, 2.0, 3.0, 4.0});
    snap = store.Acquire();
  }
  // The snapshot keeps its allocator (and ledger) alive.
  EXPECT_DOUBLE_EQ(snap->RowForNode(1, 1)[1], 4.0);
}

TEST(FeatureStoreTest, PublishRejectsShapeMismatch) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  FeatureStore store("f", alloc, 4, 4,
                     PinnedStore(StorePlacement::kReplicated));
  EXPECT_DEATH(store.Publish(std::vector<double>(15, 1.0)),
               "shape mismatch");
}

TEST(FeatureStoreTest, RowAccessorsValidateIndices) {
  // An out-of-range row id under kSharded would index past a shard and
  // silently serve a neighboring row's features; both accessors must
  // refuse loudly instead.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto alloc = std::make_shared<numa::NumaAllocator>(numa::Local2());
  FeatureStore store("f", alloc, 4, 2,
                     PinnedStore(StorePlacement::kSharded));
  store.Publish(std::vector<double>(8, 1.0));
  const auto snap = store.Acquire();
  EXPECT_DOUBLE_EQ(snap->RowForNode(1, 3)[0], 1.0);
  EXPECT_DEATH(snap->RowForNode(0, 4), "row out of range");
  EXPECT_DEATH(snap->OwnerNodeFor(0, 100), "row out of range");
  EXPECT_DEATH(snap->RowForNode(2, 0), "node out of range");
  EXPECT_DEATH(snap->RowForNode(-1, 0), "negative node");
}

// --- serving-engine integration -------------------------------------------

ServingFamilyOptions ServeFamily(Index dim) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = Replication::kPerNode;
  return o;
}

StoreOptions PinnedServeStore(StorePlacement p) {
  StoreOptions o;
  o.placement_override = p;
  return o;
}

TEST(FeatureStoreServingTest, RegisterStoreValidatesInput) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("lr", &lr, ServeFamily(8)).ok());

  // Unknown family.
  EXPECT_EQ(server.RegisterStore("nope", 4, 8).code(),
            Status::Code::kNotFound);
  // Degenerate shapes.
  EXPECT_EQ(server.RegisterStore("lr", 0, 8).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.RegisterStore("lr", 4, 0).code(),
            Status::Code::kInvalidArgument);
  // Store dim must match the family's model dim: an id-keyed row feeds
  // the family's PredictBatch directly.
  EXPECT_EQ(server.RegisterStore("lr", 4, 9).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(server.RegisterStore("lr", 4, 8).ok());
  // One store per family.
  EXPECT_EQ(server.RegisterStore("lr", 4, 8).code(),
            Status::Code::kInvalidArgument);

  const FeatureStore* store = server.FindStore("lr");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->rows(), 4u);
  EXPECT_EQ(store->dim(), 8u);
  EXPECT_EQ(server.FindStore("nope"), nullptr);

  server.Publish("lr", std::vector<double>(8, 0.5));
  // A registered store must be published before Start: the id-keyed form
  // it promises would otherwise fail until the first refresh.
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
  server.PublishStore("lr", RandomTable(4, 8, 3));
  ASSERT_TRUE(server.Start().ok());
  // The family set (stores included) is frozen while serving.
  EXPECT_EQ(server.RegisterStore("lr", 4, 8).code(),
            Status::Code::kFailedPrecondition);
  server.Stop();
}

TEST(FeatureStoreServingTest, PublishStoreRequiresARegisteredStore) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("svm", &svm, ServeFamily(4)).ok());
  EXPECT_DEATH(server.PublishStore("nope", std::vector<double>(4, 1.0)),
               "unregistered family");
  EXPECT_DEATH(server.PublishStore("svm", std::vector<double>(4, 1.0)),
               "no feature store");
}

TEST(FeatureStoreServingTest, IdAdmissionEdgeCases) {
  // The satellite's admission matrix: every id-keyed failure reports the
  // SAME Status code its carried-feature analogue reports.
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, ServeFamily(4)).ok());
  server.Publish("ls", std::vector<double>(4, 0.5));

  // Unknown family: NotFound, like the carried form.
  EXPECT_EQ(server.Score("nope", 0).status().code(),
            Status::Code::kNotFound);
  // Id-keyed request against a family with no registered store.
  EXPECT_EQ(server.Score("ls", 0).status().code(),
            Status::Code::kFailedPrecondition);

  ASSERT_TRUE(
      server.RegisterStore("ls", 8, 4,
                           PinnedServeStore(StorePlacement::kReplicated))
          .ok());
  server.PublishStore("ls", RandomTable(8, 4, 5));
  // Out-of-range row id: InvalidArgument, exactly like an out-of-range
  // carried feature index.
  EXPECT_EQ(server.Score("ls", 8).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Score("ls", {4}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  // Valid but pre-Start: FailedPrecondition for both forms.
  EXPECT_EQ(server.Score("ls", 3).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score("ls", {3}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);

  ASSERT_TRUE(server.Start().ok());
  auto ok = server.ScoreSync("ls", 3);
  EXPECT_TRUE(ok.ok());
  server.Stop();
}

/// Per-GLM-spec serving fixture for the bitwise acceptance check.
template <typename SpecT>
class IdKeyedGlmServingTest : public ::testing::Test {
 protected:
  SpecT spec;
};

using GlmSpecs =
    ::testing::Types<models::SvmSpec, models::LogisticSpec,
                     models::LeastSquaresSpec>;
TYPED_TEST_SUITE(IdKeyedGlmServingTest, GlmSpecs);

TYPED_TEST(IdKeyedGlmServingTest, IdKeyedScoresBitwiseEqualCarried) {
  // The acceptance criterion: Score(family, row_id) must be BITWISE equal
  // to the same row submitted as a carried-feature request. Both forms
  // reach the kernels as the same explicit dense view (the id-keyed row
  // points into the store snapshot; the carried row is its own buffer),
  // and single-row sync batches pin the kernel's tiling decisions, so
  // exact equality is the contract -- under both placements.
  const Index rows = 24;
  const Index dim = 48;
  const std::vector<double> table = RandomTable(rows, dim, 11);
  Rng rng(12);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.4);

  for (const StorePlacement placement :
       {StorePlacement::kReplicated, StorePlacement::kSharded}) {
    ServingOptions opts;
    opts.topology = numa::Local2();
    opts.batch.max_batch_size = 8;
    opts.batch.max_delay = std::chrono::microseconds(100);
    ServingEngine server(opts);
    ASSERT_TRUE(
        server.RegisterFamily("glm", &this->spec, ServeFamily(dim)).ok());
    ASSERT_TRUE(
        server.RegisterStore("glm", rows, dim, PinnedServeStore(placement))
            .ok());
    server.Publish("glm", weights);
    server.PublishStore("glm", table);
    ASSERT_TRUE(server.Start().ok());

    for (Index r = 0; r < rows; ++r) {
      const std::vector<double> carried(
          table.begin() + static_cast<size_t>(r) * dim,
          table.begin() + static_cast<size_t>(r + 1) * dim);
      auto by_id = server.ScoreSync("glm", r);
      auto by_value = server.ScoreSync("glm", {}, carried);
      ASSERT_TRUE(by_id.ok());
      ASSERT_TRUE(by_value.ok());
      EXPECT_EQ(by_id.value(), by_value.value())
          << this->spec.name() << " row " << r << " under "
          << ToString(placement);
    }
    server.Stop();
  }
}

TEST(FeatureStoreServingTest, MixedCarriedAndIdRequestsShareBatches) {
  // Both request forms interleave in ONE family queue; flushed batches
  // mix them and every score must match the reference Predict.
  models::LogisticSpec lr;
  const Index rows = 32;
  const Index dim = 24;
  const std::vector<double> table = RandomTable(rows, dim, 21);
  Rng rng(22);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.5);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(200);
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("lr", &lr, ServeFamily(dim)).ok());
  ASSERT_TRUE(
      server.RegisterStore("lr", rows, dim,
                           PinnedServeStore(StorePlacement::kReplicated))
          .ok());
  server.Publish("lr", weights);
  server.PublishStore("lr", table);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kRounds = 8;
  std::vector<std::future<double>> id_futs;
  std::vector<std::future<double>> carried_futs;
  for (int round = 0; round < kRounds; ++round) {
    for (Index r = 0; r < rows; ++r) {
      auto idf = server.Score("lr", r);
      ASSERT_TRUE(idf.ok());
      id_futs.push_back(std::move(idf).value());
      const std::vector<double> carried(
          table.begin() + static_cast<size_t>(r) * dim,
          table.begin() + static_cast<size_t>(r + 1) * dim);
      auto cf = server.Score("lr", {}, carried);
      ASSERT_TRUE(cf.ok());
      carried_futs.push_back(std::move(cf).value());
    }
  }
  for (int round = 0; round < kRounds; ++round) {
    for (Index r = 0; r < rows; ++r) {
      const matrix::SparseVectorView view{
          nullptr, table.data() + static_cast<size_t>(r) * dim, dim};
      const double reference = lr.Predict(weights.data(), view);
      const size_t k = static_cast<size_t>(round) * rows + r;
      // Mixed batches vary the dense kernel's 4-row tiling, so the bound
      // is reassociation epsilon, not bitwise.
      EXPECT_NEAR(id_futs[k].get(), reference, 1e-12) << "id row " << r;
      EXPECT_NEAR(carried_futs[k].get(), reference, 1e-12)
          << "carried row " << r;
    }
  }
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  const FamilyServingStats& f = stats.families[0];
  EXPECT_EQ(f.requests, 2u * kRounds * rows);
  EXPECT_EQ(f.id_rows, static_cast<uint64_t>(kRounds) * rows);
  // Replicated store: every gather is the worker's own node.
  EXPECT_EQ(f.local_store_rows, f.id_rows);
  EXPECT_EQ(f.remote_store_rows, 0u);
  EXPECT_EQ(f.store_version, 1u);
}

TEST(FeatureStoreServingTest, ShardedGatherAccountsLocalAndRemoteRows) {
  models::LeastSquaresSpec ls;
  const Index rows = 16;
  const Index dim = 8;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 2;  // one worker per node
  opts.batch.max_batch_size = 4;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, ServeFamily(dim)).ok());
  ASSERT_TRUE(
      server.RegisterStore("ls", rows, dim,
                           PinnedServeStore(StorePlacement::kSharded))
          .ok());
  server.Publish("ls", std::vector<double>(dim, 1.0));
  server.PublishStore("ls", CoordinateTable(rows, dim));
  ASSERT_TRUE(server.Start().ok());

  constexpr int kTotal = 256;
  for (int i = 0; i < kTotal; ++i) {
    const Index r = static_cast<Index>(i % rows);
    auto s = server.ScoreSync("ls", r);
    ASSERT_TRUE(s.ok());
    // sum_j (1000 r + j) = dim * 1000 r + dim(dim-1)/2.
    EXPECT_DOUBLE_EQ(s.value(), 1000.0 * r * dim + dim * (dim - 1) / 2.0);
  }
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  const FamilyServingStats& f = stats.families[0];
  EXPECT_EQ(f.id_rows, static_cast<uint64_t>(kTotal));
  // Which worker drained each batch is scheduling, but the local/remote
  // split must reconcile exactly, and remote gathers must be mirrored in
  // the interconnect traffic counter.
  EXPECT_EQ(f.local_store_rows + f.remote_store_rows, f.id_rows);
  EXPECT_GE(stats.traffic.remote_read_bytes,
            f.remote_store_rows * dim * sizeof(double));
}

TEST(FeatureStoreServingTest, HotSwapStoreWhileScoringNeverTearsARow) {
  // The satellite TSan stress: a publisher hot-swaps the feature table
  // while pinned workers score id-keyed batches. Version v's table holds
  // the constant v in every cell, and the model weights are all ones, so
  // a scored row must equal v * dim for SOME whole published v -- a torn
  // row (cells from two versions) or a torn batch would produce a
  // non-integral multiple and fail loudly.
  models::LeastSquaresSpec ls;
  const Index rows = 32;
  const Index dim = 64;
  constexpr int kVersions = 120;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(50);
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, ServeFamily(dim)).ok());
  ASSERT_TRUE(
      server.RegisterStore("ls", rows, dim,
                           PinnedServeStore(StorePlacement::kReplicated))
          .ok());
  server.Publish("ls", std::vector<double>(dim, 1.0));
  server.PublishStore(
      "ls", std::vector<double>(static_cast<size_t>(rows) * dim, 1.0));
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int v = 2; v <= kVersions; ++v) {
      server.PublishStore(
          "ls", std::vector<double>(static_cast<size_t>(rows) * dim,
                                    static_cast<double>(v)));
      std::this_thread::yield();  // give scorers a slice of every version
    }
    stop.store(true, std::memory_order_release);
  });

  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      Index r = static_cast<Index>(t);
      uint64_t scored = 0;
      // Keep scoring until the publisher is done AND a minimum overlap
      // is in the books (the publisher may outrun a slow-starting
      // producer thread on a loaded CI box).
      while (!stop.load(std::memory_order_acquire) || scored < 64) {
        auto s = server.ScoreSync("ls", r);
        ASSERT_TRUE(s.ok()) << s.status().ToString();
        const double v = s.value() / static_cast<double>(dim);
        if (v != std::floor(v) || v < 1.0 ||
            v > static_cast<double>(kVersions)) {
          torn.fetch_add(1);
        }
        r = (r + 1) % rows;
        ++scored;
      }
    });
  }
  publisher.join();
  for (auto& t : producers) t.join();
  server.Stop();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(server.FindStore("ls")->current_version(),
            static_cast<uint64_t>(kVersions));
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_EQ(stats.families[0].store_version,
            static_cast<uint64_t>(kVersions));
  EXPECT_GT(stats.families[0].id_rows, 0u);
}

}  // namespace
}  // namespace dw::serve
