// Cross-module integration tests: optimizer-driven end-to-end training,
// grid search, loss-curve persistence, baseline orderings, and the
// qualitative claims each paper figure rests on, exercised at test scale.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/baselines.h"
#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "engine/engine.h"
#include "engine/grid_search.h"
#include "engine/run_io.h"
#include "models/glm.h"
#include "models/graph_opt.h"
#include "opt/optimizer.h"

namespace dw {
namespace {

using data::Dataset;
using engine::AccessMethod;
using engine::DataReplication;
using engine::EngineOptions;
using engine::ModelReplication;
using engine::RunResult;

EngineOptions TestOptions() {
  EngineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 2;
  o.seed = 11;
  return o;
}

TEST(IntegrationTest, OptimizerPlanTrainsEveryModelFamily) {
  struct Case {
    Dataset dataset;
    std::unique_ptr<models::ModelSpec> spec;
    double step;
  };
  std::vector<Case> cases;
  cases.push_back({data::Rcv1(0.0015), std::make_unique<models::SvmSpec>(),
                   0.1});
  cases.push_back({data::Reuters(0.1),
                   std::make_unique<models::LogisticSpec>(), 0.1});
  cases.push_back({data::Music(0.002),
                   std::make_unique<models::LeastSquaresSpec>(), 0.005});
  cases.push_back({data::AmazonLp(0.0015), std::make_unique<models::LpSpec>(),
                   0.05});
  cases.push_back({data::GoogleQp(0.001), std::make_unique<models::QpSpec>(),
                   0.3});

  for (const Case& c : cases) {
    EngineOptions o = TestOptions();
    o.step_size = c.step;
    const opt::PlanChoice plan =
        opt::ChoosePlan(c.dataset, *c.spec, o.topology);
    opt::ApplyChoice(plan, &o);
    engine::Engine eng(&c.dataset, c.spec.get(), o);
    ASSERT_TRUE(eng.Init().ok()) << c.spec->name();
    engine::RunConfig cfg;
    cfg.max_epochs = 12;
    const RunResult rr = eng.Run(cfg);
    EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss)
        << c.spec->name() << " under " << plan.rationale;
  }
}

TEST(IntegrationTest, GridSearchPicksAStableStep) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 300, .cols = 12, .seed = 5});
  d.b = data::PlantRegressionTargets(d.a, 0.05, 6);
  models::LeastSquaresSpec ls;
  // 3.0 diverges for LS on this data; the grid must not select it.
  const auto gs = engine::GridSearchStepSize(
      d, ls, TestOptions(), 20, /*optimal_loss=*/0.0013,
      {3.0, 0.03, 0.003});
  EXPECT_LT(gs.best_step, 3.0);
  EXPECT_LT(gs.best_run.BestLoss(), 0.05);
}

TEST(IntegrationTest, LossCurveCsvRoundTrips) {
  const Dataset d = data::Reuters(0.1);
  models::SvmSpec svm;
  EngineOptions o = TestOptions();
  engine::Engine eng(&d, &svm, o);
  ASSERT_TRUE(eng.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 5;
  const RunResult rr = eng.Run(cfg);

  const std::string path = ::testing::TempDir() + "/dw_curve.csv";
  ASSERT_TRUE(engine::WriteLossCurveCsv(path, rr).ok());
  const auto rt = engine::ReadLossCurveCsv(path);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt.value().epochs.size(), rr.epochs.size());
  for (size_t i = 0; i < rr.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(rt.value().epochs[i].loss, rr.epochs[i].loss);
    EXPECT_DOUBLE_EQ(rt.value().epochs[i].wall_sec, rr.epochs[i].wall_sec);
    EXPECT_EQ(rt.value().epochs[i].traffic.local_read_bytes,
              rr.epochs[i].traffic.local_read_bytes);
  }
  EXPECT_NEAR(rt.value().TotalWallSec(), rr.TotalWallSec(), 1e-12);
  std::remove(path.c_str());
}

TEST(IntegrationTest, ReadLossCurveCsvRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/dw_garbage.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("header\nnot,a,number\n", f);
  std::fclose(f);
  EXPECT_FALSE(engine::ReadLossCurveCsv(path).ok());
  EXPECT_FALSE(engine::ReadLossCurveCsv("/no/such/file.csv").ok());
  std::remove(path.c_str());
}

// Figure 12(a)'s claim at test scale: the wrong access method is orders
// of magnitude slower in simulated time for LP.
TEST(IntegrationTest, AccessMethodMattersForLp) {
  const Dataset lp_data = data::AmazonLp(0.002);
  models::LpSpec lp;
  EngineOptions o = TestOptions();
  o.step_size = 0.05;

  o.access = AccessMethod::kColToRow;
  o.model_rep = ModelReplication::kPerMachine;
  engine::Engine col(&lp_data, &lp, o);
  ASSERT_TRUE(col.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 10;
  const RunResult col_rr = col.Run(cfg);

  o.access = AccessMethod::kRowWise;
  engine::Engine row(&lp_data, &lp, o);
  ASSERT_TRUE(row.Init().ok());
  const RunResult row_rr = row.Run(cfg);

  // Column access reaches a loss in 10 epochs that row access has not.
  EXPECT_LT(col_rr.BestLoss(), row_rr.BestLoss());
}

// Figure 13's mechanism at test scale: PerMachine generates cross-socket
// traffic that PerNode avoids entirely.
TEST(IntegrationTest, PerNodeEliminatesCrossSocketModelTraffic) {
  const Dataset d = data::Rcv1(0.0015);
  models::SvmSpec svm;
  EngineOptions o = TestOptions();

  o.model_rep = ModelReplication::kPerNode;
  engine::Engine pn(&d, &svm, o);
  ASSERT_TRUE(pn.Init().ok());
  (void)pn.RunEpochNoEval();

  o.model_rep = ModelReplication::kPerMachine;
  engine::Engine pm(&d, &svm, o);
  ASSERT_TRUE(pm.Init().ok());
  (void)pm.RunEpochNoEval();

  EXPECT_EQ(pn.last_epoch_sim().traffic.Total().shared_write_bytes, 0u);
  EXPECT_GT(pm.last_epoch_sim().traffic.Total().shared_write_bytes, 0u);
  EXPECT_GT(pm.last_epoch_sim().traffic.Total().remote_dram_requests(),
            pn.last_epoch_sim().traffic.Total().remote_dram_requests());
}

// GLM f_col and f_ctr implement the same mathematical update: starting
// from the same model with a fresh aux, one column step must produce the
// same coordinate value.
TEST(IntegrationTest, GlmColAndCtrAgree) {
  const Dataset d = data::Reuters(0.1);
  const matrix::CscMatrix csc = matrix::CscMatrix::FromCsr(d.a);
  for (const auto* spec :
       {static_cast<const models::ModelSpec*>(new models::SvmSpec()),
        static_cast<const models::ModelSpec*>(new models::LogisticSpec()),
        static_cast<const models::ModelSpec*>(
            new models::LeastSquaresSpec())}) {
    std::vector<double> m_col(d.a.cols(), 0.01);
    std::vector<double> m_ctr(d.a.cols(), 0.01);
    std::vector<double> aux(spec->AuxDim(d));
    spec->RefreshAux(d, m_col.data(), aux.data());
    models::StepContext ctx{&d, &csc, 0.5};
    for (matrix::Index j = 0; j < 20; ++j) {
      spec->ColStep(ctx, j, m_col.data(), aux.data());
      spec->CtrStep(ctx, j, m_ctr.data(), nullptr);
    }
    for (matrix::Index j = 0; j < 20; ++j) {
      EXPECT_NEAR(m_col[j], m_ctr[j], 1e-9) << spec->name() << " col " << j;
    }
    delete spec;
  }
}

// The engine's FullReplication must process #nodes x the data per epoch;
// the traffic counters prove it.
TEST(IntegrationTest, FullReplicationDoublesEpochTraffic) {
  const Dataset d = data::Reuters(0.1);
  models::SvmSpec svm;
  EngineOptions o = TestOptions();

  o.data_rep = DataReplication::kSharding;
  engine::Engine shard(&d, &svm, o);
  ASSERT_TRUE(shard.Init().ok());
  const auto shard_rec = shard.RunEpochNoEval();

  o.data_rep = DataReplication::kFullReplication;
  engine::Engine full(&d, &svm, o);
  ASSERT_TRUE(full.Init().ok());
  const auto full_rec = full.RunEpochNoEval();

  EXPECT_NEAR(static_cast<double>(full_rec.traffic.total_read_bytes()) /
                  shard_rec.traffic.total_read_bytes(),
              2.0, 0.01);  // local2 has 2 nodes
}

// Subsampled datasets slot straight into the engine (the Fig. 7(b)/16(b)
// sweep machinery).
TEST(IntegrationTest, SubsampledDatasetTrains) {
  const Dataset base = data::WithBinaryLabels(data::Music(0.002));
  const Dataset sub = data::SubsampleElements(base, 0.1, 3);
  models::SvmSpec svm;
  EngineOptions o = TestOptions();
  o.step_size = 0.05;
  engine::Engine eng(&sub, &svm, o);
  ASSERT_TRUE(eng.Init().ok());
  engine::RunConfig cfg;
  cfg.max_epochs = 10;
  const RunResult rr = eng.Run(cfg);
  EXPECT_LT(rr.epochs.back().loss, rr.epochs.front().loss);
}

// Baseline ordering at test scale (the Fig. 11 story): Hogwild! reaches a
// mid-range SVM loss faster than the bulk-synchronous MLlib style.
TEST(IntegrationTest, SgdBeatsMinibatchOnWallClock) {
  Dataset d;
  d.a = data::MakeDenseTable({.rows = 600, .cols = 16, .seed = 9});
  d.b = data::PlantClassificationLabels(d.a, 16, 0.02, 10);
  models::SvmSpec svm;
  baselines::BaselineOptions o;
  o.topology = numa::Local2();
  o.topology.cores_per_node = 1;
  o.max_epochs = 20;
  o.step_size = 0.05;
  const RunResult hog = baselines::RunHogwild(d, svm, o);
  o.step_size = 0.5;
  o.batch_fraction = 1.0;
  const RunResult mllib = baselines::RunMLlibStyle(d, svm, o);
  const double target = 0.35;
  EXPECT_LT(hog.WallSecToLoss(target), mllib.WallSecToLoss(target));
}

}  // namespace
}  // namespace dw
