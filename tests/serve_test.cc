// Tests for src/serve: per-family registry placement, cost-model-chosen
// replication, hot-swap safety, per-family batcher flush semantics and
// admission counters, the async snapshot exporter, and end-to-end serving
// correctness against single-threaded reference scores.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "engine/metrics.h"
#include "models/glm.h"
#include "serve/model_registry.h"
#include "serve/request_batcher.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_exporter.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dw::serve {
namespace {

using matrix::Index;

std::vector<double> ConstantWeights(size_t dim, double v) {
  return std::vector<double>(dim, v);
}

/// Family options with an explicit replication (placement tests pin the
/// strategy; the chooser has its own tests).
FamilyOptions PinnedFamily(Index dim, Replication rep) {
  FamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = rep;
  return o;
}

/// Family options that let the cost model decide.
FamilyOptions AutoFamily(Index dim, double reads_per_publish) {
  FamilyOptions o;
  o.traffic.dim = dim;
  o.traffic.reads_per_publish = reads_per_publish;
  return o;
}

ServingFamilyOptions ServePinned(Index dim, Replication rep) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.replication_override = rep;
  return o;
}

ServingFamilyOptions ServeAuto(Index dim, double reads_per_publish = 1024.0,
                               double batch_rows = 64.0) {
  ServingFamilyOptions o;
  o.traffic.dim = dim;
  o.traffic.reads_per_publish = reads_per_publish;
  o.traffic.expected_batch_rows = batch_rows;
  return o;
}

// --- registry -------------------------------------------------------------

TEST(ModelRegistryTest, EmptyUntilFirstPublish) {
  ModelRegistry reg(numa::Local2());
  ModelFamily* m = reg.RegisterFamily("m", PinnedFamily(16, Replication::kPerNode));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->current_version(), 0u);
  EXPECT_EQ(m->Acquire(), nullptr);
  EXPECT_EQ(reg.FindFamily("m"), m);
  EXPECT_EQ(reg.FindFamily("unknown"), nullptr);
  EXPECT_EQ(reg.num_families(), 1);
}

TEST(ModelRegistryTest, RegistrationIsFirstWins) {
  ModelRegistry reg(numa::Local2());
  ModelFamily* a = reg.RegisterFamily("m", PinnedFamily(16, Replication::kPerNode));
  ModelFamily* b =
      reg.RegisterFamily("m", PinnedFamily(32, Replication::kPerMachine));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->dim(), 16u);
  EXPECT_EQ(b->replication(), Replication::kPerNode);
}

TEST(ModelRegistryTest, PerNodePlacesOneReplicaPerNode) {
  const numa::Topology topo = numa::Local2();
  ModelRegistry reg(topo);
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(128, Replication::kPerNode));
  const uint64_t v = m->Publish(ConstantWeights(128, 1.5));
  EXPECT_EQ(v, 1u);

  const auto snap = m->Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_replicas(), topo.num_nodes);
  EXPECT_EQ(snap->dim(), 128u);
  EXPECT_EQ(snap->family(), "m");
  EXPECT_EQ(m->dim(), 128u);
  for (int n = 0; n < topo.num_nodes; ++n) {
    EXPECT_EQ(snap->ReplicaNodeFor(n), n);
    EXPECT_DOUBLE_EQ(snap->WeightsForNode(n)[127], 1.5);
    // Every node holds a full copy of the model bytes.
    EXPECT_EQ(reg.ledger().BytesOnNode(n), 128 * sizeof(double));
  }
}

TEST(ModelRegistryTest, PerMachineKeepsOneCopyOnNodeZero) {
  const numa::Topology topo = numa::Local2();
  ModelRegistry reg(topo);
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(64, Replication::kPerMachine));
  m->Publish(ConstantWeights(64, 2.0));

  const auto snap = m->Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_replicas(), 1);
  // Readers on every node route to the node-0 copy.
  EXPECT_EQ(snap->ReplicaNodeFor(0), 0);
  EXPECT_EQ(snap->ReplicaNodeFor(1), 0);
  EXPECT_EQ(snap->WeightsForNode(0), snap->WeightsForNode(1));
  EXPECT_EQ(reg.ledger().BytesOnNode(0), 64 * sizeof(double));
  EXPECT_EQ(reg.ledger().BytesOnNode(1), 0u);
}

TEST(ModelRegistryTest, CostModelChoosesReplicationPerFamily) {
  // The acceptance shape: two concurrently-registered families whose
  // replication the opt:: cost model chooses INDEPENDENTLY. On the
  // paper's 8-socket local8, a read-heavy family must come out kPerNode
  // (remote reads would saturate the interconnect), while a
  // republish-dominated family (every publish serves almost no reads)
  // must come out kPerMachine (replicating 8x buys nothing).
  const numa::Topology topo = numa::Local8();
  ModelRegistry reg(topo);
  ModelFamily* wide =
      reg.RegisterFamily("wide-lr", AutoFamily(4096, /*reads_per_publish=*/4096));
  ModelFamily* refresh =
      reg.RegisterFamily("hot-refresh", AutoFamily(4096, /*reads_per_publish=*/0));
  ASSERT_NE(wide, nullptr);
  ASSERT_NE(refresh, nullptr);
  EXPECT_EQ(wide->replication(), Replication::kPerNode);
  EXPECT_EQ(refresh->replication(), Replication::kPerMachine);
  EXPECT_FALSE(wide->rationale().empty());
  EXPECT_FALSE(refresh->rationale().empty());

  // Both families publish and serve concurrently; placement follows each
  // family's own strategy.
  wide->Publish(ConstantWeights(4096, 1.0));
  refresh->Publish(ConstantWeights(4096, 2.0));
  EXPECT_EQ(wide->Acquire()->num_replicas(), topo.num_nodes);
  EXPECT_EQ(refresh->Acquire()->num_replicas(), 1);
  // Node 0 holds one replica of each; node 1..7 only the wide family's.
  EXPECT_EQ(reg.ledger().BytesOnNode(0), 2 * 4096 * sizeof(double));
  EXPECT_EQ(reg.ledger().BytesOnNode(7), 4096 * sizeof(double));
}

TEST(ModelRegistryTest, RepublishSwapsVersionAndFreesOldReplicas) {
  ModelRegistry reg(numa::Local2());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(32, Replication::kPerNode));
  m->Publish(ConstantWeights(32, 1.0));
  const auto old_snap = m->Acquire();
  EXPECT_EQ(m->Publish(ConstantWeights(32, 2.0)), 2u);
  EXPECT_EQ(m->current_version(), 2u);
  // The old snapshot stays valid while referenced...
  EXPECT_DOUBLE_EQ(old_snap->WeightsForNode(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(m->Acquire()->WeightsForNode(0)[0], 2.0);
  // ...and both versions' bytes are live until the old one is released.
  EXPECT_EQ(reg.ledger().BytesOnNode(0), 2 * 32 * sizeof(double));
}

TEST(ModelRegistryTest, PublishRejectsDimensionMismatch) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ModelRegistry reg(numa::Local2());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(32, Replication::kPerNode));
  EXPECT_DEATH(m->Publish(ConstantWeights(16, 1.0)), "dimension mismatch");
}

TEST(ModelRegistryTest, SnapshotOutlivesRegistry) {
  std::shared_ptr<const ModelSnapshot> snap;
  {
    ModelRegistry reg(numa::Local2());
    ModelFamily* m =
        reg.RegisterFamily("m", PinnedFamily(16, Replication::kPerNode));
    m->Publish(ConstantWeights(16, 3.0));
    snap = m->Acquire();
  }
  // The snapshot keeps its allocator (and ledger) alive.
  EXPECT_DOUBLE_EQ(snap->WeightsForNode(1)[15], 3.0);
}

TEST(ModelRegistryTest, ReplicaAccessorsValidateNodeIndex) {
  // Regression: an out-of-range NodeId under kPerNode used to index past
  // replicas_ silently. Both accessors must refuse it loudly.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ModelRegistry reg(numa::Local2());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(8, Replication::kPerNode));
  m->Publish(ConstantWeights(8, 1.0));
  const auto snap = m->Acquire();
  ASSERT_EQ(snap->num_replicas(), 2);
  // In-range nodes work.
  EXPECT_DOUBLE_EQ(snap->WeightsForNode(1)[0], 1.0);
  EXPECT_EQ(snap->ReplicaNodeFor(1), 1);
  // Out-of-range and negative nodes die instead of reading past the end.
  EXPECT_DEATH(snap->WeightsForNode(2), "out of range");
  EXPECT_DEATH(snap->ReplicaNodeFor(7), "out of range");
  EXPECT_DEATH(snap->WeightsForNode(-1), "negative node");
}

TEST(ModelRegistryTest, HotSwapUnderConcurrentReadersHasNoTornReads) {
  // The publisher writes snapshots whose entries all equal the version
  // number; a torn read would surface as a snapshot mixing two values.
  const size_t dim = 512;
  ModelRegistry reg(numa::Local8());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(dim, Replication::kPerNode));
  m->Publish(ConstantWeights(dim, 1.0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = m->Acquire();
        const int node = t % 8;
        const double* w = snap->WeightsForNode(node);
        const double first = w[0];
        for (size_t k = 0; k < dim; ++k) {
          if (w[k] != first) {
            torn.fetch_add(1);
            break;
          }
        }
        if (first != static_cast<double>(snap->version())) torn.fetch_add(1);
        if (snap->version() < last_version) torn.fetch_add(1);
        last_version = snap->version();
      }
    });
  }
  for (int v = 2; v <= 60; ++v) {
    m->Publish(ConstantWeights(dim, static_cast<double>(v)));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(m->current_version(), 60u);
}

TEST(ModelRegistryTest, PublishAcquireStressHoldsSnapshotsAcrossSwaps) {
  // TSan-facing stress (the serve suites run unsuppressed in CI): one
  // thread hammers republish while reader threads HOLD acquired
  // snapshots across many swaps, then verify them after the publisher
  // has moved on. Asserts version monotonicity per reader and that every
  // held snapshot is internally consistent (no torn weights), including
  // long after newer versions replaced it.
  const size_t dim = 256;
  constexpr int kPublishes = 400;
  ModelRegistry reg(numa::Local2());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(dim, Replication::kPerNode));
  m->Publish(ConstantWeights(dim, 1.0));

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int v = 2; v <= kPublishes; ++v) {
      m->Publish(ConstantWeights(dim, static_cast<double>(v)));
    }
    stop.store(true, std::memory_order_release);
  });

  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::vector<std::shared_ptr<const ModelSnapshot>> held;
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = m->Acquire();
        if (snap->version() < last_version) violations.fetch_add(1);
        last_version = snap->version();
        // Keep a window of old snapshots alive across future swaps.
        held.push_back(std::move(snap));
        if (held.size() > 8) held.erase(held.begin());
        // Score against the OLDEST held snapshot: its weights must still
        // all equal its own version number.
        const auto& old = held.front();
        const double* w = old->WeightsForNode(t % 2);
        const double want = static_cast<double>(old->version());
        for (size_t k = 0; k < dim; ++k) {
          if (w[k] != want) {
            violations.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  publisher.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(m->current_version(), static_cast<uint64_t>(kPublishes));
}

TEST(ModelRegistryTest, ConcurrentPublishersKeepVersionsMonotonic) {
  ModelRegistry reg(numa::Local2());
  ModelFamily* m =
      reg.RegisterFamily("m", PinnedFamily(8, Replication::kPerNode));
  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t v = m->Publish(ConstantWeights(8, 1.0));
        // Installs are serialized in version order, so once Publish
        // returns, the current version can only be at or past it.
        EXPECT_GE(m->current_version(), v);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      const uint64_t v = m->current_version();
      EXPECT_GE(v, last) << "version went backwards";
      last = v;
    }
  });
  for (auto& t : publishers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(m->current_version(), 200u);
}

TEST(ModelRegistryTest, ConcurrentRegistrationIsSafe) {
  // Registration is rare but may race (e.g. two services booting): the
  // COW family map must stay consistent and first-wins.
  ModelRegistry reg(numa::Local2());
  std::vector<std::thread> threads;
  std::atomic<int> found{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 32; ++i) {
        const std::string name = "fam-" + std::to_string(i % 8);
        ModelFamily* f =
            reg.RegisterFamily(name, PinnedFamily(16, Replication::kPerNode));
        if (reg.FindFamily(name) == f) found.fetch_add(1);
        (void)t;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.num_families(), 8);
  EXPECT_EQ(found.load(), 4 * 32);
}

// --- batcher --------------------------------------------------------------

RequestBatcher::Options BatchOpts(size_t max_batch,
                                  std::chrono::microseconds delay,
                                  size_t max_rows = 1 << 16) {
  RequestBatcher::Options o;
  o.max_batch_size = max_batch;
  o.max_delay = delay;
  o.max_queue_rows = max_rows;
  return o;
}

std::future<double> MustSubmit(RequestBatcher& b, FamilyId f, double value) {
  auto fut = b.Submit(f, {0}, {value});
  EXPECT_TRUE(fut.ok()) << fut.status().ToString();
  return std::move(fut).value();
}

TEST(RequestBatcherTest, FlushesOnSizeWithoutWaitingForDeadline) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(4, std::chrono::seconds(10)));
  for (int i = 0; i < 4; ++i) MustSubmit(b, f, i);
  WallTimer timer;
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.rows(), 4u);
  EXPECT_EQ(batch.family, f);
  EXPECT_EQ(batch.reason, FlushReason::kSize);
  // Released by the size trigger, not the 10 s deadline.
  EXPECT_LT(timer.Seconds(), 1.0);
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_EQ(b.queue_stats(f).flush_size, 1u);
}

TEST(RequestBatcherTest, FlushesPartialBatchOnDeadline) {
  const auto delay = std::chrono::milliseconds(25);
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(1000, delay));
  MustSubmit(b, f, 1.0);
  WallTimer timer;
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  const double waited = timer.Seconds();
  EXPECT_EQ(batch.rows(), 1u);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
  // The wait is bounded by the deadline on both sides (generous upper
  // bound for slow CI).
  EXPECT_GE(waited, 0.015);
  EXPECT_LT(waited, 5.0);
  EXPECT_EQ(b.queue_stats(f).flush_deadline, 1u);
}

TEST(RequestBatcherTest, ShutdownDrainsRemainderThenStops) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(1000, std::chrono::seconds(10)));
  for (int i = 0; i < 3; ++i) MustSubmit(b, f, i);
  b.Shutdown();
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.rows(), 3u);
  EXPECT_EQ(batch.reason, FlushReason::kDrain);
  EXPECT_FALSE(b.NextBatch(&batch));
  // Admission is closed.
  EXPECT_EQ(b.Submit(f, {0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(b.queue_stats(f).flush_drain, 1u);
}

TEST(RequestBatcherTest, QueueBoundsAndRejectionsArePerFamily) {
  RequestBatcher b;
  const FamilyId tiny =
      b.AddQueue(BatchOpts(1000, std::chrono::seconds(10), /*max_rows=*/2));
  const FamilyId roomy =
      b.AddQueue(BatchOpts(1000, std::chrono::seconds(10)));
  MustSubmit(b, tiny, 1.0);
  MustSubmit(b, tiny, 2.0);
  // The tiny family back-pressures...
  EXPECT_EQ(b.Submit(tiny, {0}, {3.0}).status().code(),
            Status::Code::kResourceExhausted);
  // ...without starving its neighbor.
  MustSubmit(b, roomy, 4.0);
  const auto ts = b.queue_stats(tiny);
  EXPECT_EQ(ts.accepted, 2u);
  EXPECT_EQ(ts.rejected_full, 1u);
  EXPECT_EQ(ts.depth, 2u);
  const auto rs = b.queue_stats(roomy);
  EXPECT_EQ(rs.accepted, 1u);
  EXPECT_EQ(rs.rejected_full, 0u);
}

TEST(RequestBatcherTest, RejectsMismatchedRow) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(8, std::chrono::milliseconds(1)));
  EXPECT_EQ(b.Submit(f, {0, 1}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(RequestBatcherTest, CarriedAndIdFormsShareAdmissionCodes) {
  // The unification satellite, batcher side: both request forms go
  // through one Enqueue tail, so back-pressure and shutdown refusals
  // must carry identical Status codes whichever form hits them.
  RequestBatcher b;
  const FamilyId f =
      b.AddQueue(BatchOpts(1000, std::chrono::seconds(10), /*max_rows=*/1));
  MustSubmit(b, f, 1.0);  // fills the one-row queue
  EXPECT_EQ(b.Submit(f, {0}, {2.0}).status().code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(b.SubmitId(f, 0).status().code(),
            Status::Code::kResourceExhausted);
  const auto qs = b.queue_stats(f);
  EXPECT_EQ(qs.accepted, 1u);
  EXPECT_EQ(qs.rejected_full, 2u);  // both refusals counted alike
  b.Shutdown();
  EXPECT_EQ(b.Submit(f, {0}, {3.0}).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(b.SubmitId(f, 0).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST(RequestBatcherTest, IdRequestsBatchWithCarriedNeighbors) {
  // Both forms interleave FIFO in one family queue; a flushed batch
  // preserves order and the id form's row ids.
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(4, std::chrono::seconds(10)));
  MustSubmit(b, f, 1.0);
  {
    auto fut = b.SubmitId(f, 7);
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
  }
  MustSubmit(b, f, 2.0);
  {
    auto fut = b.SubmitId(f, 9);
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
  }
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  ASSERT_EQ(batch.rows(), 4u);
  EXPECT_FALSE(batch.requests[0].by_id);
  EXPECT_TRUE(batch.requests[1].by_id);
  EXPECT_EQ(batch.requests[1].row_id, 7u);
  EXPECT_FALSE(batch.requests[2].by_id);
  EXPECT_TRUE(batch.requests[3].by_id);
  EXPECT_EQ(batch.requests[3].row_id, 9u);
}

TEST(RequestBatcherTest, OversizedBurstSplitsIntoFullBatches) {
  RequestBatcher b;
  const FamilyId f = b.AddQueue(BatchOpts(4, std::chrono::seconds(10)));
  for (int i = 0; i < 10; ++i) MustSubmit(b, f, i);
  b.Shutdown();
  Batch batch;
  size_t total = 0;
  std::vector<size_t> sizes;
  while (b.NextBatch(&batch)) {
    sizes.push_back(batch.rows());
    total += batch.rows();
  }
  EXPECT_EQ(total, 10u);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 2u);
}

TEST(RequestBatcherTest, ReadyBatchesRotateAcrossFamilies) {
  // Two families, both with full batches queued: workers must take them
  // round-robin, not drain one family first.
  RequestBatcher b;
  const FamilyId a = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  const FamilyId c = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  for (int i = 0; i < 4; ++i) MustSubmit(b, a, i);
  for (int i = 0; i < 4; ++i) MustSubmit(b, c, i);
  std::vector<FamilyId> order;
  Batch batch;
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(b.NextBatch(&batch));
    order.push_back(batch.family);
  }
  EXPECT_EQ(order, (std::vector<FamilyId>{a, c, a, c}));
}

TEST(RequestBatcherTest, ExpiredDeadlineOutranksSizeReadyNeighbor) {
  // A hot family that is ALWAYS size-ready must not starve a quiet
  // family whose lone request has aged past its deadline: the expired
  // deadline wins the next flush.
  RequestBatcher b;
  const FamilyId hot = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  const FamilyId quiet =
      b.AddQueue(BatchOpts(64, std::chrono::milliseconds(1)));
  for (int i = 0; i < 8; ++i) MustSubmit(b, hot, i);  // 4 full batches
  MustSubmit(b, quiet, 99.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expire it
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, quiet);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
  // The hot family's full batches still drain afterwards.
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, hot);
  EXPECT_EQ(batch.reason, FlushReason::kSize);
}

TEST(RequestBatcherTest, ExpiredDeadlineWinsEvenWhenCursorPointsElsewhere) {
  // Regression for the flush-ordering hole: the round-robin cursor is
  // parked on a size-ready hot family (by draining a first batch from
  // it), a SECOND hot family is also size-ready, and a quiet family far
  // from the cursor holds one expired request. The expired queue must be
  // drained before EITHER size-ready neighbor, cursor position be
  // damned.
  RequestBatcher b;
  const FamilyId hot_a = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  const FamilyId hot_b = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  const FamilyId quiet =
      b.AddQueue(BatchOpts(64, std::chrono::milliseconds(1)));
  for (int i = 0; i < 6; ++i) MustSubmit(b, hot_a, i);
  for (int i = 0; i < 6; ++i) MustSubmit(b, hot_b, i);
  Batch batch;
  // Park the cursor past hot_a: the next size scan would start at hot_b.
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, hot_a);
  EXPECT_EQ(batch.reason, FlushReason::kSize);
  MustSubmit(b, quiet, 99.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expire it
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, quiet);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
  // Both hot families still drain their full batches afterwards.
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.reason, FlushReason::kSize);
}

TEST(RequestBatcherTest, MultipleExpiredQueuesDrainInExpiryOrder) {
  // Two expired families: the one whose request aged FIRST flushes
  // first, not the one the cursor happens to reach first.
  RequestBatcher b;
  const FamilyId hot = b.AddQueue(BatchOpts(2, std::chrono::seconds(10)));
  const FamilyId late =
      b.AddQueue(BatchOpts(64, std::chrono::milliseconds(1)));
  const FamilyId early =
      b.AddQueue(BatchOpts(64, std::chrono::milliseconds(1)));
  for (int i = 0; i < 4; ++i) MustSubmit(b, hot, i);
  // `early`'s request is older than `late`'s even though `late` sits
  // earlier in cursor order.
  MustSubmit(b, early, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  MustSubmit(b, late, 2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expire both
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, early);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, late);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, hot);
  EXPECT_EQ(batch.reason, FlushReason::kSize);
}

TEST(RequestBatcherTest, DeadlineRespectsEachFamilysDelay) {
  // Family `slow` has a long delay, family `fast` a short one; a row in
  // each: the fast family's deadline must release first.
  RequestBatcher b;
  const FamilyId slow =
      b.AddQueue(BatchOpts(1000, std::chrono::milliseconds(250)));
  const FamilyId fast =
      b.AddQueue(BatchOpts(1000, std::chrono::milliseconds(5)));
  MustSubmit(b, slow, 1.0);
  MustSubmit(b, fast, 2.0);
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.family, fast);
  EXPECT_EQ(batch.reason, FlushReason::kDeadline);
}

// --- serving engine -------------------------------------------------------

// A row view over dataset row i, copied into the Submit format.
void RowOf(const data::Dataset& d, Index i, std::vector<Index>* idx,
           std::vector<double>* vals) {
  const auto row = d.a.Row(i);
  idx->assign(row.indices, row.indices + row.nnz);
  vals->assign(row.values, row.values + row.nnz);
}

data::Dataset ServeDataset(Index rows, Index cols, uint64_t seed) {
  data::Dataset d;
  d.name = "serve";
  d.a = data::MakeDenseTable({.rows = rows, .cols = cols,
                              .feature_correlation = 0.2, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, cols, 0.0, seed + 1);
  return d;
}

TEST(ServingEngineTest, StartRequiresRegisteredPublishedFamilies) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  // Nothing registered.
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score("lr", {0}, {1.0}).status().code(),
            Status::Code::kNotFound);
  // Registered but unpublished.
  ASSERT_TRUE(server
                  .RegisterFamily("lr", &lr,
                                  ServePinned(24, Replication::kPerNode))
                  .ok());
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score("lr", {0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST(ServingEngineTest, RegisterFamilyValidatesInput) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  EXPECT_EQ(server.RegisterFamily("lr", nullptr,
                                  ServePinned(8, Replication::kPerNode))
                .code(),
            Status::Code::kInvalidArgument);
  ServingFamilyOptions no_dim;
  EXPECT_EQ(server.RegisterFamily("lr", &lr, no_dim).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(
      server.RegisterFamily("lr", &lr, ServePinned(8, Replication::kPerNode))
          .ok());
  // Duplicate name.
  EXPECT_EQ(server
                .RegisterFamily("lr", &lr,
                                ServePinned(8, Replication::kPerNode))
                .code(),
            Status::Code::kInvalidArgument);
}

TEST(ServingEngineTest, ServedScoresMatchSingleThreadedReference) {
  // Multi-threaded smoke test: every score served by the pool must equal
  // the single-threaded ModelSpec::Predict of the same row.
  const data::Dataset d = ServeDataset(400, 24, 91);
  models::LogisticSpec lr;
  Rng rng(7);
  std::vector<double> weights(24);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.5);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 32;
  opts.batch.max_delay = std::chrono::microseconds(200);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("lr", &lr, ServePinned(24, Replication::kPerNode))
          .ok());
  server.Publish("lr", weights);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<double>> futures(d.a.rows());
  std::vector<std::thread> producers;
  const int kProducers = 4;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<Index> idx;
      std::vector<double> vals;
      for (Index i = p; i < d.a.rows(); i += kProducers) {
        RowOf(d, i, &idx, &vals);
        auto fut = server.Score("lr", idx, vals);
        ASSERT_TRUE(fut.ok()) << fut.status().ToString();
        futures[i] = std::move(fut).value();
      }
    });
  }
  for (auto& t : producers) t.join();

  for (Index i = 0; i < d.a.rows(); ++i) {
    const double served = futures[i].get();
    const double reference = lr.Predict(weights.data(), d.a.Row(i));
    // These dense identity-indexed rows take the tiled batched kernel,
    // which reassociates the dot -- within-epsilon, not bitwise.
    EXPECT_NEAR(served, reference, 1e-12) << "row " << i;
    EXPECT_GE(served, 0.0);
    EXPECT_LE(served, 1.0);
  }

  server.Stop();
  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(d.a.rows()));
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.rows_per_sec, 0.0);
  EXPECT_GE(stats.p99_latency_ms, stats.p50_latency_ms);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  // PerNode routing never crosses the interconnect.
  EXPECT_EQ(stats.remote_replica_batches, 0u);
  EXPECT_EQ(stats.traffic.remote_read_bytes, 0u);
  EXPECT_EQ(stats.traffic.updates, static_cast<uint64_t>(d.a.rows()));
  // The per-family view agrees with the global one.
  ASSERT_EQ(stats.families.size(), 1u);
  const FamilyServingStats& fam = stats.families[0];
  EXPECT_EQ(fam.family, "lr");
  EXPECT_EQ(fam.requests, stats.requests);
  EXPECT_EQ(fam.batches, stats.batches);
  EXPECT_EQ(fam.accepted, stats.requests);
  EXPECT_EQ(fam.rejected, 0u);
  EXPECT_EQ(fam.queue_depth, 0u);
  EXPECT_EQ(fam.flush_size + fam.flush_deadline + fam.flush_drain,
            fam.batches);
  EXPECT_EQ(fam.served_version, 1u);
}

TEST(ServingEngineTest, TwoFamiliesServeIndependently) {
  // The tentpole end-to-end: a wide read-heavy LR and a narrow
  // republish-dominated SVM registered on one engine, replication chosen
  // per family by the cost model, scored concurrently, accounted apart.
  const Index wide_dim = 512;
  const Index narrow_dim = 8;
  models::LogisticSpec lr;
  models::SvmSpec svm;
  Rng rng(11);
  std::vector<double> wide_w(wide_dim);
  for (auto& w : wide_w) w = rng.Gaussian(0.0, 0.3);
  std::vector<double> narrow_w(narrow_dim, 0.5);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(150);
  ServingEngine server(opts);
  // The wide estimate mirrors the engine's real batch width (16): on two
  // sockets a much wider batch would be compute-bound, and the chooser
  // would (rightly) call replication pointless.
  ASSERT_TRUE(server
                  .RegisterFamily("wide-lr", &lr,
                                  ServeAuto(wide_dim, /*reads_per_publish=*/4096,
                                            /*batch_rows=*/16))
                  .ok());
  ASSERT_TRUE(server
                  .RegisterFamily("narrow-svm", &svm,
                                  ServeAuto(narrow_dim, /*reads_per_publish=*/0))
                  .ok());
  server.Publish("wide-lr", wide_w);
  server.Publish("narrow-svm", narrow_w);
  ASSERT_TRUE(server.Start().ok());

  // The cost model chose independently: read-heavy wide family is
  // replicated, republish-dominated narrow family keeps one copy.
  EXPECT_EQ(server.registry().FindFamily("wide-lr")->replication(),
            Replication::kPerNode);
  EXPECT_EQ(server.registry().FindFamily("narrow-svm")->replication(),
            Replication::kPerMachine);

  const data::Dataset d = ServeDataset(200, wide_dim, 17);
  constexpr int kNarrowRows = 300;
  std::thread narrow_producer([&] {
    for (int i = 0; i < kNarrowRows; ++i) {
      auto s = server.ScoreSync("narrow-svm",
                                {static_cast<Index>(i % narrow_dim)}, {2.0});
      ASSERT_TRUE(s.ok());
      EXPECT_DOUBLE_EQ(s.value(), 1.0);  // 2.0 * 0.5
    }
  });
  std::vector<Index> idx;
  std::vector<double> vals;
  for (Index i = 0; i < d.a.rows(); ++i) {
    RowOf(d, i, &idx, &vals);
    auto s = server.ScoreSync("wide-lr", idx, vals);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.value(), lr.Predict(wide_w.data(), d.a.Row(i)), 1e-12);
  }
  narrow_producer.join();
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 2u);
  const FamilyServingStats& wide = stats.families[0];
  const FamilyServingStats& narrow = stats.families[1];
  EXPECT_EQ(wide.family, "wide-lr");
  EXPECT_EQ(narrow.family, "narrow-svm");
  EXPECT_EQ(wide.replication, Replication::kPerNode);
  EXPECT_EQ(narrow.replication, Replication::kPerMachine);
  EXPECT_EQ(wide.requests, static_cast<uint64_t>(d.a.rows()));
  EXPECT_EQ(narrow.requests, static_cast<uint64_t>(kNarrowRows));
  EXPECT_EQ(stats.requests, wide.requests + narrow.requests);
  // A PerNode family never crosses the interconnect.
  EXPECT_EQ(wide.remote_replica_batches, 0u);
}

TEST(ServingEngineTest, PerMachineRoutingCrossesTheInterconnect) {
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 2;  // one worker per node (round-robin assignment)
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(server
                  .RegisterFamily("ls", &ls,
                                  ServePinned(8, Replication::kPerMachine))
                  .ok());
  server.Publish("ls", ConstantWeights(8, 0.5));
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 256; ++i) {
    auto fut = server.Score("ls", {static_cast<Index>(i % 8)}, {2.0});
    ASSERT_TRUE(fut.ok());
    EXPECT_DOUBLE_EQ(std::move(fut).value().get(), 1.0);
  }
  server.Stop();

  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, 256u);
  // The node-1 worker reads the node-0 replica: remote traffic appears
  // whenever it served at least one batch (scheduling-dependent, so only
  // the consistency of the two counters is asserted).
  EXPECT_EQ(stats.local_replica_batches + stats.remote_replica_batches,
            stats.batches);
  const numa::SimulationInput sim = server.SimInput();
  EXPECT_EQ(sim.model_sharing_sockets, 2);
  EXPECT_EQ(sim.traffic.Total().remote_read_bytes,
            stats.traffic.remote_read_bytes);
}

TEST(ServingEngineTest, HotSwapWhileServingNeverMixesVersions) {
  // Weights are all-1.0 (v1) then all-2.0 (v2); a row of k ones must score
  // exactly k or 2k -- any other value means a batch saw a mix.
  models::LeastSquaresSpec ls;
  const size_t dim = 64;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("m", &ls, ServePinned(dim, Replication::kPerNode))
          .ok());
  server.Publish("m", ConstantWeights(dim, 1.0));
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int v = 0; v < 40 && !stop.load(); ++v) {
      server.Publish("m", ConstantWeights(dim, (v % 2 == 0) ? 2.0 : 1.0));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<Index> idx(dim);
  std::vector<double> vals(dim, 1.0);
  for (size_t k = 0; k < dim; ++k) idx[k] = static_cast<Index>(k);
  const double k = static_cast<double>(dim);
  for (int i = 0; i < 600; ++i) {
    auto score = server.ScoreSync("m", idx, vals);
    ASSERT_TRUE(score.ok());
    const double s = score.value();
    EXPECT_TRUE(s == k || s == 2.0 * k) << "mixed-version score " << s;
  }
  stop.store(true);
  publisher.join();
  server.Stop();
  // Batches that scored against a just-replaced snapshot show up as
  // versions-behind staleness, never as mixed weights -- and the count
  // is bounded by the number of publishes (40 + the initial one), so an
  // accounting underflow (2^64-ish values) fails loudly here.
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_LE(stats.families[0].max_versions_behind, 41u);
  EXPECT_LE(stats.families[0].mean_versions_behind, 41.0);
}

TEST(ServingEngineTest, RejectsOutOfRangeFeatureIndex) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("lr", &lr, ServePinned(24, Replication::kPerNode))
          .ok());
  server.Publish("lr", ConstantWeights(24, 0.1));
  // Untrusted request input must never index past the replica.
  EXPECT_EQ(server.Score("lr", {24}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Score("lr", {1000}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  // A valid row is still refused until workers exist to resolve it.
  EXPECT_EQ(server.Score("lr", {23}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
  ASSERT_TRUE(server.Start().ok());
  auto ok = server.ScoreSync("lr", {23}, {1.0});
  EXPECT_TRUE(ok.ok());
  server.Stop();
}

TEST(ServingEngineTest, BothRequestFormsReportSameAdmissionCodes) {
  // The unification satellite, engine side: for every admission failure
  // the id-keyed form (Score(family, row_id)) must report the SAME
  // Status code as the analogous carried-feature failure.
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  ServingFamilyOptions fam = ServePinned(8, Replication::kPerNode);
  RequestBatcher::Options q;
  q.max_batch_size = 4;
  q.max_delay = std::chrono::microseconds(50);
  q.max_queue_rows = 1;
  fam.batch = q;
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("ls", &ls, fam).ok());
  ASSERT_TRUE(server.RegisterStore("ls", 16, 8).ok());

  // Unknown family: NotFound either way.
  EXPECT_EQ(server.Score("nope", {0}, {1.0}).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(server.Score("nope", 0).status().code(),
            Status::Code::kNotFound);
  // Unpublished model: FailedPrecondition either way.
  EXPECT_EQ(server.Score("ls", {0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score("ls", 0).status().code(),
            Status::Code::kFailedPrecondition);
  server.Publish("ls", ConstantWeights(8, 0.5));
  server.PublishStore("ls", std::vector<double>(16 * 8, 1.0));
  // Out of range: a feature index past the model dim and a row id past
  // the store bound are the same trust-boundary breach -- one code.
  EXPECT_EQ(server.Score("ls", {8}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Score("ls", 16).status().code(),
            Status::Code::kInvalidArgument);
  // Not started: FailedPrecondition either way.
  EXPECT_EQ(server.Score("ls", {0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score("ls", 0).status().code(),
            Status::Code::kFailedPrecondition);

  // Back-pressure under a live flood: every refusal of either form is
  // kResourceExhausted (the one-row queue makes refusals certain).
  ASSERT_TRUE(server.Start().ok());
  uint64_t rejected = 0;
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 400; ++i) {
    auto fut = (i % 2 == 0) ? server.Score("ls", {0}, {1.0})
                            : server.Score("ls", static_cast<Index>(i % 16));
    if (fut.ok()) {
      futures.push_back(std::move(fut).value());
    } else {
      EXPECT_EQ(fut.status().code(), Status::Code::kResourceExhausted)
          << (i % 2 == 0 ? "carried" : "id-keyed") << " form";
      ++rejected;
    }
  }
  for (auto& f : futures) f.get();
  server.Stop();
  EXPECT_GT(rejected, 0u);
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_EQ(stats.families[0].rejected, rejected);
}

TEST(ServingEngineTest, DenseRequestsScoreValidateAndDensify) {
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 4;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(16, Replication::kPerNode))
          .ok());
  server.Publish("ls", ConstantWeights(16, 0.5));
  ASSERT_TRUE(server.Start().ok());

  // Explicit dense form: empty indices, value k at coordinate k. A row
  // shorter than the model is an identity prefix.
  auto dense = server.ScoreSync("ls", {}, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense.value(), 2.0);
  // Wider than the model: rejected at admission.
  EXPECT_EQ(
      server.Score("ls", {}, std::vector<double>(17, 1.0)).status().code(),
      Status::Code::kInvalidArgument);
  // An identity-indexed request is rewritten to the dense form during the
  // admission scan and must score identically.
  auto densified = server.ScoreSync("ls", {0, 1, 2}, {2.0, 2.0, 2.0});
  ASSERT_TRUE(densified.ok());
  EXPECT_DOUBLE_EQ(densified.value(), 3.0);
  // Non-identity sparse requests still take the gather path.
  auto sparse = server.ScoreSync("ls", {3, 15}, {4.0, 4.0});
  ASSERT_TRUE(sparse.ok());
  EXPECT_DOUBLE_EQ(sparse.value(), 4.0);
  server.Stop();
}

TEST(ServingEngineTest, StoppedEngineCannotRestartOrRegister) {
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("svm", &svm, ServePinned(4, Replication::kPerNode))
          .ok());
  server.Publish("svm", ConstantWeights(4, 1.0));
  ASSERT_TRUE(server.Start().ok());
  // The family set is frozen while serving.
  EXPECT_EQ(server
                .RegisterFamily("late", &svm,
                                ServePinned(4, Replication::kPerNode))
                .code(),
            Status::Code::kFailedPrecondition);
  server.Stop();
  // The batcher's shutdown is final; a second Start must refuse rather
  // than hand back a pool whose workers exit immediately.
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(server
                .RegisterFamily("late", &svm,
                                ServePinned(4, Replication::kPerNode))
                .code(),
            Status::Code::kFailedPrecondition);
}

TEST(ServingEngineTest, ScalarAndBatchedModesAgreeWithinEpsilon) {
  // The sparse batched kernel preserves accumulation order (bitwise); the
  // dense kernel reassociates across accumulator lanes, so the two modes
  // must agree to reassociation epsilon on these dense requests.
  const data::Dataset d = ServeDataset(200, 48, 131);
  models::LogisticSpec lr;
  Rng rng(5);
  std::vector<double> weights(48);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.7);

  std::vector<std::vector<double>> results;
  for (const ScoringMode mode : {ScoringMode::kScalar, ScoringMode::kBatched}) {
    ServingOptions opts;
    opts.topology = numa::Local2();
    opts.scoring = mode;
    opts.batch.max_batch_size = 16;
    opts.batch.max_delay = std::chrono::microseconds(100);
    ServingEngine server(opts);
    ASSERT_TRUE(server
                    .RegisterFamily("lr", &lr,
                                    ServePinned(48, Replication::kPerNode))
                    .ok());
    server.Publish("lr", weights);
    ASSERT_TRUE(server.Start().ok());
    std::vector<double> scores;
    std::vector<Index> idx;
    std::vector<double> vals;
    for (Index i = 0; i < d.a.rows(); ++i) {
      RowOf(d, i, &idx, &vals);
      auto s = server.ScoreSync("lr", idx, vals);
      ASSERT_TRUE(s.ok());
      scores.push_back(s.value());
    }
    server.Stop();
    results.push_back(std::move(scores));
  }
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-12) << "row " << i;
  }
}

TEST(ServingEngineTest, BatchedServingOfWideModelCrossesColumnBlocks) {
  // A model wider than one kernel tile: batched serving must still equal
  // the scalar reference (end-to-end check of the blocked serving path).
  const Index dim = models::GlmSpec::kPredictBlockCols + 333;
  models::LeastSquaresSpec ls;
  Rng rng(77);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.3);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(dim, Replication::kPerNode))
          .ok());
  server.Publish("ls", weights);
  ASSERT_TRUE(server.Start().ok());

  Rng row_rng(78);
  for (int r = 0; r < 64; ++r) {
    // A sorted sparse row spanning the full width.
    std::vector<Index> idx;
    std::vector<double> vals;
    for (Index j = static_cast<Index>(row_rng.Below(200)); j < dim;
         j += 150 + static_cast<Index>(row_rng.Below(200))) {
      idx.push_back(j);
      vals.push_back(row_rng.Gaussian(0.0, 1.0));
    }
    const matrix::SparseVectorView view{idx.data(), vals.data(), idx.size()};
    const double reference = ls.Predict(weights.data(), view);
    auto served = server.ScoreSync("ls", idx, vals);
    ASSERT_TRUE(served.ok());
    EXPECT_DOUBLE_EQ(served.value(), reference) << "row " << r;
  }
  server.Stop();
  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_GE(stats.max_latency_ms, stats.p99_latency_ms);
}

TEST(ServingEngineTest, StopDrainsAcceptedRequests) {
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::seconds(10);  // only drain can flush
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("svm", &svm, ServePinned(4, Replication::kPerNode))
          .ok());
  server.Publish("svm", ConstantWeights(4, 1.0));
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<double>> futures;
  for (int i = 0; i < 10; ++i) {
    auto fut = server.Score("svm", {0, 2}, {1.0, 1.0});
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  server.Stop();  // must flush the never-full batch
  for (auto& f : futures) {
    EXPECT_DOUBLE_EQ(f.get(), 2.0);
  }
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_EQ(stats.families[0].flush_drain, 1u);
}

TEST(ServingEngineTest, AdmissionCountersSurfaceBackpressure) {
  // A one-row queue under burst load: rejects must be counted per family
  // and the accepted/rejected split must reconcile with scored rows.
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  ServingFamilyOptions fam = ServePinned(4, Replication::kPerNode);
  RequestBatcher::Options q;
  q.max_batch_size = 4;
  q.max_delay = std::chrono::microseconds(50);
  q.max_queue_rows = 1;
  fam.batch = q;
  ServingEngine server(opts);
  ASSERT_TRUE(server.RegisterFamily("svm", &svm, fam).ok());
  server.Publish("svm", ConstantWeights(4, 1.0));
  ASSERT_TRUE(server.Start().ok());

  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 400; ++i) {
    auto fut = server.Score("svm", {0}, {1.0});
    if (fut.ok()) {
      futures.push_back(std::move(fut).value());
      ++accepted;
    } else {
      ASSERT_EQ(fut.status().code(), Status::Code::kResourceExhausted);
      ++rejected;
    }
  }
  for (auto& f : futures) f.get();
  server.Stop();

  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  const FamilyServingStats& f = stats.families[0];
  EXPECT_EQ(f.accepted, accepted);
  EXPECT_EQ(f.rejected, rejected);
  EXPECT_EQ(f.requests, accepted);
  EXPECT_EQ(f.queue_depth, 0u);
  EXPECT_EQ(f.flush_size + f.flush_deadline + f.flush_drain, f.batches);
  EXPECT_GT(accepted, 0u);
}

TEST(ServingEngineTest, StalenessReflectsExportAge) {
  // A snapshot whose export timestamp lies 80ms in the past must surface
  // >= 80ms of staleness on every batch scored against it.
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 4;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  engine::ModelExport exported;
  exported.spec_name = "ls";
  exported.weights = ConstantWeights(8, 1.0);
  exported.exported_at =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(80);
  server.Publish("ls", exported);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.ScoreSync("ls", {0}, {1.0}).ok());
  }
  server.Stop();
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_GE(stats.families[0].mean_staleness_ms, 80.0);
  EXPECT_GE(stats.families[0].max_staleness_ms,
            stats.families[0].mean_staleness_ms);
  EXPECT_EQ(stats.families[0].max_versions_behind, 0u);
}

// --- snapshot exporter ----------------------------------------------------

TEST(SnapshotExporterTest, PublishesMidTrainingWithoutBlockingEpochs) {
  // Train for a while with the exporter publishing every few ms while a
  // producer scores concurrently: versions must advance well past the
  // initial publish, epochs must keep completing (training finishes),
  // and every served score must be finite and from SOME published
  // version. This is the satellite TSan target: trainer workers,
  // averager, exporter, serving workers, and a producer all live at once.
  const data::Dataset d = ServeDataset(300, 16, 201);
  models::LogisticSpec lr;
  engine::EngineOptions topts;
  topts.topology = numa::Local2();
  engine::Engine trainer(&d, &lr, topts);
  ASSERT_TRUE(trainer.Init().ok());

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 2;
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("lr", &lr, ServePinned(16, Replication::kPerNode))
          .ok());

  SnapshotExporter::Options eopts;
  eopts.period = std::chrono::milliseconds(2);
  SnapshotExporter exporter(&trainer, &server, "lr", eopts);
  exporter.Start();  // publish_on_start makes the family servable
  ASSERT_GE(server.registry().FindFamily("lr")->current_version(), 1u);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::vector<Index> idx;
    std::vector<double> vals;
    Index i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      RowOf(d, i++ % d.a.rows(), &idx, &vals);
      auto s = server.ScoreSync("lr", idx, vals);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      ASSERT_TRUE(std::isfinite(s.value()));
      ASSERT_GE(s.value(), 0.0);
      ASSERT_LE(s.value(), 1.0);
    }
  });

  engine::RunConfig cfg;
  cfg.max_epochs = 40;
  const engine::RunResult result = trainer.Run(cfg);
  EXPECT_EQ(result.epochs.size(), 40u);  // epochs never blocked

  stop.store(true, std::memory_order_release);
  producer.join();
  exporter.Stop();
  server.Stop();

  const SnapshotExporter::Stats es = exporter.stats();
  EXPECT_GE(es.publishes, 2u) << "exporter never republished mid-training";
  EXPECT_EQ(es.last_version,
            server.registry().FindFamily("lr")->current_version());
  EXPECT_GT(es.mean_publish_ms, 0.0);
  EXPECT_GE(es.max_publish_ms, es.mean_publish_ms);

  // Serving-side staleness was measured and bounded: a 2ms export period
  // cannot leave minutes of staleness behind.
  const ServingStats stats = server.Stats();
  ASSERT_EQ(stats.families.size(), 1u);
  EXPECT_GT(stats.families[0].requests, 0u);
  EXPECT_GT(stats.families[0].mean_staleness_ms, 0.0);
  EXPECT_LT(stats.families[0].mean_staleness_ms, 60e3);
}

TEST(SnapshotExporterTest, StopIsIdempotentAndLastSnapshotStaysServed) {
  const data::Dataset d = ServeDataset(60, 8, 77);
  models::LeastSquaresSpec ls;
  engine::EngineOptions topts;
  topts.topology = numa::Local2();
  engine::Engine trainer(&d, &ls, topts);
  ASSERT_TRUE(trainer.Init().ok());

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  SnapshotExporter::Options eopts;
  eopts.period = std::chrono::milliseconds(1);
  SnapshotExporter exporter(&trainer, &server, "ls", eopts);
  exporter.Start();
  engine::RunConfig cfg;
  cfg.max_epochs = 3;
  trainer.Run(cfg);
  exporter.Stop();
  exporter.Stop();  // idempotent
  const uint64_t v = server.registry().FindFamily("ls")->current_version();
  EXPECT_GE(v, 1u);

  ASSERT_TRUE(server.Start().ok());
  auto s = server.ScoreSync("ls", {0}, {1.0});
  EXPECT_TRUE(s.ok());
  server.Stop();
  // No publishes after Stop().
  EXPECT_EQ(server.registry().FindFamily("ls")->current_version(), v);
}

TEST(SnapshotExporterTest, PacingDerivesPeriodFromPublishLatency) {
  // The ROADMAP pacing satellite: with a publish-time ceiling far below
  // what Export()+Publish() actually costs, the exporter must stretch
  // its effective period instead of busy-publishing on the 1ms floor.
  const data::Dataset d = ServeDataset(60, 8, 55);
  models::LeastSquaresSpec ls;
  engine::EngineOptions topts;
  topts.topology = numa::Local2();
  engine::Engine trainer(&d, &ls, topts);
  ASSERT_TRUE(trainer.Init().ok());

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  SnapshotExporter::Options eopts;
  eopts.period = std::chrono::milliseconds(1);
  // Effectively "at most one millionth of wall time publishing": even a
  // microsecond-scale publish forces a multi-second effective period, so
  // the 150ms window below can fit at most the on-start publish plus the
  // first paced one.
  eopts.max_publish_fraction = 1e-6;
  SnapshotExporter exporter(&trainer, &server, "ls", eopts);
  exporter.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  exporter.Stop();

  const SnapshotExporter::Stats es = exporter.stats();
  // publish_on_start + at most one loop publish + the on-stop flush: far
  // fewer than the ~150 publishes the raw 1ms period would have run.
  EXPECT_LE(es.publishes, 4u);
  EXPECT_GE(es.paced_periods, 1u);
  EXPECT_GT(es.effective_period_ms, 1.0);
  EXPECT_GT(es.ewma_publish_ms, 0.0);

  // The default fraction leaves a cheap publish on its configured floor:
  // same setup, default ceiling, expect many publishes in the window.
  engine::Engine trainer2(&d, &ls, topts);
  ASSERT_TRUE(trainer2.Init().ok());
  ServingEngine server2(opts);
  ASSERT_TRUE(
      server2
          .RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  SnapshotExporter::Options fast;
  fast.period = std::chrono::milliseconds(1);
  SnapshotExporter exporter2(&trainer2, &server2, "ls", fast);
  exporter2.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  exporter2.Stop();
  EXPECT_GT(exporter2.stats().publishes, 10u);
}

TEST(SnapshotExporterTest, SetPeriodOverridesAndRestoresTheFloor) {
  // The placement tuner's control surface: SetPeriod overrides the
  // configured pacing floor at runtime (the staleness-SLO controller
  // tightens/stretches through it) and a non-positive period hands the
  // floor back to the configuration.
  const data::Dataset d = ServeDataset(60, 8, 58);
  models::LeastSquaresSpec ls;
  engine::EngineOptions topts;
  topts.topology = numa::Local2();
  engine::Engine trainer(&d, &ls, topts);
  ASSERT_TRUE(trainer.Init().ok());
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.num_threads = 1;
  ServingEngine server(opts);
  ASSERT_TRUE(
      server.RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  SnapshotExporter::Options eopts;
  eopts.period = std::chrono::milliseconds(50);
  SnapshotExporter exporter(&trainer, &server, "ls", eopts);

  EXPECT_DOUBLE_EQ(exporter.period_floor_ms(), 50.0);
  exporter.SetPeriod(std::chrono::milliseconds(5));
  EXPECT_DOUBLE_EQ(exporter.period_floor_ms(), 5.0);
  exporter.SetPeriod(std::chrono::milliseconds(0));  // restore configured
  EXPECT_DOUBLE_EQ(exporter.period_floor_ms(), 50.0);

  // The override steers a RUNNING exporter too: a 1ms override against a
  // 10s configured period turns near-zero publishes into many.
  SnapshotExporter::Options slow;
  slow.period = std::chrono::seconds(10);
  engine::Engine trainer2(&d, &ls, topts);
  ASSERT_TRUE(trainer2.Init().ok());
  ServingEngine server2(opts);
  ASSERT_TRUE(
      server2
          .RegisterFamily("ls", &ls, ServePinned(8, Replication::kPerNode))
          .ok());
  SnapshotExporter exporter2(&trainer2, &server2, "ls", slow);
  exporter2.Start();
  exporter2.SetPeriod(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  exporter2.Stop();
  EXPECT_GT(exporter2.stats().publishes, 5u);
}

// --- latency recorder ------------------------------------------------------

TEST(LatencyRecorderTest, PercentilesAndMerge) {
  engine::LatencyRecorder a;
  engine::LatencyRecorder b;
  for (int i = 1; i <= 50; ++i) a.Record(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.Record(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.Percentile(50.0), 50.5, 1.0);
  EXPECT_NEAR(a.Percentile(99.0), 99.0, 1.1);
  EXPECT_NEAR(a.MeanMs(), 50.5, 1e-9);
}

TEST(LatencyRecorderTest, MergeReweightsAcrossDifferentStrides) {
  // Worker A: heavy traffic (decimated, all samples ~100ms). Worker B:
  // light traffic (no decimation, all ~1ms). A has ~16x B's requests, so
  // the merged p50 must come from A's distribution. Exact mode: stride
  // reweighting is a sample-vector behavior (the default bounded mode
  // never decimates).
  engine::LatencyRecorder a(engine::LatencyRecorder::Mode::kExact);
  engine::LatencyRecorder b(engine::LatencyRecorder::Mode::kExact);
  const uint64_t heavy = engine::LatencyRecorder::kMaxSamples * 4;
  for (uint64_t i = 0; i < heavy; ++i) a.Record(100.0);
  for (uint64_t i = 0; i < heavy / 16; ++i) b.Record(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), heavy + heavy / 16);
  EXPECT_NEAR(a.Percentile(50.0), 100.0, 1e-9);
  // The light worker still shows up in the low tail.
  EXPECT_NEAR(a.Percentile(1.0), 1.0, 1e-9);
}

TEST(LatencyRecorderTest, DecimationBoundsMemoryButKeepsCount) {
  engine::LatencyRecorder r(engine::LatencyRecorder::Mode::kExact);
  const uint64_t n = (1 << 18);  // 4x the retention bound
  for (uint64_t i = 0; i < n; ++i) {
    r.Record(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(r.count(), n);
  // Percentiles stay sane after decimation.
  EXPECT_NEAR(r.Percentile(50.0), 500.0, 50.0);
}

TEST(LatencyRecorderTest, BoundedModeExactMeanMaxBoundedQuantiles) {
  engine::LatencyRecorder r;  // default mode: bounded histogram
  const uint64_t n = 1 << 18;
  for (uint64_t i = 0; i < n; ++i) {
    r.Record(static_cast<double>(i % 1000));
  }
  // Constant-memory accumulation never drops observations.
  EXPECT_EQ(r.count(), n);
  // Sum and max are tracked exactly outside the buckets.
  EXPECT_NEAR(r.MeanMs(), 499.5, 1.0);
  EXPECT_EQ(r.MaxMs(), 999.0);
  // Quantiles carry at most the bucket-width relative error (19%).
  EXPECT_NEAR(r.Percentile(50.0), 500.0, 0.19 * 500.0);
  EXPECT_NEAR(r.Percentile(99.0), 990.0, 0.19 * 990.0);
}

}  // namespace
}  // namespace dw::serve
