// Tests for src/serve: registry placement and hot-swap safety, batcher
// flush semantics, and end-to-end serving correctness against
// single-threaded reference scores.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "engine/metrics.h"
#include "models/glm.h"
#include "serve/model_registry.h"
#include "serve/request_batcher.h"
#include "serve/serving_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dw::serve {
namespace {

using matrix::Index;

std::vector<double> ConstantWeights(size_t dim, double v) {
  return std::vector<double>(dim, v);
}

// --- registry -------------------------------------------------------------

TEST(ModelRegistryTest, EmptyUntilFirstPublish) {
  ModelRegistry reg(numa::Local2(), Replication::kPerNode);
  EXPECT_EQ(reg.current_version(), 0u);
  EXPECT_EQ(reg.Acquire(), nullptr);
}

TEST(ModelRegistryTest, PerNodePlacesOneReplicaPerNode) {
  const numa::Topology topo = numa::Local2();
  ModelRegistry reg(topo, Replication::kPerNode);
  const uint64_t v = reg.Publish("m", ConstantWeights(128, 1.5));
  EXPECT_EQ(v, 1u);

  const auto snap = reg.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_replicas(), topo.num_nodes);
  EXPECT_EQ(snap->dim(), 128u);
  EXPECT_EQ(reg.dim(), 128u);
  for (int n = 0; n < topo.num_nodes; ++n) {
    EXPECT_EQ(snap->ReplicaNodeFor(n), n);
    EXPECT_DOUBLE_EQ(snap->WeightsForNode(n)[127], 1.5);
    // Every node holds a full copy of the model bytes.
    EXPECT_EQ(reg.ledger().BytesOnNode(n), 128 * sizeof(double));
  }
}

TEST(ModelRegistryTest, PerMachineKeepsOneCopyOnNodeZero) {
  const numa::Topology topo = numa::Local2();
  ModelRegistry reg(topo, Replication::kPerMachine);
  reg.Publish("m", ConstantWeights(64, 2.0));

  const auto snap = reg.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_replicas(), 1);
  // Readers on every node route to the node-0 copy.
  EXPECT_EQ(snap->ReplicaNodeFor(0), 0);
  EXPECT_EQ(snap->ReplicaNodeFor(1), 0);
  EXPECT_EQ(snap->WeightsForNode(0), snap->WeightsForNode(1));
  EXPECT_EQ(reg.ledger().BytesOnNode(0), 64 * sizeof(double));
  EXPECT_EQ(reg.ledger().BytesOnNode(1), 0u);
}

TEST(ModelRegistryTest, RepublishSwapsVersionAndFreesOldReplicas) {
  ModelRegistry reg(numa::Local2(), Replication::kPerNode);
  reg.Publish("m", ConstantWeights(32, 1.0));
  const auto old_snap = reg.Acquire();
  EXPECT_EQ(reg.Publish("m", ConstantWeights(32, 2.0)), 2u);
  EXPECT_EQ(reg.current_version(), 2u);
  // The old snapshot stays valid while referenced...
  EXPECT_DOUBLE_EQ(old_snap->WeightsForNode(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(reg.Acquire()->WeightsForNode(0)[0], 2.0);
  // ...and both versions' bytes are live until the old one is released.
  EXPECT_EQ(reg.ledger().BytesOnNode(0), 2 * 32 * sizeof(double));
}

TEST(ModelRegistryTest, SnapshotOutlivesRegistry) {
  std::shared_ptr<const ModelSnapshot> snap;
  {
    ModelRegistry reg(numa::Local2(), Replication::kPerNode);
    reg.Publish("m", ConstantWeights(16, 3.0));
    snap = reg.Acquire();
  }
  // The snapshot keeps its allocator (and ledger) alive.
  EXPECT_DOUBLE_EQ(snap->WeightsForNode(1)[15], 3.0);
}

TEST(ModelRegistryTest, HotSwapUnderConcurrentReadersHasNoTornReads) {
  // The publisher writes snapshots whose entries all equal the version
  // number; a torn read would surface as a snapshot mixing two values.
  const size_t dim = 512;
  ModelRegistry reg(numa::Local8(), Replication::kPerNode);
  reg.Publish("m", ConstantWeights(dim, 1.0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = reg.Acquire();
        const int node = t % 8;
        const double* w = snap->WeightsForNode(node);
        const double first = w[0];
        for (size_t k = 0; k < dim; ++k) {
          if (w[k] != first) {
            torn.fetch_add(1);
            break;
          }
        }
        if (first != static_cast<double>(snap->version())) torn.fetch_add(1);
        if (snap->version() < last_version) torn.fetch_add(1);
        last_version = snap->version();
      }
    });
  }
  for (int v = 2; v <= 60; ++v) {
    reg.Publish("m", ConstantWeights(dim, static_cast<double>(v)));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(reg.current_version(), 60u);
}

// --- batcher --------------------------------------------------------------

RequestBatcher::Options BatchOpts(size_t max_batch,
                                  std::chrono::microseconds delay,
                                  size_t max_rows = 1 << 16) {
  RequestBatcher::Options o;
  o.max_batch_size = max_batch;
  o.max_delay = delay;
  o.max_queue_rows = max_rows;
  return o;
}

std::future<double> MustSubmit(RequestBatcher& b, double value) {
  auto fut = b.Submit({0}, {value});
  EXPECT_TRUE(fut.ok()) << fut.status().ToString();
  return std::move(fut).value();
}

TEST(RequestBatcherTest, FlushesOnSizeWithoutWaitingForDeadline) {
  RequestBatcher b(BatchOpts(4, std::chrono::seconds(10)));
  for (int i = 0; i < 4; ++i) MustSubmit(b, i);
  WallTimer timer;
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.rows(), 4u);
  // Released by the size trigger, not the 10 s deadline.
  EXPECT_LT(timer.Seconds(), 1.0);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(RequestBatcherTest, FlushesPartialBatchOnDeadline) {
  const auto delay = std::chrono::milliseconds(25);
  RequestBatcher b(BatchOpts(1000, delay));
  MustSubmit(b, 1.0);
  WallTimer timer;
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  const double waited = timer.Seconds();
  EXPECT_EQ(batch.rows(), 1u);
  // The wait is bounded by the deadline on both sides (generous upper
  // bound for slow CI).
  EXPECT_GE(waited, 0.015);
  EXPECT_LT(waited, 5.0);
}

TEST(RequestBatcherTest, ShutdownDrainsRemainderThenStops) {
  RequestBatcher b(BatchOpts(1000, std::chrono::seconds(10)));
  for (int i = 0; i < 3; ++i) MustSubmit(b, i);
  b.Shutdown();
  Batch batch;
  ASSERT_TRUE(b.NextBatch(&batch));
  EXPECT_EQ(batch.rows(), 3u);
  EXPECT_FALSE(b.NextBatch(&batch));
  // Admission is closed.
  EXPECT_EQ(b.Submit({0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST(RequestBatcherTest, RejectsBeyondQueueBound) {
  RequestBatcher b(BatchOpts(1000, std::chrono::seconds(10), 2));
  MustSubmit(b, 1.0);
  MustSubmit(b, 2.0);
  EXPECT_EQ(b.Submit({0}, {3.0}).status().code(),
            Status::Code::kResourceExhausted);
}

TEST(RequestBatcherTest, RejectsMismatchedRow) {
  RequestBatcher b(BatchOpts(8, std::chrono::milliseconds(1)));
  EXPECT_EQ(b.Submit({0, 1}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(RequestBatcherTest, OversizedBurstSplitsIntoFullBatches) {
  RequestBatcher b(BatchOpts(4, std::chrono::seconds(10)));
  for (int i = 0; i < 10; ++i) MustSubmit(b, i);
  b.Shutdown();
  Batch batch;
  size_t total = 0;
  std::vector<size_t> sizes;
  while (b.NextBatch(&batch)) {
    sizes.push_back(batch.rows());
    total += batch.rows();
  }
  EXPECT_EQ(total, 10u);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 2u);
}

// --- serving engine -------------------------------------------------------

// A row view over dataset row i, copied into the Submit format.
void RowOf(const data::Dataset& d, Index i, std::vector<Index>* idx,
           std::vector<double>* vals) {
  const auto row = d.a.Row(i);
  idx->assign(row.indices, row.indices + row.nnz);
  vals->assign(row.values, row.values + row.nnz);
}

data::Dataset ServeDataset(Index rows, Index cols, uint64_t seed) {
  data::Dataset d;
  d.name = "serve";
  d.a = data::MakeDenseTable({.rows = rows, .cols = cols,
                              .feature_correlation = 0.2, .seed = seed});
  d.b = data::PlantClassificationLabels(d.a, cols, 0.0, seed + 1);
  return d;
}

TEST(ServingEngineTest, StartRequiresPublishedModel) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(&lr, opts);
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(server.Score({0}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
}

TEST(ServingEngineTest, ServedScoresMatchSingleThreadedReference) {
  // Multi-threaded smoke test: every score served by the pool must equal
  // the single-threaded ModelSpec::Predict of the same row.
  const data::Dataset d = ServeDataset(400, 24, 91);
  models::LogisticSpec lr;
  Rng rng(7);
  std::vector<double> weights(24);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.5);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 32;
  opts.batch.max_delay = std::chrono::microseconds(200);
  ServingEngine server(&lr, opts);
  server.Publish("lr", weights);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<double>> futures(d.a.rows());
  std::vector<std::thread> producers;
  const int kProducers = 4;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<Index> idx;
      std::vector<double> vals;
      for (Index i = p; i < d.a.rows(); i += kProducers) {
        RowOf(d, i, &idx, &vals);
        auto fut = server.Score(idx, vals);
        ASSERT_TRUE(fut.ok()) << fut.status().ToString();
        futures[i] = std::move(fut).value();
      }
    });
  }
  for (auto& t : producers) t.join();

  for (Index i = 0; i < d.a.rows(); ++i) {
    const double served = futures[i].get();
    const double reference = lr.Predict(weights.data(), d.a.Row(i));
    // These dense identity-indexed rows take the tiled batched kernel,
    // which reassociates the dot -- within-epsilon, not bitwise.
    EXPECT_NEAR(served, reference, 1e-12) << "row " << i;
    EXPECT_GE(served, 0.0);
    EXPECT_LE(served, 1.0);
  }

  server.Stop();
  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(d.a.rows()));
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.rows_per_sec, 0.0);
  EXPECT_GE(stats.p99_latency_ms, stats.p50_latency_ms);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  // PerNode routing never crosses the interconnect.
  EXPECT_EQ(stats.remote_replica_batches, 0u);
  EXPECT_EQ(stats.traffic.remote_read_bytes, 0u);
  EXPECT_EQ(stats.traffic.updates, static_cast<uint64_t>(d.a.rows()));
}

TEST(ServingEngineTest, PerMachineRoutingCrossesTheInterconnect) {
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.replication = Replication::kPerMachine;
  opts.num_threads = 2;  // one worker per node (round-robin assignment)
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(&ls, opts);
  server.Publish("ls", ConstantWeights(8, 0.5));
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 256; ++i) {
    auto fut = server.Score({static_cast<Index>(i % 8)}, {2.0});
    ASSERT_TRUE(fut.ok());
    EXPECT_DOUBLE_EQ(std::move(fut).value().get(), 1.0);
  }
  server.Stop();

  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, 256u);
  // The node-1 worker reads the node-0 replica: remote traffic appears
  // whenever it served at least one batch (scheduling-dependent, so only
  // the consistency of the two counters is asserted).
  EXPECT_EQ(stats.local_replica_batches + stats.remote_replica_batches,
            stats.batches);
  const numa::SimulationInput sim = server.SimInput();
  EXPECT_EQ(sim.model_sharing_sockets, 2);
  EXPECT_EQ(sim.traffic.Total().remote_read_bytes,
            stats.traffic.remote_read_bytes);
}

TEST(ServingEngineTest, HotSwapWhileServingNeverMixesVersions) {
  // Weights are all-1.0 (v1) then all-2.0 (v2); a row of k ones must score
  // exactly k or 2k -- any other value means a batch saw a mix.
  models::LeastSquaresSpec ls;
  const size_t dim = 64;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 16;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(&ls, opts);
  server.Publish("m", ConstantWeights(dim, 1.0));
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int v = 0; v < 40 && !stop.load(); ++v) {
      server.Publish("m", ConstantWeights(dim, (v % 2 == 0) ? 2.0 : 1.0));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<Index> idx(dim);
  std::vector<double> vals(dim, 1.0);
  for (size_t k = 0; k < dim; ++k) idx[k] = static_cast<Index>(k);
  const double k = static_cast<double>(dim);
  for (int i = 0; i < 600; ++i) {
    auto score = server.ScoreSync(idx, vals);
    ASSERT_TRUE(score.ok());
    const double s = score.value();
    EXPECT_TRUE(s == k || s == 2.0 * k) << "mixed-version score " << s;
  }
  stop.store(true);
  publisher.join();
  server.Stop();
}

TEST(ServingEngineTest, RejectsOutOfRangeFeatureIndex) {
  models::LogisticSpec lr;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(&lr, opts);
  server.Publish("lr", ConstantWeights(24, 0.1));
  // Untrusted request input must never index past the replica.
  EXPECT_EQ(server.Score({24}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.Score({1000}, {1.0}).status().code(),
            Status::Code::kInvalidArgument);
  // A valid row is still refused until workers exist to resolve it.
  EXPECT_EQ(server.Score({23}, {1.0}).status().code(),
            Status::Code::kFailedPrecondition);
  ASSERT_TRUE(server.Start().ok());
  auto ok = server.ScoreSync({23}, {1.0});
  EXPECT_TRUE(ok.ok());
  server.Stop();
}

TEST(ServingEngineTest, DenseRequestsScoreValidateAndDensify) {
  models::LeastSquaresSpec ls;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 4;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(&ls, opts);
  server.Publish("ls", ConstantWeights(16, 0.5));
  ASSERT_TRUE(server.Start().ok());

  // Explicit dense form: empty indices, value k at coordinate k. A row
  // shorter than the model is an identity prefix.
  auto dense = server.ScoreSync({}, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense.value(), 2.0);
  // Wider than the model: rejected at admission.
  EXPECT_EQ(server.Score({}, std::vector<double>(17, 1.0)).status().code(),
            Status::Code::kInvalidArgument);
  // An identity-indexed request is rewritten to the dense form during the
  // admission scan and must score identically.
  auto densified = server.ScoreSync({0, 1, 2}, {2.0, 2.0, 2.0});
  ASSERT_TRUE(densified.ok());
  EXPECT_DOUBLE_EQ(densified.value(), 3.0);
  // Non-identity sparse requests still take the gather path.
  auto sparse = server.ScoreSync({3, 15}, {4.0, 4.0});
  ASSERT_TRUE(sparse.ok());
  EXPECT_DOUBLE_EQ(sparse.value(), 4.0);
  server.Stop();
}

TEST(ServingEngineTest, StoppedEngineCannotRestart) {
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  ServingEngine server(&svm, opts);
  server.Publish("svm", ConstantWeights(4, 1.0));
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  // The batcher's shutdown is final; a second Start must refuse rather
  // than hand back a pool whose workers exit immediately.
  EXPECT_EQ(server.Start().code(), Status::Code::kFailedPrecondition);
}

TEST(ServingEngineTest, ConcurrentPublishersKeepVersionsMonotonic) {
  ModelRegistry reg(numa::Local2(), Replication::kPerNode);
  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t v = reg.Publish("m", ConstantWeights(8, 1.0));
        // Installs are serialized in version order, so once Publish
        // returns, the current version can only be at or past it.
        EXPECT_GE(reg.current_version(), v);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      const uint64_t v = reg.current_version();
      EXPECT_GE(v, last) << "version went backwards";
      last = v;
    }
  });
  for (auto& t : publishers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(reg.current_version(), 200u);
}

TEST(ServingEngineTest, ScalarAndBatchedModesAgreeWithinEpsilon) {
  // The sparse batched kernel preserves accumulation order (bitwise); the
  // dense kernel reassociates across accumulator lanes, so the two modes
  // must agree to reassociation epsilon on these dense requests.
  const data::Dataset d = ServeDataset(200, 48, 131);
  models::LogisticSpec lr;
  Rng rng(5);
  std::vector<double> weights(48);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.7);

  std::vector<std::vector<double>> results;
  for (const ScoringMode mode : {ScoringMode::kScalar, ScoringMode::kBatched}) {
    ServingOptions opts;
    opts.topology = numa::Local2();
    opts.scoring = mode;
    opts.batch.max_batch_size = 16;
    opts.batch.max_delay = std::chrono::microseconds(100);
    ServingEngine server(&lr, opts);
    server.Publish("lr", weights);
    ASSERT_TRUE(server.Start().ok());
    std::vector<double> scores;
    std::vector<Index> idx;
    std::vector<double> vals;
    for (Index i = 0; i < d.a.rows(); ++i) {
      RowOf(d, i, &idx, &vals);
      auto s = server.ScoreSync(idx, vals);
      ASSERT_TRUE(s.ok());
      scores.push_back(s.value());
    }
    server.Stop();
    results.push_back(std::move(scores));
  }
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-12) << "row " << i;
  }
}

TEST(ServingEngineTest, BatchedServingOfWideModelCrossesColumnBlocks) {
  // A model wider than one kernel tile: batched serving must still equal
  // the scalar reference (end-to-end check of the blocked serving path).
  const Index dim = models::GlmSpec::kPredictBlockCols + 333;
  models::LeastSquaresSpec ls;
  Rng rng(77);
  std::vector<double> weights(dim);
  for (auto& w : weights) w = rng.Gaussian(0.0, 0.3);

  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 8;
  opts.batch.max_delay = std::chrono::microseconds(100);
  ServingEngine server(&ls, opts);
  server.Publish("ls", weights);
  ASSERT_TRUE(server.Start().ok());

  Rng row_rng(78);
  for (int r = 0; r < 64; ++r) {
    // A sorted sparse row spanning the full width.
    std::vector<Index> idx;
    std::vector<double> vals;
    for (Index j = static_cast<Index>(row_rng.Below(200)); j < dim;
         j += 150 + static_cast<Index>(row_rng.Below(200))) {
      idx.push_back(j);
      vals.push_back(row_rng.Gaussian(0.0, 1.0));
    }
    const matrix::SparseVectorView view{idx.data(), vals.data(), idx.size()};
    const double reference = ls.Predict(weights.data(), view);
    auto served = server.ScoreSync(idx, vals);
    ASSERT_TRUE(served.ok());
    EXPECT_DOUBLE_EQ(served.value(), reference) << "row " << r;
  }
  server.Stop();
  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_GE(stats.max_latency_ms, stats.p99_latency_ms);
}

TEST(ServingEngineTest, StopDrainsAcceptedRequests) {
  models::SvmSpec svm;
  ServingOptions opts;
  opts.topology = numa::Local2();
  opts.batch.max_batch_size = 64;
  opts.batch.max_delay = std::chrono::seconds(10);  // only drain can flush
  ServingEngine server(&svm, opts);
  server.Publish("svm", ConstantWeights(4, 1.0));
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::future<double>> futures;
  for (int i = 0; i < 10; ++i) {
    auto fut = server.Score({0, 2}, {1.0, 1.0});
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  server.Stop();  // must flush the never-full batch
  for (auto& f : futures) {
    EXPECT_DOUBLE_EQ(f.get(), 2.0);
  }
}

// --- latency recorder ------------------------------------------------------

TEST(LatencyRecorderTest, PercentilesAndMerge) {
  engine::LatencyRecorder a;
  engine::LatencyRecorder b;
  for (int i = 1; i <= 50; ++i) a.Record(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.Record(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.Percentile(50.0), 50.5, 1.0);
  EXPECT_NEAR(a.Percentile(99.0), 99.0, 1.1);
  EXPECT_NEAR(a.MeanMs(), 50.5, 1e-9);
}

TEST(LatencyRecorderTest, MergeReweightsAcrossDifferentStrides) {
  // Worker A: heavy traffic (decimated, all samples ~100ms). Worker B:
  // light traffic (no decimation, all ~1ms). A has ~16x B's requests, so
  // the merged p50 must come from A's distribution.
  engine::LatencyRecorder a;
  engine::LatencyRecorder b;
  const uint64_t heavy = engine::LatencyRecorder::kMaxSamples * 4;
  for (uint64_t i = 0; i < heavy; ++i) a.Record(100.0);
  for (uint64_t i = 0; i < heavy / 16; ++i) b.Record(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), heavy + heavy / 16);
  EXPECT_NEAR(a.Percentile(50.0), 100.0, 1e-9);
  // The light worker still shows up in the low tail.
  EXPECT_NEAR(a.Percentile(1.0), 1.0, 1e-9);
}

TEST(LatencyRecorderTest, DecimationBoundsMemoryButKeepsCount) {
  engine::LatencyRecorder r;
  const uint64_t n = (1 << 18);  // 4x the retention bound
  for (uint64_t i = 0; i < n; ++i) {
    r.Record(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(r.count(), n);
  // Percentiles stay sane after decimation.
  EXPECT_NEAR(r.Percentile(50.0), 500.0, 50.0);
}

}  // namespace
}  // namespace dw::serve
