#include "data/paper_datasets.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/graphs.h"
#include "data/synthetic.h"

namespace dw::data {

using matrix::Index;

Index ScaledCount(double paper_count, double scale, Index floor) {
  const double scaled = paper_count * scale;
  return static_cast<Index>(std::max<double>(scaled, floor));
}

Dataset Rcv1(double scale, uint64_t seed) {
  SparseCorpusParams p;
  p.rows = ScaledCount(781e3, scale, 2000);
  p.cols = ScaledCount(47e3, scale, 600);
  p.avg_nnz_per_row = std::min<double>(77.0, p.cols);  // 60M / 781K
  p.zipf_s = 1.05;
  p.seed = seed;
  Dataset d;
  d.name = "RCV1";
  d.a = MakeSparseCorpus(p);
  d.b = PlantClassificationLabels(d.a, std::max<int>(20, p.cols / 20), 0.05,
                                  seed + 1);
  d.sparse = true;
  return d;
}

Dataset Reuters(double scale, uint64_t seed) {
  SparseCorpusParams p;
  // Reuters is underdetermined: d > N (8K rows, 18K cols).
  p.rows = ScaledCount(8e3, scale, 400);
  p.cols = ScaledCount(18e3, scale, 900);
  p.avg_nnz_per_row = std::min<double>(11.6, p.cols);  // 93K / 8K
  p.zipf_s = 1.1;
  p.seed = seed;
  Dataset d;
  d.name = "Reuters";
  d.a = MakeSparseCorpus(p);
  d.b = PlantClassificationLabels(d.a, std::max<int>(20, p.cols / 30), 0.05,
                                  seed + 1);
  d.sparse = true;
  return d;
}

Dataset Music(double scale, uint64_t seed) {
  DenseTableParams p;
  p.rows = ScaledCount(515e3, scale, 1500);
  p.cols = 91;  // fixed dimensionality of YearPredictionMSD
  p.feature_correlation = 0.25;
  p.seed = seed;
  Dataset d;
  d.name = "Music";
  d.a = MakeDenseTable(p);
  d.b = PlantRegressionTargets(d.a, 0.5, seed + 1);
  d.sparse = false;
  return d;
}

Dataset Forest(double scale, uint64_t seed) {
  DenseTableParams p;
  p.rows = ScaledCount(581e3, scale, 1500);
  p.cols = 54;  // fixed dimensionality of Covertype
  p.feature_correlation = 0.15;
  p.seed = seed;
  Dataset d;
  d.name = "Forest";
  d.a = MakeDenseTable(p);
  d.b = PlantClassificationLabels(d.a, 54, 0.05, seed + 1);
  d.sparse = false;
  return d;
}

namespace {

Dataset GraphLp(double paper_vertices, double paper_edges, double scale,
                uint64_t seed, const std::string& name) {
  const Index vertices = ScaledCount(paper_vertices, scale, 500);
  const int64_t edges =
      static_cast<int64_t>(ScaledCount(paper_edges, scale, 1200));
  const PowerLawGraph g = MakePowerLawGraph(vertices, edges, 1.2, seed);
  return MakeVertexCoverLp(g, seed + 1, name);
}

Dataset GraphQp(double paper_vertices, double paper_nnz, double scale,
                uint64_t seed, const std::string& name) {
  const Index vertices = ScaledCount(paper_vertices, scale, 500);
  // nnz of Q = 2*edges + vertices  =>  edges = (nnz - vertices)/2.
  const double paper_edges = (paper_nnz - paper_vertices) / 2.0;
  const int64_t edges =
      static_cast<int64_t>(ScaledCount(paper_edges, scale, 1200));
  const PowerLawGraph g = MakePowerLawGraph(vertices, edges, 1.2, seed);
  return MakeLabelPropagationQp(g, /*lambda=*/1.0, /*seed_fraction=*/0.2,
                                seed + 1, name);
}

}  // namespace

Dataset AmazonLp(double scale, uint64_t seed) {
  return GraphLp(335e3, 926e3, scale, seed, "Amazon");
}

Dataset GoogleLp(double scale, uint64_t seed) {
  return GraphLp(2e6, 2e6, scale, seed, "Google");
}

Dataset AmazonQp(double scale, uint64_t seed) {
  return GraphQp(1e6, 7e6, scale, seed, "Amazon");
}

Dataset GoogleQp(double scale, uint64_t seed) {
  return GraphQp(2e6, 10e6, scale, seed, "Google");
}

Dataset ClueWeb(double scale, uint64_t seed) {
  // 500M rows, 100K URL features, ~8 nnz per row (Kan et al. features),
  // least-squares targets = PageRank-like scores.
  SparseCorpusParams p;
  p.rows = ScaledCount(500e6, scale, 2000);
  p.cols = ScaledCount(100e3, scale * 100, 800);  // features shrink slower
  p.avg_nnz_per_row = 8.0;
  p.zipf_s = 1.1;
  p.seed = seed;
  Dataset d;
  d.name = "ClueWeb";
  d.a = MakeSparseCorpus(p);
  d.b = PlantRegressionTargets(d.a, 0.1, seed + 1);
  // PageRank scores are positive: shift targets.
  for (double& t : d.b) t = std::abs(t);
  d.sparse = true;
  return d;
}

Dataset WithBinaryLabels(Dataset d) {
  std::vector<double> sorted = d.b;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  for (double& y : d.b) y = y >= median ? 1.0 : -1.0;
  return d;
}

}  // namespace dw::data
