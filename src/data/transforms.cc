#include "data/transforms.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace dw::data {

using matrix::CsrMatrix;
using matrix::Index;

Dataset SubsampleElements(const Dataset& d, double keep_fraction,
                          uint64_t seed) {
  DW_CHECK_GT(keep_fraction, 0.0);
  DW_CHECK_LE(keep_fraction, 1.0);
  Rng rng(seed);

  std::vector<int64_t> row_ptr(d.a.rows() + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;

  for (Index i = 0; i < d.a.rows(); ++i) {
    const auto row = d.a.Row(i);
    size_t kept = 0;
    for (size_t k = 0; k < row.nnz; ++k) {
      if (rng.Bernoulli(keep_fraction)) {
        col_idx.push_back(row.indices[k]);
        values.push_back(row.values[k]);
        ++kept;
      }
    }
    if (kept == 0 && row.nnz > 0) {
      const size_t k = rng.Below(row.nnz);
      col_idx.push_back(row.indices[k]);
      values.push_back(row.values[k]);
    }
    row_ptr[i + 1] = static_cast<int64_t>(values.size());
  }

  auto m = CsrMatrix::FromCsrArrays(d.a.rows(), d.a.cols(), std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();
  Dataset out;
  out.name = d.name + "-sub";
  out.a = std::move(m).value();
  out.b = d.b;
  out.c = d.c;
  out.sparse = true;
  return out;
}

Dataset SubsampleRows(const Dataset& d, double keep_fraction, uint64_t seed) {
  DW_CHECK_GT(keep_fraction, 0.0);
  DW_CHECK_LE(keep_fraction, 1.0);
  Rng rng(seed);

  std::vector<int64_t> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  std::vector<double> b;
  row_ptr.push_back(0);

  for (Index i = 0; i < d.a.rows(); ++i) {
    if (!rng.Bernoulli(keep_fraction)) continue;
    const auto row = d.a.Row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      col_idx.push_back(row.indices[k]);
      values.push_back(row.values[k]);
    }
    row_ptr.push_back(static_cast<int64_t>(values.size()));
    if (i < d.b.size()) b.push_back(d.b[i]);
  }
  // Guarantee at least one row so downstream code has work to do.
  if (row_ptr.size() == 1 && d.a.rows() > 0) {
    const auto row = d.a.Row(0);
    for (size_t k = 0; k < row.nnz; ++k) {
      col_idx.push_back(row.indices[k]);
      values.push_back(row.values[k]);
    }
    row_ptr.push_back(static_cast<int64_t>(values.size()));
    if (!d.b.empty()) b.push_back(d.b[0]);
  }

  // Row count must be captured before the move below: argument evaluation
  // order is unspecified, and the by-value parameter would steal row_ptr.
  const Index kept_rows = static_cast<Index>(row_ptr.size() - 1);
  auto m = CsrMatrix::FromCsrArrays(kept_rows, d.a.cols(), std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();
  Dataset out;
  out.name = d.name + "-rows";
  out.a = std::move(m).value();
  out.b = std::move(b);
  out.c = d.c;
  out.sparse = d.sparse;
  return out;
}

Dataset NormalizeRows(const Dataset& d) {
  std::vector<int64_t> row_ptr = d.a.row_ptr();
  std::vector<Index> col_idx = d.a.col_idx();
  std::vector<double> values = d.a.values();

  for (Index i = 0; i < d.a.rows(); ++i) {
    double sq = 0.0;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      sq += values[k] * values[k];
    }
    if (sq <= 0.0) continue;
    const double inv = 1.0 / std::sqrt(sq);
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) values[k] *= inv;
  }

  auto m = CsrMatrix::FromCsrArrays(d.a.rows(), d.a.cols(), std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();
  Dataset out;
  out.name = d.name;
  out.a = std::move(m).value();
  out.b = d.b;
  out.c = d.c;
  out.sparse = d.sparse;
  return out;
}

}  // namespace dw::data
