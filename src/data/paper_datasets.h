// Named surrogate datasets reproducing the shape of each corpus in the
// paper's Figure 10 at a configurable scale. `scale = 1.0` reproduces the
// published row counts; benches default to small scales so every
// experiment finishes in CI time. Shapes preserved per dataset:
//
//   RCV1    781K x 47K, 60M nnz (sparse, underdetermined text)
//   Reuters   8K x 18K, 93K nnz (sparse, d > N)
//   Music   515K x 91           (dense, overdetermined)
//   Forest  581K x 54           (dense, overdetermined)
//   Amazon LP  926K x 335K, 2M nnz (edge constraints)
//   Google LP   2M x 2M, 3M nnz
//   Amazon QP   1M x 1M, 7M nnz (Laplacian rows)
//   Google QP   2M x 2M, 10M nnz
//   MNIST   (7-layer NN; see src/nn)  -- 784-d images, 10 classes
//   ClueWeb 500M x 100K, 4B nnz (URL features -> PageRank, Sec. C.3)
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace dw::data {

/// Scale-resolved row/col counts with sane floors so tiny scales still
/// produce meaningful problems.
matrix::Index ScaledCount(double paper_count, double scale, matrix::Index floor);

/// RCV1-like sparse text classification corpus (labels in {-1, +1}).
Dataset Rcv1(double scale = 0.01, uint64_t seed = 101);

/// Reuters-like small sparse corpus, underdetermined (d > N).
Dataset Reuters(double scale = 0.25, uint64_t seed = 102);

/// Music-like dense regression table (continuous targets; callers wanting
/// classification can threshold b).
Dataset Music(double scale = 0.02, uint64_t seed = 103);

/// Forest-like dense classification table.
Dataset Forest(double scale = 0.02, uint64_t seed = 104);

/// Amazon co-purchase vertex-cover LP.
Dataset AmazonLp(double scale = 0.01, uint64_t seed = 105);

/// Google+ vertex-cover LP.
Dataset GoogleLp(double scale = 0.005, uint64_t seed = 106);

/// Amazon label-propagation QP.
Dataset AmazonQp(double scale = 0.01, uint64_t seed = 107);

/// Google+ label-propagation QP.
Dataset GoogleQp(double scale = 0.005, uint64_t seed = 108);

/// ClueWeb-like URL-feature PageRank regression (Sec. C.3 scalability).
Dataset ClueWeb(double scale = 1e-5, uint64_t seed = 109);

/// Converts regression targets to {-1,+1} by thresholding at the median
/// (used to run SVM/LR on Music).
Dataset WithBinaryLabels(Dataset d);

}  // namespace dw::data
