#include "data/graphs.h"

#include <map>

#include "util/logging.h"

namespace dw::data {

using matrix::CsrMatrix;
using matrix::Index;
using matrix::Triplet;

PowerLawGraph MakePowerLawGraph(Index num_vertices, int64_t num_edges,
                                double zipf_s, uint64_t seed) {
  DW_CHECK_GE(num_vertices, 2u);
  Rng rng(seed);
  ZipfSampler zipf(num_vertices, zipf_s);
  PowerLawGraph g;
  g.num_vertices = num_vertices;
  g.edges.reserve(static_cast<size_t>(num_edges));
  // Permute vertex popularity so "hub" ids are spread over the id space
  // (consecutive hub ids would artificially improve locality).
  std::vector<Index> perm(num_vertices);
  for (Index v = 0; v < num_vertices; ++v) perm[v] = v;
  rng.Shuffle(perm);
  while (static_cast<int64_t>(g.edges.size()) < num_edges) {
    const Index u = perm[zipf.Sample(rng)];
    const Index v = perm[zipf.Sample(rng)];
    if (u == v) continue;
    g.edges.emplace_back(u, v);
  }
  return g;
}

Dataset MakeVertexCoverLp(const PowerLawGraph& graph, uint64_t seed,
                          const std::string& name) {
  Rng rng(seed);
  std::vector<int64_t> row_ptr(graph.edges.size() + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(graph.edges.size() * 2);
  values.reserve(graph.edges.size() * 2);

  for (size_t e = 0; e < graph.edges.size(); ++e) {
    auto [u, v] = graph.edges[e];
    if (u > v) std::swap(u, v);  // keep column ids sorted within the row
    col_idx.push_back(u);
    values.push_back(1.0);
    col_idx.push_back(v);
    values.push_back(1.0);
    row_ptr[e + 1] = static_cast<int64_t>(values.size());
  }
  auto m = CsrMatrix::FromCsrArrays(static_cast<Index>(graph.edges.size()),
                                    graph.num_vertices, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();

  Dataset d;
  d.name = name;
  d.a = std::move(m).value();
  d.b.assign(graph.edges.size(), 1.0);  // x_u + x_v >= 1
  d.c.resize(graph.num_vertices);
  for (auto& cv : d.c) cv = 0.5 + rng.Uniform();  // positive vertex costs
  d.sparse = true;
  return d;
}

Dataset MakeLabelPropagationQp(const PowerLawGraph& graph, double lambda,
                               double seed_fraction, uint64_t seed,
                               const std::string& name) {
  Rng rng(seed);
  const Index n = graph.num_vertices;

  // Accumulate Laplacian triplets: L = D - W (unit edge weights; duplicate
  // edges accumulate, acting as integer weights).
  std::vector<Triplet> trips;
  trips.reserve(graph.edges.size() * 2 + n);
  std::vector<double> degree(n, 0.0);
  for (const auto& [u, v] : graph.edges) {
    trips.push_back({u, v, -1.0});
    trips.push_back({v, u, -1.0});
    degree[u] += 1.0;
    degree[v] += 1.0;
  }
  for (Index vtx = 0; vtx < n; ++vtx) {
    trips.push_back({vtx, vtx, degree[vtx] + lambda});
  }
  auto m = CsrMatrix::FromTriplets(n, n, std::move(trips));
  DW_CHECK(m.ok()) << m.status().ToString();

  // Seed labels on a fraction of vertices; the rest are 0 (unlabeled).
  std::vector<double> y(n, 0.0);
  for (Index vtx = 0; vtx < n; ++vtx) {
    if (rng.Bernoulli(seed_fraction)) y[vtx] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  }
  std::vector<double> b(n);
  for (Index vtx = 0; vtx < n; ++vtx) b[vtx] = lambda * y[vtx];

  Dataset d;
  d.name = name;
  d.a = std::move(m).value();
  d.b = std::move(b);  // linear term of the QP
  d.c = std::move(y);  // raw seed labels (kept for inspection/tests)
  d.sparse = true;
  return d;
}

}  // namespace dw::data
