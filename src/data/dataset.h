// The in-memory form of an analytics task's input: the immutable data
// matrix A (paper Sec. 2: "the data for an analytics task is a pair
// (A, x)"), per-row targets b, and optional per-column costs c (used by the
// LP/QP graph workloads).
#pragma once

#include <string>
#include <vector>

#include "matrix/csr_matrix.h"
#include "matrix/matrix_stats.h"

namespace dw::data {

/// A named dataset. `a` is the read-only data matrix; `b` has one entry
/// per row (class label, regression target, or constraint RHS); `c` has
/// one entry per column for LP objective costs / QP priors (else empty).
struct Dataset {
  std::string name;
  matrix::CsrMatrix a;
  std::vector<double> b;
  std::vector<double> c;
  bool sparse = true;  ///< the "Sparse" column of paper Fig. 10

  /// Shape statistics (computed on demand).
  matrix::MatrixStats Stats() const { return matrix::ComputeStats(a); }

  /// In-memory size of the sparse representation in bytes.
  int64_t SparseBytes() const {
    return a.nnz() *
               static_cast<int64_t>(sizeof(double) + sizeof(matrix::Index)) +
           static_cast<int64_t>((a.rows() + 1) * sizeof(int64_t));
  }

  /// Size a fully dense representation would need (Fig. 10 "Size (Dense)").
  int64_t DenseBytes() const {
    return static_cast<int64_t>(a.rows()) * a.cols() *
           static_cast<int64_t>(sizeof(double));
  }
};

}  // namespace dw::data
