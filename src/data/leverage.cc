#include "data/leverage.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace dw::data {

using matrix::CsrMatrix;
using matrix::Index;

bool CholeskyFactor(std::vector<double>& a, int n) {
  DW_CHECK_EQ(static_cast<int>(a.size()), n * n);
  for (int j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (int k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (int i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (int k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
    for (int k = j + 1; k < n; ++k) a[j * n + k] = 0.0;  // zero upper
  }
  return true;
}

std::vector<double> CholeskySolve(const std::vector<double>& chol, int n,
                                  std::vector<double> b) {
  DW_CHECK_EQ(static_cast<int>(b.size()), n);
  // Forward: L y = b.
  for (int i = 0; i < n; ++i) {
    double v = b[i];
    for (int k = 0; k < i; ++k) v -= chol[i * n + k] * b[k];
    b[i] = v / chol[i * n + i];
  }
  // Backward: L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double v = b[i];
    for (int k = i + 1; k < n; ++k) v -= chol[k * n + i] * b[k];
    b[i] = v / chol[i * n + i];
  }
  return b;
}

StatusOr<std::vector<double>> LeverageScores(const CsrMatrix& a,
                                             double ridge) {
  const int d = static_cast<int>(a.cols());
  if (d > 4096) {
    return Status::InvalidArgument(
        "LeverageScores requires small d (dense Gram factorization)");
  }
  // Gram = A^T A + ridge I.
  std::vector<double> gram(static_cast<size_t>(d) * d, 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto row = a.Row(i);
    for (size_t p = 0; p < row.nnz; ++p) {
      for (size_t q = 0; q < row.nnz; ++q) {
        gram[static_cast<size_t>(row.indices[p]) * d + row.indices[q]] +=
            row.values[p] * row.values[q];
      }
    }
  }
  for (int j = 0; j < d; ++j) gram[static_cast<size_t>(j) * d + j] += ridge;

  if (!CholeskyFactor(gram, d)) {
    return Status::Internal("Gram matrix not positive definite");
  }

  std::vector<double> scores(a.rows(), 0.0);
  std::vector<double> rhs(d);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto row = a.Row(i);
    if (row.nnz == 0) continue;
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (size_t k = 0; k < row.nnz; ++k) rhs[row.indices[k]] = row.values[k];
    const std::vector<double> x = CholeskySolve(gram, d, rhs);
    double s = 0.0;
    for (size_t k = 0; k < row.nnz; ++k) s += row.values[k] * x[row.indices[k]];
    scores[i] = std::max(0.0, s);
  }
  return scores;
}

std::vector<Index> SampleByScore(const std::vector<double>& scores,
                                 size_t samples_per_epoch, uint64_t seed) {
  Rng rng(seed);
  // Cumulative distribution + binary search per draw.
  std::vector<double> cdf(scores.size());
  double acc = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    acc += scores[i];
    cdf[i] = acc;
  }
  std::vector<Index> out;
  out.reserve(samples_per_epoch);
  if (acc <= 0.0 || scores.empty()) return out;
  for (size_t s = 0; s < samples_per_epoch; ++s) {
    const double u = rng.Uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    out.push_back(static_cast<Index>(it - cdf.begin()));
  }
  return out;
}

size_t ImportanceSampleCount(double epsilon, Index d) {
  DW_CHECK_GT(epsilon, 0.0);
  const double dd = std::max<double>(2.0, d);
  return static_cast<size_t>(2.0 / (epsilon * epsilon) * dd * std::log(dd));
}

}  // namespace dw::data
