// Linear leverage scores and importance sampling (paper Sec. C.4).
// s(i) = a_i^T (A^T A)^{-1} a_i; rows are sampled with probability
// proportional to s(i) as the Importance data-replication strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace dw::data {

/// Dense symmetric positive-definite solver (Cholesky). Exposed for tests;
/// `a` is row-major n x n and is overwritten with the factor.
/// Returns false if the matrix is not positive definite.
bool CholeskyFactor(std::vector<double>& a, int n);

/// Solves L L^T x = b given the factor produced by CholeskyFactor.
std::vector<double> CholeskySolve(const std::vector<double>& chol, int n,
                                  std::vector<double> b);

/// Computes leverage scores of all rows. Builds the d x d Gram matrix,
/// so this requires d small enough for a dense factorization (the paper
/// applies it to Music with d = 91). A ridge `ridge * I` keeps the Gram
/// matrix invertible for rank-deficient data.
StatusOr<std::vector<double>> LeverageScores(const matrix::CsrMatrix& a,
                                             double ridge = 1e-6);

/// Draws `samples_per_epoch` row ids i.i.d. proportional to `scores`
/// (with replacement), as the Importance strategy does each epoch.
std::vector<matrix::Index> SampleByScore(const std::vector<double>& scores,
                                         size_t samples_per_epoch,
                                         uint64_t seed);

/// The paper's sample-count rule: m = 2 eps^-2 d log d (Example C.1).
size_t ImportanceSampleCount(double epsilon, matrix::Index d);

}  // namespace dw::data
