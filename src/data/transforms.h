// Dataset transforms used by the paper's sweeps:
//  - element subsampling within each row ("we control the number of
//    non-zero elements per row by subsampling each row on the Music
//    dataset", Fig. 7(b) and Fig. 16(b));
//  - row subsampling (Sec. C.3 scalability);
//  - feature-scaling normalization for stable step sizes.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace dw::data {

/// Keeps each stored element independently with probability
/// `keep_fraction` (at least one element per non-empty row is kept so no
/// example vanishes).
Dataset SubsampleElements(const Dataset& d, double keep_fraction,
                          uint64_t seed);

/// Keeps a uniformly-sampled `keep_fraction` of the rows (with b).
Dataset SubsampleRows(const Dataset& d, double keep_fraction, uint64_t seed);

/// Scales every row to unit L2 norm (zero rows untouched); keeps labels.
Dataset NormalizeRows(const Dataset& d);

}  // namespace dw::data
