// Power-law random graphs and the LP/QP matrices built from them. The
// paper's LP and QP workloads are "a social-network application, i.e.,
// network analysis" over Amazon's customer graph and the Google+ graph
// (Fig. 10): LP rows are edge constraints (2 nonzeros per row, as in the
// vertex-cover LP relaxation of Sridhar et al. [48]); QP rows are the
// graph-Laplacian rows of a label-propagation objective.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace dw::data {

/// An undirected multigraph sampled Chung-Lu style with Zipf weights
/// (heavy-tailed degree like real social/co-purchase networks).
struct PowerLawGraph {
  matrix::Index num_vertices = 0;
  std::vector<std::pair<matrix::Index, matrix::Index>> edges;
};

/// Samples `num_edges` edges over `num_vertices` vertices; endpoint
/// popularity follows Zipf(s). Self-loops are rejected.
PowerLawGraph MakePowerLawGraph(matrix::Index num_vertices, int64_t num_edges,
                                double zipf_s, uint64_t seed);

/// Vertex-cover LP relaxation: minimize sum_v c_v x_v subject to
/// x_u + x_v >= 1 per edge, 0 <= x <= 1. Matrix rows are edges (nnz = 2),
/// b = 1 (RHS), c = vertex costs.
Dataset MakeVertexCoverLp(const PowerLawGraph& graph, uint64_t seed,
                          const std::string& name);

/// Label-propagation QP: minimize 0.5 x^T (L + lambda I) x - lambda y^T x
/// over the graph Laplacian L. Matrix rows are vertices holding the row of
/// Q = L + lambda*I (nnz = degree + 1), b = lambda * y (linear term),
/// c = seed labels y in [-1, 1].
Dataset MakeLabelPropagationQp(const PowerLawGraph& graph, double lambda,
                               double seed_fraction, uint64_t seed,
                               const std::string& name);

}  // namespace dw::data
