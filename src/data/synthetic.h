// Low-level synthetic generators. The paper's corpora are reproduced by
// shape: text datasets (RCV1, Reuters) are sparse with Zipf-distributed
// feature popularity; benchmark datasets (Music, Forest) are dense and
// overdetermined. Labels come from a planted ground-truth model so that
// every generated task has a meaningful optimum to converge to.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace dw::data {

/// Parameters for a sparse, Zipf-feature "text corpus" matrix.
struct SparseCorpusParams {
  matrix::Index rows = 1000;
  matrix::Index cols = 1000;
  double avg_nnz_per_row = 20.0;  ///< mean row length (geometric-ish spread)
  double zipf_s = 1.05;           ///< feature-popularity skew
  uint64_t seed = 1;
};

/// Generates the matrix only (values ~ |N(0,1)| scaled tf-idf style).
matrix::CsrMatrix MakeSparseCorpus(const SparseCorpusParams& params);

/// Parameters for a dense feature matrix (stored as CSR with full rows so
/// all access methods work unchanged; the engine may also densify).
struct DenseTableParams {
  matrix::Index rows = 1000;
  matrix::Index cols = 64;
  double feature_correlation = 0.2;  ///< shared latent factor strength
  uint64_t seed = 1;
};

/// Generates a dense (every entry nonzero) matrix.
matrix::CsrMatrix MakeDenseTable(const DenseTableParams& params);

/// Plants a k-sparse ground-truth weight vector and returns binary labels
/// y_i = sign(a_i . w*), with `noise_fraction` of labels flipped.
std::vector<double> PlantClassificationLabels(const matrix::CsrMatrix& a,
                                              int truth_nnz,
                                              double noise_fraction,
                                              uint64_t seed);

/// Plants a dense ground-truth weight vector and returns regression targets
/// y_i = a_i . w* + N(0, noise_sigma).
std::vector<double> PlantRegressionTargets(const matrix::CsrMatrix& a,
                                           double noise_sigma, uint64_t seed);

}  // namespace dw::data
