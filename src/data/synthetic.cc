#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace dw::data {

using matrix::CsrMatrix;
using matrix::Index;

CsrMatrix MakeSparseCorpus(const SparseCorpusParams& params) {
  DW_CHECK_GT(params.rows, 0u);
  DW_CHECK_GT(params.cols, 0u);
  Rng rng(params.seed);
  ZipfSampler zipf(params.cols, params.zipf_s);

  std::vector<int64_t> row_ptr(params.rows + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  const double expected_nnz =
      static_cast<double>(params.rows) * params.avg_nnz_per_row;
  col_idx.reserve(static_cast<size_t>(expected_nnz * 1.1));
  values.reserve(static_cast<size_t>(expected_nnz * 1.1));

  std::vector<Index> row_cols;
  for (Index i = 0; i < params.rows; ++i) {
    // Row length: 1 + Poisson-ish via exponential spacing, mean avg_nnz.
    const double want =
        1.0 + rng.Exponential(1.0 / std::max(1.0, params.avg_nnz_per_row - 1));
    size_t target = static_cast<size_t>(want);
    target = std::min<size_t>(target, params.cols);

    row_cols.clear();
    std::set<Index> used;
    // Zipf draws collide on the head; retry a bounded number of times then
    // fall back to uniform fill so row length is exact.
    size_t attempts = 0;
    while (used.size() < target && attempts < 20 * target) {
      used.insert(static_cast<Index>(zipf.Sample(rng)));
      ++attempts;
    }
    while (used.size() < target) {
      used.insert(static_cast<Index>(rng.Below(params.cols)));
    }
    row_cols.assign(used.begin(), used.end());

    for (Index c : row_cols) {
      col_idx.push_back(c);
      // tf-idf-like positive magnitudes.
      values.push_back(0.1 + std::abs(rng.Gaussian(0.0, 1.0)));
    }
    row_ptr[i + 1] = static_cast<int64_t>(values.size());
  }

  auto m = CsrMatrix::FromCsrArrays(params.rows, params.cols,
                                    std::move(row_ptr), std::move(col_idx),
                                    std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

CsrMatrix MakeDenseTable(const DenseTableParams& params) {
  DW_CHECK_GT(params.rows, 0u);
  DW_CHECK_GT(params.cols, 0u);
  Rng rng(params.seed);

  std::vector<int64_t> row_ptr(params.rows + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<size_t>(params.rows) * params.cols);
  values.reserve(static_cast<size_t>(params.rows) * params.cols);

  const double rho = params.feature_correlation;
  for (Index i = 0; i < params.rows; ++i) {
    const double latent = rng.Gaussian();
    for (Index j = 0; j < params.cols; ++j) {
      col_idx.push_back(j);
      values.push_back(rho * latent + (1.0 - rho) * rng.Gaussian());
    }
    row_ptr[i + 1] = static_cast<int64_t>(values.size());
  }
  auto m = CsrMatrix::FromCsrArrays(params.rows, params.cols,
                                    std::move(row_ptr), std::move(col_idx),
                                    std::move(values));
  DW_CHECK(m.ok()) << m.status().ToString();
  return std::move(m).value();
}

std::vector<double> PlantClassificationLabels(const CsrMatrix& a,
                                              int truth_nnz,
                                              double noise_fraction,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(a.cols(), 0.0);
  const int k = std::min<int>(truth_nnz, static_cast<int>(a.cols()));
  for (int t = 0; t < k; ++t) {
    w[rng.Below(a.cols())] = rng.Gaussian();
  }
  std::vector<double> y(a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    const double margin = a.Row(i).Dot(w.data());
    double label = margin >= 0.0 ? 1.0 : -1.0;
    if (rng.Bernoulli(noise_fraction)) label = -label;
    y[i] = label;
  }
  return y;
}

std::vector<double> PlantRegressionTargets(const CsrMatrix& a,
                                           double noise_sigma,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(a.cols());
  for (auto& wi : w) wi = rng.Gaussian();
  std::vector<double> y(a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    y[i] = a.Row(i).Dot(w.data()) + rng.Gaussian(0.0, noise_sigma);
  }
  return y;
}

}  // namespace dw::data
