// Fast deterministic random number generation. Every stochastic component
// in DimmWitted takes an explicit seed so experiments are reproducible; the
// engine derives per-worker streams with SplitMix64 so workers never share
// generator state (no false sharing, no locks).
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace dw {

/// Stateless mixer used to derive independent seeds from a master seed.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator: fast, high quality, 2^256 period. One instance
/// per worker thread; never shared.
class Rng {
 public:
  /// Seeds the generator; two Rng(seed) instances produce identical streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Reseed(seed); }

  /// Re-initializes the stream from `seed`.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n) {
    DW_CHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second draw).
  double Gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = 0.0;
    while (u == 0.0) u = Uniform();
    return -std::log(u) / lambda;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

/// Draws from a Zipf(s) distribution over {0, ..., n-1} using rejection
/// sampling (Jain & Chlamtac style inverse method). Used by the synthetic
/// text-corpus generators to reproduce power-law feature popularity.
class ZipfSampler {
 public:
  /// n: support size; s: exponent (s > 0; s around 1 for text corpora).
  ZipfSampler(uint64_t n, double s);

  /// Next index in [0, n), smaller indexes more probable.
  uint64_t Sample(Rng& rng) const;

  /// Support size.
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double s_;
  double h_x1_;       // H(1.5) - 1
  double h_n_;        // H(n + 0.5)
  double inv_s_;      // 1/(1 - s) when s != 1
};

}  // namespace dw
