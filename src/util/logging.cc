#include "util/logging.h"

#include <atomic>

namespace dw {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  (void)file_;
  (void)line_;
  std::abort();
}

}  // namespace internal
}  // namespace dw
