// Synchronization primitives for the epoch-based execution engine. Workers
// meet at a barrier between epochs; spinning (not parking) keeps the
// per-epoch overhead low for the short epochs of scaled-down datasets.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/logging.h"

namespace dw {

/// Reusable sense-reversing spin barrier for a fixed set of participants.
class SpinBarrier {
 public:
  /// `parties` threads must call Wait() before any is released.
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {
    DW_CHECK_GT(parties, 0u);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all parties arrive. Safe to reuse across generations.
  void Wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 1024) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  /// Number of participating threads.
  uint32_t parties() const { return parties_; }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

/// Tiny test-and-test-and-set spinlock (used only on cold paths such as
/// metrics aggregation; the hot data path is lock-free by design).
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (locked_hint_.load(std::memory_order_relaxed)) {
      }
    }
    locked_hint_.store(true, std::memory_order_relaxed);
  }

  void unlock() {
    locked_hint_.store(false, std::memory_order_relaxed);
    flag_.clear(std::memory_order_release);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::atomic<bool> locked_hint_{false};
};

}  // namespace dw
