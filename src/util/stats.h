// Small numeric summaries used by benchmarks and the cost-model calibration.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dw {

/// Summary statistics of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes count/mean/stddev/min/max/median of `xs` (empty -> all zeros).
Summary Summarize(std::vector<double> xs);

/// Population mean of `xs`, 0 if empty.
double Mean(const std::vector<double>& xs);

/// The p-th percentile of `xs` (p in [0, 100], linear interpolation
/// between order statistics); 0 if empty.
double Percentile(std::vector<double> xs, double p);

/// Same, for `sorted` already in ascending order (no copy, no sort) --
/// use when querying several percentiles of one sample.
double PercentileSorted(const std::vector<double>& sorted, double p);

/// Relative error |a - b| / max(|b|, eps).
inline double RelativeError(double a, double b, double eps = 1e-12) {
  const double denom = std::max(std::abs(b), eps);
  return std::abs(a - b) / denom;
}

}  // namespace dw
