#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace dw {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

void JsonWriter::Escape(const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

bool JsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = n == out_.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace dw
