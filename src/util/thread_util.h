// OS-thread helpers: CPU pinning and naming. Pinning maps virtual NUMA
// placement decisions onto whatever physical CPUs exist (see src/numa).
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace dw {

/// Number of online logical CPUs.
int NumOnlineCpus();

/// Pins the calling thread to the given logical CPU (modulo the online CPU
/// count, so virtual-core ids larger than the machine still map somewhere
/// deterministic). Returns non-OK only if the affinity syscall fails.
Status PinCurrentThreadToCpu(int cpu);

/// Clears the calling thread's CPU affinity (any online CPU).
Status UnpinCurrentThread();

/// Best-effort thread naming for debuggers (<=15 chars on Linux).
void SetCurrentThreadName(const std::string& name);

}  // namespace dw
