// Cache-line aligned storage. Model replicas and per-worker accumulators
// are allocated on cache-line boundaries so that adjacent replicas never
// share a line (false sharing is one of the hardware-efficiency effects the
// paper studies, so we must control it, not suffer from it accidentally).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "util/logging.h"

namespace dw {

/// Cache line size assumed throughout (x86-64).
inline constexpr size_t kCacheLineBytes = 64;

/// Rounds `n` up to a multiple of `alignment`.
inline constexpr size_t RoundUp(size_t n, size_t alignment) {
  return (n + alignment - 1) / alignment * alignment;
}

/// Fixed-size array of T aligned to (and padded to) cache-line boundaries.
/// Zero-initialized.
template <typename T>
class AlignedArray {
 public:
  AlignedArray() = default;

  /// Allocates `size` zeroed elements.
  explicit AlignedArray(size_t size) { Resize(size); }

  AlignedArray(AlignedArray&& other) noexcept { *this = std::move(other); }
  AlignedArray& operator=(AlignedArray&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  AlignedArray(const AlignedArray&) = delete;
  AlignedArray& operator=(const AlignedArray&) = delete;

  ~AlignedArray() { Free(); }

  /// Reallocates to `size` zeroed elements (contents are NOT preserved).
  void Resize(size_t size) {
    Free();
    size_ = size;
    if (size == 0) return;
    const size_t bytes = RoundUp(size * sizeof(T), kCacheLineBytes);
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    DW_CHECK(p != nullptr) << "aligned_alloc of " << bytes << " bytes failed";
    std::memset(p, 0, bytes);
    data_ = static_cast<T*>(p);
  }

  /// Element access (unchecked on release hot paths).
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Free() {
    if (data_ != nullptr) {
      std::free(data_);
      data_ = nullptr;
    }
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

/// A value padded to occupy a full cache line; arrays of PerCoreCounter do
/// not induce coherence traffic between writers.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};
};

}  // namespace dw
