// Console table printer. Every bench binary prints the paper's tables and
// figure series through this so the output is uniform and diffable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dw {

/// Column-aligned ASCII table.
class Table {
 public:
  /// `title` is printed above the table; may be empty.
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  /// Appends a data row (cells already formatted).
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const { std::fputs(ToString().c_str(), stdout); }

  /// Formats a double with `digits` significant decimals.
  static std::string Num(double v, int digits = 3);

  /// Formats a value as the paper formats timeouts: "> limit" markers.
  static std::string TimeOr(double seconds, double timeout_s, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dw
