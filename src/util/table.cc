#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace dw {

std::string Table::ToString() const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };

  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out;
  if (!title_.empty()) out += "\n== " + title_ + " ==\n";
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::TimeOr(double seconds, double timeout_s, int digits) {
  if (seconds >= timeout_s) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "> %.1f", timeout_s);
    return buf;
  }
  return Num(seconds, digits);
}

}  // namespace dw
