// RocksDB-style status object used for error handling on all public APIs.
// DimmWitted does not throw exceptions on hot paths; fallible operations
// return a Status (or StatusOr<T>) instead.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace dw {

/// Result of a fallible operation. Cheap to copy for the OK case.
class Status {
 public:
  /// Machine-readable error category.
  enum class Code : uint8_t {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kOutOfRange = 3,
    kFailedPrecondition = 4,
    kUnimplemented = 5,
    kInternal = 6,
    kResourceExhausted = 7,
  };

  /// Constructs an OK status.
  Status() = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an error carrying Code::kInvalidArgument.
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Returns an error carrying Code::kNotFound.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Returns an error carrying Code::kOutOfRange.
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  /// Returns an error carrying Code::kFailedPrecondition.
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  /// Returns an error carrying Code::kUnimplemented.
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  /// Returns an error carrying Code::kInternal.
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// Returns an error carrying Code::kResourceExhausted.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  /// Error category; Code::kOk iff ok().
  Code code() const { return code_; }
  /// Human-readable error detail; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr but dependency-free.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit to allow `return value;`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs from an error status; `s.ok()` must be false.
  StatusOr(Status s) : status_(std::move(s)) {}

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }
  /// The status; OK iff a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& { return value_; }
  /// The held value. Requires ok().
  T& value() & { return value_; }
  /// Moves the held value out. Requires ok().
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dw
