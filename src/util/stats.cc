#include "util/stats.h"

namespace dw {

Summary Summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = xs[xs.size() / 2];
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
  return s;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

}  // namespace dw
