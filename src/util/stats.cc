#include "util/stats.h"

namespace dw {

Summary Summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = xs[xs.size() / 2];
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double sq = 0.0;
  for (double x : xs) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
  return s;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace dw
