// Wall-clock timing utilities used by the engine's per-epoch metrics and by
// every benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace dw {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Reset().
  int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dw
