#include "util/thread_util.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace dw {

int NumOnlineCpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<int>(n);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

Status PinCurrentThreadToCpu(int cpu) {
  const int ncpu = NumOnlineCpus();
  if (cpu < 0) return Status::InvalidArgument("negative cpu id");
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % ncpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return Status::Internal("pthread_setaffinity_np failed");
  }
  return Status::OK();
}

Status UnpinCurrentThread() {
  const int ncpu = NumOnlineCpus();
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int i = 0; i < ncpu; ++i) CPU_SET(i, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return Status::Internal("pthread_setaffinity_np failed");
  }
  return Status::OK();
}

void SetCurrentThreadName(const std::string& name) {
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
}

}  // namespace dw
