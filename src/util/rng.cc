#include "util/rng.h"

namespace dw {

namespace {

// Generalized harmonic-ish helper used by the rejection sampler:
// integral form of sum 1/k^s.
double H(double x, double s) {
  if (s == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double HInv(double x, double s) {
  if (s == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  DW_CHECK_GT(n, 0u);
  DW_CHECK_GT(s, 0.0);
  h_x1_ = H(1.5, s) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5, s);
  inv_s_ = 1.0 / (1.0 - s);
  (void)inv_s_;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  // Rejection-inversion sampling (Hormann & Derflinger). Expected < 1.1
  // iterations per draw for s in (0.5, 2].
  for (;;) {
    const double u = h_x1_ + rng.Uniform() * (h_n_ - h_x1_);
    const double x = HInv(u, s_);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (u >= H(kd + 0.5, s_) - std::pow(kd, -s_)) {
      return k - 1;  // zero-based
    }
  }
}

}  // namespace dw
