// Minimal leveled logger plus CHECK macros. Logging goes to stderr; the
// level can be raised at runtime so benchmarks stay quiet by default.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dw {

/// Severity levels in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that is actually emitted (default: kWarning,
/// so library users are not spammed unless they opt in).
LogLevel GetLogLevel();

/// Sets the process-wide minimum emitted level.
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink that writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Accumulates message text.
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process in its destructor (used by DW_CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  /// Accumulates message text.
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dw

#define DW_LOG(level)                                                     \
  if (::dw::LogLevel::k##level < ::dw::GetLogLevel()) {                   \
  } else                                                                  \
    ::dw::internal::LogMessage(::dw::LogLevel::k##level, __FILE__,        \
                               __LINE__)                                  \
        .stream()

/// Aborts with a diagnostic if `cond` does not hold. Enabled in all builds:
/// invariant violations in a storage engine must never be silent.
#define DW_CHECK(cond)                                              \
  if (cond) {                                                       \
  } else                                                            \
    ::dw::internal::FatalLogMessage(__FILE__, __LINE__).stream()    \
        << "Check failed: " #cond " "

#define DW_CHECK_OP(op, a, b) DW_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define DW_CHECK_EQ(a, b) DW_CHECK_OP(==, a, b)
#define DW_CHECK_NE(a, b) DW_CHECK_OP(!=, a, b)
#define DW_CHECK_LT(a, b) DW_CHECK_OP(<, a, b)
#define DW_CHECK_LE(a, b) DW_CHECK_OP(<=, a, b)
#define DW_CHECK_GT(a, b) DW_CHECK_OP(>, a, b)
#define DW_CHECK_GE(a, b) DW_CHECK_OP(>=, a, b)

/// Propagates a non-OK Status from the current function.
#define DW_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::dw::Status _dw_status = (expr);             \
    if (!_dw_status.ok()) return _dw_status;      \
  } while (0)
