// Minimal JSON emitter for machine-readable bench artifacts (the CI perf
// trajectory is archived as bench_serving JSON per commit). Emits compact,
// valid JSON with comma bookkeeping handled by a nesting stack; no
// parsing, no DOM -- benches only ever append.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dw {

class JsonWriter {
 public:
  /// Value writers. Inside an object, every value must be preceded by
  /// Key(); inside an array, values follow one another directly.
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& v);
  JsonWriter& Number(double v);
  JsonWriter& Number(int64_t v);
  JsonWriter& Number(uint64_t v);
  JsonWriter& Number(int v) { return Number(static_cast<int64_t>(v)); }
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// Convenience for the common "key": value pairs.
  JsonWriter& Field(const std::string& name, const std::string& v) {
    return Key(name).String(v);
  }
  JsonWriter& Field(const std::string& name, const char* v) {
    return Key(name).String(v);
  }
  JsonWriter& Field(const std::string& name, double v) {
    return Key(name).Number(v);
  }
  JsonWriter& Field(const std::string& name, int64_t v) {
    return Key(name).Number(v);
  }
  JsonWriter& Field(const std::string& name, uint64_t v) {
    return Key(name).Number(v);
  }
  JsonWriter& Field(const std::string& name, int v) {
    return Key(name).Number(v);
  }
  JsonWriter& Field(const std::string& name, bool v) {
    return Key(name).Bool(v);
  }

  /// The document so far. Valid JSON once every Begin has its End.
  const std::string& str() const { return out_; }

  /// Writes str() to `path`. Returns false (and leaves a partial file at
  /// worst) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  void BeforeValue();
  void Escape(const std::string& s);

  std::string out_;
  /// One entry per open scope: whether a value was already emitted there
  /// (controls the comma).
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace dw
