#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dw::nn {

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  DW_CHECK_GE(config_.layer_sizes.size(), 2u);
  const int layers = num_layers();
  weight_offset_.resize(layers - 1);
  bias_offset_.resize(layers - 1);
  size_t off = 0;
  for (int l = 0; l + 1 < layers; ++l) {
    weight_offset_[l] = off;
    off += static_cast<size_t>(config_.layer_sizes[l]) *
           config_.layer_sizes[l + 1];
    bias_offset_[l] = off;
    off += config_.layer_sizes[l + 1];
  }
  num_params_ = off;
  neurons_per_example_ = 0;
  for (int width : config_.layer_sizes) neurons_per_example_ += width;
}

void Mlp::InitParams(double* params, uint64_t seed) const {
  Rng rng(seed);
  for (int l = 0; l + 1 < num_layers(); ++l) {
    const int fan_in = config_.layer_sizes[l];
    const int fan_out = config_.layer_sizes[l + 1];
    const double scale = std::sqrt(2.0 / (fan_in + fan_out));
    double* w = params + weight_offset_[l];
    for (int k = 0; k < fan_in * fan_out; ++k) {
      w[k] = rng.Gaussian(0.0, scale);
    }
    double* b = params + bias_offset_[l];
    for (int k = 0; k < fan_out; ++k) b[k] = 0.0;
  }
}

MlpScratch Mlp::MakeScratch() const {
  MlpScratch s;
  s.act.resize(num_layers());
  s.delta.resize(num_layers());
  for (int l = 0; l < num_layers(); ++l) {
    s.act[l].assign(config_.layer_sizes[l], 0.0);
    s.delta[l].assign(config_.layer_sizes[l], 0.0);
  }
  return s;
}

double Mlp::Forward(const double* params, const double* input, int label,
                    MlpScratch* scratch) const {
  const int layers = num_layers();
  std::copy(input, input + config_.layer_sizes[0], scratch->act[0].begin());
  for (int l = 0; l + 1 < layers; ++l) {
    const int in = config_.layer_sizes[l];
    const int out = config_.layer_sizes[l + 1];
    const double* w = params + weight_offset_[l];
    const double* b = params + bias_offset_[l];
    const double* x = scratch->act[l].data();
    double* y = scratch->act[l + 1].data();
    for (int j = 0; j < out; ++j) {
      double acc = b[j];
      const double* wj = w + static_cast<size_t>(j) * in;
      for (int i = 0; i < in; ++i) acc += wj[i] * x[i];
      // ReLU on hidden layers, identity (logits) on the last.
      y[j] = (l + 2 < layers) ? std::max(0.0, acc) : acc;
    }
  }
  // Softmax cross-entropy on the logits.
  const int out = config_.layer_sizes[layers - 1];
  DW_CHECK_LT(label, out);
  double* logits = scratch->act[layers - 1].data();
  double maxv = logits[0];
  for (int j = 1; j < out; ++j) maxv = std::max(maxv, logits[j]);
  double z = 0.0;
  for (int j = 0; j < out; ++j) z += std::exp(logits[j] - maxv);
  return -(logits[label] - maxv - std::log(z));
}

void Mlp::TrainExample(double* params, const double* input, int label,
                       double learning_rate, MlpScratch* scratch) const {
  (void)Forward(params, input, label, scratch);
  const int layers = num_layers();
  const int out = config_.layer_sizes[layers - 1];

  // Output delta: softmax - onehot.
  {
    double* logits = scratch->act[layers - 1].data();
    double maxv = logits[0];
    for (int j = 1; j < out; ++j) maxv = std::max(maxv, logits[j]);
    double z = 0.0;
    for (int j = 0; j < out; ++j) z += std::exp(logits[j] - maxv);
    double* d = scratch->delta[layers - 1].data();
    for (int j = 0; j < out; ++j) {
      d[j] = std::exp(logits[j] - maxv) / z - (j == label ? 1.0 : 0.0);
    }
  }

  // Backward + in-place SGD (Hogwild-friendly plain writes).
  for (int l = layers - 2; l >= 0; --l) {
    const int in = config_.layer_sizes[l];
    const int on = config_.layer_sizes[l + 1];
    double* w = params + weight_offset_[l];
    double* b = params + bias_offset_[l];
    const double* x = scratch->act[l].data();
    const double* dout = scratch->delta[l + 1].data();
    double* din = scratch->delta[l].data();
    if (l > 0) std::fill(din, din + in, 0.0);
    for (int j = 0; j < on; ++j) {
      const double dj = dout[j];
      if (dj == 0.0) continue;
      double* wj = w + static_cast<size_t>(j) * in;
      if (l > 0) {
        for (int i = 0; i < in; ++i) {
          din[i] += wj[i] * dj;
          wj[i] -= learning_rate * dj * x[i];
        }
      } else {
        for (int i = 0; i < in; ++i) wj[i] -= learning_rate * dj * x[i];
      }
      b[j] -= learning_rate * dj;
    }
    if (l > 0) {
      // ReLU derivative.
      for (int i = 0; i < in; ++i) {
        if (x[i] <= 0.0) din[i] = 0.0;
      }
    }
  }
}

double Mlp::MeanLoss(const double* params, const std::vector<double>& inputs,
                     const std::vector<int>& labels, int input_dim,
                     MlpScratch* scratch) const {
  const size_t n = labels.size();
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (size_t e = 0; e < n; ++e) {
    acc += Forward(params, inputs.data() + e * input_dim,
                   labels[e], scratch);
  }
  return acc / static_cast<double>(n);
}

DigitData MakeMnistLike(int n, uint64_t seed) {
  Rng rng(seed);
  DigitData d;
  d.images.reserve(static_cast<size_t>(n) * d.input_dim);
  d.labels.reserve(n);

  // Ten class templates: blurred random strokes, fixed per class.
  std::vector<std::vector<double>> templates(10,
                                             std::vector<double>(784, 0.0));
  for (int c = 0; c < 10; ++c) {
    Rng troll(seed * 131 + c);
    // A few random "strokes" (line segments on the 28x28 grid).
    for (int s = 0; s < 6; ++s) {
      int r = static_cast<int>(troll.Below(28));
      int col = static_cast<int>(troll.Below(28));
      const int dr = static_cast<int>(troll.Below(3)) - 1;
      const int dc = static_cast<int>(troll.Below(3)) - 1;
      for (int t = 0; t < 10; ++t) {
        if (r >= 0 && r < 28 && col >= 0 && col < 28) {
          templates[c][r * 28 + col] = 1.0;
        }
        r += dr;
        col += dc;
      }
    }
  }
  for (int e = 0; e < n; ++e) {
    const int label = static_cast<int>(rng.Below(10));
    d.labels.push_back(label);
    for (int p = 0; p < 784; ++p) {
      const double v = templates[label][p] + rng.Gaussian(0.0, 0.15);
      d.images.push_back(std::clamp(v, 0.0, 1.0));
    }
  }
  return d;
}

}  // namespace dw::nn
