#include "nn/trainer.h"

#include <cmath>
#include <thread>

#include "util/aligned.h"
#include "util/barrier.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::nn {

NnTrainResult TrainParallel(const Mlp& mlp, const DigitData& data,
                            const NnTrainOptions& options) {
  const numa::Topology& topo = options.topology;
  const int wpn = options.workers_per_node > 0 ? options.workers_per_node
                                               : topo.cores_per_node;
  const int nodes = topo.num_nodes;
  const int num_workers = wpn * nodes;
  const int n = data.num_examples();
  DW_CHECK_GT(n, 0);

  const bool per_node = options.strategy == NnStrategy::kDimmWitted;
  const int num_replicas = per_node ? nodes : 1;

  // Parameter replicas (cache-line aligned; Hogwild-style plain writes).
  std::vector<AlignedArray<double>> replicas;
  replicas.reserve(num_replicas);
  for (int r = 0; r < num_replicas; ++r) {
    replicas.emplace_back(mlp.num_params());
    mlp.InitParams(replicas[r].data(), options.seed);
  }

  // Work assignment. Classic/Sharding: each worker owns n/num_workers
  // examples. DimmWitted/FullReplication: each node sweeps all examples,
  // split among its workers.
  std::vector<std::vector<int>> work(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    if (per_node) {
      const int slot = w % wpn;
      for (int e = slot; e < n; e += wpn) work[w].push_back(e);
    } else {
      for (int e = w; e < n; e += num_workers) work[w].push_back(e);
    }
  }

  std::vector<Rng> rngs;
  uint64_t sm = options.seed + 17;
  for (int w = 0; w < num_workers; ++w) rngs.emplace_back(SplitMix64(sm));

  // Eval subset.
  const int eval_n = options.eval_examples > 0
                         ? std::min(options.eval_examples, n)
                         : n;
  std::vector<double> eval_inputs(
      data.images.begin(),
      data.images.begin() + static_cast<size_t>(eval_n) * data.input_dim);
  std::vector<int> eval_labels(data.labels.begin(),
                               data.labels.begin() + eval_n);

  NnTrainResult result;
  SpinBarrier epoch_start(num_workers + 1);
  SpinBarrier epoch_end(num_workers + 1);
  std::atomic<bool> quit{false};
  std::atomic<double> lr{options.learning_rate};

  std::vector<std::thread> pool;
  pool.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      const int node = w / wpn;
      if (options.pin_threads) {
        const int core =
            node * topo.cores_per_node + (w % wpn) % topo.cores_per_node;
        (void)PinCurrentThreadToCpu(
            topo.PhysicalCpuOfCore(core, NumOnlineCpus()));
      }
      MlpScratch scratch = mlp.MakeScratch();
      double* params = per_node ? replicas[node].data() : replicas[0].data();
      for (;;) {
        epoch_start.Wait();
        if (quit.load(std::memory_order_acquire)) break;
        rngs[w].Shuffle(work[w]);
        const double step = lr.load(std::memory_order_relaxed);
        for (int e : work[w]) {
          mlp.TrainExample(params,
                           data.images.data() +
                               static_cast<size_t>(e) * data.input_dim,
                           data.labels[e], step, &scratch);
        }
        epoch_end.Wait();
      }
    });
  }

  MlpScratch eval_scratch = mlp.MakeScratch();
  WallTimer total_timer;
  double work_sec = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    lr.store(options.learning_rate * std::pow(options.lr_decay, epoch));
    WallTimer epoch_timer;
    epoch_start.Wait();
    epoch_end.Wait();
    work_sec += epoch_timer.Seconds();

    // Epoch-boundary averaging for PerNode replicas.
    if (per_node && num_replicas > 1) {
      for (size_t k = 0; k < mlp.num_params(); ++k) {
        double acc = 0.0;
        for (int r = 0; r < num_replicas; ++r) acc += replicas[r][k];
        const double avg = acc / num_replicas;
        for (int r = 0; r < num_replicas; ++r) replicas[r][k] = avg;
      }
    }
    result.loss_per_epoch.push_back(
        mlp.MeanLoss(replicas[0].data(), eval_inputs, eval_labels,
                     data.input_dim, &eval_scratch));
  }
  quit.store(true);
  epoch_start.Wait();
  for (auto& t : pool) t.join();

  result.wall_sec = work_sec;
  const uint64_t per_epoch_examples =
      per_node ? static_cast<uint64_t>(n) * nodes : static_cast<uint64_t>(n);
  result.examples_processed =
      per_epoch_examples * static_cast<uint64_t>(options.epochs);
  result.neurons_processed =
      result.examples_processed * mlp.neurons_per_example();

  // Simulated time: every example touches all parameters (dense update).
  numa::SimulationInput sim(nodes);
  const uint64_t param_bytes = mlp.num_params() * sizeof(double);
  for (int w = 0; w < num_workers; ++w) {
    const int node = w / wpn;
    numa::AccessCounters c;
    const uint64_t ex = static_cast<uint64_t>(work[w].size()) *
                        static_cast<uint64_t>(options.epochs);
    const uint64_t input_bytes =
        ex * static_cast<uint64_t>(data.input_dim) * sizeof(double);
    c.local_read_bytes = input_bytes;
    const uint64_t model_traffic = ex * param_bytes;
    if (per_node || nodes == 1) {
      c.model_read_bytes = model_traffic;
      c.local_write_bytes = model_traffic;
    } else {
      // Shared buffer: reads cross sockets pro rata; writes are shared.
      const double remote_frac = static_cast<double>(nodes - 1) / nodes;
      c.remote_read_bytes =
          static_cast<uint64_t>(model_traffic * remote_frac * 0.25);
      c.model_read_bytes = model_traffic - c.remote_read_bytes;
      c.shared_write_bytes = model_traffic;
    }
    c.flops = 2 * model_traffic / sizeof(double);
    c.updates = ex;
    sim.traffic.Add(node, c);
    ++sim.active_workers[node];
  }
  sim.model_sharing_sockets = (per_node || nodes == 1) ? 1 : nodes;
  sim.model_bytes = param_bytes;
  result.sim_sec = numa::MemoryModel(topo).SimulateEpoch(sim).total_sec;
  (void)total_timer;
  return result;
}

}  // namespace dw::nn
