// Parallel MLP training under the paper's two strategy points
// (Sec. 5.2 / Fig. 17(b)):
//   kClassic    -- PerMachine model + Sharding (LeCun's original choice):
//                  one shared weight buffer, Hogwild-style updates, each
//                  worker sees its shard of the data;
//   kDimmWitted -- PerNode model + FullReplication: one weight replica per
//                  virtual node, each node sweeps the full dataset in its
//                  own order, replicas averaged at epoch boundaries.
#pragma once

#include <vector>

#include "nn/mlp.h"
#include "numa/memory_model.h"
#include "numa/topology.h"

namespace dw::nn {

/// Strategy points compared in Fig. 17(b).
enum class NnStrategy { kClassic, kDimmWitted };

/// Training configuration.
struct NnTrainOptions {
  NnStrategy strategy = NnStrategy::kDimmWitted;
  numa::Topology topology = numa::Local2();
  int workers_per_node = -1;
  int epochs = 3;
  double learning_rate = 0.02;
  double lr_decay = 0.9;
  uint64_t seed = 11;
  bool pin_threads = true;
  /// Examples used for the per-epoch loss estimate (0 = all).
  int eval_examples = 512;
};

/// Training output.
struct NnTrainResult {
  std::vector<double> loss_per_epoch;
  uint64_t examples_processed = 0;
  uint64_t neurons_processed = 0;  ///< Fig. 17(b)'s "variables/second" unit
  double wall_sec = 0.0;
  double sim_sec = 0.0;

  double NeuronsPerSec() const {
    return wall_sec > 0 ? static_cast<double>(neurons_processed) / wall_sec
                        : 0.0;
  }
  double SimNeuronsPerSec() const {
    return sim_sec > 0 ? static_cast<double>(neurons_processed) / sim_sec
                       : 0.0;
  }
};

/// Trains `mlp` on `data` under the given strategy.
NnTrainResult TrainParallel(const Mlp& mlp, const DigitData& data,
                            const NnTrainOptions& options);

}  // namespace dw::nn
