// Multi-layer perceptron trained with back-propagated SGD (paper Sec. 5.2
// / D.2: "back-propagation with stochastic gradient descent is the de
// facto method of optimizing a deep neural network"; the SGD code path is
// invoked per layer in a round-robin fashion). The default geometry is the
// paper's seven-layer, ~0.8M-parameter network for MNIST-like digits.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace dw::nn {

/// Network geometry.
struct MlpConfig {
  /// Layer widths, input first, logits last. Seven layers, ~793K weights.
  std::vector<int> layer_sizes = {784, 500, 400, 300, 200, 100, 10};
  uint64_t seed = 1;
};

/// Per-worker scratch (activations and deltas); reused across examples.
struct MlpScratch {
  std::vector<std::vector<double>> act;    ///< activations per layer
  std::vector<std::vector<double>> delta;  ///< back-propagated errors
};

/// The MLP: topology plus helpers that operate on an external, flat
/// parameter buffer so replicas can live wherever the caller wants
/// (node-local arrays, shared Hogwild! buffer, ...).
class Mlp {
 public:
  explicit Mlp(MlpConfig config);

  /// Total parameter count (weights + biases).
  size_t num_params() const { return num_params_; }

  /// Neurons evaluated per example (the throughput unit of Fig. 17(b)).
  size_t neurons_per_example() const { return neurons_per_example_; }

  int num_layers() const { return static_cast<int>(config_.layer_sizes.size()); }
  const MlpConfig& config() const { return config_; }

  /// Xavier-style initialization of a parameter buffer.
  void InitParams(double* params, uint64_t seed) const;

  /// Allocates scratch sized for this network.
  MlpScratch MakeScratch() const;

  /// Forward pass; returns the cross-entropy loss of `label`.
  double Forward(const double* params, const double* input, int label,
                 MlpScratch* scratch) const;

  /// One SGD step (forward + backward + in-place update of `params`).
  void TrainExample(double* params, const double* input, int label,
                    double learning_rate, MlpScratch* scratch) const;

  /// Mean loss over a set of examples.
  double MeanLoss(const double* params, const std::vector<double>& inputs,
                  const std::vector<int>& labels, int input_dim,
                  MlpScratch* scratch) const;

 private:
  /// Offset of layer l's weight block in the flat buffer.
  size_t WeightOffset(int l) const { return weight_offset_[l]; }
  size_t BiasOffset(int l) const { return bias_offset_[l]; }

  MlpConfig config_;
  size_t num_params_ = 0;
  size_t neurons_per_example_ = 0;
  std::vector<size_t> weight_offset_;
  std::vector<size_t> bias_offset_;
};

/// MNIST-like dataset: 28x28 "digit" images sampled from 10 noisy class
/// templates, flattened to 784 doubles in [0, 1].
struct DigitData {
  int input_dim = 784;
  std::vector<double> images;  ///< n x input_dim, row-major
  std::vector<int> labels;     ///< n, in [0, 10)
  int num_examples() const {
    return input_dim == 0 ? 0 : static_cast<int>(images.size()) / input_dim;
  }
};

/// Generates `n` examples (paper Fig. 10 MNIST row at scale: 120M neuron
/// evaluations come from n * neurons_per_example).
DigitData MakeMnistLike(int n, uint64_t seed);

}  // namespace dw::nn
