// The "extremely simple task" of paper Sec. 4.2's throughput comparison
// (Fig. 13): a parallel sum implemented exactly like the statistical
// models (a trivial update function), whose replication strategy decides
// whether workers invalidate each other's caches.
#pragma once

#include "models/model_spec.h"

namespace dw::models {

/// Model with a single cell that accumulates the sum of all row values.
/// Replicas are *summed*, not averaged, when combined; the engine handles
/// this through the kSum combine mode declared here.
class ParallelSumSpec : public ModelSpec {
 public:
  std::string name() const override { return "ParallelSum"; }

  matrix::Index ModelDim(const data::Dataset&) const override { return 1; }

  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;

  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;

  /// Sum is a dense single-cell write every step: the worst case for a
  /// machine-shared replica.
  UpdateSparsity RowWriteSparsity() const override {
    return UpdateSparsity::kDense;
  }

  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

}  // namespace dw::models
