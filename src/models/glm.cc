#include "models/glm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "kernels/score_kernels.h"
#include "util/logging.h"

namespace dw::models {

using data::Dataset;
using matrix::Index;
using matrix::SparseVectorView;

double Log1pExp(double z) {
  if (z > 30.0) return z;
  if (z < -30.0) return 0.0;
  return std::log1p(std::exp(z));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void GlmSpec::RefreshAux(const Dataset& d, const double* model,
                         double* aux) const {
  for (Index i = 0; i < d.a.rows(); ++i) {
    aux[i] = d.a.Row(i).Dot(model);
  }
}

// ------------------------------------------------- batched scoring ----
//
// The classification + cache-blocking skeleton and the per-ISA inner
// loops live in src/kernels/ (runtime-dispatched: scalar, AVX2, AVX-512,
// forceable via DW_KERNEL_LEVEL). The GLM layer computes raw margins
// through the kernels and applies the spec's link function.

void GlmSpec::PredictBatch(const double* model, Index dim,
                           const SparseVectorView* rows, size_t n,
                           double* out) const {
  kernels::ScoreBatchMargins(model, dim, rows, n, out);
  for (size_t r = 0; r < n; ++r) out[r] = Link(out[r]);
}

void GlmSpec::PredictBatchQuantized(const int8_t* qmodel, double scale,
                                    Index dim, const SparseVectorView* rows,
                                    size_t n, double* out) const {
  kernels::ScoreBatchMarginsInt8(qmodel, scale, dim, rows, n, out);
  for (size_t r = 0; r < n; ++r) out[r] = Link(out[r]);
}

// ---------------------------------------------------------------- SVM ----

void SvmSpec::RowStep(const StepContext& ctx, Index i, double* model,
                      double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double margin = y * row.Dot(model);
  if (margin < 1.0) {
    // Subgradient of hinge: -y a_i. Sparse update (paper Sec. 3.2).
    row.Axpy(ctx.step_size * y, model);
  }
}

namespace {

// Curvature-normalized coordinate step for the hinge: the subgradient over
// the active rows of S(j), scaled by the squared-hinge curvature
// sum a_ij^2 (Shotgun-style Lipschitz normalization). `dot_of(i)` supplies
// a_i . x either from the maintained margins (f_col) or recomputed from
// the row (f_ctr).
template <typename DotFn>
double SvmCoordinateDelta(const Dataset& d, const SparseVectorView& col,
                          double step, DotFn dot_of) {
  double grad = 0.0;
  double curv = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    const double aij = col.values[k];
    curv += aij * aij;
    const double y = d.b[i];
    if (y * dot_of(i) < 1.0) grad -= y * aij;
  }
  if (curv <= 0.0) return 0.0;
  return -step * grad / curv;
}

// Same for the logistic loss, with the curvature bound sigma(1-sigma)<=1/4.
template <typename DotFn>
double LogisticCoordinateDelta(const Dataset& d, const SparseVectorView& col,
                               double step, DotFn dot_of) {
  double grad = 0.0;
  double curv = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    const double aij = col.values[k];
    curv += 0.25 * aij * aij;
    const double y = d.b[i];
    grad -= y * aij * Sigmoid(-y * dot_of(i));
  }
  if (curv <= 0.0) return 0.0;
  return -step * grad / curv;
}

}  // namespace

void SvmSpec::ColStep(const StepContext& ctx, Index j, double* model,
                      double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = SvmCoordinateDelta(
      d, col, ctx.step_size, [aux](Index i) { return aux[i]; });
  if (delta == 0.0) return;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void SvmSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                      double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Column-to-row: margins recomputed by reading the full rows of S(j).
  const double delta = SvmCoordinateDelta(
      d, col, ctx.step_size,
      [&d, model](Index i) { return d.a.Row(i).Dot(model); });
  model[j] += delta;
}

void SvmSpec::RowGradient(const StepContext& ctx, Index i,
                          const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  if (y * row.Dot(model) < 1.0) {
    row.Axpy(-y, grad);
  }
}

double SvmSpec::RowLoss(const Dataset& d, Index i, const double* model) const {
  const double margin = d.b[i] * d.a.Row(i).Dot(model);
  return margin < 1.0 ? 1.0 - margin : 0.0;
}

double SvmSpec::Predict(const double* model,
                        const SparseVectorView& row) const {
  return row.Dot(model);
}

// ----------------------------------------------------------------- LR ----

void LogisticSpec::RowStep(const StepContext& ctx, Index i, double* model,
                           double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double z = y * row.Dot(model);
  // d/dx log(1+exp(-z)) = -y a_i sigmoid(-z).
  const double coeff = ctx.step_size * y * Sigmoid(-z);
  if (coeff != 0.0) row.Axpy(coeff, model);
}

void LogisticSpec::ColStep(const StepContext& ctx, Index j, double* model,
                           double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = LogisticCoordinateDelta(
      d, col, ctx.step_size, [aux](Index i) { return aux[i]; });
  if (delta == 0.0) return;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void LogisticSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                           double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = LogisticCoordinateDelta(
      d, col, ctx.step_size,
      [&d, model](Index i) { return d.a.Row(i).Dot(model); });
  model[j] += delta;
}

void LogisticSpec::RowGradient(const StepContext& ctx, Index i,
                               const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double coeff = -y * Sigmoid(-y * row.Dot(model));
  if (coeff != 0.0) row.Axpy(coeff, grad);
}

double LogisticSpec::RowLoss(const Dataset& d, Index i,
                             const double* model) const {
  const double z = d.b[i] * d.a.Row(i).Dot(model);
  return Log1pExp(-z);
}

double LogisticSpec::Predict(const double* model,
                             const SparseVectorView& row) const {
  return Sigmoid(row.Dot(model));
}

// ----------------------------------------------------------------- LS ----

void LeastSquaresSpec::RowStep(const StepContext& ctx, Index i, double* model,
                               double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double r = row.Dot(model) - d.b[i];
  row.Axpy(-ctx.step_size * r, model);
}

void LeastSquaresSpec::ColStep(const StepContext& ctx, Index j, double* model,
                               double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Exact minimizer over x_j with maintained predictions aux[i] = a_i.x:
  //   delta = -sum_i a_ij (aux_i - b_i) / sum_i a_ij^2.
  double num = 0.0;
  double denom = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    num += col.values[k] * (aux[i] - d.b[i]);
    denom += col.values[k] * col.values[k];
  }
  if (denom <= 0.0) return;
  const double delta = -num / denom;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void LeastSquaresSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                               double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Exact coordinate minimizer with residuals recomputed from rows.
  double num = 0.0;
  double denom = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    num += col.values[k] * (d.a.Row(i).Dot(model) - d.b[i]);
    denom += col.values[k] * col.values[k];
  }
  if (denom <= 0.0) return;
  model[j] -= num / denom;
}

void LeastSquaresSpec::RowGradient(const StepContext& ctx, Index i,
                                   const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double r = row.Dot(model) - d.b[i];
  row.Axpy(r, grad);
}

double LeastSquaresSpec::RowLoss(const Dataset& d, Index i,
                                 const double* model) const {
  const double r = d.a.Row(i).Dot(model) - d.b[i];
  return 0.5 * r * r;
}

double LeastSquaresSpec::Predict(const double* model,
                                 const SparseVectorView& row) const {
  return row.Dot(model);
}

}  // namespace dw::models
