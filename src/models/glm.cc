#include "models/glm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace dw::models {

using data::Dataset;
using matrix::Index;
using matrix::SparseVectorView;

double Log1pExp(double z) {
  if (z > 30.0) return z;
  if (z < -30.0) return 0.0;
  return std::log1p(std::exp(z));
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void GlmSpec::RefreshAux(const Dataset& d, const double* model,
                         double* aux) const {
  for (Index i = 0; i < d.a.rows(); ++i) {
    aux[i] = d.a.Row(i).Dot(model);
  }
}

// ------------------------------------------------- batched scoring ----

namespace {

/// How the batched kernel scans one row of the mini-batch.
enum class RowKind : uint8_t {
  kDenseFull,   ///< identity pattern spanning the full model: tiled 4 at
                ///< a time, no index loads
  kDenseShort,  ///< explicit dense view shorter than the model (identity
                ///< over a prefix): direct, untiled
  kSparse,      ///< strictly increasing indices: monotone-cursor gather
  kFallback,    ///< unsorted/duplicate indices: per-row reference dot
};

/// Classifies a row in one linear pass over its indices. Explicitly dense
/// views (null indices, see SparseVectorView) classify in O(1). For
/// indexed rows the dense check is an exact identity test
/// (indices[k] == k for all k) written as a branchless OR-fold so it
/// vectorizes; misclassifying would corrupt scores, so no sampling
/// shortcuts.
RowKind ClassifyRow(const SparseVectorView& row, Index dim) {
  if (row.indices == nullptr) {
    return row.nnz == static_cast<size_t>(dim) ? RowKind::kDenseFull
                                               : RowKind::kDenseShort;
  }
  if (row.nnz == static_cast<size_t>(dim) && dim > 0) {
    Index mismatch = 0;
    for (size_t k = 0; k < row.nnz; ++k) {
      mismatch |= row.indices[k] ^ static_cast<Index>(k);
    }
    if (mismatch == 0) return RowKind::kDenseFull;
  }
  for (size_t k = 1; k < row.nnz; ++k) {
    if (row.indices[k] <= row.indices[k - 1]) return RowKind::kFallback;
  }
  return RowKind::kSparse;
}

/// Dot of one dense value slice against the model over [lo, hi). Eight
/// independent accumulator lanes break the FP-add latency chain (a single
/// running sum pins the loop at one add per ~4 cycles, exactly as slow as
/// the scalar gather dot); lanes are folded pairwise at the end.
/// Within reassociation epsilon of the scalar left-to-right dot.
double DenseBlockDot(const double* v, const double* m, Index lo, Index hi) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    l0 += v[j] * m[j];
    l1 += v[j + 1] * m[j + 1];
    l2 += v[j + 2] * m[j + 2];
    l3 += v[j + 3] * m[j + 3];
    l4 += v[j + 4] * m[j + 4];
    l5 += v[j + 5] * m[j + 5];
    l6 += v[j + 6] * m[j + 6];
    l7 += v[j + 7] * m[j + 7];
  }
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * m[j];
  return (((l0 + l4) + (l1 + l5)) + ((l2 + l6) + (l3 + l7))) + tail;
}

/// The register tile of the batched dense path: four rows against one
/// model slice, two lanes per row. Each model element is loaded ONCE per
/// four rows (a 4x cut in model traffic before the cache even helps) and
/// the eight independent chains keep the FP pipeline full -- this is
/// where the batched-vs-scalar speedup comes from on dense workloads.
void Dense4BlockDot(const double* v0, const double* v1, const double* v2,
                    const double* v3, const double* m, Index lo, Index hi,
                    double* acc4) {
  double a0 = 0.0, b0 = 0.0, a1 = 0.0, b1 = 0.0;
  double a2 = 0.0, b2 = 0.0, a3 = 0.0, b3 = 0.0;
  Index j = lo;
  for (; j + 2 <= hi; j += 2) {
    const double m0 = m[j], m1 = m[j + 1];
    a0 += v0[j] * m0;
    b0 += v0[j + 1] * m1;
    a1 += v1[j] * m0;
    b1 += v1[j + 1] * m1;
    a2 += v2[j] * m0;
    b2 += v2[j + 1] * m1;
    a3 += v3[j] * m0;
    b3 += v3[j + 1] * m1;
  }
  for (; j < hi; ++j) {
    const double mj = m[j];
    a0 += v0[j] * mj;
    a1 += v1[j] * mj;
    a2 += v2[j] * mj;
    a3 += v3[j] * mj;
  }
  acc4[0] += a0 + b0;
  acc4[1] += a1 + b1;
  acc4[2] += a2 + b2;
  acc4[3] += a3 + b3;
}

}  // namespace

void GlmSpec::PredictBatch(const double* model, Index dim,
                           const SparseVectorView* rows, size_t n,
                           double* out) const {
  for (size_t base = 0; base < n; base += kPredictRowChunk) {
    const size_t chunk = std::min(kPredictRowChunk, n - base);
    double acc[kPredictRowChunk];
    size_t cursor[kPredictRowChunk];
    size_t dense_full[kPredictRowChunk];
    size_t n_full = 0;
    RowKind kind[kPredictRowChunk];
    for (size_t r = 0; r < chunk; ++r) {
      acc[r] = 0.0;
      cursor[r] = 0;
      kind[r] = ClassifyRow(rows[base + r], dim);
      if (kind[r] == RowKind::kDenseFull) {
        dense_full[n_full++] = r;
      } else if (kind[r] == RowKind::kFallback) {
        out[base + r] = Link(rows[base + r].Dot(model));
      }
    }
    // Tile the feature dimension: each model block is read once and stays
    // cached while every row of the chunk consumes its slice.
    for (Index lo = 0; lo < dim; lo += kPredictBlockCols) {
      const Index hi = std::min<Index>(dim, lo + kPredictBlockCols);
      // Full-width dense rows, four per register tile.
      size_t g = 0;
      for (; g + 4 <= n_full; g += 4) {
        double a4[4] = {0.0, 0.0, 0.0, 0.0};
        Dense4BlockDot(rows[base + dense_full[g]].values,
                       rows[base + dense_full[g + 1]].values,
                       rows[base + dense_full[g + 2]].values,
                       rows[base + dense_full[g + 3]].values, model, lo, hi,
                       a4);
        for (int t = 0; t < 4; ++t) acc[dense_full[g + t]] += a4[t];
      }
      for (; g < n_full; ++g) {
        acc[dense_full[g]] +=
            DenseBlockDot(rows[base + dense_full[g]].values, model, lo, hi);
      }
      // Short dense and sparse rows, one at a time.
      for (size_t r = 0; r < chunk; ++r) {
        const SparseVectorView& row = rows[base + r];
        if (kind[r] == RowKind::kDenseShort) {
          const Index end = std::min<Index>(hi, static_cast<Index>(row.nnz));
          if (lo < end) acc[r] += DenseBlockDot(row.values, model, lo, end);
        } else if (kind[r] == RowKind::kSparse) {
          // Sparse terms fold into the running sum one by one (seeded
          // from acc[r], not a fresh partial), keeping the exact
          // left-to-right association of the scalar dot: the sparse path
          // stays bitwise equal to Predict().
          size_t k = cursor[r];
          double a = acc[r];
          while (k < row.nnz && row.indices[k] < hi) {
            a += row.values[k] * model[row.indices[k]];
            ++k;
          }
          cursor[r] = k;
          acc[r] = a;
        }
      }
    }
    for (size_t r = 0; r < chunk; ++r) {
      if (kind[r] != RowKind::kFallback) out[base + r] = Link(acc[r]);
    }
  }
}

// ---------------------------------------------------------------- SVM ----

void SvmSpec::RowStep(const StepContext& ctx, Index i, double* model,
                      double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double margin = y * row.Dot(model);
  if (margin < 1.0) {
    // Subgradient of hinge: -y a_i. Sparse update (paper Sec. 3.2).
    row.Axpy(ctx.step_size * y, model);
  }
}

namespace {

// Curvature-normalized coordinate step for the hinge: the subgradient over
// the active rows of S(j), scaled by the squared-hinge curvature
// sum a_ij^2 (Shotgun-style Lipschitz normalization). `dot_of(i)` supplies
// a_i . x either from the maintained margins (f_col) or recomputed from
// the row (f_ctr).
template <typename DotFn>
double SvmCoordinateDelta(const Dataset& d, const SparseVectorView& col,
                          double step, DotFn dot_of) {
  double grad = 0.0;
  double curv = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    const double aij = col.values[k];
    curv += aij * aij;
    const double y = d.b[i];
    if (y * dot_of(i) < 1.0) grad -= y * aij;
  }
  if (curv <= 0.0) return 0.0;
  return -step * grad / curv;
}

// Same for the logistic loss, with the curvature bound sigma(1-sigma)<=1/4.
template <typename DotFn>
double LogisticCoordinateDelta(const Dataset& d, const SparseVectorView& col,
                               double step, DotFn dot_of) {
  double grad = 0.0;
  double curv = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    const double aij = col.values[k];
    curv += 0.25 * aij * aij;
    const double y = d.b[i];
    grad -= y * aij * Sigmoid(-y * dot_of(i));
  }
  if (curv <= 0.0) return 0.0;
  return -step * grad / curv;
}

}  // namespace

void SvmSpec::ColStep(const StepContext& ctx, Index j, double* model,
                      double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = SvmCoordinateDelta(
      d, col, ctx.step_size, [aux](Index i) { return aux[i]; });
  if (delta == 0.0) return;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void SvmSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                      double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Column-to-row: margins recomputed by reading the full rows of S(j).
  const double delta = SvmCoordinateDelta(
      d, col, ctx.step_size,
      [&d, model](Index i) { return d.a.Row(i).Dot(model); });
  model[j] += delta;
}

void SvmSpec::RowGradient(const StepContext& ctx, Index i,
                          const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  if (y * row.Dot(model) < 1.0) {
    row.Axpy(-y, grad);
  }
}

double SvmSpec::RowLoss(const Dataset& d, Index i, const double* model) const {
  const double margin = d.b[i] * d.a.Row(i).Dot(model);
  return margin < 1.0 ? 1.0 - margin : 0.0;
}

double SvmSpec::Predict(const double* model,
                        const SparseVectorView& row) const {
  return row.Dot(model);
}

// ----------------------------------------------------------------- LR ----

void LogisticSpec::RowStep(const StepContext& ctx, Index i, double* model,
                           double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double z = y * row.Dot(model);
  // d/dx log(1+exp(-z)) = -y a_i sigmoid(-z).
  const double coeff = ctx.step_size * y * Sigmoid(-z);
  if (coeff != 0.0) row.Axpy(coeff, model);
}

void LogisticSpec::ColStep(const StepContext& ctx, Index j, double* model,
                           double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = LogisticCoordinateDelta(
      d, col, ctx.step_size, [aux](Index i) { return aux[i]; });
  if (delta == 0.0) return;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void LogisticSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                           double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  const double delta = LogisticCoordinateDelta(
      d, col, ctx.step_size,
      [&d, model](Index i) { return d.a.Row(i).Dot(model); });
  model[j] += delta;
}

void LogisticSpec::RowGradient(const StepContext& ctx, Index i,
                               const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double y = d.b[i];
  const double coeff = -y * Sigmoid(-y * row.Dot(model));
  if (coeff != 0.0) row.Axpy(coeff, grad);
}

double LogisticSpec::RowLoss(const Dataset& d, Index i,
                             const double* model) const {
  const double z = d.b[i] * d.a.Row(i).Dot(model);
  return Log1pExp(-z);
}

double LogisticSpec::Predict(const double* model,
                             const SparseVectorView& row) const {
  return Sigmoid(row.Dot(model));
}

// ----------------------------------------------------------------- LS ----

void LeastSquaresSpec::RowStep(const StepContext& ctx, Index i, double* model,
                               double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double r = row.Dot(model) - d.b[i];
  row.Axpy(-ctx.step_size * r, model);
}

void LeastSquaresSpec::ColStep(const StepContext& ctx, Index j, double* model,
                               double* aux) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Exact minimizer over x_j with maintained predictions aux[i] = a_i.x:
  //   delta = -sum_i a_ij (aux_i - b_i) / sum_i a_ij^2.
  double num = 0.0;
  double denom = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    num += col.values[k] * (aux[i] - d.b[i]);
    denom += col.values[k] * col.values[k];
  }
  if (denom <= 0.0) return;
  const double delta = -num / denom;
  model[j] += delta;
  for (size_t k = 0; k < col.nnz; ++k) {
    aux[col.indices[k]] += delta * col.values[k];
  }
}

void LeastSquaresSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                               double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);
  if (col.nnz == 0) return;
  // Exact coordinate minimizer with residuals recomputed from rows.
  double num = 0.0;
  double denom = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    num += col.values[k] * (d.a.Row(i).Dot(model) - d.b[i]);
    denom += col.values[k] * col.values[k];
  }
  if (denom <= 0.0) return;
  model[j] -= num / denom;
}

void LeastSquaresSpec::RowGradient(const StepContext& ctx, Index i,
                                   const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  const double r = row.Dot(model) - d.b[i];
  row.Axpy(r, grad);
}

double LeastSquaresSpec::RowLoss(const Dataset& d, Index i,
                                 const double* model) const {
  const double r = d.a.Row(i).Dot(model) - d.b[i];
  return 0.5 * r * r;
}

double LeastSquaresSpec::Predict(const double* model,
                                 const SparseVectorView& row) const {
  return row.Dot(model);
}

}  // namespace dw::models
