#include "models/parallel_sum.h"

namespace dw::models {

void ParallelSumSpec::RowStep(const StepContext& ctx, matrix::Index i,
                              double* model, double* /*aux*/) const {
  const matrix::SparseVectorView row = ctx.dataset->a.Row(i);
  double acc = 0.0;
  for (size_t k = 0; k < row.nnz; ++k) acc += row.values[k];
  model[0] += acc;
}

void ParallelSumSpec::RowGradient(const StepContext& ctx, matrix::Index i,
                                  const double* /*model*/,
                                  double* grad) const {
  // A gradient step of size 1 adds the row total (sum = -"loss").
  const matrix::SparseVectorView row = ctx.dataset->a.Row(i);
  for (size_t k = 0; k < row.nnz; ++k) grad[0] -= row.values[k];
}

double ParallelSumSpec::RowLoss(const data::Dataset& d, matrix::Index i,
                                const double* model) const {
  (void)d;
  (void)i;
  // Not an optimization task; report the negative running sum so "lower is
  // better" stays true for the engine's bookkeeping.
  return -model[0];
}

}  // namespace dw::models
