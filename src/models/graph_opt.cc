#include "models/graph_opt.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dw::models {

using data::Dataset;
using matrix::Index;
using matrix::SparseVectorView;

namespace {

double ClipUnit(double v) { return std::clamp(v, 0.0, 1.0); }
double ClipSigned(double v) { return std::clamp(v, -1.0, 1.0); }

}  // namespace

// ----------------------------------------------------------------- LP ----

void LpSpec::RowStep(const StepContext& ctx, Index i, double* model,
                     double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);  // one edge: endpoints u, v
  if (row.nnz == 0) return;
  // Constraint: sum_k a_k x_k >= b_i (here a = 1, b = 1).
  double lhs = 0.0;
  for (size_t k = 0; k < row.nnz; ++k) lhs += row.values[k] * model[row.indices[k]];
  const double violation = d.b[i] - lhs;
  const double n_rows = static_cast<double>(d.a.rows());
  for (size_t k = 0; k < row.nnz; ++k) {
    const Index v = row.indices[k];
    // Penalty gradient wrt x_v plus this edge's share of the cost term
    // (c_v spread over the edges incident to v, approximated by the
    // average degree so the row step stays a pure row access).
    const double cost_share =
        d.c.empty() ? 0.0 : d.c[v] * static_cast<double>(d.a.cols()) / n_rows;
    double g = cost_share;
    if (violation > 0.0) g -= 2.0 * beta_ * violation * row.values[k];
    model[v] = ClipUnit(model[v] - ctx.step_size * g);
  }
}

void LpSpec::CtrStep(const StepContext& ctx, Index j, double* model,
                     double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView col = ctx.csc->Col(j);  // edges incident to j
  if (col.nnz == 0) return;
  // Column-to-row: read each incident edge's full row to get the rest of
  // the constraint, then take the exact minimizer of the local objective
  //   c_j x + beta * sum_e max(0, rhs_e - x)^2  over x in [0, 1],
  // where rhs_e = b_e - (sum of the other endpoints).
  // Solved by a few projected Newton steps on the piecewise-quadratic.
  thread_local std::vector<double> rhs;
  const size_t cnt = col.nnz;
  rhs.resize(cnt);
  for (size_t k = 0; k < cnt; ++k) {
    const Index e = col.indices[k];
    const SparseVectorView row = d.a.Row(e);
    double others = 0.0;
    double my_coeff = 1.0;
    for (size_t t = 0; t < row.nnz; ++t) {
      if (row.indices[t] == j) {
        my_coeff = row.values[t];
      } else {
        others += row.values[t] * model[row.indices[t]];
      }
    }
    rhs[k] = my_coeff != 0.0 ? (d.b[e] - others) / my_coeff : 0.0;
  }
  const double cj = d.c.empty() ? 0.0 : d.c[j];
  // Minimize g(x) = cj*x + beta * sum_k relu(rhs_k - x)^2 by a few
  // projected Newton steps (g is piecewise quadratic and convex).
  double x = model[j];
  for (int it = 0; it < 8; ++it) {
    double grad = cj;
    double curv = 1e-9;
    for (size_t k = 0; k < cnt; ++k) {
      const double r = rhs[k] - x;
      if (r > 0.0) {
        grad -= 2.0 * beta_ * r;
        curv += 2.0 * beta_;
      }
    }
    const double next = ClipUnit(x - grad / curv);
    if (std::abs(next - x) < 1e-12) {
      x = next;
      break;
    }
    x = next;
  }
  model[j] = x;
}

void LpSpec::RowGradient(const StepContext& ctx, Index i,
                         const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  if (row.nnz == 0) return;
  double lhs = 0.0;
  for (size_t k = 0; k < row.nnz; ++k) {
    lhs += row.values[k] * model[row.indices[k]];
  }
  const double violation = d.b[i] - lhs;
  const double n_rows = static_cast<double>(d.a.rows());
  for (size_t k = 0; k < row.nnz; ++k) {
    const Index v = row.indices[k];
    const double cost_share =
        d.c.empty() ? 0.0 : d.c[v] * static_cast<double>(d.a.cols()) / n_rows;
    double g = cost_share;
    if (violation > 0.0) g -= 2.0 * beta_ * violation * row.values[k];
    grad[v] += g;
  }
}

double LpSpec::RowLoss(const Dataset& d, Index i, const double* model) const {
  const SparseVectorView row = d.a.Row(i);
  double lhs = 0.0;
  for (size_t k = 0; k < row.nnz; ++k) {
    lhs += row.values[k] * model[row.indices[k]];
  }
  const double violation = d.b[i] - lhs;
  return violation > 0.0 ? beta_ * violation * violation : 0.0;
}

double LpSpec::GlobalLossTerm(const Dataset& d, const double* model) const {
  if (d.c.empty()) return 0.0;
  double dot = 0.0;
  for (Index j = 0; j < d.a.cols(); ++j) dot += d.c[j] * model[j];
  // Normalized like the row losses (which are averaged over rows).
  return dot / std::max<double>(1.0, d.a.rows());
}

void LpSpec::Project(double* model, Index dim) const {
  for (Index j = 0; j < dim; ++j) model[j] = ClipUnit(model[j]);
}

// ----------------------------------------------------------------- QP ----

void QpSpec::RowStep(const StepContext& ctx, Index i, double* model,
                     double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);  // row i of Q
  // Diagonally-preconditioned stochastic Jacobi:
  //   x_i <- x_i - step * (q_i . x - b_i) / Q_ii.
  // Without the 1/Q_ii scaling, hub vertices (large degree, large Q_ii)
  // overshoot and the sweep diverges on power-law graphs.
  double diag = 1.0;
  for (size_t k = 0; k < row.nnz; ++k) {
    if (row.indices[k] == i) {
      diag = row.values[k];
      break;
    }
  }
  const double r = row.Dot(model) - d.b[i];
  model[i] = ClipSigned(model[i] - ctx.step_size * r / std::max(diag, 1e-9));
}

void QpSpec::ColStep(const StepContext& ctx, Index j, double* model,
                     double* /*aux*/) const {
  const Dataset& d = *ctx.dataset;
  // Q is symmetric: column j of A equals row j, so the exact coordinate
  // minimizer needs only this column plus neighbor model values:
  //   x_j = clip( (b_j - sum_{k != j} Q_jk x_k) / Q_jj ).
  const SparseVectorView col = ctx.csc->Col(j);
  double off = 0.0;
  double diag = 0.0;
  for (size_t k = 0; k < col.nnz; ++k) {
    const Index i = col.indices[k];
    if (i == j) {
      diag = col.values[k];
    } else {
      off += col.values[k] * model[i];
    }
  }
  if (diag <= 0.0) return;
  model[j] = ClipSigned((d.b[j] - off) / diag);
}

void QpSpec::RowGradient(const StepContext& ctx, Index i,
                         const double* model, double* grad) const {
  const Dataset& d = *ctx.dataset;
  const SparseVectorView row = d.a.Row(i);
  double diag = 1.0;
  for (size_t k = 0; k < row.nnz; ++k) {
    if (row.indices[k] == i) {
      diag = row.values[k];
      break;
    }
  }
  grad[i] += (row.Dot(model) - d.b[i]) / std::max(diag, 1e-9);
}

double QpSpec::RowLoss(const Dataset& d, Index i, const double* model) const {
  // 0.5 x^T Q x - b^T x decomposes as sum_i x_i (0.5 q_i.x - b_i).
  const SparseVectorView row = d.a.Row(i);
  const double qx = row.Dot(model);
  return model[i] * (0.5 * qx - d.b[i]);
}

void QpSpec::Project(double* model, Index dim) const {
  for (Index j = 0; j < dim; ++j) model[j] = ClipSigned(model[j]);
}

}  // namespace dw::models
