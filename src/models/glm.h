// Generalized linear models: SVM (hinge), logistic regression, and least
// squares. Row-wise = stochastic gradient descent (the MADlib / MLlib /
// Hogwild! path); column-wise = stochastic coordinate descent with a
// maintained margin/residual vector (the GraphLab / Shogun / Thetis path).
//
// The SCD auxiliary vector holds, per row i, the current margin
// m_i = a_i . x (so coordinate updates only read column j and patch the
// margins of rows in S(j) -- a pure column access).
#pragma once

#include <algorithm>
#include <cstdint>

#include "models/model_spec.h"

namespace dw::models {

/// Numerically-stable log(1 + exp(z)).
double Log1pExp(double z);

/// Logistic sigmoid 1 / (1 + exp(-z)).
double Sigmoid(double z);

/// Shared machinery for the three GLMs. Each provides BOTH column flavors:
/// f_col (SCD with maintained margins, Shogun-style) and f_ctr (GraphLab-
/// style: margins recomputed from the full rows S(j), no auxiliary state
/// -- the access pattern whose read cost is sum n_i^2 in Fig. 6).
class GlmSpec : public ModelSpec {
 public:
  /// Default feature-dimension tile of the batched scoring kernels: 4096
  /// doubles = 32 KB of model, small enough to sit in L1/L2 while a
  /// mini-batch's row slices stream past it. The actual tile is resolved
  /// per machine by kernels::Tuning() (DW_KERNEL_BLOCK_COLS override or a
  /// numa::BandwidthProbe auto-pick); this constant is its fallback and
  /// the figure the ModelBytes accounting comments reference.
  static constexpr matrix::Index kPredictBlockCols = 4096;
  /// Rows scored per chunk; accumulators and cursors live on the stack.
  static constexpr size_t kPredictRowChunk = 128;

  bool HasCol() const override { return true; }
  bool HasCtr() const override { return true; }

  size_t AuxDim(const data::Dataset& d) const override { return d.a.rows(); }

  /// aux[i] = a_i . x for all rows.
  void RefreshAux(const data::Dataset& d, const double* model,
                  double* aux) const override;

  /// Cache-blocked batched scoring shared by the GLM family, running on
  /// the runtime-dispatched kernels of src/kernels/ (scalar, AVX2, or
  /// AVX-512 -- bitwise-identical across levels; force one with
  /// DW_KERNEL_LEVEL for testing). Rows are classified once per batch:
  ///   - full-width dense rows (explicit dense views, or the identity
  ///     index pattern 0..dim-1) are tiled FOUR AT A TIME against each
  ///     model block: every model element is loaded once per four rows
  ///     and eight independent accumulator lanes per row keep the FP
  ///     pipeline full -- the batched speedup on dense workloads (within
  ///     reassociation epsilon of Predict());
  ///   - shorter explicit dense views take the same column-blocked dense
  ///     kernel one row at a time;
  ///   - sorted sparse rows take a gather path whose cursor advances
  ///     monotonically per tile, so one pass of the model tile serves the
  ///     whole chunk of rows -- bitwise equal to Predict();
  ///   - unsorted rows fall back to the per-row reference dot (bitwise).
  void PredictBatch(const double* model, matrix::Index dim,
                    const matrix::SparseVectorView* rows, size_t n,
                    double* out) const override;

  bool SupportsQuantizedPredict() const override { return true; }

  /// Batched scoring against a symmetric int8 quantization of the model
  /// (see kernels::QuantizeWeights): out[i] = Link(scale * sum v_k q_k),
  /// computed dequantize-free (weights widened in register, never
  /// materialized as doubles -- the replica moves 1/8 the bytes).
  /// Error contract: the pre-link margin differs from the float margin
  /// by at most (scale/2) * sum_k |x_k| plus reassociation slack; link
  /// functions with Lipschitz constant L (sigmoid: 1/4) scale the score
  /// error by at most L.
  void PredictBatchQuantized(const int8_t* qmodel, double scale,
                             matrix::Index dim,
                             const matrix::SparseVectorView* rows, size_t n,
                             double* out) const override;

  /// Same streaming shape as PredictBatchModelBytes, one byte per weight.
  uint64_t PredictBatchQuantizedModelBytes(matrix::Index dim,
                                           uint64_t total_nnz,
                                           size_t n) const override {
    const uint64_t chunks =
        (static_cast<uint64_t>(n) + kPredictRowChunk - 1) / kPredictRowChunk;
    return std::min<uint64_t>(total_nnz, chunks * dim) * sizeof(int8_t);
  }

  /// The blocked kernel streams each model block at most once per
  /// kPredictRowChunk-row chunk (and never reads more than the rows
  /// gather in total).
  uint64_t PredictBatchModelBytes(matrix::Index dim, uint64_t total_nnz,
                                  size_t n) const override {
    const uint64_t chunks =
        (static_cast<uint64_t>(n) + kPredictRowChunk - 1) / kPredictRowChunk;
    return std::min<uint64_t>(total_nnz, chunks * dim) * sizeof(double);
  }

  UpdateSparsity RowWriteSparsity() const override {
    return UpdateSparsity::kSparse;
  }

  bool ColumnStepMaintainsAux() const override { return true; }

 protected:
  /// Link function the batched kernel applies to the raw margin a . x;
  /// identity for SVM/LS, sigmoid for LR. Must agree with Predict().
  virtual double Link(double margin) const { return margin; }
};

/// Support vector machine with hinge loss (1/N) sum max(0, 1 - y_i a_i.x).
class SvmSpec : public GlmSpec {
 public:
  std::string name() const override { return "SVM"; }
  /// Signed decision value a . x (classify by sign, |.| = margin).
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

/// Logistic regression, loss (1/N) sum log(1 + exp(-y_i a_i.x)).
class LogisticSpec : public GlmSpec {
 public:
  std::string name() const override { return "LR"; }
  /// P(y = +1 | row) = sigmoid(a . x).
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;

 protected:
  double Link(double margin) const override { return Sigmoid(margin); }
};

/// Least squares, loss (1/2N) sum (a_i.x - b_i)^2. The column step is the
/// exact coordinate minimizer (Gauss-Seidel on the normal equations).
class LeastSquaresSpec : public GlmSpec {
 public:
  std::string name() const override { return "LS"; }
  /// Regression estimate a . x.
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

}  // namespace dw::models
