// Generalized linear models: SVM (hinge), logistic regression, and least
// squares. Row-wise = stochastic gradient descent (the MADlib / MLlib /
// Hogwild! path); column-wise = stochastic coordinate descent with a
// maintained margin/residual vector (the GraphLab / Shogun / Thetis path).
//
// The SCD auxiliary vector holds, per row i, the current margin
// m_i = a_i . x (so coordinate updates only read column j and patch the
// margins of rows in S(j) -- a pure column access).
#pragma once

#include "models/model_spec.h"

namespace dw::models {

/// Shared machinery for the three GLMs. Each provides BOTH column flavors:
/// f_col (SCD with maintained margins, Shogun-style) and f_ctr (GraphLab-
/// style: margins recomputed from the full rows S(j), no auxiliary state
/// -- the access pattern whose read cost is sum n_i^2 in Fig. 6).
class GlmSpec : public ModelSpec {
 public:
  bool HasCol() const override { return true; }
  bool HasCtr() const override { return true; }

  size_t AuxDim(const data::Dataset& d) const override { return d.a.rows(); }

  /// aux[i] = a_i . x for all rows.
  void RefreshAux(const data::Dataset& d, const double* model,
                  double* aux) const override;

  UpdateSparsity RowWriteSparsity() const override {
    return UpdateSparsity::kSparse;
  }

  bool ColumnStepMaintainsAux() const override { return true; }
};

/// Support vector machine with hinge loss (1/N) sum max(0, 1 - y_i a_i.x).
class SvmSpec : public GlmSpec {
 public:
  std::string name() const override { return "SVM"; }
  /// Signed decision value a . x (classify by sign, |.| = margin).
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

/// Logistic regression, loss (1/N) sum log(1 + exp(-y_i a_i.x)).
class LogisticSpec : public GlmSpec {
 public:
  std::string name() const override { return "LR"; }
  /// P(y = +1 | row) = sigmoid(a . x).
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

/// Least squares, loss (1/2N) sum (a_i.x - b_i)^2. The column step is the
/// exact coordinate minimizer (Gauss-Seidel on the normal equations).
class LeastSquaresSpec : public GlmSpec {
 public:
  std::string name() const override { return "LS"; }
  /// Regression estimate a . x.
  double Predict(const double* model,
                 const matrix::SparseVectorView& row) const override;
  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
};

/// Numerically-stable log(1 + exp(z)).
double Log1pExp(double z);

/// Logistic sigmoid 1 / (1 + exp(-z)).
double Sigmoid(double z);

}  // namespace dw::models
