// The graph-optimization models of the paper's network-analysis workloads:
//
//  LP -- the vertex-cover linear-program relaxation solved via the
//  smoothed-penalty coordinate scheme of Sridhar et al. [48]:
//      minimize  c^T x + beta * sum_e max(0, 1 - x_u - x_v)^2,  x in [0,1].
//  Rows of A are edges (two nonzeros each). The column step is
//  column-to-row (f_ctr): updating vertex j requires reading every
//  incident edge row to find the opposite endpoint -- the same access
//  pattern GraphLab uses. The row step is projected SGD over edges.
//
//  QP -- label propagation over the graph Laplacian:
//      minimize 0.5 x^T Q x - b^T x,  Q = L + lambda I,  x in [-1, 1].
//  Rows of A are the rows of Q. The column step is the exact box-
//  constrained coordinate minimizer (Gauss-Seidel); the row step is a
//  stochastic Jacobi update. Since Q is symmetric, column j equals row j
//  and f_col reads no auxiliary state -- neighbor values come from the
//  model itself.
#pragma once

#include "models/model_spec.h"

namespace dw::models {

/// Vertex-cover LP relaxation (paper's "LP" task).
class LpSpec : public ModelSpec {
 public:
  /// `beta` is the penalty weight on violated edge constraints.
  explicit LpSpec(double beta = 5.0) : beta_(beta) {}

  std::string name() const override { return "LP"; }
  bool HasCol() const override { return false; }
  bool HasCtr() const override { return true; }

  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void CtrStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
  double GlobalLossTerm(const data::Dataset& d,
                        const double* model) const override;
  void Project(double* model, matrix::Index dim) const override;

  double beta() const { return beta_; }

 private:
  double beta_;
};

/// Label-propagation QP (paper's "QP" task).
class QpSpec : public ModelSpec {
 public:
  std::string name() const override { return "QP"; }
  bool HasCol() const override { return true; }

  void RowStep(const StepContext& ctx, matrix::Index i, double* model,
               double* aux) const override;
  void ColStep(const StepContext& ctx, matrix::Index j, double* model,
               double* aux) const override;
  void RowGradient(const StepContext& ctx, matrix::Index i,
                   const double* model, double* grad) const override;
  double RowLoss(const data::Dataset& d, matrix::Index i,
                 const double* model) const override;
  void Project(double* model, matrix::Index dim) const override;
};

}  // namespace dw::models
