// The model specification abstraction of paper Sec. 3.1: for one
// statistical task the user provides functions that solve the same model
// through different access methods --
//   f_row (row-wise):      takes a row index, may update the whole model;
//   f_col (column-wise):   takes a column index, updates one coordinate;
//   f_ctr (column-to-row): takes a column index and reads the full rows
//                          S(j) = {i : a_ij != 0}, updates one coordinate.
// A specification contains f_row plus either f_col or f_ctr (Sec. 3.1:
// "typically not both").
//
// Some column-wise methods (SCD over GLMs) maintain an auxiliary vector
// (residuals/margins, one entry per row) inside the replica; AuxDim()
// declares its size and RefreshAux() rebuilds it after model averaging.
// This is exactly why the paper's rule of thumb pairs SCD with PerMachine:
// the auxiliary state makes frequent cross-replica averaging expensive.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "matrix/csc_matrix.h"
#include "matrix/sparse_vector.h"
#include "util/logging.h"

namespace dw::models {

/// Whether a row-wise gradient writes only the row's nonzero coordinates
/// or the full model (paper Sec. 3.2, sparse vs. dense update).
enum class UpdateSparsity { kSparse, kDense };

/// Read-only context handed to every step function.
struct StepContext {
  const data::Dataset* dataset = nullptr;      ///< A, b, c
  const matrix::CscMatrix* csc = nullptr;      ///< column index (col/ctr)
  double step_size = 0.1;                      ///< current SGD step
};

/// Interface one statistical model implements. Implementations are
/// stateless (all mutable state lives in the replica buffers), so a single
/// instance is shared by every worker thread.
class ModelSpec {
 public:
  virtual ~ModelSpec() = default;

  /// Display name ("SVM", "LR", ...).
  virtual std::string name() const = 0;

  /// Dimension of the model vector for this dataset (usually d).
  virtual matrix::Index ModelDim(const data::Dataset& d) const {
    return d.a.cols();
  }

  /// Size of the auxiliary state maintained next to the model (0 if none).
  virtual size_t AuxDim(const data::Dataset&) const { return 0; }

  /// Rebuilds the auxiliary state from scratch for the given model (one
  /// full pass over the data). Called at init and after model averaging.
  virtual void RefreshAux(const data::Dataset&, const double* /*model*/,
                          double* /*aux*/) const {}

  // --- access methods -----------------------------------------------------

  /// True if the spec provides the given function.
  virtual bool HasRow() const { return true; }
  virtual bool HasCol() const { return false; }
  virtual bool HasCtr() const { return false; }

  /// f_row: one first-order step using row `i`.
  virtual void RowStep(const StepContext& ctx, matrix::Index i,
                       double* model, double* aux) const = 0;

  /// f_col: one coordinate step on column `j` (requires HasCol()).
  virtual void ColStep(const StepContext& /*ctx*/, matrix::Index /*j*/,
                       double* /*model*/, double* /*aux*/) const {}

  /// f_ctr: one coordinate step on column `j` reading rows S(j)
  /// (requires HasCtr()).
  virtual void CtrStep(const StepContext& /*ctx*/, matrix::Index /*j*/,
                       double* /*model*/, double* /*aux*/) const {}

  /// Accumulates row i's loss gradient into `grad` (same length as the
  /// model) WITHOUT touching the model. Used by batch-gradient baselines
  /// (the MLlib execution model); not on DimmWitted's own hot path.
  virtual void RowGradient(const StepContext& ctx, matrix::Index i,
                           const double* model, double* grad) const = 0;

  // --- serving -------------------------------------------------------------

  /// Scores one unseen feature row against a trained `model` (the serving
  /// path: no dataset, no label). The default is the linear decision value
  /// a . x; specs with a link function override it (e.g. logistic returns
  /// P(y = +1 | a)).
  virtual double Predict(const double* model,
                         const matrix::SparseVectorView& row) const {
    return row.Dot(model);
  }

  /// Scores `n` rows at once, writing one score per row into `out`
  /// (same semantics as n Predict() calls; `dim` is the model dimension,
  /// every row index must be < dim). This is the serving hot path: a
  /// flushed mini-batch is scored with ONE call so implementations can
  /// tile the model through the cache hierarchy instead of re-streaming
  /// it per row (paper Sec. 3.2 applied to inference). The default is the
  /// row-by-row reference; the GLM family overrides it with cache-blocked
  /// kernels.
  virtual void PredictBatch(const double* model, matrix::Index /*dim*/,
                            const matrix::SparseVectorView* rows, size_t n,
                            double* out) const {
    for (size_t k = 0; k < n; ++k) out[k] = Predict(model, rows[k]);
  }

  /// Model bytes one PredictBatch call over `n` rows with `total_nnz`
  /// nonzeros reads (drives the serving traffic accounting, which feeds
  /// the memory-model simulation). The default matches the reference
  /// implementation above: a per-row re-gather of the replica. Overrides
  /// must mirror their kernel's actual streaming behavior.
  virtual uint64_t PredictBatchModelBytes(matrix::Index /*dim*/,
                                          uint64_t total_nnz,
                                          size_t /*n*/) const {
    return total_nnz * sizeof(double);
  }

  /// True if the spec implements PredictBatchQuantized. Serving refuses
  /// ServingFamilyOptions{quantized=true} for specs that do not.
  virtual bool SupportsQuantizedPredict() const { return false; }

  /// Scores `n` rows against a symmetric int8 quantization of the model
  /// (`qmodel[j] ~= model[j] / scale`, zero point 0 -- see
  /// kernels::QuantizeWeights for the construction and the bounded-error
  /// contract). Implementations must be dequantize-free: no double copy
  /// of the model may be materialized, since the point of the int8
  /// replica is moving 1/8 the model bytes. Only called when
  /// SupportsQuantizedPredict() is true.
  virtual void PredictBatchQuantized(const int8_t* /*qmodel*/,
                                     double /*scale*/, matrix::Index /*dim*/,
                                     const matrix::SparseVectorView* /*rows*/,
                                     size_t /*n*/, double* /*out*/) const {
    DW_CHECK(false) << name() << " does not support quantized scoring";
  }

  /// Model bytes one PredictBatchQuantized call reads (int8 replica).
  virtual uint64_t PredictBatchQuantizedModelBytes(matrix::Index /*dim*/,
                                                   uint64_t total_nnz,
                                                   size_t /*n*/) const {
    return total_nnz * sizeof(int8_t);
  }

  /// Touch pattern of RowStep's model write (drives the cost model).
  virtual UpdateSparsity RowWriteSparsity() const {
    return UpdateSparsity::kSparse;
  }

  /// True if ColStep maintains the auxiliary vector (then each column
  /// step also reads and patches the aux entries of S(j), which the cost
  /// model must charge -- this is what makes row-wise win for GLMs).
  virtual bool ColumnStepMaintainsAux() const { return false; }

  // --- loss ----------------------------------------------------------------

  /// Loss contribution of row `i` (Loss = sum_i RowLoss + GlobalLossTerm).
  virtual double RowLoss(const data::Dataset& d, matrix::Index i,
                         const double* model) const = 0;

  /// Loss term independent of any row (e.g. the c^T x term of the LP).
  virtual double GlobalLossTerm(const data::Dataset&,
                                const double* /*model*/) const {
    return 0.0;
  }

  /// Full loss: mean row loss + global term. Convenience (sequential).
  double Loss(const data::Dataset& d, const double* model) const {
    double sum = 0.0;
    for (matrix::Index i = 0; i < d.a.rows(); ++i) {
      sum += RowLoss(d, i, model);
    }
    const double n = std::max<double>(1.0, d.a.rows());
    return sum / n + GlobalLossTerm(d, model);
  }

  /// Projection applied to the model after initialization and averaging
  /// (e.g. clip to [0,1] for the LP relaxation).
  virtual void Project(double* /*model*/, matrix::Index /*dim*/) const {}
};

}  // namespace dw::models
