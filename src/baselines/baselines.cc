#include "baselines/baselines.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "matrix/csc_matrix.h"
#include "opt/optimizer.h"
#include "util/barrier.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::baselines {

using data::Dataset;
using engine::EpochRecord;
using engine::RunResult;
using matrix::Index;
using models::ModelSpec;
using models::StepContext;

namespace {

int TotalWorkers(const BaselineOptions& o) {
  const int wpn = o.workers_per_node > 0 ? o.workers_per_node
                                         : o.topology.cores_per_node;
  return wpn * o.topology.num_nodes;
}

void MaybePin(const BaselineOptions& o, int worker) {
  if (!o.pin_threads) return;
  const int wpn = o.workers_per_node > 0 ? o.workers_per_node
                                         : o.topology.cores_per_node;
  const int node = worker / wpn;
  const int core =
      node * o.topology.cores_per_node + (worker % wpn) % o.topology.cores_per_node;
  (void)PinCurrentThreadToCpu(
      o.topology.PhysicalCpuOfCore(core, NumOnlineCpus()));
}

double ParallelLoss(const Dataset& d, const ModelSpec& spec,
                    const double* model) {
  const Index n = d.a.rows();
  const int threads = std::clamp(NumOnlineCpus(), 1, 8);
  std::vector<double> partial(threads, 0.0);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const Index lo =
          static_cast<Index>(static_cast<uint64_t>(n) * t / threads);
      const Index hi =
          static_cast<Index>(static_cast<uint64_t>(n) * (t + 1) / threads);
      double acc = 0.0;
      for (Index i = lo; i < hi; ++i) acc += spec.RowLoss(d, i, model);
      partial[t] = acc;
    });
  }
  for (auto& th : pool) th.join();
  double sum = 0.0;
  for (double p : partial) sum += p;
  return sum / std::max<double>(1.0, n) + spec.GlobalLossTerm(d, model);
}

}  // namespace

RunResult RunHogwild(const Dataset& dataset, const ModelSpec& spec,
                     const BaselineOptions& options) {
  engine::EngineOptions opts;
  opts.topology = options.topology;
  opts.workers_per_node = options.workers_per_node;
  opts.access = engine::AccessMethod::kRowWise;
  opts.model_rep = engine::ModelReplication::kPerMachine;
  opts.data_rep = engine::DataReplication::kSharding;
  opts.step_size = options.step_size;
  opts.step_decay = options.step_decay;
  opts.sync_interval_us = 0;
  opts.collocate_data = false;  // Hogwild! does not place data per node
  opts.pin_threads = options.pin_threads;
  opts.seed = options.seed;
  engine::Engine eng(&dataset, &spec, opts);
  const Status st = eng.Init();
  DW_CHECK(st.ok()) << st.ToString();
  engine::RunConfig cfg;
  cfg.max_epochs = options.max_epochs;
  cfg.stop_loss = options.stop_loss;
  cfg.wall_timeout_sec = options.wall_timeout_sec;
  return eng.Run(cfg);
}

RunResult RunDimmWitted(const Dataset& dataset, const ModelSpec& spec,
                        const BaselineOptions& options) {
  engine::EngineOptions opts;
  opts.topology = options.topology;
  opts.workers_per_node = options.workers_per_node;
  opts.step_size = options.step_size;
  opts.step_decay = options.step_decay;
  opts.pin_threads = options.pin_threads;
  opts.seed = options.seed;
  const opt::PlanChoice choice =
      opt::ChoosePlan(dataset, spec, options.topology);
  opt::ApplyChoice(choice, &opts);
  engine::Engine eng(&dataset, &spec, opts);
  const Status st = eng.Init();
  DW_CHECK(st.ok()) << st.ToString();
  engine::RunConfig cfg;
  cfg.max_epochs = options.max_epochs;
  cfg.stop_loss = options.stop_loss;
  cfg.wall_timeout_sec = options.wall_timeout_sec;
  return eng.Run(cfg);
}

namespace {

// Shared implementation of the GraphLab/GraphChi executors.
RunResult RunGraphStyle(const Dataset& dataset, const ModelSpec& spec,
                        const BaselineOptions& options, bool shard_reload) {
  DW_CHECK(spec.HasCol() || spec.HasCtr())
      << spec.name() << " has no column method for a GraphLab-style run";
  const bool use_ctr = spec.HasCtr();
  const matrix::CscMatrix csc = matrix::CscMatrix::FromCsr(dataset.a);
  const Index dim = spec.ModelDim(dataset);

  std::vector<double> model(dim, 0.0);
  spec.Project(model.data(), dim);
  // f_ctr recomputes everything from rows; only f_col keeps the aux.
  std::vector<double> aux(use_ctr ? 0 : spec.AuxDim(dataset), 0.0);
  if (!aux.empty()) spec.RefreshAux(dataset, model.data(), aux.data());

  // GraphLab's consistency model: a lock per variable (column).
  std::vector<SpinLock> locks(dim);
  std::vector<Index> tasks(dataset.a.cols());
  for (Index j = 0; j < dataset.a.cols(); ++j) tasks[j] = j;

  // Scratch for the GraphChi shard-reload pass.
  std::vector<double> shard_buffer;
  if (shard_reload) shard_buffer.resize(csc.values().size());

  const int workers = TotalWorkers(options);
  Rng rng(options.seed);
  RunResult result;
  double wall_acc = 0.0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    EpochRecord rec;
    rec.epoch = epoch;
    WallTimer timer;

    if (shard_reload) {
      // GraphChi re-materializes each shard before processing it; with a
      // memory buffer this is a full copy of the column arrays.
      std::memcpy(shard_buffer.data(), csc.values().data(),
                  csc.values().size() * sizeof(double));
    }

    rng.Shuffle(tasks);
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const double step =
        options.step_size * std::pow(options.step_decay, epoch);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        MaybePin(options, w);
        StepContext ctx{&dataset, &csc, step};
        for (;;) {
          const size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
          if (k >= tasks.size()) break;
          const Index j = tasks[k];
          std::lock_guard<SpinLock> g(locks[j]);
          if (use_ctr) {
            spec.CtrStep(ctx, j, model.data(),
                         aux.empty() ? nullptr : aux.data());
          } else {
            spec.ColStep(ctx, j, model.data(),
                         aux.empty() ? nullptr : aux.data());
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    rec.wall_sec = timer.Seconds();
    rec.loss = ParallelLoss(dataset, spec, model.data());
    wall_acc += rec.wall_sec;
    result.epochs.push_back(rec);
    if (rec.loss <= options.stop_loss) break;
    if (wall_acc > options.wall_timeout_sec) break;
  }
  return result;
}

}  // namespace

RunResult RunGraphLabStyle(const Dataset& dataset, const ModelSpec& spec,
                           const BaselineOptions& options) {
  return RunGraphStyle(dataset, spec, options, /*shard_reload=*/false);
}

RunResult RunGraphChiStyle(const Dataset& dataset, const ModelSpec& spec,
                           const BaselineOptions& options) {
  return RunGraphStyle(dataset, spec, options, /*shard_reload=*/true);
}

RunResult RunMLlibStyle(const Dataset& dataset, const ModelSpec& spec,
                        const BaselineOptions& options) {
  const Index dim = spec.ModelDim(dataset);
  const Index n = dataset.a.rows();
  const int workers = TotalWorkers(options);

  std::vector<double> model(dim, 0.0);
  spec.Project(model.data(), dim);

  // PerCore gradient accumulators (the Spark executors).
  std::vector<std::vector<double>> partials(workers,
                                            std::vector<double>(dim, 0.0));
  std::vector<Index> order(n);
  for (Index i = 0; i < n; ++i) order[i] = i;
  Rng rng(options.seed);

  const Index batch = std::max<Index>(
      1, static_cast<Index>(options.batch_fraction * n));

  RunResult result;
  double wall_acc = 0.0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    EpochRecord rec;
    rec.epoch = epoch;
    WallTimer timer;
    rng.Shuffle(order);
    const double step =
        options.step_size * std::pow(options.step_decay, epoch);

    for (Index start = 0; start < n; start += batch) {
      const Index end = std::min<Index>(n, start + batch);
      // Stage 1: executors compute partial gradients (task scheduling =
      // one thread spawn per executor per minibatch, as in Spark stages).
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          MaybePin(options, w);
          std::fill(partials[w].begin(), partials[w].end(), 0.0);
          StepContext ctx{&dataset, nullptr, step};
          for (Index k = start + w; k < end; k += workers) {
            spec.RowGradient(ctx, order[k], model.data(), partials[w].data());
          }
        });
      }
      for (auto& t : pool) t.join();
      // Stage 2: the single driver aggregates and applies the update.
      const double scale = step / static_cast<double>(end - start);
      for (int w = 0; w < workers; ++w) {
        for (Index k = 0; k < dim; ++k) {
          model[k] -= scale * partials[w][k];
        }
      }
      spec.Project(model.data(), dim);
    }
    rec.wall_sec = timer.Seconds();
    rec.loss = ParallelLoss(dataset, spec, model.data());
    wall_acc += rec.wall_sec;
    result.epochs.push_back(rec);
    if (rec.loss <= options.stop_loss) break;
    if (wall_acc > options.wall_timeout_sec) break;
  }
  return result;
}

}  // namespace dw::baselines
