#include "baselines/parallel_sum.h"

#include <atomic>
#include <thread>

#include "util/aligned.h"
#include "util/barrier.h"
#include "util/timer.h"

namespace dw::baselines {

namespace {

// Sums [lo, hi) locally before touching any shared state.
double LocalSum(const double* v, size_t lo, size_t hi) {
  double acc = 0.0;
  for (size_t i = lo; i < hi; ++i) acc += v[i];
  return acc;
}

}  // namespace

SumResult RunParallelSum(const std::vector<double>& values, int threads,
                         SumStrategy strategy, size_t chunk) {
  const size_t n = values.size();
  const double* v = values.data();
  SumResult result;
  WallTimer timer;

  switch (strategy) {
    case SumStrategy::kDimmWitted: {
      // One padded accumulator per worker-group ("node"): no cacheline
      // ever bounces between groups; a single combine at the end.
      std::vector<Padded<double>> acc(threads);
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          const size_t lo = n * t / threads;
          const size_t hi = n * (t + 1) / threads;
          acc[t].value = LocalSum(v, lo, hi);
        });
      }
      for (auto& th : pool) th.join();
      for (int t = 0; t < threads; ++t) result.sum += acc[t].value;
      break;
    }
    case SumStrategy::kHogwild: {
      // All threads hammer one shared cell with plain lock-free adds
      // (paper Sec. 4.2: "all threads write to a single copy of the sum
      // result"). Every add pulls the line from another core's cache;
      // concurrent read-modify-writes may lose updates -- exactly the
      // incoherence Hogwild!-style execution tolerates.
      struct alignas(kCacheLineBytes) SharedCell {
        volatile double value = 0.0;
      };
      SharedCell shared;
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          const size_t lo = n * t / threads;
          const size_t hi = n * (t + 1) / threads;
          for (size_t i = lo; i < hi; ++i) {
            shared.value = shared.value + v[i];
          }
        });
      }
      for (auto& th : pool) th.join();
      result.sum = shared.value;
      break;
    }
    case SumStrategy::kGraphLabStyle: {
      // Dynamic per-vertex task scheduling: GraphLab dispatches one task
      // per vertex update, so the queue granularity is a handful of
      // elements, and each task commits to the shared state under its
      // consistency protocol (an atomic update here).
      alignas(kCacheLineBytes) std::atomic<double> shared{0.0};
      std::atomic<size_t> cursor{0};
      const size_t task = std::max<size_t>(1, chunk / 512);
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (;;) {
            const size_t lo = cursor.fetch_add(task);
            if (lo >= n) break;
            const size_t hi = std::min(n, lo + task);
            const double part = LocalSum(v, lo, hi);
            double cur = shared.load(std::memory_order_relaxed);
            while (!shared.compare_exchange_weak(
                cur, cur + part, std::memory_order_relaxed)) {
            }
          }
        });
      }
      for (auto& th : pool) th.join();
      result.sum = shared.load();
      break;
    }
    case SumStrategy::kMLlibStyle: {
      // Bulk-synchronous minibatches: workers fill partials, a barrier
      // closes the stage, the driver aggregates -- repeated per batch.
      std::vector<Padded<double>> partials(threads);
      const size_t batch = chunk * threads;
      double total = 0.0;
      for (size_t start = 0; start < n; start += batch) {
        SpinBarrier done(threads + 1);
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
          pool.emplace_back([&, t, start] {
            const size_t lo = std::min(n, start + chunk * t);
            const size_t hi = std::min(n, start + chunk * (t + 1));
            partials[t].value = LocalSum(v, lo, hi);
            done.Wait();
          });
        }
        done.Wait();  // driver joins the stage barrier
        for (int t = 0; t < threads; ++t) total += partials[t].value;
        for (auto& th : pool) th.join();
      }
      result.sum = total;
      break;
    }
  }

  result.seconds = timer.Seconds();
  result.gb_per_sec =
      result.seconds > 0
          ? static_cast<double>(n) * sizeof(double) / result.seconds / 1e9
          : 0.0;
  return result;
}

}  // namespace dw::baselines
