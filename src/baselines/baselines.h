// Competitor-system baselines (paper Sec. 4.2, Fig. 11). Each baseline is
// a faithful reimplementation of the *strategy point* the corresponding
// system occupies in Fig. 5, with its structural overheads implemented
// mechanically rather than modeled:
//
//   Hogwild!      row-wise, PerMachine model, Sharding; lock-free shared
//                 writes (executed through the DimmWitted engine, which by
//                 construction "can simulate Hogwild!" -- paper Sec. 2.1).
//   GraphLab      column access (f_col or f_ctr), shared graph state,
//                 dynamic task scheduling: workers pop column tasks from a
//                 shared queue and take a per-variable lock (its
//                 consistency model). The queue + locks are the overhead.
//   GraphChi      GraphLab plus a per-epoch shard (re)load pass over the
//                 column arrays (its out-of-core parallel sliding window,
//                 memory-buffered as the paper tuned it).
//   MLlib         minibatch batch-gradient descent, PerCore gradient
//                 accumulators aggregated by a single driver thread per
//                 minibatch (its bulk-synchronous execution model).
#pragma once

#include "data/dataset.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "models/model_spec.h"
#include "numa/topology.h"

namespace dw::baselines {

/// Common knobs for every baseline runner.
struct BaselineOptions {
  numa::Topology topology = numa::Local2();
  int workers_per_node = -1;
  int max_epochs = 30;
  double stop_loss = -std::numeric_limits<double>::infinity();
  double wall_timeout_sec = std::numeric_limits<double>::infinity();
  double step_size = 0.1;
  double step_decay = 0.97;
  /// Minibatch fraction for the MLlib runner (paper grid: 1%..100%).
  double batch_fraction = 0.1;
  uint64_t seed = 13;
  bool pin_threads = true;
};

/// Hogwild!: lock-free SGD on one shared model.
engine::RunResult RunHogwild(const data::Dataset& dataset,
                             const models::ModelSpec& spec,
                             const BaselineOptions& options);

/// GraphLab-style dynamic column scheduling with per-variable locks.
engine::RunResult RunGraphLabStyle(const data::Dataset& dataset,
                                   const models::ModelSpec& spec,
                                   const BaselineOptions& options);

/// GraphChi-style: GraphLab plus the per-epoch shard-load pass.
engine::RunResult RunGraphChiStyle(const data::Dataset& dataset,
                                   const models::ModelSpec& spec,
                                   const BaselineOptions& options);

/// MLlib-style bulk-synchronous minibatch gradient descent.
engine::RunResult RunMLlibStyle(const data::Dataset& dataset,
                                const models::ModelSpec& spec,
                                const BaselineOptions& options);

/// DimmWitted with the optimizer-chosen plan (the "DW" column of Fig. 11).
engine::RunResult RunDimmWitted(const data::Dataset& dataset,
                                const models::ModelSpec& spec,
                                const BaselineOptions& options);

}  // namespace dw::baselines
