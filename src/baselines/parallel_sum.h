// Parallel-sum throughput microbenchmark (paper Sec. 4.2, Fig. 13): "an
// extremely simple task ... DimmWitted maintains one single copy of the
// sum result per NUMA node, so the workers on one NUMA node do not
// invalidate the cache on another NUMA node", while Hogwild!-style keeps
// one shared copy all threads write, GraphLab-style adds dynamic task
// scheduling, and MLlib-style adds per-minibatch synchronization.
#pragma once

#include <cstdint>
#include <vector>

#include "numa/topology.h"

namespace dw::baselines {

/// Which system's execution model to emulate for the sum.
enum class SumStrategy {
  kDimmWitted,     ///< per-node padded accumulators, combined once
  kHogwild,        ///< one shared cell, plain racy adds (may lose updates)
  kGraphLabStyle,  ///< shared accumulator + dynamic task queue
  kMLlibStyle,     ///< per-worker partials, per-minibatch barrier + driver
};

/// Result of one run.
struct SumResult {
  double sum = 0.0;
  double seconds = 0.0;
  double gb_per_sec = 0.0;
};

/// Sums `values` with `threads` workers under the given strategy.
/// `chunk` is the task granularity for the queue/minibatch variants.
SumResult RunParallelSum(const std::vector<double>& values, int threads,
                         SumStrategy strategy, size_t chunk = 4096);

}  // namespace dw::baselines
