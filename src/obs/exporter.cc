#include "obs/exporter.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::obs {

namespace {

/// "serve.latency_ms" -> "dw_serve_latency_ms": the Prometheus metric
/// name grammar is [a-zA-Z_:][a-zA-Z0-9_:]*; everything else mangles to
/// '_', and the dw_ prefix namespaces the process.
std::string PrometheusName(const std::string& name) {
  std::string out = "dw_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// {family="ctr",node="0"} -- empty string for no labels. `extra` (the
/// histogram le) is appended last when non-empty.
std::string LabelBlock(const Labels& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void RenderHistogramProm(const std::string& prom_name,
                         const MetricSnapshot& m, std::string* out) {
  const HistogramSnapshot& h = m.histogram;
  uint64_t cum = 0;
  for (size_t b = 0; b + 1 < h.counts.size(); ++b) {
    if (h.counts[b] == 0) continue;
    cum += h.counts[b];
    // A bucket's le is its exclusive upper bound; the underflow bucket's
    // is the first regular bucket's lower bound. Emitting only occupied
    // bounds (plus +Inf) is a valid sparse exposition.
    const double le = b == 0
                          ? LogLinearBuckets::LowerBound(1)
                          : LogLinearBuckets::UpperBound(static_cast<int>(b));
    *out += prom_name + "_bucket" +
            LabelBlock(m.labels, "le", FormatDouble(le)) + ' ' +
            std::to_string(cum) + '\n';
  }
  *out += prom_name + "_bucket" + LabelBlock(m.labels, "le", "+Inf") + ' ' +
          std::to_string(h.count) + '\n';
  *out += prom_name + "_sum" + LabelBlock(m.labels, "", "") + ' ' +
          FormatDouble(h.sum) + '\n';
  *out += prom_name + "_count" + LabelBlock(m.labels, "", "") + ' ' +
          std::to_string(h.count) + '\n';
}

}  // namespace

std::string RenderPrometheus(const RegistrySnapshot& snap) {
  // Prometheus requires every sample of one metric name contiguous under
  // one # TYPE header, while the registry interleaves names (per-family
  // registration order): group indices by name, first-appearance order.
  std::vector<std::pair<std::string, std::vector<size_t>>> groups;
  std::unordered_map<std::string, size_t> group_of;
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    const std::string& name = snap.metrics[i].name;
    const auto it = group_of.find(name);
    if (it == group_of.end()) {
      group_of[name] = groups.size();
      groups.push_back({name, {i}});
    } else {
      groups[it->second].second.push_back(i);
    }
  }
  std::string out;
  for (const auto& [name, indices] : groups) {
    const MetricSnapshot& first = snap.metrics[indices.front()];
    const bool is_counter = first.type == MetricType::kCounter;
    const std::string prom_name =
        PrometheusName(name) + (is_counter ? "_total" : "");
    out += "# TYPE " + prom_name + ' ' + ToString(first.type) + '\n';
    for (const size_t i : indices) {
      const MetricSnapshot& m = snap.metrics[i];
      DW_CHECK(m.type == first.type)
          << "metric " << name << " mixes instrument types";
      switch (m.type) {
        case MetricType::kCounter:
          out += prom_name + LabelBlock(m.labels, "", "") + ' ' +
                 std::to_string(m.counter_value) + '\n';
          break;
        case MetricType::kGauge:
          out += prom_name + LabelBlock(m.labels, "", "") + ' ' +
                 FormatDouble(m.gauge_value) + '\n';
          break;
        case MetricType::kHistogram:
          RenderHistogramProm(prom_name, m, &out);
          break;
      }
    }
  }
  return out;
}

std::string RenderJson(const RegistrySnapshot& snap) {
  JsonWriter j;
  j.BeginObject();
  j.Key("metrics").BeginArray();
  for (const MetricSnapshot& m : snap.metrics) {
    j.BeginObject();
    j.Field("name", m.name);
    j.Field("type", ToString(m.type));
    j.Key("labels").BeginObject();
    for (const auto& [k, v] : m.labels) j.Field(k, v);
    j.EndObject();
    switch (m.type) {
      case MetricType::kCounter:
        j.Field("value", m.counter_value);
        break;
      case MetricType::kGauge:
        j.Field("value", m.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        j.Field("count", h.count);
        j.Field("sum", h.sum);
        j.Field("mean", h.Mean());
        j.Field("min", h.min);
        j.Field("max", h.max);
        j.Field("p50", h.Percentile(50.0));
        j.Field("p99", h.Percentile(99.0));
        j.Key("buckets").BeginArray();
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (h.counts[b] == 0) continue;
          j.BeginObject();
          if (b > 0 && b + 1 < h.counts.size()) {
            j.Field("lo",
                    LogLinearBuckets::LowerBound(static_cast<int>(b)));
            j.Field("hi",
                    LogLinearBuckets::UpperBound(static_cast<int>(b)));
          }
          j.Field("count", h.counts[b]);
          j.EndObject();
        }
        j.EndArray();
        break;
      }
    }
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.str();
}

TelemetryExporter::TelemetryExporter(const Registry* registry,
                                     Options options)
    : registry_(registry), options_(std::move(options)) {
  DW_CHECK(registry_ != nullptr);
  DW_CHECK_GT(options_.period.count(), 0);
}

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::Start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    DW_CHECK(!started_) << "telemetry exporter started twice";
    started_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void TelemetryExporter::Stop() {
  // Claim the join under the lock, exactly like serve::SnapshotExporter:
  // a destructor racing an explicit Stop() must not double-join.
  std::thread claimed;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    if (thread_.joinable()) {
      claimed = std::move(thread_);
      flush = started_ && options_.export_on_stop;
    }
  }
  stop_cv_.notify_all();
  if (!claimed.joinable()) return;
  claimed.join();
  if (flush) ExportOnce();
}

void TelemetryExporter::ExportOnce() {
  WallTimer timer;
  const RegistrySnapshot snap = registry_->Snapshot();
  const std::string prom = RenderPrometheus(snap);
  const std::string json = RenderJson(snap);
  if (!options_.prometheus_path.empty()) {
    std::ofstream f(options_.prometheus_path,
                    std::ios::out | std::ios::trunc);
    f << prom;
  }
  if (!options_.json_path.empty()) {
    std::ofstream f(options_.json_path, std::ios::out | std::ios::trunc);
    f << json;
  }
  if (options_.sink) options_.sink(prom, json);
  const double ms = timer.Seconds() * 1e3;

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.snapshots;
  stats_.last_render_ms = ms;
  stats_.last_prometheus_bytes = prom.size();
}

TelemetryExporter::Stats TelemetryExporter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void TelemetryExporter::Loop() {
  SetCurrentThreadName("dw-telemetry");
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lk, options_.period, [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    ExportOnce();
    lk.lock();
  }
}

}  // namespace dw::obs
