// The serving-side metric registry: lock-free, per-thread-sharded
// instruments with constant memory, designed for the scoring hot path.
//
// The paper grounds its hardware-efficiency claims in measured counters
// (local/remote DRAM requests); the serving stack needs the same
// discipline without paying for it. Three instrument kinds:
//
//   Counter   -- monotonic uint64. Add() is one relaxed fetch_add on a
//                cacheline-padded per-thread shard, so concurrent workers
//                never bounce a counter line between sockets.
//   Gauge     -- a single double (last-write-wins), stored as atomic
//                bits. For slow-moving state: queue depth, the admission
//                controller's calibrated estimates, pacing periods.
//   Histogram -- log-linear buckets (kSubBucketsPerOctave geometric
//                sub-buckets per power of two), sharded like counters.
//                Constant memory regardless of traffic, mergeable, with
//                BOUNDED-relative-error percentiles: any quantile is off
//                by at most the bucket width ratio (2^(1/4)-1 < 19%).
//                Sum/count/min/max are tracked exactly, so means and the
//                worst case are exact even though quantiles are bucketed.
//
// Metrics are named "subsystem.name" with key=value labels (family,
// client, node); the registry interns each (name, labels) pair once and
// hands out stable instrument pointers, so the hot path holds raw
// pointers and never touches the registry lock. A registry constructed
// disabled hands out shared no-op instruments instead -- the bench
// baseline that bounds instrumentation overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dw::obs {

/// key=value metric labels, e.g. {{"family", "ctr"}, {"node", "0"}}.
/// Canonicalized (sorted by key) at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* ToString(MetricType t);

/// The log-linear bucket layout shared by Histogram and
/// engine::LatencyRecorder's bounded mode. Buckets cover
/// [2^kMinExp, 2^kMaxExp) with kSubBucketsPerOctave geometric sub-buckets
/// per octave (growth factor 2^(1/kSubBucketsPerOctave) ~= 1.19), plus an
/// underflow bucket (index 0: zero, negatives, tiny values) and an
/// overflow bucket (the last index).
struct LogLinearBuckets {
  static constexpr int kSubBucketsPerOctave = 4;
  /// 2^-20 ~= 1e-6: microsecond-scale values in ms units still resolve.
  static constexpr int kMinExp = -20;
  /// 2^30 ~= 1e9: an hour in microseconds still lands in a real bucket.
  static constexpr int kMaxExp = 30;
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp) * kSubBucketsPerOctave + 2;
  /// Worst-case relative error of a bucketed quantile: the sub-bucket
  /// width, 2^(1/kSubBucketsPerOctave) - 1.
  static constexpr double kMaxRelativeError = 0.19;

  /// The bucket index for `v` (always valid; 0 for v < 2^kMinExp
  /// including zero/negatives, kNumBuckets-1 for v >= 2^kMaxExp).
  static int BucketFor(double v);

  /// Inclusive lower / exclusive upper bound of a REGULAR bucket
  /// (1 <= bucket <= kNumBuckets-2).
  static double LowerBound(int bucket);
  static double UpperBound(int bucket);
};

/// A mergeable point-in-time histogram value: the plain (unsynchronized)
/// form of Histogram, also usable directly as a single-threaded
/// accumulator (engine::LatencyRecorder's bounded mode does).
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  ///< kNumBuckets entries once non-empty
  uint64_t count = 0;
  double sum = 0.0;   ///< exact: means never suffer bucketing error
  double min = 0.0;   ///< exact over all recorded values; 0 if none
  double max = 0.0;   ///< exact over all recorded values; 0 if none

  /// Folds `weight` observations of value `v` in (plain, not atomic).
  void Record(double v, uint64_t weight = 1);

  void Merge(const HistogramSnapshot& other);

  /// Exact mean (sum/count); 0 if empty.
  double Mean() const;

  /// The p-th percentile (p in [0,100]) with relative error bounded by
  /// LogLinearBuckets::kMaxRelativeError: linear interpolation inside
  /// the bucket holding the rank, clamped to the exact [min, max] so
  /// extreme quantiles degrade gracefully. 0 if empty.
  double Percentile(double p) const;
};

/// Monotonic counter, sharded across threads. Add() never blocks and
/// never contends when callers run on distinct threads.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1);
  void Increment() { Add(1); }

  /// Sum over shards (monitoring path; racy-by-design while writers run,
  /// exact at quiescence).
  uint64_t Value() const;

 private:
  friend class Registry;
  /// enabled=false builds the shared no-op instrument (Add is a branch).
  explicit Counter(bool enabled);

  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  /// Empty for the no-op instrument.
  std::vector<Cell> cells_;
};

/// Last-write-wins double (atomic bits; C++17 has no std::bit_cast, so
/// the conversion goes through memcpy).
class Gauge {
 public:
  void Set(double v);
  double Value() const;

 private:
  friend class Registry;
  explicit Gauge(bool enabled) : enabled_(enabled) {}

  std::atomic<uint64_t> bits_{0};
  const bool enabled_;
};

/// Bounded-error distribution, sharded like Counter. Record() is a
/// relaxed increment on the caller's shard plus a CAS-add into the
/// shard's exact sum; min/max are registry-wide CAS races (cold: they
/// mostly fail the "would change" check).
class Histogram {
 public:
  static constexpr size_t kShards = 8;

  void Record(double v) { Record(v, 1); }
  /// Weighted form: one batch-level stage duration attributed to every
  /// row of the batch, so per-row means stay row-weighted without
  /// kRows identical Record calls.
  void Record(double v, uint64_t weight);

  /// Merged view across shards (monitoring path).
  HistogramSnapshot Snapshot() const;

 private:
  friend class Registry;
  explicit Histogram(bool enabled);

  struct alignas(64) Shard {
    Shard();
    std::atomic<uint64_t> counts[LogLinearBuckets::kNumBuckets];
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum_bits;  ///< double bits, CAS-add
  };
  /// Empty for the no-op instrument.
  std::vector<Shard> shards_;
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// One metric's identity plus its value at Snapshot() time.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;          ///< kCounter
  double gauge_value = 0.0;            ///< kGauge
  HistogramSnapshot histogram;         ///< kHistogram
};

/// The registry's full contents in registration order (what the
/// exporters render).
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
};

/// Interval view over two registry snapshots: indexes `prev` and `cur`
/// by (name, canonicalized labels) and answers what happened BETWEEN
/// them -- counter deltas, the mean of histogram observations recorded
/// inside the interval, the latest gauge reading. This is how a control
/// loop (opt::PlacementTuner) turns the registry's cumulative counters
/// into observed rates without adding any bookkeeping to the hot paths
/// that write them.
class SnapshotDelta {
 public:
  /// Both snapshots should come from the same registry, `prev` taken
  /// first. A metric absent from `prev` (registered mid-interval) diffs
  /// against zero; one absent from `cur` reports the miss fallback.
  SnapshotDelta(RegistrySnapshot prev, RegistrySnapshot cur);

  /// cur - prev of a counter; 0 when the metric is unknown, not a
  /// counter, or went backwards (registry swapped out underneath).
  uint64_t CounterDelta(const std::string& name, const Labels& labels) const;

  /// The latest (cur) gauge reading; `fallback` when unknown.
  double GaugeValue(const std::string& name, const Labels& labels,
                    double fallback = 0.0) const;

  /// Exact mean of the histogram observations recorded inside the
  /// interval, (cur.sum - prev.sum) / (cur.count - prev.count);
  /// `fallback` when the metric is unknown or the interval recorded
  /// nothing.
  double HistogramIntervalMean(const std::string& name, const Labels& labels,
                               double fallback = 0.0) const;

  /// Count of histogram observations recorded inside the interval.
  uint64_t HistogramIntervalCount(const std::string& name,
                                  const Labels& labels) const;

 private:
  const MetricSnapshot* FindPrev(const std::string& name,
                                 const Labels& labels) const;
  const MetricSnapshot* FindCur(const std::string& name,
                                const Labels& labels) const;

  RegistrySnapshot prev_;
  RegistrySnapshot cur_;
  std::unordered_map<std::string, size_t> prev_index_;
  std::unordered_map<std::string, size_t> cur_index_;
};

struct RegistryOptions {
  /// false: every Get* returns a shared no-op instrument and Snapshot()
  /// is empty -- the zero-overhead baseline bench_serving gates against.
  bool enabled = true;
};

/// Owns the instruments. Registration (Get*) takes a mutex and interns
/// on (name, canonicalized labels); it is idempotent, so any subsystem
/// may Get* the same metric and share the instrument. Returned pointers
/// are stable for the registry's lifetime -- hot paths resolve them once
/// and never come back.
class Registry {
 public:
  explicit Registry(RegistryOptions opts = {});

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Fatally checks that a re-Get of an existing metric agrees on the
  /// instrument type (a name collision across types is a programming
  /// error, not load-dependent behavior).
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels = {});

  /// Point-in-time copy of every registered metric, registration order.
  RegistrySnapshot Snapshot() const;

  bool enabled() const { return enabled_; }

  /// Registered metric count (0 when disabled).
  size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type = MetricType::kCounter;
    size_t index = 0;  ///< into the per-type deque
  };

  const bool enabled_;
  mutable std::mutex mu_;
  /// unique_ptr: instruments hold atomics (immovable), and their
  /// addresses must survive later registrations.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<Entry> entries_;  ///< registration order
  std::unordered_map<std::string, size_t> index_;  ///< key -> entries_ idx
  /// The shared no-op instruments a disabled registry hands out.
  Counter noop_counter_;
  Gauge noop_gauge_;
  Histogram noop_histogram_;
};

}  // namespace dw::obs
