// Telemetry export: renders an obs::RegistrySnapshot as Prometheus text
// exposition format and as util::JsonWriter JSON, and (optionally) runs
// a background thread that snapshots a registry on a period and pushes
// both renderings to a file and/or callback sink.
//
// The render functions are free and pure -- a scrape endpoint, a test,
// or the bench artifact can call them on any snapshot without spinning
// up the thread. The TelemetryExporter mirrors serve::SnapshotExporter's
// lifecycle discipline (Start once, Stop idempotent and claimed under a
// lock, final export on Stop so a short-lived process still leaves one
// complete scrape behind).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace dw::obs {

/// Prometheus text exposition format. Metric names are mangled to the
/// Prometheus grammar ("serve.latency_ms" -> "dw_serve_latency_ms");
/// counters get the conventional _total suffix; histograms render
/// cumulative _bucket{le=...} lines (only buckets that hold data, plus
/// +Inf -- a valid exposition, and it keeps wide-range histograms from
/// emitting 200 zero lines), _sum, and _count. Metrics sharing a name
/// (same instrument, different labels) share one # TYPE header.
std::string RenderPrometheus(const RegistrySnapshot& snap);

/// The same snapshot as a JSON document: {"metrics": [{name, labels,
/// type, value | {count, sum, mean, min, max, p50, p99, buckets}}]}.
std::string RenderJson(const RegistrySnapshot& snap);

/// Background periodic exporter over one registry.
class TelemetryExporter {
 public:
  struct Options {
    /// Snapshot-and-render cadence.
    std::chrono::milliseconds period{1000};
    /// File sinks; empty disables the file. Rewritten atomically enough
    /// for a scraper (whole-file rewrite per period).
    std::string prometheus_path;
    std::string json_path;
    /// Callback sink, invoked on the exporter thread with both
    /// renderings; null disables.
    std::function<void(const std::string& prometheus,
                       const std::string& json)>
        sink;
    /// Render once more inside Stop(), so the final state of a finished
    /// run is always captured.
    bool export_on_stop = true;
  };

  struct Stats {
    uint64_t snapshots = 0;        ///< export rounds completed
    double last_render_ms = 0.0;   ///< snapshot + both renders
    uint64_t last_prometheus_bytes = 0;
  };

  /// `registry` must outlive the exporter.
  TelemetryExporter(const Registry* registry, Options options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Starts the background thread (once).
  void Start();

  /// Stops and joins, then renders one final export (export_on_stop).
  /// Idempotent; also run by the destructor.
  void Stop();

  /// One synchronous export round (also what the thread runs). Usable
  /// without Start() for pull-style scraping.
  void ExportOnce();

  Stats stats() const;

 private:
  void Loop();

  const Registry* registry_;
  const Options options_;

  std::thread thread_;
  mutable std::mutex mu_;  ///< guards stop_/started_ for the cv + stats
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
  Stats stats_;
};

}  // namespace dw::obs
