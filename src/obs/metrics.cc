#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/logging.h"

namespace dw::obs {

namespace {

inline uint64_t DoubleBits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

inline double BitsDouble(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// The caller's shard slot: assigned once per thread from a global
/// round-robin so distinct threads land on distinct cells (mod the shard
/// count) and a counter line is never shared between two hot writers.
inline size_t ThisThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// CAS-add of a double stored as atomic bits (no std::atomic<double>
/// fetch_add in C++17).
inline void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = DoubleBits(BitsDouble(cur) + delta);
    if (bits->compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

/// CAS-min/max on double bits; loads first so the common "no change"
/// case costs one read.
inline void AtomicMinDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v < BitsDouble(cur)) {
    if (bits->compare_exchange_weak(cur, DoubleBits(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

inline void AtomicMaxDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v > BitsDouble(cur)) {
    if (bits->compare_exchange_weak(cur, DoubleBits(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

const char* ToString(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

// ------------------------------------------------------ LogLinearBuckets --

int LogLinearBuckets::BucketFor(double v) {
  constexpr double kMinVal = 0x1p-20;
  constexpr double kMaxVal = 0x1p+30;
  if (!(v >= kMinVal)) return 0;  // also NaN and negatives
  if (v >= kMaxVal) return kNumBuckets - 1;
  int e;
  const double f = std::frexp(v, &e);  // v = f * 2^e, f in [0.5, 1)
  // The octave [2^(e-1), 2^e) splits geometrically at mantissa thresholds
  // 2^(k/4 - 1); three compares replace a log2 call on the hot path.
  constexpr double kR1 = 0.594603557501360533;  // 2^(1/4) / 2
  constexpr double kR2 = 0.707106781186547524;  // 2^(2/4) / 2
  constexpr double kR3 = 0.840896415253714543;  // 2^(3/4) / 2
  const int sub = (f >= kR1) + (f >= kR2) + (f >= kR3);
  return 1 + (e - 1 - kMinExp) * kSubBucketsPerOctave + sub;
}

double LogLinearBuckets::LowerBound(int bucket) {
  const int k = bucket - 1;
  return std::exp2(static_cast<double>(kMinExp) +
                   static_cast<double>(k) / kSubBucketsPerOctave);
}

double LogLinearBuckets::UpperBound(int bucket) {
  return LowerBound(bucket + 1);
}

// ---------------------------------------------------- HistogramSnapshot --

void HistogramSnapshot::Record(double v, uint64_t weight) {
  if (weight == 0) return;
  if (counts.empty()) counts.resize(LogLinearBuckets::kNumBuckets, 0);
  counts[LogLinearBuckets::BucketFor(v)] += weight;
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  count += weight;
  sum += v * static_cast<double>(weight);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (counts.empty()) counts.resize(LogLinearBuckets::kNumBuckets, 0);
  DW_CHECK_EQ(counts.size(), other.counts.size());
  for (size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double frac = std::clamp(p, 0.0, 100.0) / 100.0;
  // Rank in [1, count]; the value the rank-th smallest observation fell
  // into (ceil, so p=0 is the first observation's bucket).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(frac * static_cast<double>(count))));
  uint64_t cum = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // The rank lands here. Underflow/overflow buckets have no finite
    // width; the exact extremes stand in for them.
    if (b == 0) return min;
    if (b + 1 == counts.size()) return max;
    const double lo = LogLinearBuckets::LowerBound(static_cast<int>(b));
    const double hi = LogLinearBuckets::UpperBound(static_cast<int>(b));
    // Interpolate the rank's position inside the bucket, then clamp to
    // the exact extremes: the top quantile can never exceed the true
    // max, nor any quantile undercut the true min.
    const double within = (static_cast<double>(rank - cum) - 0.5) /
                          static_cast<double>(in_bucket);
    return std::clamp(lo + (hi - lo) * within, min, max);
  }
  return max;
}

// -------------------------------------------------------------- Counter --

Counter::Counter(bool enabled) : cells_(enabled ? kShards : 0) {}

void Counter::Add(uint64_t n) {
  if (cells_.empty()) return;  // the shared no-op instrument
  cells_[ThisThreadSlot() % kShards].v.fetch_add(n,
                                                 std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------- Gauge --

void Gauge::Set(double v) {
  if (!enabled_) return;
  bits_.store(DoubleBits(v), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

// ------------------------------------------------------------ Histogram --

Histogram::Shard::Shard() : count(0), sum_bits(0) {
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(bool enabled)
    : shards_(enabled ? kShards : 0),
      min_bits_(DoubleBits(std::numeric_limits<double>::infinity())),
      max_bits_(DoubleBits(-std::numeric_limits<double>::infinity())) {}

void Histogram::Record(double v, uint64_t weight) {
  if (shards_.empty() || weight == 0) return;
  Shard& s = shards_[ThisThreadSlot() % kShards];
  s.counts[LogLinearBuckets::BucketFor(v)].fetch_add(
      weight, std::memory_order_relaxed);
  s.count.fetch_add(weight, std::memory_order_relaxed);
  AtomicAddDouble(&s.sum_bits, v * static_cast<double>(weight));
  AtomicMinDouble(&min_bits_, v);
  AtomicMaxDouble(&max_bits_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  if (shards_.empty()) return out;
  out.counts.resize(LogLinearBuckets::kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (int b = 0; b < LogLinearBuckets::kNumBuckets; ++b) {
      out.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += BitsDouble(s.sum_bits.load(std::memory_order_relaxed));
  }
  if (out.count > 0) {
    out.min = BitsDouble(min_bits_.load(std::memory_order_relaxed));
    out.max = BitsDouble(max_bits_.load(std::memory_order_relaxed));
  }
  return out;
}

// -------------------------------------------------------------- Registry --

namespace {

/// Canonical map key: name + sorted labels with unprintable separators
/// (label keys/values are operator-supplied, not request-path input).
std::string MetricKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

/// MetricKey for caller-supplied labels that may not be in canonical
/// order yet (snapshot labels already are; query labels need the sort).
std::string CanonicalMetricKey(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return MetricKey(name, labels);
}

}  // namespace

// --------------------------------------------------------- SnapshotDelta --

SnapshotDelta::SnapshotDelta(RegistrySnapshot prev, RegistrySnapshot cur)
    : prev_(std::move(prev)), cur_(std::move(cur)) {
  prev_index_.reserve(prev_.metrics.size());
  for (size_t i = 0; i < prev_.metrics.size(); ++i) {
    const MetricSnapshot& m = prev_.metrics[i];
    prev_index_[MetricKey(m.name, m.labels)] = i;
  }
  cur_index_.reserve(cur_.metrics.size());
  for (size_t i = 0; i < cur_.metrics.size(); ++i) {
    const MetricSnapshot& m = cur_.metrics[i];
    cur_index_[MetricKey(m.name, m.labels)] = i;
  }
}

const MetricSnapshot* SnapshotDelta::FindPrev(const std::string& name,
                                              const Labels& labels) const {
  const auto it = prev_index_.find(CanonicalMetricKey(name, labels));
  return it == prev_index_.end() ? nullptr : &prev_.metrics[it->second];
}

const MetricSnapshot* SnapshotDelta::FindCur(const std::string& name,
                                             const Labels& labels) const {
  const auto it = cur_index_.find(CanonicalMetricKey(name, labels));
  return it == cur_index_.end() ? nullptr : &cur_.metrics[it->second];
}

uint64_t SnapshotDelta::CounterDelta(const std::string& name,
                                     const Labels& labels) const {
  const MetricSnapshot* c = FindCur(name, labels);
  if (c == nullptr || c->type != MetricType::kCounter) return 0;
  const MetricSnapshot* p = FindPrev(name, labels);
  const uint64_t before =
      (p != nullptr && p->type == MetricType::kCounter) ? p->counter_value : 0;
  return c->counter_value >= before ? c->counter_value - before : 0;
}

double SnapshotDelta::GaugeValue(const std::string& name, const Labels& labels,
                                 double fallback) const {
  const MetricSnapshot* c = FindCur(name, labels);
  if (c == nullptr || c->type != MetricType::kGauge) return fallback;
  return c->gauge_value;
}

double SnapshotDelta::HistogramIntervalMean(const std::string& name,
                                            const Labels& labels,
                                            double fallback) const {
  const MetricSnapshot* c = FindCur(name, labels);
  if (c == nullptr || c->type != MetricType::kHistogram) return fallback;
  const MetricSnapshot* p = FindPrev(name, labels);
  const bool has_prev = p != nullptr && p->type == MetricType::kHistogram;
  const uint64_t before = has_prev ? p->histogram.count : 0;
  if (c->histogram.count <= before) return fallback;
  const double sum_before = has_prev ? p->histogram.sum : 0.0;
  return (c->histogram.sum - sum_before) /
         static_cast<double>(c->histogram.count - before);
}

uint64_t SnapshotDelta::HistogramIntervalCount(const std::string& name,
                                               const Labels& labels) const {
  const MetricSnapshot* c = FindCur(name, labels);
  if (c == nullptr || c->type != MetricType::kHistogram) return 0;
  const MetricSnapshot* p = FindPrev(name, labels);
  const uint64_t before =
      (p != nullptr && p->type == MetricType::kHistogram) ? p->histogram.count
                                                          : 0;
  return c->histogram.count >= before ? c->histogram.count - before : 0;
}

Registry::Registry(RegistryOptions opts)
    : enabled_(opts.enabled),
      noop_counter_(false),
      noop_gauge_(false),
      noop_histogram_(false) {}

Counter* Registry::GetCounter(const std::string& name, Labels labels) {
  if (!enabled_) return &noop_counter_;
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = MetricKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    const Entry& e = entries_[it->second];
    DW_CHECK(e.type == MetricType::kCounter)
        << "metric " << name << " re-registered as counter, was "
        << ToString(e.type);
    return counters_[e.index].get();
  }
  counters_.emplace_back(new Counter(true));
  Entry e;
  e.name = name;
  e.labels = std::move(labels);
  e.type = MetricType::kCounter;
  e.index = counters_.size() - 1;
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return counters_.back().get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels) {
  if (!enabled_) return &noop_gauge_;
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = MetricKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    const Entry& e = entries_[it->second];
    DW_CHECK(e.type == MetricType::kGauge)
        << "metric " << name << " re-registered as gauge, was "
        << ToString(e.type);
    return gauges_[e.index].get();
  }
  gauges_.emplace_back(new Gauge(true));
  Entry e;
  e.name = name;
  e.labels = std::move(labels);
  e.type = MetricType::kGauge;
  e.index = gauges_.size() - 1;
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return gauges_.back().get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels) {
  if (!enabled_) return &noop_histogram_;
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = MetricKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    const Entry& e = entries_[it->second];
    DW_CHECK(e.type == MetricType::kHistogram)
        << "metric " << name << " re-registered as histogram, was "
        << ToString(e.type);
    return histograms_[e.index].get();
  }
  histograms_.emplace_back(new Histogram(true));
  Entry e;
  e.name = name;
  e.labels = std::move(labels);
  e.type = MetricType::kHistogram;
  e.index = histograms_.size() - 1;
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return histograms_.back().get();
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  if (!enabled_) return snap;
  std::lock_guard<std::mutex> lk(mu_);
  snap.metrics.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot m;
    m.name = e.name;
    m.labels = e.labels;
    m.type = e.type;
    switch (e.type) {
      case MetricType::kCounter:
        m.counter_value = counters_[e.index]->Value();
        break;
      case MetricType::kGauge:
        m.gauge_value = gauges_[e.index]->Value();
        break;
      case MetricType::kHistogram:
        m.histogram = histograms_[e.index]->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace dw::obs
