#include "obs/span.h"

#include <utility>

namespace dw::obs {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kAdmit:
      return "admit";
    case Stage::kQueue:
      return "queue";
    case Stage::kBatchForm:
      return "batch_form";
    case Stage::kGather:
      return "gather";
    case Stage::kScore:
      return "score";
    case Stage::kComplete:
      return "complete";
  }
  return "?";
}

const char* StageName(int stage) {
  return StageName(static_cast<Stage>(stage));
}

SpanRecorder::SpanRecorder(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void SpanRecorder::Record(SpanRecord rec) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  rec.seq = next_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_ % capacity_] = std::move(rec);
  }
  ++next_;
}

std::vector<SpanRecord> SpanRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: the slot the NEXT write would take holds the oldest.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t SpanRecorder::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_;
}

}  // namespace dw::obs
