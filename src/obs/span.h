// Request lifecycle tracing for the serving path: a sampled per-request
// span decomposed into the pipeline's stages, kept in a fixed-size ring.
//
// The per-stage HISTOGRAMS (obs::Registry metrics serve.stage_us) are
// always on and answer "where does the average request spend its time";
// the SPANS here answer the other question -- "what happened to THIS
// slow request" -- by keeping whole per-request stage breakdowns for a
// sampled subset of traffic. The ring is bounded (old spans overwritten)
// and the recording path is sampled (1/N requests), so tracing cost is
// independent of load.
//
// Stage boundaries, in request order:
//   admit      engine-side validation: Score() entry to enqueue
//   queue      enqueued until the flush policy formed a batch around it
//   batch-form batch formed until a worker picked it up
//   gather     snapshot acquire + view build (store rows gathered here)
//   score      the prediction kernel
//   complete   promise resolution and latency stamping
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dw::obs {

enum class Stage {
  kAdmit = 0,
  kQueue,
  kBatchForm,
  kGather,
  kScore,
  kComplete,
};

inline constexpr int kNumStages = 6;

const char* StageName(Stage s);
const char* StageName(int stage);

/// One traced request's stage breakdown (all durations microseconds).
struct SpanRecord {
  uint64_t seq = 0;  ///< assigned by the recorder, monotonically
  std::string family;
  std::string client;
  bool by_id = false;
  /// Rows in the batch that served this request (batch-level stages are
  /// shared across them).
  uint64_t batch_rows = 0;
  double stage_us[kNumStages] = {};
  /// End-to-end: admit through complete.
  double total_us = 0.0;
};

/// Fixed-capacity ring of SpanRecords. Record() overwrites the oldest
/// span once full; Snapshot() returns oldest-to-newest. Mutex-guarded:
/// the recording path is sampled (cold by construction), so a lock
/// beats the complexity of a lock-free ring of strings.
class SpanRecorder {
 public:
  explicit SpanRecorder(size_t capacity = 256);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Stores `rec` (seq assigned here), evicting the oldest if full.
  /// No-op when constructed with capacity 0 (tracing disabled).
  void Record(SpanRecord rec);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans ever recorded (including overwritten ones).
  uint64_t recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  ///< ring_[next_ % capacity_] is oldest
  uint64_t next_ = 0;             ///< doubles as the total recorded count
};

}  // namespace dw::obs
