// The DimmWitted engine (paper Sec. 3): given a model specification and a
// dataset, executes epochs under a chosen point of the
// (access method x model replication x data replication) tradeoff space,
// measuring statistical efficiency (loss per epoch) for real and hardware
// efficiency both for real (host wall clock) and through the topology's
// calibrated memory model.
//
// Threading: one persistent worker thread per virtual core (pinned to a
// physical CPU through the topology map), one optional asynchronous
// model-averaging thread (paper Sec. 3.3: "a separate thread averages
// models, batching many writes together across the cores into one write").
// Replica updates are lock-free by design; concurrent writes to shared
// replicas are the Hogwild!-style benign races the paper studies.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "engine/metrics.h"
#include "engine/options.h"
#include "engine/plan.h"
#include "matrix/csc_matrix.h"
#include "models/model_spec.h"
#include "numa/memory_model.h"
#include "numa/numa_allocator.h"
#include "util/barrier.h"
#include "util/rng.h"
#include "util/status.h"

namespace dw::engine {

/// Stop conditions for Engine::Run.
struct RunConfig {
  int max_epochs = 50;
  /// Stop as soon as the epoch loss is <= stop_loss (-inf to disable).
  double stop_loss = -std::numeric_limits<double>::infinity();
  /// Stop when cumulative *wall* seconds exceed this (paper timeout rows).
  double wall_timeout_sec = std::numeric_limits<double>::infinity();
  /// Evaluate loss every `eval_every` epochs (1 = every epoch).
  int eval_every = 1;
};

/// An immutable export of the trained model, ready to hand to the serving
/// layer (src/serve): consensus weights plus provenance.
struct ModelExport {
  std::string spec_name;
  int epochs_trained = 0;
  std::vector<double> weights;
  /// When the weights left the trainer (the export buffer's refresh
  /// time). The serving layer diffs against this for staleness.
  std::chrono::steady_clock::time_point exported_at{};
};

/// The engine. Construct, Init(), then Run() or RunEpoch().
class Engine {
 public:
  /// `dataset` and `spec` must outlive the engine.
  Engine(const data::Dataset* dataset, const models::ModelSpec* spec,
         EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Builds the plan, allocates replicas, starts worker threads.
  Status Init();

  /// Runs one epoch (work + averaging); does not evaluate loss.
  EpochRecord RunEpochNoEval();

  /// Runs epochs per `config`, evaluating loss and recording the curve.
  RunResult Run(const RunConfig& config);

  /// The consensus model (average of replicas; the replicas themselves
  /// are written back so this is also the next epoch's starting point).
  std::vector<double> ConsensusModel();

  /// Snapshots the consensus model for serving (serve::ModelRegistry
  /// republishes it without copying again). Valid after Init(), and
  /// THREAD-SAFE: callable from a background exporter (the
  /// serve::SnapshotExporter pipeline) while epochs run. The weights come
  /// from a mutex-guarded export buffer refreshed at every asynchronous
  /// averaging round and epoch boundary, so a mid-epoch export lags the
  /// live replicas by at most one averaging interval and never reads
  /// them directly (epochs do not block, and the racy replica reads stay
  /// inside the training loop where they belong).
  ModelExport Export();

  /// Parallel loss of the consensus model over the full dataset.
  double EvaluateLoss();

  /// Plan introspection (valid after Init).
  const Plan& plan() const { return plan_; }
  const EngineOptions& options() const { return options_; }

  /// Logical placement ledger (valid after Init): where data and replica
  /// bytes live, for tests and the placement ablation.
  const numa::NodeLedger& ledger() const { return allocator_->ledger(); }

  /// Simulation input of the most recent epoch (for PMU-style reports).
  const numa::SimulationInput& last_epoch_sim() const { return last_sim_; }

 private:
  struct Replica;

  void WorkerLoop(int worker_id);
  void RunWorkPhase();                    // one epoch's work on all workers
  void EpochBoundarySync();               // average + project + aux refresh
  void AveragerLoop();                    // async averaging thread body
  void AverageReplicasOnce();             // one averaging round (model part)
  /// Copies `weights` (model_dim_ doubles) into the export buffer.
  /// `epochs` < 0 keeps the current trained-epochs figure (mid-epoch
  /// averaging rounds refresh weights, not epoch provenance).
  void RefreshExportBuffer(const double* weights, int epochs);
  void ResampleImportanceWork();          // kImportance: new per-epoch work
  numa::SimulationInput BuildSimInput() const;

  const data::Dataset* dataset_;
  const models::ModelSpec* spec_;
  EngineOptions options_;
  Plan plan_;

  std::unique_ptr<matrix::CscMatrix> csc_;       // built if needed
  std::unique_ptr<numa::NumaAllocator> allocator_;
  numa::MemoryModel memory_model_;

  matrix::Index model_dim_ = 0;
  size_t aux_dim_ = 0;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<double> importance_cdf_;           // kImportance only
  std::vector<double> consensus_;                // scratch for averaging

  // Worker pool.
  std::vector<std::thread> workers_;
  std::unique_ptr<SpinBarrier> start_barrier_;   // workers + main
  std::unique_ptr<SpinBarrier> end_barrier_;     // workers + main
  std::atomic<bool> quit_{false};
  std::atomic<double> current_step_{0.1};
  std::vector<Rng> worker_rngs_;
  std::vector<numa::AccessCounters> worker_counters_;

  // Async averager.
  std::thread averager_;
  /// Serializes averaging rounds against the epoch boundary: the
  /// boundary's consensus copy into the export buffer must never read a
  /// replica the averager is halfway through rewriting (workers' Hogwild
  /// races stay -- this guards only averager-vs-boundary).
  std::mutex averaging_mu_;
  std::atomic<bool> averager_quit_{false};
  std::atomic<bool> epoch_active_{false};
  std::atomic<uint64_t> averaging_rounds_{0};

  // Export buffer: the thread-safe hand-off point between training and
  // the serving exporter (see Export()).
  mutable std::mutex export_mu_;
  std::vector<double> export_weights_;
  int export_epochs_ = 0;
  std::chrono::steady_clock::time_point export_refreshed_at_{};

  numa::SimulationInput last_sim_{1};
  int epoch_counter_ = 0;
  bool initialized_ = false;
};

/// Convenience: runs a single-threaded, single-replica reference
/// configuration for `epochs` epochs and returns the best loss seen.
/// Benches use this to estimate the "optimal loss" of Sec. 4.1.
double ReferenceOptimalLoss(const data::Dataset& dataset,
                            const models::ModelSpec& spec,
                            AccessMethod access, int epochs,
                            double step_size = 0.1);

}  // namespace dw::engine
