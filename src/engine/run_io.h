// Persistence for run results: loss-curve CSV export so users can plot
// the paper's time-to-loss figures from their own runs.
#pragma once

#include <string>

#include "engine/metrics.h"
#include "util/status.h"

namespace dw::engine {

/// Writes one CSV row per epoch:
///   epoch,loss,wall_sec,sim_sec,cum_wall_sec,cum_sim_sec,
///   local_read_bytes,remote_read_bytes,local_write_bytes,
///   shared_write_bytes,updates
Status WriteLossCurveCsv(const std::string& path, const RunResult& result);

/// Reads a CSV produced by WriteLossCurveCsv back into a RunResult
/// (loss/wall/sim and traffic columns; derived fields recomputed).
StatusOr<RunResult> ReadLossCurveCsv(const std::string& path);

}  // namespace dw::engine
