#include "engine/plan.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace dw::engine {

using matrix::CscMatrix;
using matrix::Index;

const char* ToString(AccessMethod m) {
  switch (m) {
    case AccessMethod::kRowWise:
      return "Row-wise";
    case AccessMethod::kColWise:
      return "Column-wise";
    case AccessMethod::kColToRow:
      return "Column-to-row";
  }
  return "?";
}

const char* ToString(ModelReplication m) {
  switch (m) {
    case ModelReplication::kPerCore:
      return "PerCore";
    case ModelReplication::kPerNode:
      return "PerNode";
    case ModelReplication::kPerMachine:
      return "PerMachine";
  }
  return "?";
}

const char* ToString(DataReplication m) {
  switch (m) {
    case DataReplication::kSharding:
      return "Sharding";
    case DataReplication::kFullReplication:
      return "FullReplication";
    case DataReplication::kImportance:
      return "Importance";
  }
  return "?";
}

namespace {

// Per-item traffic coefficients, filled per access method.
struct ItemCosts {
  // bytes of matrix data scanned when processing item k
  std::vector<uint64_t> data_bytes;
  // bytes of model read / written per item
  std::vector<uint64_t> model_read;
  std::vector<uint64_t> model_write;
  std::vector<uint64_t> flops;
};

constexpr uint64_t kEntryBytes = sizeof(double) + sizeof(Index);
constexpr uint64_t kValBytes = sizeof(double);

ItemCosts ComputeItemCosts(const data::Dataset& d,
                           const models::ModelSpec& spec,
                           const EngineOptions& opts, const CscMatrix* csc) {
  ItemCosts c;
  const bool dense_write =
      spec.RowWriteSparsity() == models::UpdateSparsity::kDense;
  const Index dim = spec.ModelDim(d);
  switch (opts.access) {
    case AccessMethod::kRowWise: {
      const Index n = d.a.rows();
      c.data_bytes.resize(n);
      c.model_read.resize(n);
      c.model_write.resize(n);
      c.flops.resize(n);
      for (Index i = 0; i < n; ++i) {
        const uint64_t nnz = d.a.RowNnz(i);
        c.data_bytes[i] = nnz * kEntryBytes;
        c.model_read[i] = nnz * kValBytes;
        c.model_write[i] = dense_write ? uint64_t{dim} * kValBytes
                                       : nnz * kValBytes;
        c.flops[i] = 4 * nnz;
      }
      break;
    }
    case AccessMethod::kColWise: {
      DW_CHECK(csc != nullptr);
      const Index dcols = d.a.cols();
      c.data_bytes.resize(dcols);
      c.model_read.resize(dcols);
      c.model_write.resize(dcols);
      c.flops.resize(dcols);
      const bool has_aux = spec.AuxDim(d) > 0;
      for (Index j = 0; j < dcols; ++j) {
        const uint64_t nnz = csc->ColNnz(j);
        c.data_bytes[j] = nnz * kEntryBytes;
        // Reads x_j plus (for Laplacian-style specs) neighbor values or
        // (for GLM SCD) the aux entries of S(j).
        c.model_read[j] = (1 + nnz) * kValBytes;
        c.model_write[j] = (1 + (has_aux ? nnz : 0)) * kValBytes;
        c.flops[j] = 4 * nnz;
      }
      break;
    }
    case AccessMethod::kColToRow: {
      DW_CHECK(csc != nullptr);
      const Index dcols = d.a.cols();
      c.data_bytes.resize(dcols);
      c.model_read.resize(dcols);
      c.model_write.resize(dcols);
      c.flops.resize(dcols);
      for (Index j = 0; j < dcols; ++j) {
        const auto col = csc->Col(j);
        uint64_t expanded = 0;
        for (size_t k = 0; k < col.nnz; ++k) {
          expanded += d.a.RowNnz(col.indices[k]);
        }
        c.data_bytes[j] = expanded * kEntryBytes + col.nnz * kEntryBytes;
        c.model_read[j] = (1 + expanded) * kValBytes;
        c.model_write[j] = kValBytes;
        c.flops[j] = 4 * expanded;
      }
      break;
    }
  }
  return c;
}

}  // namespace

StatusOr<Plan> BuildPlan(const data::Dataset& dataset,
                         const models::ModelSpec& spec,
                         const EngineOptions& options, const CscMatrix* csc) {
  // --- validation ----------------------------------------------------------
  switch (options.access) {
    case AccessMethod::kRowWise:
      if (!spec.HasRow()) {
        return Status::InvalidArgument(spec.name() + " has no f_row");
      }
      break;
    case AccessMethod::kColWise:
      if (!spec.HasCol()) {
        return Status::InvalidArgument(spec.name() + " has no f_col");
      }
      if (csc == nullptr) {
        return Status::FailedPrecondition("column access requires CSC index");
      }
      break;
    case AccessMethod::kColToRow:
      if (!spec.HasCtr()) {
        return Status::InvalidArgument(spec.name() + " has no f_ctr");
      }
      if (csc == nullptr) {
        return Status::FailedPrecondition("column access requires CSC index");
      }
      break;
  }
  if (dataset.a.rows() == 0 || dataset.a.cols() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  if (options.data_rep == DataReplication::kImportance &&
      options.access != AccessMethod::kRowWise) {
    return Status::InvalidArgument(
        "importance sampling is defined over rows (row-wise access only)");
  }

  const numa::Topology& topo = options.topology;
  const int wpn = options.workers_per_node > 0 ? options.workers_per_node
                                               : topo.cores_per_node;
  const int num_workers = wpn * topo.num_nodes;

  Plan plan;
  plan.options = options;
  plan.options.workers_per_node = wpn;
  plan.num_workers = num_workers;
  plan.domain_size = options.access == AccessMethod::kRowWise
                         ? dataset.a.rows()
                         : dataset.a.cols();

  // --- replica geometry ------------------------------------------------
  switch (options.model_rep) {
    case ModelReplication::kPerCore:
      plan.num_replicas = num_workers;
      plan.sharing_sockets = 1;
      plan.replicas_per_node = wpn;
      break;
    case ModelReplication::kPerNode:
      plan.num_replicas = topo.num_nodes;
      plan.sharing_sockets = 1;
      plan.replicas_per_node = 1;
      break;
    case ModelReplication::kPerMachine:
      plan.num_replicas = 1;
      plan.sharing_sockets = topo.num_nodes;
      plan.replicas_per_node = 1;
      break;
  }
  plan.replica_node.resize(plan.num_replicas);
  for (int r = 0; r < plan.num_replicas; ++r) {
    switch (options.model_rep) {
      case ModelReplication::kPerCore:
        // Replica r belongs to worker r, which lives on node r / wpn.
        plan.replica_node[r] = r / wpn;
        break;
      case ModelReplication::kPerNode:
        plan.replica_node[r] = r;
        break;
      case ModelReplication::kPerMachine:
        plan.replica_node[r] = 0;
        break;
    }
  }
  const uint64_t aux_doubles = options.access == AccessMethod::kColWise
                                   ? spec.AuxDim(dataset)
                                   : 0;
  plan.replica_bytes =
      (static_cast<uint64_t>(spec.ModelDim(dataset)) + aux_doubles) *
      sizeof(double);

  // --- worker slots ------------------------------------------------------
  const ItemCosts costs = ComputeItemCosts(dataset, spec, options, csc);
  const Index domain = plan.domain_size;

  Rng rng(options.seed);
  std::vector<Index> global_perm(domain);
  std::iota(global_perm.begin(), global_perm.end(), Index{0});
  rng.Shuffle(global_perm);

  plan.workers.resize(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    WorkerPlan& wp = plan.workers[w];
    wp.worker_id = w;
    const int node = w / wpn;
    const int slot = w % wpn;
    wp.node = node;
    wp.core = node * topo.cores_per_node + (slot % topo.cores_per_node);
    switch (options.model_rep) {
      case ModelReplication::kPerCore:
        wp.replica_index = w;
        break;
      case ModelReplication::kPerNode:
        wp.replica_index = node;
        break;
      case ModelReplication::kPerMachine:
        wp.replica_index = 0;
        break;
    }
    wp.data_is_local = options.collocate_data ? true : (node == 0);

    switch (options.data_rep) {
      case DataReplication::kSharding: {
        // Random partition: a contiguous slice of a global permutation.
        const Index begin =
            static_cast<Index>(static_cast<uint64_t>(domain) * w / num_workers);
        const Index end = static_cast<Index>(static_cast<uint64_t>(domain) *
                                             (w + 1) / num_workers);
        wp.work.assign(global_perm.begin() + begin, global_perm.begin() + end);
        break;
      }
      case DataReplication::kFullReplication: {
        // Every node covers the whole domain; workers of one node split it
        // round-robin so the node's coverage is exact each epoch.
        wp.work.reserve(domain / wpn + 1);
        for (Index k = slot; k < domain; k += static_cast<Index>(wpn)) {
          wp.work.push_back(k);
        }
        break;
      }
      case DataReplication::kImportance: {
        // Filled per epoch by the engine; reserve the nominal size.
        wp.work.clear();
        break;
      }
    }

    for (Index item : wp.work) {
      wp.data_bytes_per_epoch += costs.data_bytes[item];
      wp.model_read_bytes_per_epoch += costs.model_read[item];
      wp.model_write_bytes_per_epoch += costs.model_write[item];
      wp.flops_per_epoch += costs.flops[item];
    }
    wp.updates_per_epoch = wp.work.size();
  }
  return plan;
}

}  // namespace dw::engine
