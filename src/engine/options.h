// The three tradeoff axes of the paper (Fig. 5) plus engine knobs.
#pragma once

#include <cstdint>
#include <string>

#include "numa/topology.h"

namespace dw::engine {

/// Paper Sec. 2.1/3.2: how workers traverse the data.
enum class AccessMethod {
  kRowWise,    ///< SGD-style; may write the whole model (MADlib/Spark/Hogwild!)
  kColWise,    ///< SCD-style; writes one coordinate (GraphLab/Shogun/Thetis)
  kColToRow,   ///< column iteration that reads full rows S(j) (Gibbs, LP)
};

/// Paper Sec. 3.3: granularity of the mutable model state.
enum class ModelReplication {
  kPerCore,    ///< shared-nothing: one replica per worker (Bismarck/Spark/GL)
  kPerNode,    ///< one replica per NUMA node -- the paper's novel hybrid
  kPerMachine, ///< one shared replica, hardware coherence (Hogwild!/Downpour)
};

/// Paper Sec. 3.4: which rows/columns each worker sees.
enum class DataReplication {
  kSharding,        ///< partition items across workers (Hogwild!/Spark/GL)
  kFullReplication, ///< every node covers the full dataset in its own order
  kImportance,      ///< leverage-score sampling per epoch (Sec. C.4)
};

/// Human-readable names (used by benches and Fig. 14-style tables).
const char* ToString(AccessMethod m);
const char* ToString(ModelReplication m);
const char* ToString(DataReplication m);

/// Everything the engine needs to turn a model specification into an
/// execution plan.
struct EngineOptions {
  numa::Topology topology = numa::Local2();
  /// Workers per virtual node; -1 means one per core of the node.
  int workers_per_node = -1;

  AccessMethod access = AccessMethod::kRowWise;
  ModelReplication model_rep = ModelReplication::kPerNode;
  DataReplication data_rep = DataReplication::kSharding;

  /// Initial SGD step size and multiplicative per-epoch decay.
  double step_size = 0.1;
  double step_decay = 0.97;

  /// Async model-averaging period in microseconds (paper Sec. 3.3: one
  /// thread continuously averages replicas). <= 0 disables the async
  /// averager; epoch-boundary averaging always happens for multi-replica
  /// plans. Ignored for specs that maintain auxiliary state.
  int sync_interval_us = 200;

  /// Paper Sec. C.4: error tolerance for importance sampling; sets the
  /// per-worker sample count 2 eps^-2 d log d.
  double importance_epsilon = 0.1;

  /// Appendix A placement ablation: true = collocate data with workers
  /// ("NUMA" protocol); false = all data on node 0 ("OS" protocol).
  bool collocate_data = true;

  /// Pin worker threads to physical CPUs (mapped through the topology).
  bool pin_threads = true;

  /// Master seed for shard assignment and per-worker orderings.
  uint64_t seed = 42;
};

}  // namespace dw::engine
