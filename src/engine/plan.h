// Execution plans (paper Sec. 3.1: "an execution plan specifies, for each
// CPU core, (1) a subset of the data matrix to operate on, (2) a replica
// of the model to update, and (3) the access method"). Workers and the
// replicas they touch form locality groups pinned to virtual NUMA nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "engine/options.h"
#include "matrix/csc_matrix.h"
#include "models/model_spec.h"
#include "util/status.h"

namespace dw::engine {

/// One worker's slot in the plan.
struct WorkerPlan {
  int worker_id = 0;
  numa::CoreId core = 0;       ///< virtual core
  numa::NodeId node = 0;       ///< virtual node (locality group)
  int replica_index = 0;       ///< which model replica this worker updates
  bool data_is_local = true;   ///< whether its data lives on its node
  /// Static work assignment (row ids or column ids). For kImportance this
  /// holds the most recent epoch's sample.
  std::vector<matrix::Index> work;
  /// Precomputed traffic coefficients for the static assignment:
  uint64_t data_bytes_per_epoch = 0;   ///< matrix bytes scanned
  uint64_t model_read_bytes_per_epoch = 0;
  uint64_t model_write_bytes_per_epoch = 0;
  uint64_t flops_per_epoch = 0;
  uint64_t updates_per_epoch = 0;
};

/// The full plan: worker slots plus replica geometry.
struct Plan {
  EngineOptions options;
  int num_workers = 0;
  int num_replicas = 0;
  /// Node on which each replica lives.
  std::vector<numa::NodeId> replica_node;
  std::vector<WorkerPlan> workers;
  /// Sockets sharing one replica (input to the memory model): 1 for
  /// PerCore/PerNode, num_nodes for PerMachine.
  int sharing_sockets = 1;
  /// Replica payload in bytes (model + aux) and replicas resident per
  /// node (for the LLC-fit term of the memory model).
  uint64_t replica_bytes = 0;
  int replicas_per_node = 1;

  /// Items iterated per epoch by one full pass (rows or cols).
  matrix::Index domain_size = 0;
};

/// Builds the plan for (dataset, spec, options). Validates that the spec
/// supports the requested access method and that options are coherent.
StatusOr<Plan> BuildPlan(const data::Dataset& dataset,
                         const models::ModelSpec& spec,
                         const EngineOptions& options,
                         const matrix::CscMatrix* csc);

}  // namespace dw::engine
