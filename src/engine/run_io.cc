#include "engine/run_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace dw::engine {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

Status WriteLossCurveCsv(const std::string& path, const RunResult& result) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fprintf(f.get(),
               "epoch,loss,wall_sec,sim_sec,cum_wall_sec,cum_sim_sec,"
               "local_read_bytes,remote_read_bytes,local_write_bytes,"
               "shared_write_bytes,updates\n");
  double cum_wall = 0.0, cum_sim = 0.0;
  for (const EpochRecord& e : result.epochs) {
    cum_wall += e.wall_sec;
    cum_sim += e.sim_sec;
    std::fprintf(f.get(),
                 "%d,%.17g,%.17g,%.17g,%.17g,%.17g,%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                 e.epoch, e.loss, e.wall_sec, e.sim_sec, cum_wall, cum_sim,
                 e.traffic.local_read_bytes, e.traffic.remote_read_bytes,
                 e.traffic.local_write_bytes, e.traffic.shared_write_bytes,
                 e.traffic.updates);
  }
  return Status::OK();
}

StatusOr<RunResult> ReadLossCurveCsv(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  char line[4096];
  if (std::fgets(line, sizeof(line), f.get()) == nullptr) {
    return Status::InvalidArgument("empty file: " + path);
  }
  RunResult out;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    EpochRecord e;
    double cum_wall = 0.0, cum_sim = 0.0;
    const int got = std::sscanf(
        line,
        "%d,%lf,%lf,%lf,%lf,%lf,%" SCNu64 ",%" SCNu64 ",%" SCNu64 ",%" SCNu64
        ",%" SCNu64,
        &e.epoch, &e.loss, &e.wall_sec, &e.sim_sec, &cum_wall, &cum_sim,
        &e.traffic.local_read_bytes, &e.traffic.remote_read_bytes,
        &e.traffic.local_write_bytes, &e.traffic.shared_write_bytes,
        &e.traffic.updates);
    if (got != 11) {
      return Status::InvalidArgument("malformed row in " + path);
    }
    out.epochs.push_back(e);
  }
  return out;
}

}  // namespace dw::engine
