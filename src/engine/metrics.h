// Per-epoch and per-run measurements: the raw material of every
// experiment. Each epoch records measured wall time, simulated time under
// the configured topology's memory model, the loss after the epoch, and
// the logical traffic counters (the PMU substitute).
#pragma once

#include <limits>
#include <vector>

#include "numa/access_counters.h"
#include "numa/memory_model.h"
#include "obs/metrics.h"

namespace dw::engine {

/// One epoch's outcome.
struct EpochRecord {
  int epoch = 0;
  double loss = std::numeric_limits<double>::infinity();
  double wall_sec = 0.0;       ///< measured on the host, work phase only
  double sim_sec = 0.0;        ///< memory-model seconds on the topology
  double loss_eval_sec = 0.0;  ///< convergence-check cost (reported apart)
  numa::AccessCounters traffic;  ///< totals across workers
};

/// Per-request latency sink for the serving path (src/serve). Each owner
/// records without synchronization; Merge() and the percentile queries
/// run on the cold stats-aggregation path.
///
/// Two modes:
///   kBounded (default) -- an obs log-linear bucket histogram: CONSTANT
///       memory regardless of traffic (the old sample vector grew, then
///       decimated, forever on a long-running server), exact
///       count/mean/max, and percentiles with relative error bounded by
///       obs::LogLinearBuckets::kMaxRelativeError (< 19%).
///   kExact -- the original decimating sample vector, for benches that
///       need exact percentiles: past kMaxSamples it keeps every 2nd
///       sample and doubles the weight each retained sample carries;
///       Merge() renormalizes both sides to a common stride first, so
///       percentiles stay traffic-weighted even when one worker
///       decimated and another did not.
class LatencyRecorder {
 public:
  enum class Mode {
    kBounded,  ///< constant-memory bucket histogram (default)
    kExact,    ///< decimating sample vector, exact percentiles
  };

  static constexpr size_t kMaxSamples = 1 << 16;

  LatencyRecorder() : LatencyRecorder(Mode::kBounded) {}
  explicit LatencyRecorder(Mode mode) : mode_(mode) {}

  /// Records one latency sample (milliseconds).
  void Record(double ms);

  /// Accumulates another recorder's samples into this one. Both sides
  /// must share a mode (fatally checked: mixing an exact sample set
  /// into buckets would silently discard its exactness).
  void Merge(const LatencyRecorder& other);

  /// The p-th percentile (p in [0, 100]) of recorded samples; 0 if none.
  /// Exact in kExact mode, bounded-error in kBounded mode.
  double Percentile(double p) const;

  /// Several percentiles in one pass (cheaper than repeated
  /// Percentile() on the stats-polling path).
  std::vector<double> Percentiles(const std::vector<double>& ps) const;

  /// Total samples recorded (including decimated-away ones).
  uint64_t count() const {
    return mode_ == Mode::kBounded ? hist_.count : count_;
  }

  /// Mean: exact (sum/count) in kBounded mode; the retained-sample mean
  /// in kExact mode. 0 if none.
  double MeanMs() const;

  /// Exact maximum over ALL recorded samples (tracked outside both the
  /// buckets and the sample buffer, so neither bucketing nor decimation
  /// can drop the worst case -- the number an SLO report cares about
  /// most); 0 if none.
  double MaxMs() const {
    return mode_ == Mode::kBounded ? hist_.max : max_ms_;
  }

  Mode mode() const { return mode_; }

 private:
  /// Keeps every 2nd retained sample and doubles the stride (kExact).
  void Decimate();

  Mode mode_ = Mode::kBounded;
  /// kBounded state: a plain (single-owner) bucket accumulator.
  obs::HistogramSnapshot hist_;
  /// kExact state.
  std::vector<double> samples_ms_;
  uint64_t count_ = 0;
  double max_ms_ = 0.0;
  /// Each retained sample stands for this many recorded ones.
  uint64_t stride_ = 1;
  uint64_t skip_ = 0;  ///< samples to drop before the next retained one
};

/// A full run: the loss curve plus helpers for the paper's
/// "time to come within p% of the optimal loss" metric (Sec. 4.1).
struct RunResult {
  std::vector<EpochRecord> epochs;

  /// Total wall seconds of the work phases.
  double TotalWallSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.wall_sec;
    return s;
  }

  /// Total simulated seconds.
  double TotalSimSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.sim_sec;
    return s;
  }

  /// Best (lowest) loss seen.
  double BestLoss() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : epochs) best = std::min(best, e.loss);
    return best;
  }

  /// Epochs needed until loss <= target (first crossing); -1 if never.
  int EpochsToLoss(double target) const;

  /// Cumulative wall/simulated seconds until loss <= target; infinity if
  /// the run never got there.
  double WallSecToLoss(double target) const;
  double SimSecToLoss(double target) const;

  /// The paper's threshold: a loss within `fraction` of `optimal`
  /// (e.g. fraction 0.01 = "within 1%"). Handles optima of either sign.
  static double TargetLoss(double optimal, double fraction) {
    return optimal + std::abs(optimal) * fraction + 1e-12;
  }
};

}  // namespace dw::engine
