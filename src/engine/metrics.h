// Per-epoch and per-run measurements: the raw material of every
// experiment. Each epoch records measured wall time, simulated time under
// the configured topology's memory model, the loss after the epoch, and
// the logical traffic counters (the PMU substitute).
#pragma once

#include <limits>
#include <vector>

#include "numa/access_counters.h"
#include "numa/memory_model.h"

namespace dw::engine {

/// One epoch's outcome.
struct EpochRecord {
  int epoch = 0;
  double loss = std::numeric_limits<double>::infinity();
  double wall_sec = 0.0;       ///< measured on the host, work phase only
  double sim_sec = 0.0;        ///< memory-model seconds on the topology
  double loss_eval_sec = 0.0;  ///< convergence-check cost (reported apart)
  numa::AccessCounters traffic;  ///< totals across workers
};

/// A full run: the loss curve plus helpers for the paper's
/// "time to come within p% of the optimal loss" metric (Sec. 4.1).
struct RunResult {
  std::vector<EpochRecord> epochs;

  /// Total wall seconds of the work phases.
  double TotalWallSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.wall_sec;
    return s;
  }

  /// Total simulated seconds.
  double TotalSimSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.sim_sec;
    return s;
  }

  /// Best (lowest) loss seen.
  double BestLoss() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : epochs) best = std::min(best, e.loss);
    return best;
  }

  /// Epochs needed until loss <= target (first crossing); -1 if never.
  int EpochsToLoss(double target) const;

  /// Cumulative wall/simulated seconds until loss <= target; infinity if
  /// the run never got there.
  double WallSecToLoss(double target) const;
  double SimSecToLoss(double target) const;

  /// The paper's threshold: a loss within `fraction` of `optimal`
  /// (e.g. fraction 0.01 = "within 1%"). Handles optima of either sign.
  static double TargetLoss(double optimal, double fraction) {
    return optimal + std::abs(optimal) * fraction + 1e-12;
  }
};

}  // namespace dw::engine
