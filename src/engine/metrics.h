// Per-epoch and per-run measurements: the raw material of every
// experiment. Each epoch records measured wall time, simulated time under
// the configured topology's memory model, the loss after the epoch, and
// the logical traffic counters (the PMU substitute).
#pragma once

#include <limits>
#include <vector>

#include "numa/access_counters.h"
#include "numa/memory_model.h"

namespace dw::engine {

/// One epoch's outcome.
struct EpochRecord {
  int epoch = 0;
  double loss = std::numeric_limits<double>::infinity();
  double wall_sec = 0.0;       ///< measured on the host, work phase only
  double sim_sec = 0.0;        ///< memory-model seconds on the topology
  double loss_eval_sec = 0.0;  ///< convergence-check cost (reported apart)
  numa::AccessCounters traffic;  ///< totals across workers
};

/// Per-request latency sink for the serving path (src/serve). Each worker
/// owns one recorder (no synchronization on Record); Merge() and the
/// percentile queries run on the cold stats-aggregation path. Bounded: past
/// kMaxSamples the recorder decimates uniformly (keeps every 2nd sample,
/// doubling the weight each retained sample carries) so long-running
/// servers don't grow without limit. Merge() renormalizes both sides to a
/// common stride first, so percentiles stay traffic-weighted even when one
/// worker decimated and another did not.
class LatencyRecorder {
 public:
  static constexpr size_t kMaxSamples = 1 << 16;

  /// Records one latency sample (milliseconds).
  void Record(double ms);

  /// Accumulates another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

  /// The p-th percentile (p in [0, 100]) of recorded samples; 0 if none.
  double Percentile(double p) const;

  /// Several percentiles from one sort (cheaper than repeated
  /// Percentile() on the stats-polling path).
  std::vector<double> Percentiles(const std::vector<double>& ps) const;

  /// Total samples recorded (including decimated-away ones).
  uint64_t count() const { return count_; }

  /// Mean of the retained samples; 0 if none.
  double MeanMs() const;

  /// Exact maximum over ALL recorded samples (tracked outside the sample
  /// buffer, so decimation can never drop the worst case -- the number an
  /// SLO report cares about most); 0 if none.
  double MaxMs() const { return max_ms_; }

 private:
  /// Keeps every 2nd retained sample and doubles the stride.
  void Decimate();

  std::vector<double> samples_ms_;
  uint64_t count_ = 0;
  double max_ms_ = 0.0;
  /// Each retained sample stands for this many recorded ones.
  uint64_t stride_ = 1;
  uint64_t skip_ = 0;  ///< samples to drop before the next retained one
};

/// A full run: the loss curve plus helpers for the paper's
/// "time to come within p% of the optimal loss" metric (Sec. 4.1).
struct RunResult {
  std::vector<EpochRecord> epochs;

  /// Total wall seconds of the work phases.
  double TotalWallSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.wall_sec;
    return s;
  }

  /// Total simulated seconds.
  double TotalSimSec() const {
    double s = 0.0;
    for (const auto& e : epochs) s += e.sim_sec;
    return s;
  }

  /// Best (lowest) loss seen.
  double BestLoss() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : epochs) best = std::min(best, e.loss);
    return best;
  }

  /// Epochs needed until loss <= target (first crossing); -1 if never.
  int EpochsToLoss(double target) const;

  /// Cumulative wall/simulated seconds until loss <= target; infinity if
  /// the run never got there.
  double WallSecToLoss(double target) const;
  double SimSecToLoss(double target) const;

  /// The paper's threshold: a loss within `fraction` of `optimal`
  /// (e.g. fraction 0.01 = "within 1%"). Handles optima of either sign.
  static double TargetLoss(double optimal, double fraction) {
    return optimal + std::abs(optimal) * fraction + 1e-12;
  }
};

}  // namespace dw::engine
