#include "engine/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace dw::engine {

void LatencyRecorder::Decimate() {
  size_t w = 0;
  for (size_t r = 0; r < samples_ms_.size(); r += 2) {
    samples_ms_[w++] = samples_ms_[r];
  }
  samples_ms_.resize(w);
  stride_ *= 2;
}

void LatencyRecorder::Record(double ms) {
  if (mode_ == Mode::kBounded) {
    hist_.Record(ms);
    return;
  }
  ++count_;
  max_ms_ = std::max(max_ms_, ms);
  if (skip_ > 0) {
    --skip_;
    return;
  }
  samples_ms_.push_back(ms);
  skip_ = stride_ - 1;
  if (samples_ms_.size() >= kMaxSamples) Decimate();
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  DW_CHECK(mode_ == other.mode_)
      << "cannot merge latency recorders of different modes";
  if (mode_ == Mode::kBounded) {
    hist_.Merge(other.hist_);
    return;
  }
  // Bring both sides to a common stride (strides are powers of two) so
  // every retained sample carries the same weight; otherwise a decimated
  // high-traffic worker would be underweighted in the percentiles.
  while (stride_ < other.stride_) Decimate();
  const uint64_t step = stride_ / other.stride_;
  for (size_t r = 0; r < other.samples_ms_.size(); r += step) {
    samples_ms_.push_back(other.samples_ms_[r]);
  }
  count_ += other.count_;
  max_ms_ = std::max(max_ms_, other.max_ms_);
  while (samples_ms_.size() >= kMaxSamples) Decimate();
}

double LatencyRecorder::Percentile(double p) const {
  if (mode_ == Mode::kBounded) return hist_.Percentile(p);
  return dw::Percentile(samples_ms_, p);
}

std::vector<double> LatencyRecorder::Percentiles(
    const std::vector<double>& ps) const {
  std::vector<double> out;
  out.reserve(ps.size());
  if (mode_ == Mode::kBounded) {
    for (const double p : ps) out.push_back(hist_.Percentile(p));
    return out;
  }
  std::vector<double> sorted = samples_ms_;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : ps) out.push_back(PercentileSorted(sorted, p));
  return out;
}

double LatencyRecorder::MeanMs() const {
  if (mode_ == Mode::kBounded) return hist_.Mean();
  return Mean(samples_ms_);
}

int RunResult::EpochsToLoss(double target) const {
  for (const auto& e : epochs) {
    if (e.loss <= target) return e.epoch + 1;
  }
  return -1;
}

double RunResult::WallSecToLoss(double target) const {
  double acc = 0.0;
  for (const auto& e : epochs) {
    acc += e.wall_sec;
    if (e.loss <= target) return acc;
  }
  return std::numeric_limits<double>::infinity();
}

double RunResult::SimSecToLoss(double target) const {
  double acc = 0.0;
  for (const auto& e : epochs) {
    acc += e.sim_sec;
    if (e.loss <= target) return acc;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace dw::engine
