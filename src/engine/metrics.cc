#include "engine/metrics.h"

namespace dw::engine {

int RunResult::EpochsToLoss(double target) const {
  for (const auto& e : epochs) {
    if (e.loss <= target) return e.epoch + 1;
  }
  return -1;
}

double RunResult::WallSecToLoss(double target) const {
  double acc = 0.0;
  for (const auto& e : epochs) {
    acc += e.wall_sec;
    if (e.loss <= target) return acc;
  }
  return std::numeric_limits<double>::infinity();
}

double RunResult::SimSecToLoss(double target) const {
  double acc = 0.0;
  for (const auto& e : epochs) {
    acc += e.sim_sec;
    if (e.loss <= target) return acc;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace dw::engine
