#include "engine/grid_search.h"

#include "util/logging.h"

namespace dw::engine {

GridSearchResult GridSearchStepSize(
    const data::Dataset& dataset, const models::ModelSpec& spec,
    EngineOptions options, int max_epochs, double optimal_loss,
    const std::vector<double>& steps,
    const std::vector<double>& threshold_percents) {
  DW_CHECK(!steps.empty());
  GridSearchResult out;
  out.thresholds = threshold_percents;
  std::vector<double> best_score;
  for (double step : steps) {
    options.step_size = step;
    Engine engine(&dataset, &spec, options);
    const Status st = engine.Init();
    DW_CHECK(st.ok()) << st.ToString();
    RunConfig cfg;
    cfg.max_epochs = max_epochs;
    RunResult rr = engine.Run(cfg);

    std::vector<double> score;
    score.reserve(threshold_percents.size() + 1);
    for (double pct : threshold_percents) {
      const int e = rr.EpochsToLoss(
          RunResult::TargetLoss(optimal_loss, pct / 100.0));
      score.push_back(e < 0 ? 1e18 : e);
    }
    score.push_back(rr.BestLoss());
    if (out.best_run.epochs.empty() || score < best_score) {
      out.best_run = std::move(rr);
      out.best_step = step;
      best_score = std::move(score);
    }
  }
  return out;
}

}  // namespace dw::engine
