#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "data/leverage.h"
#include "util/logging.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::engine {

using matrix::Index;

// A model replica: one contiguous node-local buffer holding the model
// vector followed by the auxiliary state (paper Sec. 3.3 locality groups).
struct Engine::Replica {
  numa::NodeArray<double> storage;
  Index model_dim = 0;

  double* model() { return storage.data(); }
  double* aux() { return storage.data() + model_dim; }
  const double* model() const { return storage.data(); }
};

Engine::Engine(const data::Dataset* dataset, const models::ModelSpec* spec,
               EngineOptions options)
    : dataset_(dataset),
      spec_(spec),
      options_(std::move(options)),
      memory_model_(options_.topology),
      last_sim_(options_.topology.num_nodes) {
  DW_CHECK(dataset_ != nullptr);
  DW_CHECK(spec_ != nullptr);
}

Engine::~Engine() {
  if (!workers_.empty()) {
    quit_.store(true);
    start_barrier_->Wait();  // release workers into the quit check
    for (auto& t : workers_) t.join();
  }
  if (averager_.joinable()) {
    averager_quit_.store(true);
    averager_.join();
  }
}

Status Engine::Init() {
  if (initialized_) return Status::FailedPrecondition("Init called twice");

  // Column access needs the CSC index (and the loss scan uses CSR).
  if (options_.access != AccessMethod::kRowWise) {
    csc_ = std::make_unique<matrix::CscMatrix>(
        matrix::CscMatrix::FromCsr(dataset_->a));
  }

  auto plan_or = BuildPlan(*dataset_, *spec_, options_, csc_.get());
  if (!plan_or.ok()) return plan_or.status();
  plan_ = std::move(plan_or).value();

  allocator_ = std::make_unique<numa::NumaAllocator>(options_.topology);

  // Register the plan's *logical* data placement (paper Appendix A:
  // data/worker collocation). Physical copies are unnecessary on a
  // single-domain host; the ledger and the traffic counters carry the
  // placement decision instead.
  const size_t data_bytes = static_cast<size_t>(dataset_->SparseBytes());
  const int nodes = options_.topology.num_nodes;
  if (!options_.collocate_data) {
    allocator_->NoteLogicalBytes(0, data_bytes);
  } else if (options_.data_rep == DataReplication::kFullReplication) {
    for (int n = 0; n < nodes; ++n) {
      allocator_->NoteLogicalBytes(n, data_bytes);
    }
  } else {
    for (int n = 0; n < nodes; ++n) {
      allocator_->NoteLogicalBytes(n, data_bytes / nodes);
    }
  }

  // Replicas. The auxiliary state (SCD margins/residuals) only exists for
  // f_col plans; f_row never reads it and f_ctr recomputes everything from
  // the rows, so neither allocates nor refreshes it.
  model_dim_ = spec_->ModelDim(*dataset_);
  aux_dim_ = options_.access == AccessMethod::kColWise
                 ? spec_->AuxDim(*dataset_)
                 : 0;
  replicas_.clear();
  for (int r = 0; r < plan_.num_replicas; ++r) {
    auto rep = std::make_unique<Replica>();
    rep->model_dim = model_dim_;
    rep->storage = allocator_->AllocateOnNode<double>(
        plan_.replica_node[r], model_dim_ + aux_dim_);
    spec_->Project(rep->model(), model_dim_);
    if (aux_dim_ > 0) {
      spec_->RefreshAux(*dataset_, rep->model(), rep->aux());
    }
    replicas_.push_back(std::move(rep));
  }
  consensus_.assign(model_dim_, 0.0);

  // Importance sampling: leverage-score CDF (paper Sec. C.4).
  if (options_.data_rep == DataReplication::kImportance) {
    auto scores = data::LeverageScores(dataset_->a);
    if (!scores.ok()) return scores.status();
    importance_cdf_.resize(scores.value().size());
    double acc = 0.0;
    for (size_t i = 0; i < scores.value().size(); ++i) {
      acc += scores.value()[i];
      importance_cdf_[i] = acc;
    }
    if (acc <= 0.0) {
      return Status::Internal("degenerate leverage scores");
    }
  }

  // Worker pool.
  const int nw = plan_.num_workers;
  worker_rngs_.clear();
  uint64_t sm = options_.seed ^ 0xd1b54a32d192ed03ULL;
  for (int w = 0; w < nw; ++w) worker_rngs_.emplace_back(SplitMix64(sm));
  worker_counters_.assign(nw, numa::AccessCounters{});
  start_barrier_ = std::make_unique<SpinBarrier>(nw + 1);
  end_barrier_ = std::make_unique<SpinBarrier>(nw + 1);
  current_step_.store(options_.step_size);
  workers_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }

  // Async model averager (paper Sec. 3.3): DimmWitted's PerNode novelty.
  // PerCore deliberately stays a classical shared-nothing architecture
  // (Bismarck/Spark style, averaged only at epoch boundaries) -- that
  // difference IS the statistical-efficiency gap of Fig. 8(a). Specs with
  // auxiliary state cannot be averaged mid-epoch (the aux would go
  // stale), which is the mechanism behind the SCD => PerMachine rule.
  const bool async_ok =
      options_.model_rep == ModelReplication::kPerNode &&
      plan_.num_replicas > 1 && options_.sync_interval_us > 0 &&
      aux_dim_ == 0;
  if (async_ok) {
    averager_ = std::thread([this] { AveragerLoop(); });
  }

  // Seed the export buffer so Export() is valid (and thread-safe) from
  // the moment Init() returns, before any epoch has run.
  RefreshExportBuffer(replicas_[0]->model(), 0);

  initialized_ = true;
  return Status::OK();
}

void Engine::WorkerLoop(int worker_id) {
  SetCurrentThreadName("dw-worker-" + std::to_string(worker_id));
  WorkerPlan& wp = plan_.workers[worker_id];
  if (options_.pin_threads) {
    const int cpu =
        options_.topology.PhysicalCpuOfCore(wp.core, NumOnlineCpus());
    (void)PinCurrentThreadToCpu(cpu);
  }
  Rng& rng = worker_rngs_[worker_id];

  for (;;) {
    start_barrier_->Wait();
    if (quit_.load(std::memory_order_acquire)) break;

    // Random traversal order each epoch (paper Sec. 2.1: "typically some
    // randomness in the ordering is desired").
    rng.Shuffle(wp.work);

    models::StepContext ctx;
    ctx.dataset = dataset_;
    ctx.csc = csc_.get();
    ctx.step_size = current_step_.load(std::memory_order_relaxed);

    Replica& rep = *replicas_[wp.replica_index];
    double* model = rep.model();
    double* aux = aux_dim_ > 0 ? rep.aux() : nullptr;

    switch (options_.access) {
      case AccessMethod::kRowWise:
        for (Index i : wp.work) spec_->RowStep(ctx, i, model, aux);
        break;
      case AccessMethod::kColWise:
        for (Index j : wp.work) spec_->ColStep(ctx, j, model, aux);
        break;
      case AccessMethod::kColToRow:
        for (Index j : wp.work) spec_->CtrStep(ctx, j, model, aux);
        break;
    }

    // Analytic traffic accounting (the PMU substitute; see
    // numa/access_counters.h).
    numa::AccessCounters& c = worker_counters_[worker_id];
    c.Reset();
    if (wp.data_is_local) {
      c.local_read_bytes = wp.data_bytes_per_epoch;
    } else {
      c.remote_read_bytes = wp.data_bytes_per_epoch;
    }
    const bool replica_local =
        plan_.replica_node[wp.replica_index] == wp.node;
    if (replica_local) {
      c.model_read_bytes = wp.model_read_bytes_per_epoch;
    } else {
      c.remote_read_bytes += wp.model_read_bytes_per_epoch;
    }
    if (plan_.sharing_sockets > 1) {
      c.shared_write_bytes = wp.model_write_bytes_per_epoch;
    } else {
      c.local_write_bytes = wp.model_write_bytes_per_epoch;
    }
    c.flops = wp.flops_per_epoch;
    c.updates = wp.updates_per_epoch;

    end_barrier_->Wait();
  }
}

void Engine::ResampleImportanceWork() {
  // Each worker draws m = 2 eps^-2 d log d rows (capped at N) by leverage
  // score, then recomputes its traffic coefficients.
  const size_t m_total = std::min<size_t>(
      data::ImportanceSampleCount(options_.importance_epsilon, model_dim_),
      dataset_->a.rows());
  const size_t m_per_worker =
      std::max<size_t>(1, m_total / static_cast<size_t>(plan_.num_workers));
  const double total = importance_cdf_.back();
  const bool dense_write =
      spec_->RowWriteSparsity() == models::UpdateSparsity::kDense;

  for (WorkerPlan& wp : plan_.workers) {
    Rng& rng = worker_rngs_[wp.worker_id];
    wp.work.clear();
    wp.work.reserve(m_per_worker);
    wp.data_bytes_per_epoch = 0;
    wp.model_read_bytes_per_epoch = 0;
    wp.model_write_bytes_per_epoch = 0;
    wp.flops_per_epoch = 0;
    for (size_t s = 0; s < m_per_worker; ++s) {
      const double u = rng.Uniform() * total;
      const auto it = std::lower_bound(importance_cdf_.begin(),
                                       importance_cdf_.end(), u);
      const Index i =
          static_cast<Index>(it - importance_cdf_.begin());
      wp.work.push_back(i);
      const uint64_t nnz = dataset_->a.RowNnz(i);
      wp.data_bytes_per_epoch += nnz * (sizeof(double) + sizeof(Index));
      wp.model_read_bytes_per_epoch += nnz * sizeof(double);
      wp.model_write_bytes_per_epoch =
          wp.model_write_bytes_per_epoch +
          (dense_write ? uint64_t{model_dim_} * sizeof(double)
                       : nnz * sizeof(double));
      wp.flops_per_epoch += 4 * nnz;
    }
    wp.updates_per_epoch = wp.work.size();
  }
}

void Engine::AverageReplicasOnce() {
  const int nr = plan_.num_replicas;
  if (nr <= 1) return;
  const double inv = 1.0 / static_cast<double>(nr);
  for (Index k = 0; k < model_dim_; ++k) {
    double acc = 0.0;
    for (int r = 0; r < nr; ++r) acc += replicas_[r]->model()[k];
    consensus_[k] = acc * inv;
  }
  for (int r = 0; r < nr; ++r) {
    double* m = replicas_[r]->model();
    for (Index k = 0; k < model_dim_; ++k) m[k] = consensus_[k];
  }
  averaging_rounds_.fetch_add(1, std::memory_order_relaxed);
  // The freshly-averaged consensus is exactly what a serving export
  // should carry; refreshing here (also from the async averager thread)
  // is what makes mid-epoch Export() lag by at most one averaging round.
  RefreshExportBuffer(consensus_.data(), /*epochs=*/-1);
}

void Engine::RefreshExportBuffer(const double* weights, int epochs) {
  std::lock_guard<std::mutex> lk(export_mu_);
  export_weights_.assign(weights, weights + model_dim_);
  if (epochs >= 0) export_epochs_ = epochs;
  export_refreshed_at_ = std::chrono::steady_clock::now();
}

void Engine::AveragerLoop() {
  SetCurrentThreadName("dw-averager");
  const auto period = std::chrono::microseconds(
      std::max(1, options_.sync_interval_us));
  while (!averager_quit_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    if (epoch_active_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(averaging_mu_);
      AverageReplicasOnce();
    }
  }
}

void Engine::EpochBoundarySync() {
  // Wait out (and exclude) any in-flight async averaging round: from here
  // to the export-buffer refresh below, the replicas must not be half
  // rewritten by the averager, or serving would be handed torn weights.
  // Bounded wait: one O(replicas x dim) averaging pass at most.
  std::lock_guard<std::mutex> boundary_lock(averaging_mu_);
  if (plan_.num_replicas > 1) {
    AverageReplicasOnce();
  }
  for (auto& rep : replicas_) {
    spec_->Project(rep->model(), model_dim_);
    if (aux_dim_ > 0 && plan_.num_replicas > 1) {
      // Averaged model invalidates the maintained margins/residuals; the
      // rebuild is a full data pass per replica -- the real cost that
      // makes fine-grained sharing unattractive for SCD.
      spec_->RefreshAux(*dataset_, rep->model(), rep->aux());
    }
  }
  // Workers are parked at the barrier here, so replica 0 is quiescent and
  // holds the projected consensus: the canonical post-epoch export. The
  // boundary runs before ++epoch_counter_, hence the +1.
  RefreshExportBuffer(replicas_[0]->model(), epoch_counter_ + 1);
}

numa::SimulationInput Engine::BuildSimInput() const {
  numa::SimulationInput in(options_.topology.num_nodes);
  for (const WorkerPlan& wp : plan_.workers) {
    in.traffic.Add(wp.node, worker_counters_[wp.worker_id]);
    ++in.active_workers[wp.node];
  }
  in.model_sharing_sockets = plan_.sharing_sockets;
  in.model_bytes =
      plan_.replica_bytes * static_cast<uint64_t>(plan_.replicas_per_node);
  if (aux_dim_ > 0 && plan_.num_replicas > 1) {
    // Aux refresh traffic at the epoch boundary.
    const uint64_t scan = static_cast<uint64_t>(dataset_->a.ScanBytes());
    for (int r = 0; r < plan_.num_replicas; ++r) {
      numa::AccessCounters extra;
      extra.local_read_bytes = scan;
      extra.local_write_bytes = aux_dim_ * sizeof(double);
      in.traffic.Add(plan_.replica_node[r], extra);
    }
  }
  return in;
}

EpochRecord Engine::RunEpochNoEval() {
  DW_CHECK(initialized_) << "call Init() first";
  current_step_.store(options_.step_size *
                      std::pow(options_.step_decay, epoch_counter_));
  if (options_.data_rep == DataReplication::kImportance) {
    ResampleImportanceWork();
  }

  EpochRecord rec;
  rec.epoch = epoch_counter_;

  epoch_active_.store(true, std::memory_order_release);
  WallTimer timer;
  start_barrier_->Wait();  // release workers
  end_barrier_->Wait();    // wait for them
  epoch_active_.store(false, std::memory_order_release);
  EpochBoundarySync();
  rec.wall_sec = timer.Seconds();

  last_sim_ = BuildSimInput();
  rec.sim_sec = memory_model_.SimulateEpoch(last_sim_).total_sec;
  rec.traffic = last_sim_.traffic.Total();

  ++epoch_counter_;
  return rec;
}

RunResult Engine::Run(const RunConfig& config) {
  RunResult result;
  double wall_acc = 0.0;
  for (int e = 0; e < config.max_epochs; ++e) {
    EpochRecord rec = RunEpochNoEval();
    wall_acc += rec.wall_sec;
    if ((e % std::max(1, config.eval_every)) == 0 ||
        e == config.max_epochs - 1) {
      WallTimer eval_timer;
      rec.loss = EvaluateLoss();
      rec.loss_eval_sec = eval_timer.Seconds();
    }
    result.epochs.push_back(rec);
    if (rec.loss <= config.stop_loss) break;
    if (wall_acc > config.wall_timeout_sec) break;
  }
  return result;
}

std::vector<double> Engine::ConsensusModel() {
  std::vector<double> out(model_dim_, 0.0);
  const double inv = 1.0 / static_cast<double>(plan_.num_replicas);
  for (int r = 0; r < plan_.num_replicas; ++r) {
    const double* m = replicas_[r]->model();
    for (Index k = 0; k < model_dim_; ++k) out[k] += m[k] * inv;
  }
  return out;
}

ModelExport Engine::Export() {
  DW_CHECK(initialized_) << "call Init() first";
  ModelExport out;
  out.spec_name = spec_->name();
  std::lock_guard<std::mutex> lk(export_mu_);
  out.epochs_trained = export_epochs_;
  out.weights = export_weights_;
  out.exported_at = export_refreshed_at_;
  return out;
}

double Engine::EvaluateLoss() {
  // Replicas are synchronized at epoch boundaries; replica 0 holds the
  // consensus. Parallel scan over rows.
  const double* model = replicas_[0]->model();
  const Index n = dataset_->a.rows();
  const int threads =
      std::clamp(NumOnlineCpus(), 1, 8);
  std::vector<double> partial(threads, 0.0);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const Index lo = static_cast<Index>(static_cast<uint64_t>(n) * t /
                                          threads);
      const Index hi = static_cast<Index>(static_cast<uint64_t>(n) * (t + 1) /
                                          threads);
      double acc = 0.0;
      for (Index i = lo; i < hi; ++i) {
        acc += spec_->RowLoss(*dataset_, i, model);
      }
      partial[t] = acc;
    });
  }
  for (auto& th : pool) th.join();
  double sum = 0.0;
  for (double p : partial) sum += p;
  return sum / std::max<double>(1.0, n) +
         spec_->GlobalLossTerm(*dataset_, model);
}

double ReferenceOptimalLoss(const data::Dataset& dataset,
                            const models::ModelSpec& spec,
                            AccessMethod access, int epochs,
                            double step_size) {
  EngineOptions opts;
  opts.topology = numa::Topology{};
  opts.topology.name = "reference";
  opts.topology.num_nodes = 1;
  opts.topology.cores_per_node = 1;
  opts.access = access;
  opts.model_rep = ModelReplication::kPerMachine;
  opts.data_rep = DataReplication::kSharding;
  opts.step_size = step_size;
  opts.step_decay = 0.95;
  opts.sync_interval_us = 0;
  opts.pin_threads = false;
  Engine engine(&dataset, &spec, opts);
  const Status st = engine.Init();
  DW_CHECK(st.ok()) << st.ToString();
  RunConfig cfg;
  cfg.max_epochs = epochs;
  const RunResult rr = engine.Run(cfg);
  return rr.BestLoss();
}

}  // namespace dw::engine
