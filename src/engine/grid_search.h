// Step-size grid search -- the paper's experimental protocol (Sec. 4.2:
// "for each system, we grid search their statistical parameters, including
// step size ... we always report the best configuration"). Exposed as a
// library utility so applications can tune a plan the same way the
// benchmarks do.
#pragma once

#include <vector>

#include "engine/engine.h"

namespace dw::engine {

/// Outcome of a grid search.
struct GridSearchResult {
  double best_step = 0.0;
  RunResult best_run;
  /// Loss thresholds used for ranking (fractions of the optimal loss).
  std::vector<double> thresholds;
};

/// Runs the engine once per candidate step size and keeps the run that
/// reaches the tightest threshold of `optimal_loss` in the fewest epochs
/// (ties broken by the next threshold, then by best loss). Thresholds are
/// the paper's {1, 10, 50, 100} percent by default.
GridSearchResult GridSearchStepSize(
    const data::Dataset& dataset, const models::ModelSpec& spec,
    EngineOptions options, int max_epochs, double optimal_loss,
    const std::vector<double>& steps = {0.3, 0.1, 0.03, 0.01},
    const std::vector<double>& threshold_percents = {1, 10, 50, 100});

}  // namespace dw::engine
