// Scalar (portable) scoring kernels: the bitwise reference every SIMD
// level must reproduce. Eight independent stride-8 accumulator lanes per
// row break the FP-add latency chain; the pairwise lane fold and the
// sequential tail define the summation order the AVX2/AVX-512 TUs mirror
// vector-lane-for-scalar-lane. Compiled with -ffp-contract=off (see
// CMakeLists.txt) so no -march variant can fuse mul+add into an FMA and
// silently change the reference rounding.
#include "kernels/score_kernels.h"

namespace dw::kernels {

using matrix::Index;

namespace {

double DenseBlockDotScalar(const double* v, const double* m, Index lo,
                           Index hi) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    l0 += v[j] * m[j];
    l1 += v[j + 1] * m[j + 1];
    l2 += v[j + 2] * m[j + 2];
    l3 += v[j + 3] * m[j + 3];
    l4 += v[j + 4] * m[j + 4];
    l5 += v[j + 5] * m[j + 5];
    l6 += v[j + 6] * m[j + 6];
    l7 += v[j + 7] * m[j + 7];
  }
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * m[j];
  return (((l0 + l4) + (l1 + l5)) + ((l2 + l6) + (l3 + l7))) + tail;
}

// Rows are independent, so scoring the 4-row tile one row at a time is
// bitwise-identical to any interleaving of the same per-row arithmetic.
// The model slice is cache-resident across the four passes (that is what
// the driver's column blocking is for); the SIMD levels additionally
// share each model LOAD across the four rows.
void Dense4BlockDotScalar(const double* const* v4, const double* m, Index lo,
                          Index hi, double* acc4) {
  for (int r = 0; r < 4; ++r) {
    acc4[r] += DenseBlockDotScalar(v4[r], m, lo, hi);
  }
}

double SparseBlockAccScalar(double acc, const Index* indices,
                            const double* values, size_t* cursor, size_t nnz,
                            const double* m, Index hi) {
  size_t k = *cursor;
  while (k < nnz && indices[k] < hi) {
    acc += values[k] * m[indices[k]];
    ++k;
  }
  *cursor = k;
  return acc;
}

// Int8 twins: identical geometry, the weight widened to double in
// register (exact: every int8 is representable). No double copy of the
// model is ever materialized.

double DenseBlockDotI8Scalar(const double* v, const int8_t* m, Index lo,
                             Index hi) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  double l4 = 0.0, l5 = 0.0, l6 = 0.0, l7 = 0.0;
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    l0 += v[j] * static_cast<double>(m[j]);
    l1 += v[j + 1] * static_cast<double>(m[j + 1]);
    l2 += v[j + 2] * static_cast<double>(m[j + 2]);
    l3 += v[j + 3] * static_cast<double>(m[j + 3]);
    l4 += v[j + 4] * static_cast<double>(m[j + 4]);
    l5 += v[j + 5] * static_cast<double>(m[j + 5]);
    l6 += v[j + 6] * static_cast<double>(m[j + 6]);
    l7 += v[j + 7] * static_cast<double>(m[j + 7]);
  }
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * static_cast<double>(m[j]);
  return (((l0 + l4) + (l1 + l5)) + ((l2 + l6) + (l3 + l7))) + tail;
}

void Dense4BlockDotI8Scalar(const double* const* v4, const int8_t* m,
                            Index lo, Index hi, double* acc4) {
  for (int r = 0; r < 4; ++r) {
    acc4[r] += DenseBlockDotI8Scalar(v4[r], m, lo, hi);
  }
}

double SparseBlockAccI8Scalar(double acc, const Index* indices,
                              const double* values, size_t* cursor,
                              size_t nnz, const int8_t* m, Index hi) {
  size_t k = *cursor;
  while (k < nnz && indices[k] < hi) {
    acc += values[k] * static_cast<double>(m[indices[k]]);
    ++k;
  }
  *cursor = k;
  return acc;
}

}  // namespace

const KernelOps kScalarOps = {
    DenseBlockDotScalar,   Dense4BlockDotScalar,   SparseBlockAccScalar,
    DenseBlockDotI8Scalar, Dense4BlockDotI8Scalar, SparseBlockAccI8Scalar,
};

}  // namespace dw::kernels
