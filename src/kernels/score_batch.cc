// The blocked batch-scoring driver: row classification + cache blocking
// (hoisted from GlmSpec::PredictBatch), with the inner loops dispatched
// through the active KernelOps table. Also home of OpsFor/ActiveOps and
// the int8 weight quantizer.
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "kernels/dispatch.h"
#include "kernels/score_kernels.h"
#include "util/logging.h"

namespace dw::kernels {

using matrix::Index;
using matrix::SparseVectorView;

const KernelOps& OpsFor(KernelLevel level) {
  DW_CHECK(LevelSupported(level))
      << "kernel level " << ToString(level) << " not supported on this CPU";
  switch (level) {
    case KernelLevel::kScalar:
      return kScalarOps;
    case KernelLevel::kAvx2:
      return kAvx2Ops;
    case KernelLevel::kAvx512:
      return kAvx512Ops;
  }
  return kScalarOps;
}

const KernelOps& ActiveOps() { return OpsFor(ActiveKernelLevel()); }

namespace {

/// Rows scored per chunk; accumulators and cursors live on the stack.
constexpr size_t kRowChunk = 128;

/// How the blocked driver scans one row of the mini-batch.
enum class RowKind : uint8_t {
  kDenseFull,   ///< identity pattern spanning the full model: tiled 4 at
                ///< a time, no index loads
  kDenseShort,  ///< explicit dense view shorter than the model (identity
                ///< over a prefix): direct, untiled
  kSparse,      ///< strictly increasing indices: monotone-cursor gather
  kFallback,    ///< unsorted/duplicate indices: per-row reference dot
};

/// Classifies a row in one linear pass over its indices. Explicitly dense
/// views (null indices, see SparseVectorView) classify in O(1). For
/// indexed rows the dense check is an exact identity test
/// (indices[k] == k for all k) written as a branchless OR-fold so it
/// vectorizes; misclassifying would corrupt scores, so no sampling
/// shortcuts.
RowKind ClassifyRow(const SparseVectorView& row, Index dim) {
  if (row.indices == nullptr) {
    return row.nnz == static_cast<size_t>(dim) ? RowKind::kDenseFull
                                               : RowKind::kDenseShort;
  }
  if (row.nnz == static_cast<size_t>(dim) && dim > 0) {
    Index mismatch = 0;
    for (size_t k = 0; k < row.nnz; ++k) {
      mismatch |= row.indices[k] ^ static_cast<Index>(k);
    }
    if (mismatch == 0) return RowKind::kDenseFull;
  }
  for (size_t k = 1; k < row.nnz; ++k) {
    if (row.indices[k] <= row.indices[k - 1]) return RowKind::kFallback;
  }
  return RowKind::kSparse;
}

/// Reference dot for fallback (unsorted/duplicate) rows against an int8
/// model: the strict left-to-right fold of the unscaled products.
double Int8RefDot(const SparseVectorView& row, const int8_t* qmodel) {
  double acc = 0.0;
  if (row.indices == nullptr) {
    for (size_t k = 0; k < row.nnz; ++k) {
      acc += row.values[k] * static_cast<double>(qmodel[k]);
    }
  } else {
    for (size_t k = 0; k < row.nnz; ++k) {
      acc += row.values[k] * static_cast<double>(qmodel[row.indices[k]]);
    }
  }
  return acc;
}

/// The shared chunk/classify/block skeleton: `Model` is const double* or
/// const int8_t*, the lambdas bind the matching KernelOps entries, and
/// `finish` maps a raw accumulator to the stored margin (identity for
/// f64, *scale for int8). `fallback` scores one unsorted row directly.
template <typename Model, typename Dense1, typename Dense4, typename Sparse,
          typename Fallback, typename Finish>
void BlockedScore(Model model, Index dim, const SparseVectorView* rows,
                  size_t n, double* out, Index block_cols, Dense1 dense1,
                  Dense4 dense4, Sparse sparse, Fallback fallback,
                  Finish finish) {
  for (size_t base = 0; base < n; base += kRowChunk) {
    const size_t chunk = std::min(kRowChunk, n - base);
    double acc[kRowChunk];
    size_t cursor[kRowChunk];
    size_t dense_full[kRowChunk];
    size_t n_full = 0;
    RowKind kind[kRowChunk];
    for (size_t r = 0; r < chunk; ++r) {
      acc[r] = 0.0;
      cursor[r] = 0;
      kind[r] = ClassifyRow(rows[base + r], dim);
      if (kind[r] == RowKind::kDenseFull) {
        dense_full[n_full++] = r;
      } else if (kind[r] == RowKind::kFallback) {
        out[base + r] = finish(fallback(rows[base + r], model));
      }
    }
    // Tile the feature dimension: each model block is read once and stays
    // cached while every row of the chunk consumes its slice.
    for (Index lo = 0; lo < dim; lo += block_cols) {
      const Index hi = std::min<Index>(dim, lo + block_cols);
      // Full-width dense rows, four per register tile.
      size_t g = 0;
      for (; g + 4 <= n_full; g += 4) {
        double a4[4] = {0.0, 0.0, 0.0, 0.0};
        const double* v4[4] = {rows[base + dense_full[g]].values,
                               rows[base + dense_full[g + 1]].values,
                               rows[base + dense_full[g + 2]].values,
                               rows[base + dense_full[g + 3]].values};
        dense4(v4, model, lo, hi, a4);
        for (int t = 0; t < 4; ++t) acc[dense_full[g + t]] += a4[t];
      }
      for (; g < n_full; ++g) {
        acc[dense_full[g]] +=
            dense1(rows[base + dense_full[g]].values, model, lo, hi);
      }
      // Short dense and sparse rows, one at a time.
      for (size_t r = 0; r < chunk; ++r) {
        const SparseVectorView& row = rows[base + r];
        if (kind[r] == RowKind::kDenseShort) {
          const Index end = std::min<Index>(hi, static_cast<Index>(row.nnz));
          if (lo < end) acc[r] += dense1(row.values, model, lo, end);
        } else if (kind[r] == RowKind::kSparse) {
          // The sparse fold is seeded from acc[r], not a fresh partial:
          // terms join the running sum strictly left-to-right, so the
          // sparse path stays bitwise equal to the unblocked dot.
          acc[r] = sparse(acc[r], row.indices, row.values, &cursor[r],
                          row.nnz, model, hi);
        }
      }
    }
    for (size_t r = 0; r < chunk; ++r) {
      if (kind[r] != RowKind::kFallback) out[base + r] = finish(acc[r]);
    }
  }
}

}  // namespace

void ScoreBatchMargins(const double* model, Index dim,
                       const SparseVectorView* rows, size_t n, double* out,
                       const KernelOps* ops) {
  const KernelOps& k = ops != nullptr ? *ops : ActiveOps();
  BlockedScore(
      model, dim, rows, n, out, Tuning().block_cols, k.dense_block_dot,
      k.dense4_block_dot, k.sparse_block_acc,
      [](const SparseVectorView& row, const double* m) { return row.Dot(m); },
      [](double margin) { return margin; });
}

void ScoreBatchMarginsInt8(const int8_t* qmodel, double scale, Index dim,
                           const SparseVectorView* rows, size_t n,
                           double* out, const KernelOps* ops) {
  const KernelOps& k = ops != nullptr ? *ops : ActiveOps();
  BlockedScore(
      qmodel, dim, rows, n, out, Tuning().block_cols, k.dense_block_dot_i8,
      k.dense4_block_dot_i8, k.sparse_block_acc_i8,
      [](const SparseVectorView& row, const int8_t* m) {
        return Int8RefDot(row, m);
      },
      [scale](double raw) { return scale * raw; });
}

double QuantizeWeights(const double* weights, Index dim, int8_t* out) {
  double max_abs = 0.0;
  for (Index j = 0; j < dim; ++j) {
    max_abs = std::max(max_abs, std::fabs(weights[j]));
  }
  // All-zero (or non-finite-free zero) model: any positive scale encodes
  // it exactly as zeros.
  const double scale = max_abs > 0.0 ? max_abs / 127.0 : 1.0;
  const double inv = 1.0 / scale;
  for (Index j = 0; j < dim; ++j) {
    const double q = std::nearbyint(weights[j] * inv);
    out[j] = static_cast<int8_t>(std::clamp(q, -127.0, 127.0));
  }
  return scale;
}

}  // namespace dw::kernels
