// Runtime ISA dispatch for the scoring kernels.
//
// The serving hot path (GlmSpec::PredictBatch and the int8-quantized
// variant) routes every dense block dot and sparse gather through a
// per-level kernel table selected ONCE at startup:
//
//   - kScalar:  the register-tiled portable kernels (8 stride-8
//               accumulator lanes per row) -- the reference every other
//               level must reproduce bitwise;
//   - kAvx2:    256-bit vectors, two accumulator vectors per row mapping
//               lanes 0-3/4-7 onto the scalar lanes, plus a 4-double
//               model gather for sparse rows;
//   - kAvx512:  512-bit vectors, one accumulator vector per row, an
//               8-double model gather, and software prefetch of upcoming
//               gather targets.
//
// Every level performs the SAME per-lane arithmetic in the SAME order
// (multiply then add, no FMA contraction, identical pairwise lane fold),
// so the float paths are bitwise-equal across levels -- the property the
// CI dispatch matrix pins. Selection order: a test override
// (ScopedKernelLevelForTesting) > the DW_KERNEL_LEVEL environment
// variable (scalar|avx2|avx512) > CPUID detection. Asking for a level
// the host cannot run logs an explicit line and clamps to the best
// supported level; CI checks /proc/cpuinfo first so a clamped run is
// never mistaken for coverage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "matrix/sparse_vector.h"

namespace dw::kernels {

/// The ISA tiers the scoring kernels are built for, worst to best.
enum class KernelLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* ToString(KernelLevel level);

/// Parses "scalar" / "avx2" / "avx512"; false on anything else.
bool ParseKernelLevel(const std::string& name, KernelLevel* out);

/// True if this host's CPU can execute `level` (CPUID; scalar is always
/// supported, AVX-512 requires avx512f).
bool LevelSupported(KernelLevel level);

/// Best level the host supports (what dispatch picks with no override).
KernelLevel DetectKernelLevel();

/// The level the scoring kernels actually run at: test override >
/// DW_KERNEL_LEVEL (clamped to the host with a logged warning) > CPUID.
/// The env/CPUID resolution is computed once per process and cached; the
/// test override is re-read on every call (it is a test-only atomic).
KernelLevel ActiveKernelLevel();

/// RAII test hook forcing the active level (bypasses env + CPUID but
/// still refuses unsupported levels -- callers must check LevelSupported
/// first). Not thread-safe against concurrent scoring of OTHER levels;
/// tests scope it around single-threaded comparisons.
class ScopedKernelLevelForTesting {
 public:
  explicit ScopedKernelLevelForTesting(KernelLevel level);
  ~ScopedKernelLevelForTesting();
  ScopedKernelLevelForTesting(const ScopedKernelLevelForTesting&) = delete;
  ScopedKernelLevelForTesting& operator=(const ScopedKernelLevelForTesting&) =
      delete;

 private:
  int previous_;
};

/// Per-machine tile sizes for the blocked scoring loop. block_cols is the
/// feature-dimension tile (doubles of model per block); rows stream
/// against a resident block, so it must fit the private cache next to a
/// few row slices.
struct KernelTuning {
  matrix::Index block_cols = 4096;  ///< 32 KB of f64 model per block
  size_t row_chunk = 128;           ///< rows scored per chunk
};

/// The tuning the kernels use, resolved once per process:
/// DW_KERNEL_BLOCK_COLS (clamped to [512, 65536], rounded to a multiple
/// of 8) if set, otherwise auto-picked from a short numa::BandwidthProbe
/// sweep -- the largest candidate block whose streaming bandwidth still
/// looks cache-resident. Block size changes dense summation boundaries,
/// so one process-wide value keeps every level bitwise-comparable.
const KernelTuning& Tuning();

}  // namespace dw::kernels
