#include "kernels/dispatch.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "numa/bandwidth_probe.h"
#include "util/logging.h"

namespace dw::kernels {

const char* ToString(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool ParseKernelLevel(const std::string& name, KernelLevel* out) {
  if (name == "scalar") {
    *out = KernelLevel::kScalar;
    return true;
  }
  if (name == "avx2") {
    *out = KernelLevel::kAvx2;
    return true;
  }
  if (name == "avx512") {
    *out = KernelLevel::kAvx512;
    return true;
  }
  return false;
}

bool LevelSupported(KernelLevel level) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (level) {
    case KernelLevel::kScalar:
      return true;
    case KernelLevel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelLevel::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return level == KernelLevel::kScalar;
#endif
}

KernelLevel DetectKernelLevel() {
  if (LevelSupported(KernelLevel::kAvx512)) return KernelLevel::kAvx512;
  if (LevelSupported(KernelLevel::kAvx2)) return KernelLevel::kAvx2;
  return KernelLevel::kScalar;
}

namespace {

/// -1 = no test override, otherwise the forced KernelLevel value.
std::atomic<int> g_forced_level{-1};

KernelLevel ResolveEnvLevel() {
  const char* env = std::getenv("DW_KERNEL_LEVEL");
  if (env == nullptr || *env == '\0') return DetectKernelLevel();
  const KernelLevel best = DetectKernelLevel();
  KernelLevel requested;
  if (!ParseKernelLevel(env, &requested)) {
    DW_LOG(Warning) << "DW_KERNEL_LEVEL='" << env
                    << "' is not scalar|avx2|avx512; using detected level "
                    << ToString(best);
    return best;
  }
  if (!LevelSupported(requested)) {
    // The explicit line CI's dispatch matrix relies on: a clamped level
    // must never be silently reported as coverage of the requested one.
    DW_LOG(Warning) << "DW_KERNEL_LEVEL=" << ToString(requested)
                    << " is not supported by this CPU; clamping to "
                    << ToString(best);
    return best;
  }
  return requested;
}

}  // namespace

KernelLevel ActiveKernelLevel() {
  const int forced = g_forced_level.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<KernelLevel>(forced);
  static const KernelLevel resolved = ResolveEnvLevel();
  return resolved;
}

ScopedKernelLevelForTesting::ScopedKernelLevelForTesting(KernelLevel level) {
  DW_CHECK(LevelSupported(level))
      << "cannot force unsupported kernel level " << ToString(level);
  previous_ = g_forced_level.exchange(static_cast<int>(level),
                                      std::memory_order_acq_rel);
}

ScopedKernelLevelForTesting::~ScopedKernelLevelForTesting() {
  g_forced_level.store(previous_, std::memory_order_release);
}

namespace {

KernelTuning ResolveTuning() {
  KernelTuning t;
  if (const char* env = std::getenv("DW_KERNEL_BLOCK_COLS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      const long clamped = std::clamp(v, 512L, 65536L);
      t.block_cols = static_cast<matrix::Index>((clamped / 8) * 8);
      return t;
    }
    DW_LOG(Warning) << "ignoring unparseable DW_KERNEL_BLOCK_COLS='" << env
                    << "'; auto-tuning instead";
  }
  // Auto-pick from the STREAM probe: copy bandwidth over an array of each
  // candidate size (single thread, timing brackets the kernel only, so
  // the probe costs well under a millisecond total). While the candidate
  // fits the private caches, measured copy bandwidth is flat at cache
  // speed; it falls off once the working set spills. Take the LARGEST
  // candidate still within 80% of the best observed rate -- bigger blocks
  // amortize more row traffic per model load, so prefer them until the
  // cache says no.
  constexpr matrix::Index kCandidates[] = {2048, 4096, 8192, 16384};
  double best_gbps = 0.0;
  double gbps[4] = {0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < 4; ++i) {
    gbps[i] = numa::MeasureBandwidth(/*threads=*/1,
                                     /*array_doubles=*/kCandidates[i],
                                     /*iters=*/3)
                  .copy_gbps;
    best_gbps = std::max(best_gbps, gbps[i]);
  }
  t.block_cols = kCandidates[0];
  for (int i = 0; i < 4; ++i) {
    if (gbps[i] >= 0.80 * best_gbps) t.block_cols = kCandidates[i];
  }
  DW_LOG(Info) << "kernel tuning: block_cols=" << t.block_cols
               << " (probe copy GB/s " << gbps[0] << "/" << gbps[1] << "/"
               << gbps[2] << "/" << gbps[3] << ")";
  return t;
}

}  // namespace

const KernelTuning& Tuning() {
  static const KernelTuning tuning = ResolveTuning();
  return tuning;
}

}  // namespace dw::kernels
