// The per-ISA scoring kernel table and the blocked batch driver.
//
// One KernelOps table exists per KernelLevel (score_scalar.cc,
// score_avx2.cc, score_avx512.cc -- each SIMD level lives in its own
// translation unit with per-function target attributes, so no other code
// in the binary is ever compiled with AVX enabled and the scalar build
// stays runnable on any x86-64). The driver (ScoreBatchMargins /
// ScoreBatchMarginsInt8 in score_batch.cc) owns row classification and
// cache blocking and calls through the table for the inner loops.
//
// Bitwise contract of the float kernels: every level computes, per row
// and per model block [lo, hi), the SAME eight stride-8 accumulator
// lanes
//
//   lane k = sum of v[j]*m[j] over j in {lo+k, lo+k+8, ...}, j < hi8
//
// folded as (((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7))) + sequential tail,
// with multiply-then-add only (FMA is never emitted: its single rounding
// would diverge from the scalar reference). Sparse rows fold strictly
// left-to-right into the running accumulator at every level; SIMD only
// vectorizes the independent products (via model gather) and prefetches
// upcoming gather targets. Hence PredictBatch output is bitwise
// identical across scalar/avx2/avx512 -- the property the dispatch
// matrix in CI pins per commit.
//
// Int8 kernels share the same geometry over int8 weights widened
// in-register (never materialized as a double copy: the whole point is
// moving 1 byte per weight instead of 8), so they too agree bitwise
// across levels; their accuracy contract against the FLOAT score is the
// quantization bound documented at QuantizeWeights.
#pragma once

#include <cstddef>
#include <cstdint>

#include "matrix/sparse_vector.h"

namespace dw::kernels {

enum class KernelLevel : int;

/// Inner-loop kernel table for one ISA level. `lo`/`hi` bound the model
/// block; dense row values are full vectors indexed absolutely by j.
struct KernelOps {
  /// Returns the 8-lane dense dot of v against m over [lo, hi).
  double (*dense_block_dot)(const double* v, const double* m,
                            matrix::Index lo, matrix::Index hi);
  /// Four dense rows against one model slice; acc4[r] += dot(v4[r], ...).
  /// Per-row arithmetic identical to dense_block_dot; the tile exists so
  /// each model element is loaded once per four rows.
  void (*dense4_block_dot)(const double* const* v4, const double* m,
                           matrix::Index lo, matrix::Index hi, double* acc4);
  /// Continues a sparse row's strict left-to-right fold: starting at
  /// *cursor, folds values[k]*m[indices[k]] into acc while
  /// indices[k] < hi (indices strictly increasing), advances *cursor,
  /// returns the new accumulator.
  double (*sparse_block_acc)(double acc, const matrix::Index* indices,
                             const double* values, size_t* cursor, size_t nnz,
                             const double* m, matrix::Index hi);
  /// Int8 twins: same geometry, weights widened int8 -> double in
  /// register. Accumulators are UNSCALED (sum v*q); the driver applies
  /// the dequantization scale once per row.
  double (*dense_block_dot_i8)(const double* v, const int8_t* m,
                               matrix::Index lo, matrix::Index hi);
  void (*dense4_block_dot_i8)(const double* const* v4, const int8_t* m,
                              matrix::Index lo, matrix::Index hi,
                              double* acc4);
  double (*sparse_block_acc_i8)(double acc, const matrix::Index* indices,
                                const double* values, size_t* cursor,
                                size_t nnz, const int8_t* m,
                                matrix::Index hi);
};

/// Table for an explicit level. CHECK-fails if the host cannot run it.
const KernelOps& OpsFor(KernelLevel level);

/// Table for ActiveKernelLevel() (the hot-path entry).
const KernelOps& ActiveOps();

// Per-level tables, defined in their own TUs. scalar is always safe to
// call; the avx tables must only be called when LevelSupported() says so.
extern const KernelOps kScalarOps;
extern const KernelOps kAvx2Ops;
extern const KernelOps kAvx512Ops;

/// Raw margins a_i . x for `n` rows against a float model, blocked and
/// classified exactly like GlmSpec::PredictBatch (which is now a thin
/// Link() wrapper over this). Uses OpsFor(ActiveKernelLevel()) unless an
/// explicit table is passed.
void ScoreBatchMargins(const double* model, matrix::Index dim,
                       const matrix::SparseVectorView* rows, size_t n,
                       double* out, const KernelOps* ops = nullptr);

/// Raw margins against an int8 model: out[i] = scale * sum_k v_k * q_k.
void ScoreBatchMarginsInt8(const int8_t* qmodel, double scale,
                           matrix::Index dim,
                           const matrix::SparseVectorView* rows, size_t n,
                           double* out, const KernelOps* ops = nullptr);

/// Symmetric int8 quantization of a weight vector: scale = max|w| / 127
/// (1.0 for an all-zero model), q_j = clamp(round(w_j / scale), -127, 127),
/// zero point 0. Returns the scale.
///
/// Error contract (the bound the serving opt-in and the bench gate are
/// held to): |w_j - scale*q_j| <= scale/2 for every weight, so a scored
/// margin obeys
///
///   |margin_int8 - margin_f64| <= (scale/2) * sum_k |x_k|
///
/// up to floating-point reassociation slack. Through a link function the
/// score error is at most the link's Lipschitz constant times that bound
/// (sigmoid: 1/4).
double QuantizeWeights(const double* weights, matrix::Index dim,
                       int8_t* out);

}  // namespace dw::kernels
