// AVX-512 scoring kernels. target("avx512f") on every function keeps the
// EVEX code confined to this TU; the dispatcher guards every call with
// CPUID (avx512f).
//
// Bitwise contract: one 512-bit accumulator per row holds the scalar
// reference's eight stride-8 lanes directly. The fold adds the upper
// 256-bit half onto the lower (l_k + l_{k+4} -- the scalar fold's first
// pairing) and finishes with the same (s0+s1)+(s2+s3) + tail. Multiply
// and add stay separate instructions (-ffp-contract=off, no FMA
// intrinsics): AVX-512F *would* otherwise let the compiler contract them
// into vfmadd and silently change the rounding.
#include "kernels/score_kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <cstring>

#define DW_TARGET_AVX512 __attribute__((target("avx512f")))

namespace dw::kernels {

using matrix::Index;

namespace {

DW_TARGET_AVX512 inline double FoldLanes512(__m512d acc) {
  const __m256d low = _mm512_castpd512_pd256(acc);
  const __m256d high = _mm512_extractf64x4_pd(acc, 1);
  alignas(32) double s[4];
  _mm256_store_pd(s, _mm256_add_pd(low, high));
  return (s[0] + s[1]) + (s[2] + s[3]);
}

/// Widens 8 consecutive int8 weights to doubles in-register (exact).
DW_TARGET_AVX512 inline __m512d WidenI8x8(const int8_t* q) {
  long long packed;
  std::memcpy(&packed, q, sizeof(packed));
  return _mm512_cvtepi32_pd(
      _mm256_cvtepi8_epi32(_mm_cvtsi64_si128(packed)));
}

DW_TARGET_AVX512 double DenseBlockDotAvx512(const double* v, const double* m,
                                            Index lo, Index hi) {
  __m512d acc = _mm512_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(v + j), _mm512_loadu_pd(m + j)));
  }
  const double folded = FoldLanes512(acc);
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * m[j];
  return folded + tail;
}

/// Four rows per tile sharing one 512-bit model load per iteration.
DW_TARGET_AVX512 void Dense4BlockDotAvx512(const double* const* v4,
                                           const double* m, Index lo,
                                           Index hi, double* acc4) {
  __m512d a0 = _mm512_setzero_pd();
  __m512d a1 = _mm512_setzero_pd();
  __m512d a2 = _mm512_setzero_pd();
  __m512d a3 = _mm512_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    const __m512d mv = _mm512_loadu_pd(m + j);
    a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_loadu_pd(v4[0] + j), mv));
    a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_loadu_pd(v4[1] + j), mv));
    a2 = _mm512_add_pd(a2, _mm512_mul_pd(_mm512_loadu_pd(v4[2] + j), mv));
    a3 = _mm512_add_pd(a3, _mm512_mul_pd(_mm512_loadu_pd(v4[3] + j), mv));
  }
  const __m512d acc[4] = {a0, a1, a2, a3};
  for (int r = 0; r < 4; ++r) {
    const double folded = FoldLanes512(acc[r]);
    double tail = 0.0;
    for (Index t = j; t < hi; ++t) tail += v4[r][t] * m[t];
    acc4[r] += folded + tail;
  }
}

DW_TARGET_AVX512 double SparseBlockAccAvx512(double acc, const Index* indices,
                                             const double* values,
                                             size_t* cursor, size_t nnz,
                                             const double* m, Index hi) {
  size_t k = *cursor;
  // 8-wide gather step when the next 8 indices all land in this block
  // (strictly increasing indices: checking the last suffices). Products
  // are vectorized; the eight adds stay strictly left-to-right, so the
  // fold matches the scalar reference bitwise. The prefetches cover the
  // NEXT iteration's gather targets -- random model lines the hardware
  // prefetcher cannot predict.
  while (k + 8 <= nnz && indices[k + 7] < hi) {
    if (k + 16 <= nnz) {
      _mm_prefetch(reinterpret_cast<const char*>(m + indices[k + 8]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(m + indices[k + 11]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(m + indices[k + 15]),
                   _MM_HINT_T0);
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(indices + k));
    // Masked form with an all-ones mask: the plain gather's undefined
    // source value trips GCC's -Wmaybe-uninitialized.
    const __m512d gathered = _mm512_mask_i32gather_pd(
        _mm512_setzero_pd(), static_cast<__mmask8>(0xff), idx, m, 8);
    alignas(64) double prod[8];
    _mm512_store_pd(prod, _mm512_mul_pd(_mm512_loadu_pd(values + k),
                                        gathered));
    for (int t = 0; t < 8; ++t) acc += prod[t];
    k += 8;
  }
  while (k < nnz && indices[k] < hi) {
    acc += values[k] * m[indices[k]];
    ++k;
  }
  *cursor = k;
  return acc;
}

DW_TARGET_AVX512 double DenseBlockDotI8Avx512(const double* v,
                                              const int8_t* m, Index lo,
                                              Index hi) {
  __m512d acc = _mm512_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(v + j), WidenI8x8(m + j)));
  }
  const double folded = FoldLanes512(acc);
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * static_cast<double>(m[j]);
  return folded + tail;
}

DW_TARGET_AVX512 void Dense4BlockDotI8Avx512(const double* const* v4,
                                             const int8_t* m, Index lo,
                                             Index hi, double* acc4) {
  __m512d a0 = _mm512_setzero_pd();
  __m512d a1 = _mm512_setzero_pd();
  __m512d a2 = _mm512_setzero_pd();
  __m512d a3 = _mm512_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    // One 8-byte load + widen per iteration, shared by all four rows.
    const __m512d mv = WidenI8x8(m + j);
    a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_loadu_pd(v4[0] + j), mv));
    a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_loadu_pd(v4[1] + j), mv));
    a2 = _mm512_add_pd(a2, _mm512_mul_pd(_mm512_loadu_pd(v4[2] + j), mv));
    a3 = _mm512_add_pd(a3, _mm512_mul_pd(_mm512_loadu_pd(v4[3] + j), mv));
  }
  const __m512d acc[4] = {a0, a1, a2, a3};
  for (int r = 0; r < 4; ++r) {
    const double folded = FoldLanes512(acc[r]);
    double tail = 0.0;
    for (Index t = j; t < hi; ++t) {
      tail += v4[r][t] * static_cast<double>(m[t]);
    }
    acc4[r] += folded + tail;
  }
}

// No byte gather exists; scalar fold with prefetch of upcoming targets.
double SparseBlockAccI8Avx512(double acc, const Index* indices,
                              const double* values, size_t* cursor,
                              size_t nnz, const int8_t* m, Index hi) {
  size_t k = *cursor;
  while (k < nnz && indices[k] < hi) {
    if (k + 8 < nnz) {
      __builtin_prefetch(m + indices[k + 8], 0, 3);
    }
    acc += values[k] * static_cast<double>(m[indices[k]]);
    ++k;
  }
  *cursor = k;
  return acc;
}

}  // namespace

const KernelOps kAvx512Ops = {
    DenseBlockDotAvx512,   Dense4BlockDotAvx512,   SparseBlockAccAvx512,
    DenseBlockDotI8Avx512, Dense4BlockDotI8Avx512, SparseBlockAccI8Avx512,
};

}  // namespace dw::kernels

#else  // non-x86 or non-GNU toolchain

namespace dw::kernels {

// Unreachable: LevelSupported(kAvx512) is false here and OpsFor() CHECKs.
const KernelOps kAvx512Ops = {};

}  // namespace dw::kernels

#endif
