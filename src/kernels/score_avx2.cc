// AVX2 scoring kernels. Every function carries target("avx2") so ONLY
// this translation unit emits VEX-256 code -- the rest of the binary
// stays plain x86-64 and the dispatcher guards every call with CPUID.
//
// Bitwise contract: each 256-bit accumulator pair maps vector lanes onto
// the scalar reference's eight stride-8 lanes (accA = lanes 0-3, accB =
// lanes 4-7). accA+accB yields exactly the scalar fold's first pairing
// (l_k + l_{k+4}); multiply and add stay separate instructions
// (-ffp-contract=off, no FMA intrinsics), so every intermediate rounds
// exactly like the scalar TU and the results are bit-identical.
#include "kernels/score_kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <cstring>

#define DW_TARGET_AVX2 __attribute__((target("avx2")))

namespace dw::kernels {

using matrix::Index;

namespace {

/// (s0+s1)+(s2+s3) over s = accA + accB: completes the scalar lane fold
/// (((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7))).
DW_TARGET_AVX2 inline double FoldLanes(__m256d accA, __m256d accB) {
  alignas(32) double s[4];
  _mm256_store_pd(s, _mm256_add_pd(accA, accB));
  return (s[0] + s[1]) + (s[2] + s[3]);
}

/// Widens 4 consecutive int8 weights to doubles in-register (exact).
DW_TARGET_AVX2 inline __m256d WidenI8x4(const int8_t* q) {
  int packed;
  std::memcpy(&packed, q, sizeof(packed));
  return _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(_mm_cvtsi32_si128(packed)));
}

DW_TARGET_AVX2 double DenseBlockDotAvx2(const double* v, const double* m,
                                        Index lo, Index hi) {
  __m256d accA = _mm256_setzero_pd();
  __m256d accB = _mm256_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    accA = _mm256_add_pd(
        accA, _mm256_mul_pd(_mm256_loadu_pd(v + j), _mm256_loadu_pd(m + j)));
    accB = _mm256_add_pd(accB, _mm256_mul_pd(_mm256_loadu_pd(v + j + 4),
                                             _mm256_loadu_pd(m + j + 4)));
  }
  const double folded = FoldLanes(accA, accB);
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * m[j];
  return folded + tail;
}

/// Four rows per tile: the two model loads per iteration are shared by
/// all four rows (the 4x model-traffic cut), eight live accumulators.
DW_TARGET_AVX2 void Dense4BlockDotAvx2(const double* const* v4,
                                       const double* m, Index lo, Index hi,
                                       double* acc4) {
  __m256d a0 = _mm256_setzero_pd(), b0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), b2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd(), b3 = _mm256_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    const __m256d mA = _mm256_loadu_pd(m + j);
    const __m256d mB = _mm256_loadu_pd(m + j + 4);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(v4[0] + j), mA));
    b0 = _mm256_add_pd(b0, _mm256_mul_pd(_mm256_loadu_pd(v4[0] + j + 4), mB));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(v4[1] + j), mA));
    b1 = _mm256_add_pd(b1, _mm256_mul_pd(_mm256_loadu_pd(v4[1] + j + 4), mB));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(v4[2] + j), mA));
    b2 = _mm256_add_pd(b2, _mm256_mul_pd(_mm256_loadu_pd(v4[2] + j + 4), mB));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(v4[3] + j), mA));
    b3 = _mm256_add_pd(b3, _mm256_mul_pd(_mm256_loadu_pd(v4[3] + j + 4), mB));
  }
  const __m256d accA[4] = {a0, a1, a2, a3};
  const __m256d accB[4] = {b0, b1, b2, b3};
  for (int r = 0; r < 4; ++r) {
    const double folded = FoldLanes(accA[r], accB[r]);
    double tail = 0.0;
    for (Index t = j; t < hi; ++t) tail += v4[r][t] * m[t];
    acc4[r] += folded + tail;
  }
}

DW_TARGET_AVX2 double SparseBlockAccAvx2(double acc, const Index* indices,
                                         const double* values, size_t* cursor,
                                         size_t nnz, const double* m,
                                         Index hi) {
  size_t k = *cursor;
  // Vector step whenever the next 4 indices all land in this block
  // (indices strictly increase, so checking the last one suffices). The
  // gather vectorizes only the independent products; the four adds stay
  // strictly left-to-right, preserving the scalar fold bitwise.
  while (k + 4 <= nnz && indices[k + 3] < hi) {
    if (k + 8 <= nnz) {
      _mm_prefetch(reinterpret_cast<const char*>(m + indices[k + 4]),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(m + indices[k + 7]),
                   _MM_HINT_T0);
    }
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(indices + k));
    // Masked form with an all-ones mask: the plain gather's
    // _mm256_undefined_pd() source trips GCC's -Wmaybe-uninitialized.
    const __m256d ones_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(int64_t{-1}));
    const __m256d gathered =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), m, idx, ones_mask, 8);
    alignas(32) double prod[4];
    _mm256_store_pd(prod, _mm256_mul_pd(_mm256_loadu_pd(values + k),
                                        gathered));
    acc += prod[0];
    acc += prod[1];
    acc += prod[2];
    acc += prod[3];
    k += 4;
  }
  while (k < nnz && indices[k] < hi) {
    acc += values[k] * m[indices[k]];
    ++k;
  }
  *cursor = k;
  return acc;
}

DW_TARGET_AVX2 double DenseBlockDotI8Avx2(const double* v, const int8_t* m,
                                          Index lo, Index hi) {
  __m256d accA = _mm256_setzero_pd();
  __m256d accB = _mm256_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    accA = _mm256_add_pd(
        accA, _mm256_mul_pd(_mm256_loadu_pd(v + j), WidenI8x4(m + j)));
    accB = _mm256_add_pd(
        accB, _mm256_mul_pd(_mm256_loadu_pd(v + j + 4), WidenI8x4(m + j + 4)));
  }
  const double folded = FoldLanes(accA, accB);
  double tail = 0.0;
  for (; j < hi; ++j) tail += v[j] * static_cast<double>(m[j]);
  return folded + tail;
}

DW_TARGET_AVX2 void Dense4BlockDotI8Avx2(const double* const* v4,
                                         const int8_t* m, Index lo, Index hi,
                                         double* acc4) {
  __m256d a0 = _mm256_setzero_pd(), b0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), b2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd(), b3 = _mm256_setzero_pd();
  Index j = lo;
  for (; j + 8 <= hi; j += 8) {
    // One byte-load + widen per 4 weights, shared by all four rows: the
    // int8 replica moves 1/8 the bytes of the f64 one.
    const __m256d mA = WidenI8x4(m + j);
    const __m256d mB = WidenI8x4(m + j + 4);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(v4[0] + j), mA));
    b0 = _mm256_add_pd(b0, _mm256_mul_pd(_mm256_loadu_pd(v4[0] + j + 4), mB));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(v4[1] + j), mA));
    b1 = _mm256_add_pd(b1, _mm256_mul_pd(_mm256_loadu_pd(v4[1] + j + 4), mB));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(v4[2] + j), mA));
    b2 = _mm256_add_pd(b2, _mm256_mul_pd(_mm256_loadu_pd(v4[2] + j + 4), mB));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(v4[3] + j), mA));
    b3 = _mm256_add_pd(b3, _mm256_mul_pd(_mm256_loadu_pd(v4[3] + j + 4), mB));
  }
  const __m256d accA[4] = {a0, a1, a2, a3};
  const __m256d accB[4] = {b0, b1, b2, b3};
  for (int r = 0; r < 4; ++r) {
    const double folded = FoldLanes(accA[r], accB[r]);
    double tail = 0.0;
    for (Index t = j; t < hi; ++t) {
      tail += v4[r][t] * static_cast<double>(m[t]);
    }
    acc4[r] += folded + tail;
  }
}

// No byte gather exists, so the int8 sparse fold stays scalar at every
// level (the model bytes it moves are already 1/8 of the f64 path's).
double SparseBlockAccI8Avx2(double acc, const Index* indices,
                            const double* values, size_t* cursor, size_t nnz,
                            const int8_t* m, Index hi) {
  size_t k = *cursor;
  while (k < nnz && indices[k] < hi) {
    acc += values[k] * static_cast<double>(m[indices[k]]);
    ++k;
  }
  *cursor = k;
  return acc;
}

}  // namespace

const KernelOps kAvx2Ops = {
    DenseBlockDotAvx2,   Dense4BlockDotAvx2,   SparseBlockAccAvx2,
    DenseBlockDotI8Avx2, Dense4BlockDotI8Avx2, SparseBlockAccI8Avx2,
};

}  // namespace dw::kernels

#else  // non-x86 or non-GNU toolchain

namespace dw::kernels {

// Unreachable: LevelSupported(kAvx2) is false here and OpsFor() CHECKs.
// The empty table only satisfies the linker.
const KernelOps kAvx2Ops = {};

}  // namespace dw::kernels

#endif
