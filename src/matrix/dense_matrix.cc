#include "matrix/dense_matrix.h"

namespace dw::matrix {

DenseMatrix DenseMatrix::WithLayout(Layout layout) const {
  DenseMatrix out(rows_, cols_, layout);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) {
      out.At(i, j) = At(i, j);
    }
  }
  return out;
}

}  // namespace dw::matrix
