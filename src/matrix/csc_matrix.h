// Compressed Sparse Column storage — the layout behind the column-wise and
// column-to-row access methods. For column-to-row (paper Sec. 2.1), column
// j's stored row set is exactly S(j) = {i : a_ij != 0}.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr_matrix.h"
#include "matrix/sparse_vector.h"

namespace dw::matrix {

/// Immutable CSC matrix (double values, 32-bit row indexes).
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Transposes a CSR matrix into CSC form (counting sort; O(nnz)).
  static CscMatrix FromCsr(const CsrMatrix& csr);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Entries in column j.
  size_t ColNnz(Index j) const {
    return static_cast<size_t>(col_ptr_[j + 1] - col_ptr_[j]);
  }

  /// View over column j: indices are the row ids S(j), values are a_ij.
  SparseVectorView Col(Index j) const {
    const int64_t begin = col_ptr_[j];
    return SparseVectorView{row_idx_.data() + begin, values_.data() + begin,
                            static_cast<size_t>(col_ptr_[j + 1] - begin)};
  }

  const std::vector<int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Bytes one full scan of the matrix reads (values + indexes).
  int64_t ScanBytes() const {
    return nnz() * static_cast<int64_t>(sizeof(double) + sizeof(Index));
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<int64_t> col_ptr_;  // size cols_+1
  std::vector<Index> row_idx_;    // size nnz
  std::vector<double> values_;    // size nnz
};

}  // namespace dw::matrix
