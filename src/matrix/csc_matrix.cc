#include "matrix/csc_matrix.h"

namespace dw::matrix {

CscMatrix CscMatrix::FromCsr(const CsrMatrix& csr) {
  CscMatrix m;
  m.rows_ = csr.rows();
  m.cols_ = csr.cols();
  const int64_t nnz = csr.nnz();
  m.col_ptr_.assign(csr.cols() + 1, 0);
  m.row_idx_.resize(nnz);
  m.values_.resize(nnz);

  // Count entries per column.
  for (int64_t k = 0; k < nnz; ++k) {
    ++m.col_ptr_[csr.col_idx()[k] + 1];
  }
  for (Index j = 0; j < csr.cols(); ++j) {
    m.col_ptr_[j + 1] += m.col_ptr_[j];
  }
  // Scatter. `cursor` tracks the next free slot per column.
  std::vector<int64_t> cursor(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
  for (Index i = 0; i < csr.rows(); ++i) {
    const int64_t begin = csr.row_ptr()[i];
    const int64_t end = csr.row_ptr()[i + 1];
    for (int64_t k = begin; k < end; ++k) {
      const Index j = csr.col_idx()[k];
      const int64_t slot = cursor[j]++;
      m.row_idx_[slot] = i;
      m.values_[slot] = csr.values()[k];
    }
  }
  return m;
}

}  // namespace dw::matrix
