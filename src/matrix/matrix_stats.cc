#include "matrix/matrix_stats.h"

#include <algorithm>

namespace dw::matrix {

double MatrixStats::CostRatio(double alpha) const {
  const double denom =
      static_cast<double>(sum_ni_sq) + alpha * static_cast<double>(cols);
  if (denom <= 0.0) return 0.0;
  return (1.0 + alpha) * static_cast<double>(sum_ni) / denom;
}

MatrixStats ComputeStats(const CsrMatrix& m) {
  MatrixStats s;
  s.rows = m.rows();
  s.cols = m.cols();
  s.nnz = m.nnz();
  s.sum_ni = m.nnz();
  for (Index i = 0; i < m.rows(); ++i) {
    const int64_t ni = static_cast<int64_t>(m.RowNnz(i));
    s.sum_ni_sq += ni * ni;
    s.max_row_nnz = std::max(s.max_row_nnz, static_cast<double>(ni));
  }
  if (m.rows() > 0) {
    s.avg_row_nnz =
        static_cast<double>(m.nnz()) / static_cast<double>(m.rows());
  }
  if (m.rows() > 0 && m.cols() > 0) {
    s.sparsity = static_cast<double>(m.nnz()) /
                 (static_cast<double>(m.rows()) * m.cols());
  }
  return s;
}

}  // namespace dw::matrix
