// Compressed Sparse Row storage — the layout behind the row-wise access
// method (paper Sec. 2.1/3.2: "when we store the data as sparse vectors/
// matrices in CSR format, the number of reads in a row-wise access method
// is sum_i n_i").
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/sparse_vector.h"
#include "util/logging.h"
#include "util/status.h"

namespace dw::matrix {

/// One (row, col, value) entry used when building matrices.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix (double values, 32-bit column indexes).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets. Duplicate (row, col) entries are summed.
  static StatusOr<CsrMatrix> FromTriplets(Index rows, Index cols,
                                          std::vector<Triplet> triplets);

  /// Builds directly from CSR arrays (validated).
  static StatusOr<CsrMatrix> FromCsrArrays(Index rows, Index cols,
                                           std::vector<int64_t> row_ptr,
                                           std::vector<Index> col_idx,
                                           std::vector<double> values);

  /// Number of rows (N: examples).
  Index rows() const { return rows_; }
  /// Number of columns (d: model dimension).
  Index cols() const { return cols_; }
  /// Total stored entries.
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Entries in row i.
  size_t RowNnz(Index i) const {
    return static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i]);
  }

  /// View over row i.
  SparseVectorView Row(Index i) const {
    const int64_t begin = row_ptr_[i];
    return SparseVectorView{col_idx_.data() + begin, values_.data() + begin,
                            static_cast<size_t>(row_ptr_[i + 1] - begin)};
  }

  /// Raw arrays (for converters and tests).
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Bytes one full scan of the matrix reads (values + indexes).
  int64_t ScanBytes() const {
    return nnz() * static_cast<int64_t>(sizeof(double) + sizeof(Index));
  }

  /// Average bytes read when scanning a single row.
  double BytesPerRow() const {
    return rows_ == 0 ? 0.0
                      : static_cast<double>(ScanBytes()) /
                            static_cast<double>(rows_);
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<int64_t> row_ptr_;  // size rows_+1
  std::vector<Index> col_idx_;    // size nnz
  std::vector<double> values_;    // size nnz
};

}  // namespace dw::matrix
