#include "matrix/csr_matrix.h"

#include <algorithm>

namespace dw::matrix {

StatusOr<CsrMatrix> CsrMatrix::FromTriplets(Index rows, Index cols,
                                            std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      return Status::InvalidArgument("triplet out of bounds");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  for (size_t k = 0; k < triplets.size();) {
    const Index r = triplets[k].row;
    const Index c = triplets[k].col;
    double v = 0.0;
    while (k < triplets.size() && triplets[k].row == r &&
           triplets[k].col == c) {
      v += triplets[k].value;
      ++k;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.values_.size());
  }
  // Fill gaps for empty rows: row_ptr must be non-decreasing.
  for (Index r = 0; r < rows; ++r) {
    m.row_ptr_[r + 1] = std::max(m.row_ptr_[r + 1], m.row_ptr_[r]);
  }
  return m;
}

StatusOr<CsrMatrix> CsrMatrix::FromCsrArrays(Index rows, Index cols,
                                             std::vector<int64_t> row_ptr,
                                             std::vector<Index> col_idx,
                                             std::vector<double> values) {
  if (row_ptr.size() != static_cast<size_t>(rows) + 1) {
    return Status::InvalidArgument("row_ptr size must be rows+1");
  }
  if (col_idx.size() != values.size()) {
    return Status::InvalidArgument("col_idx/values size mismatch");
  }
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<int64_t>(values.size())) {
    return Status::InvalidArgument("row_ptr endpoints invalid");
  }
  for (size_t i = 1; i < row_ptr.size(); ++i) {
    if (row_ptr[i] < row_ptr[i - 1]) {
      return Status::InvalidArgument("row_ptr must be non-decreasing");
    }
  }
  for (Index c : col_idx) {
    if (c >= cols) return Status::InvalidArgument("column index out of range");
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

}  // namespace dw::matrix
