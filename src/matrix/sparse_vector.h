// Non-owning sparse vector view plus the kernels shared by every model:
// dot products and axpy against a dense model vector.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dw::matrix {

/// Index type for rows/columns. 32-bit: the scaled datasets stay < 2^31.
using Index = uint32_t;

/// A view over one sparse row/column: parallel (index, value) arrays.
///
/// A null `indices` with nonzero nnz declares an EXPLICITLY DENSE row:
/// the identity index pattern 0..nnz-1 (entry k sits at coordinate k).
/// Dense serving requests use this form -- it halves the payload and
/// lets the scoring kernels skip index loads and gathers entirely.
struct SparseVectorView {
  const Index* indices = nullptr;
  const double* values = nullptr;
  size_t nnz = 0;

  /// True if this view is in the explicit dense (identity) form.
  bool IsDense() const { return indices == nullptr && nnz > 0; }

  /// Dot product with a dense vector x (x indexed by `indices`).
  double Dot(const double* x) const {
    double acc = 0.0;
    if (IsDense()) {
      for (size_t k = 0; k < nnz; ++k) acc += values[k] * x[k];
    } else {
      for (size_t k = 0; k < nnz; ++k) acc += values[k] * x[indices[k]];
    }
    return acc;
  }

  /// x[indices[k]] += scale * values[k] for all k (sparse update).
  void Axpy(double scale, double* x) const {
    if (IsDense()) {
      for (size_t k = 0; k < nnz; ++k) x[k] += scale * values[k];
    } else {
      for (size_t k = 0; k < nnz; ++k) x[indices[k]] += scale * values[k];
    }
  }

  /// Squared L2 norm of the stored values.
  double SquaredNorm() const {
    double acc = 0.0;
    for (size_t k = 0; k < nnz; ++k) acc += values[k] * values[k];
    return acc;
  }
};

/// Dense row view with the same interface (used by dense datasets so the
/// model code is storage-agnostic).
struct DenseVectorView {
  const double* values = nullptr;
  size_t dim = 0;

  double Dot(const double* x) const {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) acc += values[k] * x[k];
    return acc;
  }

  void Axpy(double scale, double* x) const {
    for (size_t k = 0; k < dim; ++k) x[k] += scale * values[k];
  }

  double SquaredNorm() const {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) acc += values[k] * values[k];
    return acc;
  }
};

}  // namespace dw::matrix
