// Dense matrix with selectable element order. Appendix A of the paper
// shows that storing the matrix in an order inconsistent with the access
// method costs up to 9x in L1 misses, so the storage order is an explicit
// part of this type and the engine always allocates it to match the plan.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/sparse_vector.h"
#include "util/logging.h"

namespace dw::matrix {

/// Element order of a dense matrix.
enum class Layout { kRowMajor, kColMajor };

/// Dense N x d matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Allocates a zeroed rows x cols matrix with the given layout.
  DenseMatrix(Index rows, Index cols, Layout layout)
      : rows_(rows), cols_(cols), layout_(layout) {
    data_.assign(static_cast<size_t>(rows) * cols, 0.0);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Layout layout() const { return layout_; }

  /// Element access (layout-aware).
  double& At(Index i, Index j) { return data_[Offset(i, j)]; }
  double At(Index i, Index j) const { return data_[Offset(i, j)]; }

  /// Contiguous view over row i. Requires kRowMajor.
  DenseVectorView Row(Index i) const {
    DW_CHECK(layout_ == Layout::kRowMajor);
    return DenseVectorView{data_.data() + static_cast<size_t>(i) * cols_,
                           cols_};
  }

  /// Contiguous view over column j. Requires kColMajor.
  DenseVectorView Col(Index j) const {
    DW_CHECK(layout_ == Layout::kColMajor);
    return DenseVectorView{data_.data() + static_cast<size_t>(j) * rows_,
                           rows_};
  }

  /// Copy with the opposite layout (used by the storage-order ablation).
  DenseMatrix WithLayout(Layout layout) const;

  /// Bytes one full scan reads.
  int64_t ScanBytes() const {
    return static_cast<int64_t>(data_.size()) *
           static_cast<int64_t>(sizeof(double));
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t Offset(Index i, Index j) const {
    DW_CHECK_LT(i, rows_);
    DW_CHECK_LT(j, cols_);
    return layout_ == Layout::kRowMajor
               ? static_cast<size_t>(i) * cols_ + j
               : static_cast<size_t>(j) * rows_ + i;
  }

  Index rows_ = 0;
  Index cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  std::vector<double> data_;
};

}  // namespace dw::matrix
