// Dataset shape statistics feeding the cost model of paper Fig. 6/7(b):
// sum_i n_i (row-wise reads), sum_i n_i^2 (column-to-row reads), d*N
// (dense writes), and the derived row/column cost ratio.
#pragma once

#include <cstdint>

#include "matrix/csr_matrix.h"

namespace dw::matrix {

/// Shape statistics of a data matrix.
struct MatrixStats {
  Index rows = 0;
  Index cols = 0;
  int64_t nnz = 0;
  int64_t sum_ni = 0;        ///< = nnz; reads of one row-wise epoch
  int64_t sum_ni_sq = 0;     ///< reads of one column-to-row epoch
  double avg_row_nnz = 0.0;
  double max_row_nnz = 0.0;
  double sparsity = 0.0;     ///< nnz / (rows*cols)

  /// The paper's Fig. 7(b) "cost ratio":
  ///   (1+alpha) * sum_i n_i / (sum_i n_i^2 + alpha * d).
  /// Values > 1 favor the column-wise method.
  double CostRatio(double alpha) const;
};

/// Computes statistics with one scan.
MatrixStats ComputeStats(const CsrMatrix& m);

}  // namespace dw::matrix
