// Matrix (de)serialization: a LIBSVM-style text reader/writer for
// interoperability and a compact binary format for fast reloads. The
// examples use these so users can run DimmWitted on their own data.
#pragma once

#include <string>
#include <vector>

#include "matrix/csr_matrix.h"
#include "util/status.h"

namespace dw::matrix {

/// A labeled sparse dataset: matrix A plus per-row targets b.
struct LabeledData {
  CsrMatrix a;
  std::vector<double> b;
};

/// Writes "label idx:val idx:val ..." lines (1-based indexes, LIBSVM
/// convention).
Status WriteLibsvm(const std::string& path, const LabeledData& data);

/// Reads a LIBSVM file. `expected_cols` = 0 infers d from the max index.
StatusOr<LabeledData> ReadLibsvm(const std::string& path,
                                 Index expected_cols = 0);

/// Writes the compact binary format (magic + dims + CSR arrays + labels).
Status WriteBinary(const std::string& path, const LabeledData& data);

/// Reads the compact binary format.
StatusOr<LabeledData> ReadBinary(const std::string& path);

}  // namespace dw::matrix
