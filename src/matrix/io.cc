#include "matrix/io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dw::matrix {

namespace {

constexpr uint64_t kBinaryMagic = 0x44574d4154313000ULL;  // "DWMAT10\0"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteRaw(std::FILE* f, const T* data, size_t count) {
  return std::fwrite(data, sizeof(T), count, f) == count;
}

template <typename T>
bool ReadRaw(std::FILE* f, T* data, size_t count) {
  return std::fread(data, sizeof(T), count, f) == count;
}

}  // namespace

Status WriteLibsvm(const std::string& path, const LabeledData& data) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  for (Index i = 0; i < data.a.rows(); ++i) {
    const double label = i < data.b.size() ? data.b[i] : 0.0;
    if (std::fprintf(f.get(), "%.17g", label) < 0) {
      return Status::Internal("write failed: " + path);
    }
    const SparseVectorView row = data.a.Row(i);
    for (size_t k = 0; k < row.nnz; ++k) {
      std::fprintf(f.get(), " %u:%.17g", row.indices[k] + 1, row.values[k]);
    }
    std::fprintf(f.get(), "\n");
  }
  return Status::OK();
}

StatusOr<LabeledData> ReadLibsvm(const std::string& path,
                                 Index expected_cols) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  std::vector<Triplet> triplets;
  std::vector<double> labels;
  Index max_col = 0;

  char line[1 << 16];
  Index row = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    char* cursor = line;
    char* end = nullptr;
    const double label = std::strtod(cursor, &end);
    if (end == cursor) continue;  // blank line
    cursor = end;
    labels.push_back(label);
    for (;;) {
      while (*cursor == ' ' || *cursor == '\t') ++cursor;
      if (*cursor == '\n' || *cursor == '\0' || *cursor == '\r') break;
      char* colon = std::strchr(cursor, ':');
      if (colon == nullptr) break;
      const long idx = std::strtol(cursor, &end, 10);
      if (end == cursor || idx < 1) {
        return Status::InvalidArgument("bad index in " + path);
      }
      cursor = colon + 1;
      const double value = std::strtod(cursor, &end);
      if (end == cursor) {
        return Status::InvalidArgument("bad value in " + path);
      }
      cursor = end;
      const Index col = static_cast<Index>(idx - 1);
      max_col = std::max(max_col, col + 1);
      triplets.push_back(Triplet{row, col, value});
    }
    ++row;
  }

  const Index cols = expected_cols > 0 ? expected_cols : max_col;
  if (max_col > cols) {
    return Status::InvalidArgument("feature index exceeds expected_cols");
  }
  auto m = CsrMatrix::FromTriplets(row, cols, std::move(triplets));
  if (!m.ok()) return m.status();
  return LabeledData{std::move(m).value(), std::move(labels)};
}

Status WriteBinary(const std::string& path, const LabeledData& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const uint64_t magic = kBinaryMagic;
  const uint64_t rows = data.a.rows();
  const uint64_t cols = data.a.cols();
  const uint64_t nnz = static_cast<uint64_t>(data.a.nnz());
  const uint64_t nlabels = data.b.size();
  bool ok = WriteRaw(f.get(), &magic, 1) && WriteRaw(f.get(), &rows, 1) &&
            WriteRaw(f.get(), &cols, 1) && WriteRaw(f.get(), &nnz, 1) &&
            WriteRaw(f.get(), &nlabels, 1) &&
            WriteRaw(f.get(), data.a.row_ptr().data(),
                     data.a.row_ptr().size()) &&
            WriteRaw(f.get(), data.a.col_idx().data(),
                     data.a.col_idx().size()) &&
            WriteRaw(f.get(), data.a.values().data(),
                     data.a.values().size()) &&
            WriteRaw(f.get(), data.b.data(), data.b.size());
  if (!ok) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<LabeledData> ReadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  uint64_t magic = 0, rows = 0, cols = 0, nnz = 0, nlabels = 0;
  if (!ReadRaw(f.get(), &magic, 1) || magic != kBinaryMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!ReadRaw(f.get(), &rows, 1) || !ReadRaw(f.get(), &cols, 1) ||
      !ReadRaw(f.get(), &nnz, 1) || !ReadRaw(f.get(), &nlabels, 1)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  std::vector<int64_t> row_ptr(rows + 1);
  std::vector<Index> col_idx(nnz);
  std::vector<double> values(nnz);
  std::vector<double> labels(nlabels);
  if (!ReadRaw(f.get(), row_ptr.data(), row_ptr.size()) ||
      !ReadRaw(f.get(), col_idx.data(), col_idx.size()) ||
      !ReadRaw(f.get(), values.data(), values.size()) ||
      !ReadRaw(f.get(), labels.data(), labels.size())) {
    return Status::InvalidArgument("truncated body in " + path);
  }
  auto m = CsrMatrix::FromCsrArrays(static_cast<Index>(rows),
                                    static_cast<Index>(cols),
                                    std::move(row_ptr), std::move(col_idx),
                                    std::move(values));
  if (!m.ok()) return m.status();
  return LabeledData{std::move(m).value(), std::move(labels)};
}

}  // namespace dw::matrix
