// Factor graphs over binary variables (paper Sec. 5.1 / D.1). A factor
// graph is a bipartite graph of variables and factors; sampling one
// variable requires fetching all factors that contain it and the current
// assignments of the variables those factors touch -- exactly the
// column-to-row access method (Fig. 23(b): rows are factors, columns are
// variables).
#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace dw::factor {

using VarId = uint32_t;
using FactorId = uint32_t;

/// Factor families. Energies are log-potentials: P(x) ~ exp(sum_f E_f(x)).
enum class FactorKind : uint8_t {
  kUnary,  ///< E = w * x_v                      (arity 1)
  kIsing,  ///< E = w * [x_u == x_v]             (arity 2)
  kAnd,    ///< E = w * (x_a AND x_b AND ...)    (arity >= 2)
};

/// One factor definition used while building the graph.
struct FactorDef {
  FactorKind kind = FactorKind::kUnary;
  double weight = 0.0;
  std::vector<VarId> vars;
};

/// Immutable bipartite structure with both directions materialized:
/// factor -> vars (CSR: the "rows") and var -> factors (CSC: the access
/// path for Gibbs).
class FactorGraph {
 public:
  /// Builds and validates the bipartite indexes.
  static StatusOr<FactorGraph> Build(VarId num_vars,
                                     std::vector<FactorDef> factors);

  VarId num_vars() const { return num_vars_; }
  FactorId num_factors() const { return static_cast<FactorId>(kind_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(f2v_idx_.size()); }

  FactorKind kind(FactorId f) const { return kind_[f]; }
  double weight(FactorId f) const { return weight_[f]; }

  /// Variables of factor f (begin pointer + count).
  const VarId* FactorVars(FactorId f, size_t* count) const {
    *count = static_cast<size_t>(f2v_ptr_[f + 1] - f2v_ptr_[f]);
    return f2v_idx_.data() + f2v_ptr_[f];
  }

  /// Factors incident to variable v.
  const FactorId* VarFactors(VarId v, size_t* count) const {
    *count = static_cast<size_t>(v2f_ptr_[v + 1] - v2f_ptr_[v]);
    return v2f_idx_.data() + v2f_ptr_[v];
  }

  /// Energy of factor f under `assignment` (one byte per variable, 0/1).
  double FactorEnergy(FactorId f, const uint8_t* assignment) const;

  /// log P(x_v = 1 | rest) - log P(x_v = 0 | rest): the Gibbs kernel.
  /// This is the column-to-row read described in the paper.
  double ConditionalLogOdds(VarId v, uint8_t* assignment) const;

  /// Total energy (for tests; O(edges)).
  double TotalEnergy(const uint8_t* assignment) const;

  /// Bytes touched when sampling variable v once (factor structures plus
  /// neighbor assignments) -- the traffic model for throughput simulation.
  uint64_t SampleReadBytes(VarId v) const;

 private:
  VarId num_vars_ = 0;
  std::vector<FactorKind> kind_;
  std::vector<double> weight_;
  std::vector<int64_t> f2v_ptr_;
  std::vector<VarId> f2v_idx_;
  std::vector<int64_t> v2f_ptr_;
  std::vector<FactorId> v2f_idx_;
};

/// Chain Ising model: v_i -- v_{i+1} couplings plus per-variable fields.
FactorGraph MakeChainIsing(VarId n, double coupling, double field);

/// 2-D grid Ising model (rows x cols variables).
FactorGraph MakeGridIsing(int rows, int cols, double coupling, double field,
                          uint64_t seed);

/// Paleo-like inference workload (paper Fig. 10: 69M factors, 30M vars,
/// 108M nnz at scale 1): power-law variable popularity, a mix of unary
/// evidence factors and pairwise correlation factors.
FactorGraph MakePaleoLike(double scale, uint64_t seed);

}  // namespace dw::factor
