// Gibbs sampling executors (paper Sec. 5.1 / D.1).
//
// Three strategies mirror the engine's model-replication axis:
//   kSequential -- one chain, one thread (the reference);
//   kPerMachine -- one shared assignment vector, all threads sample
//                  disjoint variable shards lock-free (Hogwild! Gibbs,
//                  Johnson et al. [25]);
//   kPerNode    -- one independent chain per virtual NUMA node ("we also
//                  know from classic statistical theory that one can
//                  maintain multiple copies ... and aggregate the
//                  samples"); marginals average across chains.
#pragma once

#include <cstdint>
#include <vector>

#include "factor/factor_graph.h"
#include "numa/memory_model.h"
#include "numa/topology.h"

namespace dw::factor {

/// Parallelization strategy for the sampler.
enum class GibbsStrategy { kSequential, kPerMachine, kPerNode };

/// Sampler configuration.
struct GibbsOptions {
  GibbsStrategy strategy = GibbsStrategy::kPerMachine;
  numa::Topology topology = numa::Local2();
  int workers_per_node = -1;  ///< -1: one per virtual core
  int sweeps = 20;            ///< full passes over all variables
  int burn_in = 5;            ///< sweeps discarded before counting
  uint64_t seed = 7;
  bool pin_threads = true;
};

/// Sampler output.
struct GibbsResult {
  std::vector<double> marginals;  ///< P(x_v = 1) estimates
  uint64_t samples = 0;           ///< variable updates performed
  double wall_sec = 0.0;
  double sim_sec = 0.0;           ///< memory-model time on the topology
  /// Throughput in variable samples per second (measured).
  double SamplesPerSec() const {
    return wall_sec > 0 ? static_cast<double>(samples) / wall_sec : 0.0;
  }
  /// Throughput under the simulated topology.
  double SimSamplesPerSec() const {
    return sim_sec > 0 ? static_cast<double>(samples) / sim_sec : 0.0;
  }
};

/// Runs Gibbs sampling over `graph` with the given options.
GibbsResult RunGibbs(const FactorGraph& graph, const GibbsOptions& options);

/// Exact marginals by enumeration (tests only; requires num_vars <= 20).
std::vector<double> ExactMarginals(const FactorGraph& graph);

}  // namespace dw::factor
