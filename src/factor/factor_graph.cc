#include "factor/factor_graph.h"

#include <algorithm>

#include "util/rng.h"

namespace dw::factor {

StatusOr<FactorGraph> FactorGraph::Build(VarId num_vars,
                                         std::vector<FactorDef> factors) {
  FactorGraph g;
  g.num_vars_ = num_vars;
  g.kind_.reserve(factors.size());
  g.weight_.reserve(factors.size());
  g.f2v_ptr_.reserve(factors.size() + 1);
  g.f2v_ptr_.push_back(0);

  for (const FactorDef& def : factors) {
    if (def.vars.empty()) {
      return Status::InvalidArgument("factor with no variables");
    }
    for (VarId v : def.vars) {
      if (v >= num_vars) {
        return Status::InvalidArgument("factor references unknown variable");
      }
    }
    if (def.kind == FactorKind::kUnary && def.vars.size() != 1) {
      return Status::InvalidArgument("unary factor must have arity 1");
    }
    if (def.kind == FactorKind::kIsing && def.vars.size() != 2) {
      return Status::InvalidArgument("ising factor must have arity 2");
    }
    g.kind_.push_back(def.kind);
    g.weight_.push_back(def.weight);
    for (VarId v : def.vars) g.f2v_idx_.push_back(v);
    g.f2v_ptr_.push_back(static_cast<int64_t>(g.f2v_idx_.size()));
  }

  // Invert: var -> factors.
  g.v2f_ptr_.assign(num_vars + 1, 0);
  for (VarId v : g.f2v_idx_) ++g.v2f_ptr_[v + 1];
  for (VarId v = 0; v < num_vars; ++v) g.v2f_ptr_[v + 1] += g.v2f_ptr_[v];
  g.v2f_idx_.resize(g.f2v_idx_.size());
  std::vector<int64_t> cursor(g.v2f_ptr_.begin(), g.v2f_ptr_.end() - 1);
  for (FactorId f = 0; f < g.num_factors(); ++f) {
    for (int64_t k = g.f2v_ptr_[f]; k < g.f2v_ptr_[f + 1]; ++k) {
      g.v2f_idx_[cursor[g.f2v_idx_[k]]++] = f;
    }
  }
  return g;
}

double FactorGraph::FactorEnergy(FactorId f, const uint8_t* assignment) const {
  size_t count = 0;
  const VarId* vars = FactorVars(f, &count);
  switch (kind_[f]) {
    case FactorKind::kUnary:
      return assignment[vars[0]] ? weight_[f] : 0.0;
    case FactorKind::kIsing:
      return assignment[vars[0]] == assignment[vars[1]] ? weight_[f] : 0.0;
    case FactorKind::kAnd: {
      for (size_t k = 0; k < count; ++k) {
        if (!assignment[vars[k]]) return 0.0;
      }
      return weight_[f];
    }
  }
  return 0.0;
}

double FactorGraph::ConditionalLogOdds(VarId v, uint8_t* assignment) const {
  size_t nf = 0;
  const FactorId* fs = VarFactors(v, &nf);
  const uint8_t keep = assignment[v];
  double e1 = 0.0, e0 = 0.0;
  assignment[v] = 1;
  for (size_t k = 0; k < nf; ++k) e1 += FactorEnergy(fs[k], assignment);
  assignment[v] = 0;
  for (size_t k = 0; k < nf; ++k) e0 += FactorEnergy(fs[k], assignment);
  assignment[v] = keep;
  return e1 - e0;
}

double FactorGraph::TotalEnergy(const uint8_t* assignment) const {
  double e = 0.0;
  for (FactorId f = 0; f < num_factors(); ++f) {
    e += FactorEnergy(f, assignment);
  }
  return e;
}

uint64_t FactorGraph::SampleReadBytes(VarId v) const {
  size_t nf = 0;
  const FactorId* fs = VarFactors(v, &nf);
  uint64_t bytes = nf * (sizeof(FactorId) + sizeof(double) + 1);
  for (size_t k = 0; k < nf; ++k) {
    size_t nv = 0;
    (void)FactorVars(fs[k], &nv);
    bytes += nv * (sizeof(VarId) + 1);  // neighbor ids + assignments
  }
  return bytes;
}

FactorGraph MakeChainIsing(VarId n, double coupling, double field) {
  std::vector<FactorDef> defs;
  for (VarId v = 0; v < n; ++v) {
    defs.push_back({FactorKind::kUnary, field, {v}});
  }
  for (VarId v = 0; v + 1 < n; ++v) {
    defs.push_back({FactorKind::kIsing, coupling, {v, v + 1}});
  }
  auto g = FactorGraph::Build(n, std::move(defs));
  DW_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

FactorGraph MakeGridIsing(int rows, int cols, double coupling, double field,
                          uint64_t seed) {
  Rng rng(seed);
  const VarId n = static_cast<VarId>(rows) * cols;
  std::vector<FactorDef> defs;
  auto id = [cols](int r, int c) {
    return static_cast<VarId>(r) * cols + c;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      defs.push_back(
          {FactorKind::kUnary, field * rng.Gaussian(1.0, 0.2), {id(r, c)}});
      if (c + 1 < cols) {
        defs.push_back({FactorKind::kIsing, coupling, {id(r, c), id(r, c + 1)}});
      }
      if (r + 1 < rows) {
        defs.push_back({FactorKind::kIsing, coupling, {id(r, c), id(r + 1, c)}});
      }
    }
  }
  auto g = FactorGraph::Build(n, std::move(defs));
  DW_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

FactorGraph MakePaleoLike(double scale, uint64_t seed) {
  // Paper scale-1 shape: 30M variables, 69M factors, 108M edges
  // => ~2.3 factors per variable, ~1.57 vars per factor (mostly unary
  // evidence plus pairwise correlations). Floors keep tiny scales sane.
  Rng rng(seed);
  const VarId num_vars = static_cast<VarId>(std::max(30e6 * scale, 2000.0));
  const FactorId num_factors =
      static_cast<FactorId>(std::max(69e6 * scale, 4600.0));
  ZipfSampler zipf(num_vars, 1.1);

  std::vector<FactorDef> defs;
  defs.reserve(num_factors);
  for (FactorId f = 0; f < num_factors; ++f) {
    // ~57% unary evidence, ~43% pairwise (yields ~1.57 vars/factor).
    if (rng.Bernoulli(0.57)) {
      defs.push_back({FactorKind::kUnary, rng.Gaussian(0.0, 0.8),
                      {static_cast<VarId>(zipf.Sample(rng))}});
    } else {
      VarId u = static_cast<VarId>(zipf.Sample(rng));
      VarId v = static_cast<VarId>(zipf.Sample(rng));
      if (u == v) v = (v + 1) % num_vars;
      defs.push_back({FactorKind::kIsing, rng.Gaussian(0.5, 0.3), {u, v}});
    }
  }
  auto g = FactorGraph::Build(num_vars, std::move(defs));
  DW_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

}  // namespace dw::factor
