#include "factor/gibbs.h"

#include <cmath>
#include <thread>

#include "models/glm.h"  // Sigmoid
#include "util/barrier.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::factor {

namespace {

// One chain's state: an assignment vector plus per-variable 1-counts.
struct Chain {
  std::vector<uint8_t> assignment;
  std::vector<uint32_t> ones;
};

// Sweeps a shard of variables once; counts after burn-in.
void SweepShard(const FactorGraph& g, const std::vector<VarId>& shard,
                Chain& chain, Rng& rng, bool count) {
  for (VarId v : shard) {
    const double logodds = g.ConditionalLogOdds(v, chain.assignment.data());
    const uint8_t x = rng.Bernoulli(models::Sigmoid(logodds)) ? 1 : 0;
    chain.assignment[v] = x;
    if (count) chain.ones[v] += x;
  }
}

}  // namespace

GibbsResult RunGibbs(const FactorGraph& graph, const GibbsOptions& options) {
  const numa::Topology& topo = options.topology;
  const int wpn = options.strategy == GibbsStrategy::kSequential
                      ? 1
                      : (options.workers_per_node > 0 ? options.workers_per_node
                                                      : topo.cores_per_node);
  const int nodes =
      options.strategy == GibbsStrategy::kSequential ? 1 : topo.num_nodes;
  const int num_workers = nodes * wpn;
  const int num_chains =
      options.strategy == GibbsStrategy::kPerNode ? nodes : 1;
  DW_CHECK_GT(options.sweeps, options.burn_in);

  // Chains (PerMachine/Sequential: one shared; PerNode: one per node).
  std::vector<Chain> chains(num_chains);
  uint64_t sm = options.seed;
  for (int c = 0; c < num_chains; ++c) {
    chains[c].assignment.assign(graph.num_vars(), 0);
    chains[c].ones.assign(graph.num_vars(), 0);
    Rng init(SplitMix64(sm));
    for (VarId v = 0; v < graph.num_vars(); ++v) {
      chains[c].assignment[v] = init.Bernoulli(0.5) ? 1 : 0;
    }
  }

  // Variable shards. PerMachine: workers partition the variables of the
  // single chain. PerNode: each node's workers partition the variables of
  // that node's chain.
  const int workers_per_chain =
      options.strategy == GibbsStrategy::kPerNode ? wpn : num_workers;
  std::vector<std::vector<VarId>> shards(num_workers);
  std::vector<uint64_t> shard_read_bytes(num_workers, 0);
  for (int w = 0; w < num_workers; ++w) {
    const int slot = options.strategy == GibbsStrategy::kPerNode ? w % wpn
                                                                 : w;
    for (VarId v = static_cast<VarId>(slot); v < graph.num_vars();
         v += static_cast<VarId>(workers_per_chain)) {
      shards[w].push_back(v);
      shard_read_bytes[w] += graph.SampleReadBytes(v);
    }
  }

  std::vector<Rng> rngs;
  for (int w = 0; w < num_workers; ++w) rngs.emplace_back(SplitMix64(sm));

  SpinBarrier sweep_barrier(num_workers);
  WallTimer timer;
  std::vector<std::thread> pool;
  pool.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      const int node = w / wpn;
      if (options.pin_threads) {
        const int core = node * topo.cores_per_node +
                         (w % wpn) % topo.cores_per_node;
        (void)PinCurrentThreadToCpu(
            topo.PhysicalCpuOfCore(core, NumOnlineCpus()));
      }
      const int chain_idx =
          options.strategy == GibbsStrategy::kPerNode ? node : 0;
      Chain& chain = chains[chain_idx];
      std::vector<VarId> my_shard = shards[w];
      for (int sweep = 0; sweep < options.sweeps; ++sweep) {
        rngs[w].Shuffle(my_shard);
        SweepShard(graph, my_shard, chain, rngs[w],
                   sweep >= options.burn_in);
        sweep_barrier.Wait();
      }
    });
  }
  for (auto& t : pool) t.join();

  GibbsResult result;
  result.wall_sec = timer.Seconds();
  result.samples = static_cast<uint64_t>(options.sweeps) * graph.num_vars() *
                   (options.strategy == GibbsStrategy::kPerNode ? nodes : 1);

  // Marginals: counted sweeps per chain, averaged across chains.
  const double counted = options.sweeps - options.burn_in;
  result.marginals.assign(graph.num_vars(), 0.0);
  for (const Chain& chain : chains) {
    for (VarId v = 0; v < graph.num_vars(); ++v) {
      result.marginals[v] +=
          static_cast<double>(chain.ones[v]) / counted / num_chains;
    }
  }

  // Simulated time on the topology: structure reads are node-local (the
  // read-only graph is replicated); assignment writes are shared across
  // sockets only under PerMachine.
  numa::SimulationInput sim(topo.num_nodes);
  const bool shared = options.strategy == GibbsStrategy::kPerMachine &&
                      topo.num_nodes > 1;
  for (int w = 0; w < num_workers; ++w) {
    const int node = w / wpn;
    numa::AccessCounters c;
    const uint64_t reads =
        shard_read_bytes[w] * static_cast<uint64_t>(options.sweeps);
    const uint64_t writes =
        shards[w].size() * static_cast<uint64_t>(options.sweeps);
    if (shared) {
      // Neighbor assignments live on all sockets: pro-rate reads.
      const double remote_frac =
          static_cast<double>(topo.num_nodes - 1) / topo.num_nodes;
      c.remote_read_bytes = static_cast<uint64_t>(reads * remote_frac * 0.2);
      c.local_read_bytes = reads - c.remote_read_bytes;
      c.shared_write_bytes = writes;
    } else {
      c.local_read_bytes = reads;
      c.local_write_bytes = writes;
    }
    c.flops = reads / 4;
    c.updates = shards[w].size() * static_cast<uint64_t>(options.sweeps);
    sim.traffic.Add(node, c);
    ++sim.active_workers[node];
  }
  sim.model_sharing_sockets = shared ? topo.num_nodes : 1;
  sim.model_bytes = graph.num_vars();
  result.sim_sec =
      numa::MemoryModel(topo).SimulateEpoch(sim).total_sec;
  return result;
}

std::vector<double> ExactMarginals(const FactorGraph& graph) {
  const VarId n = graph.num_vars();
  DW_CHECK_LE(n, 20u) << "exact enumeration is exponential";
  std::vector<uint8_t> assignment(n, 0);
  std::vector<double> prob1(n, 0.0);
  double z = 0.0;
  const uint32_t total = 1u << n;
  for (uint32_t mask = 0; mask < total; ++mask) {
    for (VarId v = 0; v < n; ++v) assignment[v] = (mask >> v) & 1u;
    const double p = std::exp(graph.TotalEnergy(assignment.data()));
    z += p;
    for (VarId v = 0; v < n; ++v) {
      if (assignment[v]) prob1[v] += p;
    }
  }
  for (VarId v = 0; v < n; ++v) prob1[v] /= z;
  return prob1;
}

}  // namespace dw::factor
