#include "opt/admission_controller.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dw::opt {

AdmissionController::AdmissionController(numa::Topology topo,
                                         AdmissionControllerOptions opts)
    : opts_(opts), model_(std::move(topo), opts.model_params) {
  DW_CHECK_GT(opts_.drain_workers, 0);
  DW_CHECK_GT(opts_.ewma_alpha, 0.0);
  DW_CHECK_LE(opts_.ewma_alpha, 1.0);
  DW_CHECK_GE(opts_.max_calibration, 1.0);
}

double AdmissionController::PriorRowSeconds(
    const AdmissionFamilyProfile& profile) const {
  const numa::Topology& topo = model_.topology();
  const double batch_rows = std::max(1.0, profile.expected_batch_rows);
  const double row_bytes =
      static_cast<double>(profile.dim) * sizeof(double);
  // One worker scores one batch: the feature payload streams once per
  // row, the model streams once per batch (the blocked PredictBatch
  // contract the replication chooser also assumes). When the replica is
  // shared across sockets, the average worker is remote: only a 1/nodes
  // share of the model stream is node-local, the rest crosses the
  // interconnect.
  numa::SimulationInput in(topo.num_nodes);
  numa::AccessCounters c;
  c.local_read_bytes = static_cast<uint64_t>(batch_rows * row_bytes);
  const uint64_t model_bytes =
      static_cast<uint64_t>(profile.model_touch_fraction * row_bytes);
  if (profile.model_sharing_sockets > 1 && topo.num_nodes > 1) {
    c.model_read_bytes = model_bytes / topo.num_nodes;
    c.remote_read_bytes = model_bytes - c.model_read_bytes;
  } else {
    c.model_read_bytes = model_bytes;
  }
  c.flops = static_cast<uint64_t>(2.0 * batch_rows * profile.dim);
  c.updates = static_cast<uint64_t>(batch_rows);
  in.traffic.per_node[0] = c;
  in.active_workers[0] = 1;
  in.model_sharing_sockets = profile.model_sharing_sockets;
  in.model_bytes = static_cast<uint64_t>(row_bytes);
  // SimulateEpoch overlaps node time with interconnect time (max), which
  // models many nodes draining in parallel; ONE worker scoring one batch
  // serializes its own remote reads with its local ones, so the batch
  // prior sums the components instead of taking the max.
  const numa::SimulatedTime t = model_.SimulateEpoch(in);
  const double batch_sec = t.read_sec + t.write_sec + t.cpu_sec + t.qpi_sec +
                           opts_.model_params.epoch_overhead_sec;
  // Guard the division: admission must never divide by a zero estimate.
  return std::max(batch_sec / batch_rows, 1e-12);
}

void AdmissionController::AttachRegistry(obs::Registry* registry) {
  std::lock_guard<std::mutex> lk(mu_);
  DW_CHECK(families_.empty())
      << "attach the registry before registering admission families";
  registry_ = registry;
}

int AdmissionController::AddFamily(const AdmissionFamilyProfile& profile) {
  DW_CHECK_GT(profile.dim, 0u) << "admission profile needs dim";
  DW_CHECK_GT(profile.model_sharing_sockets, 0);
  FamilyState fs;
  fs.profile = profile;
  fs.prior_row_sec = PriorRowSeconds(profile);
  std::lock_guard<std::mutex> lk(mu_);
  if (registry_ != nullptr) {
    const std::string label =
        profile.name.empty() ? "f" + std::to_string(families_.size())
                             : profile.name;
    const obs::Labels labels = {{"family", label}};
    fs.prior_gauge = registry_->GetGauge("admission.prior_row_us", labels);
    fs.est_gauge = registry_->GetGauge("admission.est_row_us", labels);
    fs.measured_gauge =
        registry_->GetGauge("admission.measured_row_us", labels);
    fs.reports_counter =
        registry_->GetCounter("admission.cost_reports", labels);
    fs.prior_gauge->Set(fs.prior_row_sec * 1e6);
    // No reports yet: the calibrated estimate IS the prior.
    fs.est_gauge->Set(fs.prior_row_sec * 1e6);
  }
  families_.push_back(std::move(fs));
  return static_cast<int>(families_.size() - 1);
}

const AdmissionController::FamilyState& AdmissionController::StateFor(
    int family) const {
  DW_CHECK_GE(family, 0);
  DW_CHECK_LT(family, static_cast<int>(families_.size()));
  return families_[family];
}

void AdmissionController::ReportBatch(int family, size_t rows,
                                      double measured_sec) {
  if (rows == 0 || measured_sec <= 0.0) return;
  const double row_sec = measured_sec / static_cast<double>(rows);
  std::lock_guard<std::mutex> lk(mu_);
  FamilyState& fs = const_cast<FamilyState&>(StateFor(family));
  if (fs.reports == 0) {
    fs.ewma_row_sec = row_sec;
  } else {
    fs.ewma_row_sec += opts_.ewma_alpha * (row_sec - fs.ewma_row_sec);
  }
  ++fs.reports;
  if (fs.measured_gauge != nullptr) {
    fs.measured_gauge->Set(fs.ewma_row_sec * 1e6);
    fs.est_gauge->Set(EstimatedRowSecondsLocked(fs) * 1e6);
    fs.reports_counter->Increment();
  }
}

void AdmissionController::UpdateModelSharing(int family,
                                             int model_sharing_sockets) {
  DW_CHECK_GT(model_sharing_sockets, 0);
  std::lock_guard<std::mutex> lk(mu_);
  FamilyState& fs = const_cast<FamilyState&>(StateFor(family));
  if (fs.profile.model_sharing_sockets == model_sharing_sockets) return;
  fs.profile.model_sharing_sockets = model_sharing_sockets;
  fs.prior_row_sec = PriorRowSeconds(fs.profile);
  // Drop the calibration window: it measured the OLD placement. Until
  // the first post-migration report, the new prior stands alone.
  fs.ewma_row_sec = 0.0;
  fs.reports = 0;
  if (fs.prior_gauge != nullptr) {
    fs.prior_gauge->Set(fs.prior_row_sec * 1e6);
    fs.est_gauge->Set(fs.prior_row_sec * 1e6);
    fs.measured_gauge->Set(0.0);
  }
}

double AdmissionController::EstimatedRowSecondsLocked(
    const FamilyState& fs) const {
  if (fs.reports == 0) return fs.prior_row_sec;
  // Measured behavior corrects the prior, clamped so one absurd sample
  // cannot detach admission from physical reality entirely.
  const double ratio =
      std::clamp(fs.ewma_row_sec / fs.prior_row_sec,
                 1.0 / opts_.max_calibration, opts_.max_calibration);
  return fs.prior_row_sec * ratio;
}

double AdmissionController::EstimatedRowSeconds(int family) const {
  std::lock_guard<std::mutex> lk(mu_);
  return EstimatedRowSecondsLocked(StateFor(family));
}

double AdmissionController::EstimatedDrainSeconds(int family,
                                                  size_t queued_rows) const {
  return EstimatedRowSeconds(family) * static_cast<double>(queued_rows) /
         static_cast<double>(opts_.drain_workers);
}

double AdmissionController::BudgetSeconds(int family, size_t max_queue_rows,
                                          double explicit_budget_sec) const {
  if (explicit_budget_sec > 0.0) return explicit_budget_sec;
  return EstimatedDrainSeconds(family, max_queue_rows);
}

AdmissionEstimate AdmissionController::Estimate(int family) const {
  AdmissionEstimate out;
  out.est_row_sec = EstimatedRowSeconds(family);
  std::lock_guard<std::mutex> lk(mu_);
  const FamilyState& fs = StateFor(family);
  out.prior_row_sec = fs.prior_row_sec;
  out.measured_row_sec_ewma = fs.ewma_row_sec;
  out.reported_batches = fs.reports;
  return out;
}

int AdmissionController::num_families() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(families_.size());
}

}  // namespace dw::opt
