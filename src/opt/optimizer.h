// The plan optimizer: combines the Fig. 6 cost model with the paper's
// replication rules of thumb to pick a point in the tradeoff space
// (reproducing the Fig. 14 plan table):
//   - access method: cheapest per the cost model;
//   - model replication: PerNode for SGD-style (row-wise) plans,
//     PerMachine for SCD-style (column) plans (Sec. 3.3 rule of thumb);
//   - data replication: FullReplication whenever the replicas fit in the
//     per-node RAM budget ("if there is available memory, FullReplication
//     seems preferable", Sec. 3.4), else Sharding.
#pragma once

#include <string>

#include "data/dataset.h"
#include "engine/options.h"
#include "models/model_spec.h"
#include "opt/cost_model.h"

namespace dw::opt {

/// The optimizer's decision plus its reasoning (for Fig. 14-style output).
struct PlanChoice {
  engine::AccessMethod access = engine::AccessMethod::kRowWise;
  engine::ModelReplication model_rep = engine::ModelReplication::kPerNode;
  engine::DataReplication data_rep = engine::DataReplication::kSharding;
  double alpha_used = 4.0;
  double row_cost = 0.0;   ///< cost-model totals (elements)
  double col_cost = 0.0;   ///< for whichever column method the spec has
  std::string rationale;
};

/// Chooses a plan for (dataset, spec) on `topo`.
PlanChoice ChoosePlan(const data::Dataset& dataset,
                      const models::ModelSpec& spec,
                      const numa::Topology& topo);

/// Applies a PlanChoice onto EngineOptions (keeps other knobs untouched).
void ApplyChoice(const PlanChoice& choice, engine::EngineOptions* options);

}  // namespace dw::opt
