// Placement chooser for serving-time feature stores (the data-side twin
// of serving_replication.h's model-side chooser).
//
// DimmWitted's Fig. 9 studies DATA replication for training: fully
// replicating the dataset per node makes every row read local at the cost
// of footprint and load-time copies; sharding keeps one copy but makes a
// (n-1)/n share of reads remote. Id-keyed serving re-creates exactly that
// tradeoff at scoring time: a request names a row in the family's
// FeatureStore, and the worker that scores it gathers the features from
// wherever the store put them.
//
//   kReplicated: full table copy on every socket. Every gather is
//                node-local DRAM, but each refresh (Publish) writes the
//                table once per socket and the footprint is
//                num_nodes * table bytes.
//   kSharded:    rows interleaved round-robin across sockets. A refresh
//                writes the table once and the footprint is one table,
//                but only ~1/num_nodes of a node's gathers hit its own
//                shard; the rest cross the shared interconnect.
//
// ChooseStorePlacement() decides by simulating one "refresh period" --
// `reads_per_refresh` row gathers spread evenly over the sockets,
// followed by one table refresh -- under both placements with the same
// calibrated numa::MemoryModel, and picking the cheaper one. Read-heavy
// wide-row stores on multi-socket topologies come out kReplicated (the
// Fig. 9 FullReplication regime); refresh-dominated or oversized tables
// come out kSharded.
#pragma once

#include <string>

#include "matrix/sparse_vector.h"
#include "numa/memory_model.h"
#include "numa/topology.h"
#include "serve/replication.h"

namespace dw::opt {

/// Per-store traffic estimate the chooser costs at registration time.
/// `rows` and `dim` are required (they fix the table footprint and the
/// bytes one gather streams).
struct StoreTrafficEstimate {
  /// Feature table shape: `rows` feature rows of `dim` doubles each.
  matrix::Index rows = 0;
  matrix::Index dim = 0;
  /// Read/write asymmetry: row GATHERS per table refresh (Publish).
  /// Serving stores are read-mostly, so the default is high; a table
  /// rebuilt every few seconds against light traffic can be far lower.
  double reads_per_refresh = 65536.0;
  /// Fraction of the table one refresh actually rewrites (1.0 = full
  /// rewrite, the pre-delta behavior). Delta publishes clone only the
  /// churned pages, so their refresh bytes -- the term that penalizes
  /// kReplicated -- scale by this factor, moving the placement
  /// crossover. The tuner feeds the OBSERVED store.delta_bytes /
  /// store.full_bytes ratio here; registration time uses
  /// StoreOptions::churn_per_refresh. Clamped to (0, 1].
  double churn_fraction = 1.0;
};

/// The chooser's decision plus its reasoning (mirrors
/// ServingReplicationChoice).
struct StorePlacementChoice {
  serve::StorePlacement placement = serve::StorePlacement::kReplicated;
  double replicated_cost_sec = 0.0;  ///< simulated period cost, kReplicated
  double sharded_cost_sec = 0.0;     ///< simulated period cost, kSharded
  double table_bytes = 0.0;          ///< footprint of ONE full table
  std::string rationale;
};

/// Picks the placement for one feature store on `topo` by costing both
/// strategies through the calibrated memory model.
StorePlacementChoice ChooseStorePlacement(
    const numa::Topology& topo, const StoreTrafficEstimate& traffic,
    const numa::MemoryModelParams& params = {});

}  // namespace dw::opt
