// The cost-based optimizer's per-epoch I/O model (paper Sec. 3.2, Fig. 6):
//
//                 reads          writes (dense)   writes (sparse)
//   row-wise      sum_i n_i      d * N            sum_i n_i
//   column-wise   sum_i n_i      d                d
//   column-to-row sum_i n_i^2    d                d
//
// Costs combine linearly with the write/read cost factor alpha, which is
// estimated at installation time by a microbenchmark (alpha in [4, 12],
// growing with the number of sockets).
#pragma once

#include "engine/options.h"
#include "matrix/matrix_stats.h"
#include "models/model_spec.h"

namespace dw::opt {

/// Per-epoch read/write unit counts for one access method.
struct AccessCost {
  engine::AccessMethod method = engine::AccessMethod::kRowWise;
  double reads = 0.0;   ///< elements read per epoch
  double writes = 0.0;  ///< elements written per epoch
  /// Combined cost: reads + alpha * writes.
  double Total(double alpha) const { return reads + alpha * writes; }
};

/// Fills the Fig. 6 table row for the given method. `col_maintains_aux`
/// charges the column method for the margin/residual vector that GLM SCD
/// maintains: each column step additionally reads and writes the aux
/// entries of S(j), adding sum n_i to both sides.
AccessCost EstimateAccessCost(const matrix::MatrixStats& stats,
                              engine::AccessMethod method,
                              models::UpdateSparsity row_write_sparsity,
                              bool col_maintains_aux = false);

/// The Fig. 7(b) x-axis: cost(row) / cost(column-to-row) =
/// (1 + alpha) sum n_i / (sum n_i^2 + alpha d). > 1 favors columns.
double CostRatio(const matrix::MatrixStats& stats, double alpha);

/// Chooses the cheapest access method among those the spec implements.
engine::AccessMethod ChooseAccessMethod(const matrix::MatrixStats& stats,
                                        const models::ModelSpec& spec,
                                        double alpha);

/// Estimates alpha for a topology (paper values: ~4 at 2 sockets growing
/// to ~12 at 8; interpolated linearly in the socket count).
double AlphaForTopology(const numa::Topology& topo);

/// Measures alpha on the actual host via the write/read microbenchmark
/// (the "simple benchmark dataset" of Sec. 3.2), clamped to [1, 100].
double MeasureAlphaOnHost(int threads);

}  // namespace dw::opt
