// Cost-aware admission estimates for the serving request path (the
// admission-side sibling of serving_replication.h / store_placement.h).
//
// The paper's discipline is that a memory-model cost analysis, not a
// fixed heuristic, should decide how work maps onto the machine. The
// serving queue bound used to be exactly such a heuristic: RequestBatcher
// rejected past a hard-coded max_queue_rows, blind to what a queued row
// actually costs to serve -- 64 queued rows of a 16k-dim dense family are
// milliseconds of work, 64 rows of an 8-dim family are noise. The
// AdmissionController replaces the row count with TIME: it estimates a
// family's per-row batch service cost and admission rejects when the
// estimated time-to-drain of the backlog ahead of a request exceeds the
// family's queueing-delay budget.
//
// The estimate has two layers:
//
//   prior    -- numa::MemoryModel applied to one expected mini-batch
//               (rows x dim feature payload, one model stream per batch,
//               remote-read share when the replica is shared across
//               sockets). Available from registration time, before any
//               traffic, so a cold family is never admitted blind.
//   measured -- an EWMA of per-batch scoring wall times reported by the
//               serving workers (ReportBatch). This is the DINAMITE-style
//               feedback loop: measured service behavior corrects the
//               registration-time estimate online, so the admission
//               decision tracks what batches actually cost on THIS host,
//               not what the calibrated topology model predicted.
//
// EstimatedRowSeconds() is the prior scaled by the measured/prior ratio
// (clamped, so one garbage measurement cannot blow up admission); until
// the first report it is the prior itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "matrix/sparse_vector.h"
#include "numa/memory_model.h"
#include "numa/topology.h"
#include "obs/metrics.h"

namespace dw::opt {

/// Controller-wide knobs.
struct AdmissionControllerOptions {
  /// Workers concurrently draining the queues (the serving pool size).
  /// Time-to-drain divides by this: N workers retire a backlog N times
  /// faster than one.
  int drain_workers = 1;
  /// Weight of the newest measured batch in the EWMA. High enough to
  /// track a drifting host, low enough that one descheduled batch does
  /// not swing admission.
  double ewma_alpha = 0.2;
  /// Clamp on the measured/prior calibration ratio: a single absurd
  /// measurement (clock glitch, page-fault storm) may pull the estimate
  /// at most this far from the memory-model prior in either direction.
  double max_calibration = 64.0;
  /// Memory-model constants for the prior.
  numa::MemoryModelParams model_params{};
};

/// Per-family cost profile, fixed at registration (mirrors the fields of
/// opt::ServingTrafficEstimate the batch cost actually depends on).
struct AdmissionFamilyProfile {
  /// Telemetry label for the family's admission gauges; "f<id>" when
  /// left empty. Purely observational -- no cost-model effect.
  std::string name;
  /// Model/feature width in doubles (required, > 0).
  matrix::Index dim = 0;
  /// Expected rows per flushed mini-batch.
  double expected_batch_rows = 64.0;
  /// Fraction of the model one batched scoring pass streams.
  double model_touch_fraction = 1.0;
  /// Sockets sharing one model replica (1 under kPerNode; num_nodes
  /// under kPerMachine, where most workers' model reads cross the
  /// interconnect).
  int model_sharing_sockets = 1;
};

/// Snapshot of one family's current estimate (all per-row seconds).
struct AdmissionEstimate {
  double prior_row_sec = 0.0;     ///< uncalibrated memory-model prior
  double est_row_sec = 0.0;       ///< prior x clamped measured/prior ratio
  double measured_row_sec_ewma = 0.0;  ///< 0 until the first report
  uint64_t reported_batches = 0;  ///< worker reports folded into the EWMA
};

/// Estimates batch service times per family and converts queue backlogs
/// into expected queueing delay. Thread-safe: registration is rare,
/// EstimatedRowSeconds runs under the batcher's admission lock, and
/// ReportBatch is one short critical section per scored batch.
class AdmissionController {
 public:
  explicit AdmissionController(numa::Topology topo,
                               AdmissionControllerOptions opts = {});

  /// Publishes the controller's estimates as gauges on `registry`
  /// (admission.prior_row_us / est_row_us / measured_row_us and the
  /// admission.cost_reports counter, labeled by family name). Call
  /// before AddFamily; nullptr (the default) keeps admission silent.
  /// `registry` must outlive the controller.
  void AttachRegistry(obs::Registry* registry);

  /// Registers a family; returns its id (dense, from 0 -- the caller
  /// keeps it aligned with the batcher's FamilyId). Checks dim > 0.
  int AddFamily(const AdmissionFamilyProfile& profile);

  /// Folds one measured batch (rows scored in `measured_sec` wall
  /// seconds by one worker) into the family's EWMA. Reports with no rows
  /// or a non-positive duration are dropped (clock granularity).
  void ReportBatch(int family, size_t rows, double measured_sec);

  /// Re-prices a family after a replication/placement change (the
  /// placement tuner calls this when it migrates): updates the profile's
  /// model_sharing_sockets, recomputes the memory-model prior, and
  /// RESETS the EWMA calibration window -- batch times measured under
  /// the old placement calibrate the wrong cost, and letting them linger
  /// would price admission off stale evidence until the EWMA slowly
  /// forgot them. No-op when the sharing already matches.
  void UpdateModelSharing(int family, int model_sharing_sockets);

  /// Current calibrated per-row service estimate (always > 0).
  double EstimatedRowSeconds(int family) const;

  /// Expected seconds until `queued_rows` backlog rows are all scored,
  /// with the drain parallelism of the worker pool.
  double EstimatedDrainSeconds(int family, size_t queued_rows) const;

  /// The family's queueing-delay budget in seconds. An explicit budget
  /// (> 0) wins; otherwise the legacy row bound is CONVERTED into time
  /// at the current estimate -- max_queue_rows rows of backlog at
  /// EstimatedRowSeconds() across the drain workers -- so by default the
  /// delay test degenerates to exactly the old row-count bound.
  double BudgetSeconds(int family, size_t max_queue_rows,
                       double explicit_budget_sec) const;

  AdmissionEstimate Estimate(int family) const;

  int num_families() const;
  const AdmissionControllerOptions& options() const { return opts_; }
  const numa::Topology& topology() const { return model_.topology(); }

 private:
  struct FamilyState {
    AdmissionFamilyProfile profile;
    double prior_row_sec = 0.0;
    double ewma_row_sec = 0.0;  ///< guarded by mu_
    uint64_t reports = 0;       ///< guarded by mu_
    /// Telemetry mirrors (no-op instruments when no registry attached);
    /// updated by ReportBatch under mu_.
    obs::Gauge* prior_gauge = nullptr;
    obs::Gauge* est_gauge = nullptr;
    obs::Gauge* measured_gauge = nullptr;
    obs::Counter* reports_counter = nullptr;
  };

  /// Memory-model service time of one expected batch, per row.
  double PriorRowSeconds(const AdmissionFamilyProfile& profile) const;
  const FamilyState& StateFor(int family) const;
  /// The calibrated estimate with mu_ already held (EstimatedRowSeconds
  /// without re-locking; ReportBatch refreshes the est gauge inline).
  double EstimatedRowSecondsLocked(const FamilyState& fs) const;

  const AdmissionControllerOptions opts_;
  const numa::MemoryModel model_;
  obs::Registry* registry_ = nullptr;  ///< nullptr: admission unobserved
  /// One lock for registration and the EWMA state: every critical
  /// section is a handful of arithmetic ops, far too short to contend at
  /// batch (not row) frequency.
  mutable std::mutex mu_;
  /// deque: stable references across AddFamily.
  std::deque<FamilyState> families_;
};

}  // namespace dw::opt
