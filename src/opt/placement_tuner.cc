#include "opt/placement_tuner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "serve/snapshot_exporter.h"
#include "util/logging.h"
#include "util/thread_util.h"

namespace dw::opt {

namespace {

std::string FormatMs(double ms) {
  std::ostringstream os;
  os << ms << "ms";
  return os.str();
}

std::string FormatRatio(double r) {
  std::ostringstream os;
  os.precision(3);
  os << r;
  return os.str();
}

}  // namespace

PlacementTuner::PlacementTuner(const numa::Topology& topo,
                               obs::Registry* registry, TunerOptions options)
    : topo_(topo), registry_(registry), options_(options) {
  DW_CHECK(registry_ != nullptr) << "tuner needs a metric registry";
  DW_CHECK_GE(options_.scan_period.count(), 0);
  DW_CHECK_GE(options_.min_advantage, 1.0)
      << "an advantage gate below 1.0 would migrate on a modeled LOSS";
  DW_CHECK_GE(options_.confirm_scans, 1);
  DW_CHECK_GT(options_.staleness_slack, 0.0);
  DW_CHECK_LT(options_.staleness_slack, 1.0);
  scans_counter_ = registry_->GetCounter("tuner.scans");
  model_flips_counter_ =
      registry_->GetCounter("tuner.flips", {{"kind", "replication"}});
  store_flips_counter_ =
      registry_->GetCounter("tuner.flips", {{"kind", "store_placement"}});
  holds_counter_ = registry_->GetCounter("tuner.holds");
  period_adjust_counter_ = registry_->GetCounter("tuner.period_adjustments");
  // Baseline for the first scan's interval: totals accumulated before
  // the tuner existed are history, not evidence.
  prev_snapshot_ = registry_->Snapshot();
}

PlacementTuner::~PlacementTuner() { Stop(); }

void PlacementTuner::AddFamily(serve::ModelFamily* family,
                               serve::FeatureStore* store,
                               AdmissionController* admission,
                               int admission_id,
                               const ServingTrafficEstimate& traffic) {
  DW_CHECK(family != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  TunedFamily tf;
  tf.family = family;
  tf.store = store;
  tf.admission = admission;
  tf.admission_id = admission_id;
  tf.traffic = traffic;
  tf.traffic.dim = family->dim();
  tf.last_model_version = family->current_version();
  tf.last_store_version = store != nullptr ? store->current_version() : 0;
  const obs::Labels labels = {{"family", family->name()}};
  tf.reads_per_publish_gauge =
      registry_->GetGauge("tuner.observed_reads_per_publish", labels);
  tf.reads_per_refresh_gauge =
      registry_->GetGauge("tuner.observed_reads_per_refresh", labels);
  families_.push_back(std::move(tf));
}

void PlacementTuner::AttachExporter(const std::string& family,
                                    serve::SnapshotExporter* exporter) {
  DW_CHECK(exporter != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  for (TunedFamily& tf : families_) {
    if (tf.family->name() == family) {
      tf.exporter = exporter;
      return;
    }
  }
  DW_CHECK(false) << "attaching exporter for untuned family: " << family;
}

void PlacementTuner::Start() {
  {
    std::lock_guard<std::mutex> lk(loop_mu_);
    DW_CHECK(!started_) << "tuner started twice";
    started_ = true;
  }
  if (options_.scan_period.count() == 0) return;  // manual mode
  thread_ = std::thread([this] { Loop(); });
}

void PlacementTuner::Stop() {
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lk(loop_mu_);
    stop_ = true;
    if (thread_.joinable()) claimed = std::move(thread_);
  }
  stop_cv_.notify_all();
  if (claimed.joinable()) claimed.join();
}

void PlacementTuner::Loop() {
  SetCurrentThreadName("dw-tuner");
  std::unique_lock<std::mutex> lk(loop_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lk, options_.scan_period,
                          [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    ScanOnce();
    lk.lock();
  }
}

int PlacementTuner::ScanOnce() {
  std::lock_guard<std::mutex> lk(mu_);
  ++scan_seq_;
  scans_counter_->Increment();
  obs::RegistrySnapshot cur = registry_->Snapshot();
  const obs::SnapshotDelta delta(prev_snapshot_, cur);
  prev_snapshot_ = std::move(cur);
  int migrations = 0;
  for (TunedFamily& tf : families_) {
    TuneModel(delta, tf, &migrations);
    if (tf.store != nullptr) TuneStore(delta, tf, &migrations);
    TuneExporter(delta, tf);
  }
  return migrations;
}

void PlacementTuner::TuneModel(const obs::SnapshotDelta& delta,
                               TunedFamily& tf, int* migrations) {
  const std::string& name = tf.family->name();
  const obs::Labels labels = {{"family", name}};
  const uint64_t rows = delta.CounterDelta("serve.rows", labels);
  const uint64_t version = tf.family->current_version();
  const uint64_t publishes =
      version >= tf.last_model_version ? version - tf.last_model_version : 0;
  tf.last_model_version = version;
  // Evidence floor: a quiet interval says nothing about the traffic mix,
  // so it neither votes for a flip nor clears pending votes.
  if (rows < options_.min_observed_rows) return;
  // The interval's read/publish asymmetry. An interval with zero
  // publishes lower-bounds it at `rows` per publish -- conservative, and
  // exactly the read-heavy signal a frozen republish-era choice needs.
  const double reads_per_publish =
      static_cast<double>(rows) /
      static_cast<double>(std::max<uint64_t>(1, publishes));
  tf.reads_per_publish_gauge->Set(reads_per_publish);

  ServingTrafficEstimate traffic = tf.traffic;
  traffic.reads_per_publish = reads_per_publish;
  const ServingReplicationChoice choice =
      ChooseServingReplication(topo_, traffic, options_.model_params);
  const serve::Replication incumbent = tf.family->replication();
  if (choice.replication == incumbent) {
    tf.model_votes = 0;  // the observed traffic endorses the incumbent
    return;
  }
  const bool incumbent_per_node = incumbent == serve::Replication::kPerNode;
  const double incumbent_cost = incumbent_per_node
                                    ? choice.per_node_cost_sec
                                    : choice.per_machine_cost_sec;
  const double challenger_cost = incumbent_per_node
                                     ? choice.per_machine_cost_sec
                                     : choice.per_node_cost_sec;
  const double advantage =
      challenger_cost > 0.0 ? incumbent_cost / challenger_cost : 0.0;

  TunerDecision d;
  d.scan = scan_seq_;
  d.family = name;
  d.kind = "replication";
  d.from = ToString(incumbent);
  d.to = ToString(choice.replication);
  d.observed_reads_per_period = reads_per_publish;
  d.observed_rows = rows;
  d.incumbent_cost_sec = incumbent_cost;
  d.challenger_cost_sec = challenger_cost;
  d.advantage = advantage;

  if (advantage < options_.min_advantage) {
    tf.model_votes = 0;
    d.rationale = "held: modeled advantage " + FormatRatio(advantage) +
                  " under gate " + FormatRatio(options_.min_advantage);
    RecordDecision(std::move(d));
    return;
  }
  if (++tf.model_votes < options_.confirm_scans) {
    d.rationale = "held: awaiting confirmation (" +
                  std::to_string(tf.model_votes) + "/" +
                  std::to_string(options_.confirm_scans) + " scans)";
    RecordDecision(std::move(d));
    return;
  }
  tf.model_votes = 0;
  // The migration itself: rebuild the served weights under the winning
  // strategy (regular hot-swap; in-flight batches keep their snapshot),
  // advance the watermark past the tuner's own republish, and re-price
  // admission for the new replica sharing.
  tf.last_model_version = tf.family->Republish(choice.replication);
  if (tf.admission != nullptr) {
    const int sockets = choice.replication == serve::Replication::kPerMachine
                            ? topo_.num_nodes
                            : 1;
    tf.admission->UpdateModelSharing(tf.admission_id, sockets);
  }
  ++(*migrations);
  ++flips_;
  d.migrated = true;
  d.rationale = choice.rationale;
  RecordDecision(std::move(d));
}

void PlacementTuner::TuneStore(const obs::SnapshotDelta& delta,
                               TunedFamily& tf, int* migrations) {
  const std::string& name = tf.family->name();
  const obs::Labels labels = {{"family", name}};
  const uint64_t gathers = delta.CounterDelta("store.id_rows", labels);
  const uint64_t delta_bytes = delta.CounterDelta("store.delta_bytes", labels);
  const uint64_t full_bytes = delta.CounterDelta("store.full_bytes", labels);
  const uint64_t version = tf.store->current_version();
  const uint64_t refreshes =
      version >= tf.last_store_version ? version - tf.last_store_version : 0;
  tf.last_store_version = version;
  if (gathers < options_.min_observed_rows) return;
  const double reads_per_refresh =
      static_cast<double>(gathers) /
      static_cast<double>(std::max<uint64_t>(1, refreshes));
  tf.reads_per_refresh_gauge->Set(reads_per_refresh);

  // Observed churn: what the interval's publishes actually wrote vs what
  // full rewrites would have (the store's own odometers, so tuner-driven
  // republishes count too). An interval with no refresh bytes says
  // nothing about churn, so the conservative full-rewrite default holds.
  const double observed_churn =
      full_bytes > 0 ? std::clamp(static_cast<double>(delta_bytes) /
                                      static_cast<double>(full_bytes),
                                  1e-6, 1.0)
                     : 1.0;

  StoreTrafficEstimate traffic;
  traffic.rows = tf.store->rows();
  traffic.dim = tf.store->dim();
  traffic.reads_per_refresh = reads_per_refresh;
  traffic.churn_fraction = observed_churn;
  const StorePlacementChoice choice =
      ChooseStorePlacement(topo_, traffic, options_.model_params);
  const serve::StorePlacement incumbent = tf.store->placement();
  if (choice.placement == incumbent) {
    tf.store_votes = 0;
    return;
  }
  const bool incumbent_replicated =
      incumbent == serve::StorePlacement::kReplicated;
  const double incumbent_cost = incumbent_replicated
                                    ? choice.replicated_cost_sec
                                    : choice.sharded_cost_sec;
  const double challenger_cost = incumbent_replicated
                                     ? choice.sharded_cost_sec
                                     : choice.replicated_cost_sec;
  const double advantage =
      challenger_cost > 0.0 ? incumbent_cost / challenger_cost : 0.0;

  TunerDecision d;
  d.scan = scan_seq_;
  d.family = name;
  d.kind = "store_placement";
  d.from = ToString(incumbent);
  d.to = ToString(choice.placement);
  d.observed_reads_per_period = reads_per_refresh;
  d.observed_rows = gathers;
  d.observed_churn = observed_churn;
  d.incumbent_cost_sec = incumbent_cost;
  d.challenger_cost_sec = challenger_cost;
  d.advantage = advantage;

  if (advantage < options_.min_advantage) {
    tf.store_votes = 0;
    d.rationale = "held: modeled advantage " + FormatRatio(advantage) +
                  " under gate " + FormatRatio(options_.min_advantage);
    RecordDecision(std::move(d));
    return;
  }
  if (++tf.store_votes < options_.confirm_scans) {
    d.rationale = "held: awaiting confirmation (" +
                  std::to_string(tf.store_votes) + "/" +
                  std::to_string(options_.confirm_scans) + " scans)";
    RecordDecision(std::move(d));
    return;
  }
  tf.store_votes = 0;
  tf.last_store_version = tf.store->Republish(choice.placement);
  ++(*migrations);
  ++flips_;
  d.migrated = true;
  d.rationale = choice.rationale;
  RecordDecision(std::move(d));
}

void PlacementTuner::TuneExporter(const obs::SnapshotDelta& delta,
                                  TunedFamily& tf) {
  if (tf.exporter == nullptr || options_.staleness_slo_ms <= 0.0) return;
  const std::string& name = tf.family->name();
  const obs::Labels labels = {{"family", name}};
  const double stale_ms =
      delta.HistogramIntervalMean("serve.staleness_ms", labels, -1.0);
  if (stale_ms < 0.0) return;  // nothing scored this interval
  const double cur_floor = tf.exporter->period_floor_ms();
  double next_floor = cur_floor;
  if (stale_ms > options_.staleness_slo_ms) {
    // Over SLO: tighten the cadence (never under 1ms; the exporter's
    // publish-latency ceiling still paces on top of this floor).
    next_floor = std::max(1.0, cur_floor * 0.5);
  } else if (stale_ms < options_.staleness_slo_ms * options_.staleness_slack) {
    // Far under SLO: stretch to save publish bandwidth, capped at the
    // SLO itself (a period past the SLO guarantees a violation).
    next_floor = std::min(options_.staleness_slo_ms, cur_floor * 2.0);
  }
  if (next_floor == cur_floor) return;
  tf.exporter->SetPeriod(
      std::chrono::milliseconds(std::llround(next_floor)));
  ++period_adjustments_;
  period_adjust_counter_->Increment();

  TunerDecision d;
  d.scan = scan_seq_;
  d.family = name;
  d.kind = "exporter_period";
  d.from = FormatMs(cur_floor);
  d.to = FormatMs(next_floor);
  d.migrated = true;
  d.observed_staleness_ms = stale_ms;
  d.rationale = "mean staleness " + FormatMs(stale_ms) + " vs SLO " +
                FormatMs(options_.staleness_slo_ms);
  RecordDecision(std::move(d));
}

void PlacementTuner::RecordDecision(TunerDecision d) {
  if (d.migrated) {
    if (d.kind == "replication") {
      model_flips_counter_->Increment();
    } else if (d.kind == "store_placement") {
      store_flips_counter_->Increment();
    }
  } else {
    holds_counter_->Increment();
  }
  // The structured decision log: inputs -> chosen placement. Migrations
  // are operator-visible events; holds are debug chatter.
  std::ostringstream line;
  line << "tuner scan=" << d.scan << " family=" << d.family
       << " kind=" << d.kind << " from=" << d.from << " to=" << d.to
       << " migrated=" << (d.migrated ? 1 : 0)
       << " observed_rows=" << d.observed_rows
       << " reads_per_period=" << d.observed_reads_per_period
       << " churn=" << d.observed_churn
       << " staleness_ms=" << d.observed_staleness_ms
       << " incumbent_cost_sec=" << d.incumbent_cost_sec
       << " challenger_cost_sec=" << d.challenger_cost_sec
       << " advantage=" << d.advantage << " rationale=\"" << d.rationale
       << '"';
  if (d.migrated) {
    DW_LOG(Info) << line.str();
  } else {
    DW_LOG(Debug) << line.str();
  }
  if (decisions_.size() >= kMaxDecisions) decisions_.pop_front();
  decisions_.push_back(std::move(d));
}

std::vector<TunerDecision> PlacementTuner::Decisions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<TunerDecision>(decisions_.begin(), decisions_.end());
}

uint64_t PlacementTuner::scans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return scan_seq_;
}

uint64_t PlacementTuner::flips() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flips_;
}

uint64_t PlacementTuner::period_adjustments() const {
  std::lock_guard<std::mutex> lk(mu_);
  return period_adjustments_;
}

}  // namespace dw::opt
