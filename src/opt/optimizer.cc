#include "opt/optimizer.h"

#include <algorithm>

namespace dw::opt {

using engine::AccessMethod;
using engine::DataReplication;
using engine::ModelReplication;

PlanChoice ChoosePlan(const data::Dataset& dataset,
                      const models::ModelSpec& spec,
                      const numa::Topology& topo) {
  PlanChoice choice;
  choice.alpha_used = AlphaForTopology(topo);
  const matrix::MatrixStats stats = dataset.Stats();

  // Access method from the Fig. 6 cost model.
  choice.access = ChooseAccessMethod(stats, spec, choice.alpha_used);
  choice.row_cost =
      EstimateAccessCost(stats, AccessMethod::kRowWise,
                         spec.RowWriteSparsity())
          .Total(choice.alpha_used);
  const AccessMethod col_method =
      spec.HasCtr() ? AccessMethod::kColToRow : AccessMethod::kColWise;
  if (spec.HasCol() || spec.HasCtr()) {
    choice.col_cost =
        EstimateAccessCost(stats, col_method, spec.RowWriteSparsity(),
                           spec.ColumnStepMaintainsAux())
            .Total(choice.alpha_used);
  }

  // Model replication rule of thumb (Sec. 3.3): SGD (row-wise, dense-ish
  // updates) wants PerNode; SCD (column access, single-coordinate writes)
  // wants PerMachine.
  choice.model_rep = choice.access == AccessMethod::kRowWise
                         ? ModelReplication::kPerNode
                         : ModelReplication::kPerMachine;

  // Data replication (Sec. 3.4): FullReplication if a copy per node fits
  // comfortably in the node's RAM budget.
  const double copy_gb =
      static_cast<double>(dataset.SparseBytes()) / (1024.0 * 1024.0 * 1024.0);
  const bool fits = copy_gb <= 0.5 * topo.ram_per_node_gb;
  choice.data_rep =
      fits ? DataReplication::kFullReplication : DataReplication::kSharding;

  choice.rationale =
      std::string(ToString(choice.access)) + " (cost " +
      std::to_string(static_cast<long long>(choice.row_cost)) + " row vs " +
      std::to_string(static_cast<long long>(choice.col_cost)) + " col), " +
      ToString(choice.model_rep) + " (rule of thumb), " +
      ToString(choice.data_rep) +
      (fits ? " (copy fits per-node RAM)" : " (dataset too large)");
  return choice;
}

void ApplyChoice(const PlanChoice& choice, engine::EngineOptions* options) {
  options->access = choice.access;
  options->model_rep = choice.model_rep;
  options->data_rep = choice.data_rep;
}

}  // namespace dw::opt
