#include "opt/store_placement.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dw::opt {

using serve::StorePlacement;

namespace {

/// Builds the memory-model input for one refresh period
/// (`reads_per_refresh` row gathers + one table refresh) under
/// `placement`. Model-replica bytes are omitted: they are identical under
/// both placements and would only dilute the quantity being compared
/// (where the FEATURE bytes come from).
numa::SimulationInput PeriodInput(const numa::Topology& topo,
                                  const StoreTrafficEstimate& t,
                                  StorePlacement placement) {
  const int nodes = topo.num_nodes;
  const double row_bytes = static_cast<double>(t.dim) * sizeof(double);
  const double table_bytes = static_cast<double>(t.rows) * row_bytes;
  // Traffic is balanced: every socket scores an equal share of the
  // gathers (the same balanced-routing regime the serving benches
  // simulate). Requests spray row ids uniformly, so under kSharded a
  // node's own shard serves exactly 1/nodes of its gathers.
  const double gather_bytes_per_node =
      std::max(0.0, t.reads_per_refresh) * row_bytes /
      static_cast<double>(nodes);
  // Delta publishes clone only the churned pages: the refresh writes
  // (the term that penalizes replication) shrink by the churn fraction
  // while the gather side is untouched.
  const double churn = std::clamp(t.churn_fraction, 1e-6, 1.0);

  numa::SimulationInput in(nodes);
  for (int n = 0; n < nodes; ++n) {
    numa::AccessCounters c;
    if (placement == StorePlacement::kReplicated) {
      // Gathers are node-local everywhere. The refresh is one thread
      // copying the table into EVERY node's replica back to back, so its
      // full nodes * table_bytes cost lands on the publisher's node
      // (charging it per target node would wrongly model the copies as
      // parallel and hide the replication factor).
      c.local_read_bytes = static_cast<uint64_t>(gather_bytes_per_node);
      if (n == 0) {
        c.local_write_bytes = static_cast<uint64_t>(
            table_bytes * churn * static_cast<double>(nodes));
      }
    } else {
      // Interleaved shards: 1/nodes of a node's gathers hit its own
      // shard, the rest cross the shared interconnect; the refresh
      // writes the table once (each row lands on exactly one shard).
      c.local_read_bytes = static_cast<uint64_t>(
          gather_bytes_per_node / static_cast<double>(nodes));
      c.remote_read_bytes = static_cast<uint64_t>(
          gather_bytes_per_node * static_cast<double>(nodes - 1) /
          static_cast<double>(nodes));
      if (n == 0) {
        c.local_write_bytes = static_cast<uint64_t>(table_bytes * churn);
      }
    }
    in.traffic.per_node[n] = c;
    in.active_workers[n] = topo.cores_per_node;
  }
  // The feature table is data, not the model: no LLC-resident replica
  // speedup, and readers never store to it, so no coherence term either.
  in.model_bytes = 0;
  in.model_sharing_sockets = 1;
  return in;
}

}  // namespace

StorePlacementChoice ChooseStorePlacement(
    const numa::Topology& topo, const StoreTrafficEstimate& traffic,
    const numa::MemoryModelParams& params) {
  DW_CHECK_GT(traffic.rows, 0u) << "store traffic estimate needs rows";
  DW_CHECK_GT(traffic.dim, 0u) << "store traffic estimate needs dim";
  const numa::MemoryModel model(topo, params);

  StorePlacementChoice out;
  out.table_bytes = static_cast<double>(traffic.rows) *
                    static_cast<double>(traffic.dim) * sizeof(double);
  out.replicated_cost_sec =
      model
          .SimulateEpoch(
              PeriodInput(topo, traffic, StorePlacement::kReplicated))
          .total_sec;
  out.sharded_cost_sec =
      model.SimulateEpoch(PeriodInput(topo, traffic, StorePlacement::kSharded))
          .total_sec;

  std::ostringstream why;
  // Hot swap double-buffers: while a publish is in flight both the old
  // and the new snapshot are live, so kReplicated needs 1 + churn tables
  // of headroom on EVERY node (the Sec. 3.4 "if there is available
  // memory" rule, applied to the data side; a delta publish only clones
  // the churned pages, so the overlap shrinks with churn). Sharding caps
  // the per-node footprint at ~(1 + churn)/nodes of a table, so it is
  // the forced choice for tables too big to double-buffer whole.
  const double churn = std::clamp(traffic.churn_fraction, 1e-6, 1.0);
  const double node_ram_bytes =
      topo.ram_per_node_gb * 1024.0 * 1024.0 * 1024.0;
  if ((1.0 + churn) * out.table_bytes > node_ram_bytes) {
    out.placement = StorePlacement::kSharded;
    why << "table (" << out.table_bytes * 1e-9
        << " GB) cannot double-buffer in per-node RAM; sharding caps the "
           "per-node footprint at 1/"
        << topo.num_nodes << " of a copy";
    out.rationale = why.str();
    return out;
  }
  if (topo.num_nodes <= 1) {
    // One socket: the single shard IS the whole table and every gather is
    // already node-local; replication would only double the footprint.
    out.placement = StorePlacement::kSharded;
    why << "single socket: one shard is the whole table and already "
           "node-local";
    out.rationale = why.str();
    return out;
  }
  out.placement = out.replicated_cost_sec < out.sharded_cost_sec
                      ? StorePlacement::kReplicated
                      : StorePlacement::kSharded;
  why << "period cost Replicated " << out.replicated_cost_sec
      << "s vs Sharded " << out.sharded_cost_sec << "s at "
      << traffic.reads_per_refresh << " gathers/refresh of "
      << traffic.dim << "-wide rows, churn " << churn << ", on "
      << topo.num_nodes << " sockets";
  out.rationale = why.str();
  return out;
}

}  // namespace dw::opt
