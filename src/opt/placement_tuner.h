// Live placement tuner: the control loop that keeps the serving stack's
// cost-model decisions true under the traffic it actually serves.
//
// Every placement decision in this repo is chosen by a calibrated
// memory-model cost comparison -- but before this tuner it was chosen
// ONCE, from a registration-time traffic ESTIMATE, and then frozen.
// DimmWitted's core result is that the right replication/access-method
// choice depends on the workload; a workload that shifts after
// registration silently invalidates the choice, and the engine keeps
// paying the wrong placement's bytes forever.
//
// The tuner closes the loop. Each scan it diffs the engine's
// obs::Registry (obs::SnapshotDelta) to derive every family's OBSERVED
// traffic -- rows scored per model publish, store gathers per table
// refresh, snapshot staleness -- re-runs the same choosers the
// registration path used (ChooseServingReplication /
// ChooseStorePlacement) on the observed numbers, and, when the decision
// flips with enough modeled advantage for enough consecutive scans
// (hysteresis against flapping), live-migrates:
//
//   model side:  serve::ModelFamily::Republish(new_replication) rebuilds
//                the current weights under the new strategy through the
//                regular hot-swap path; in-flight batches keep the
//                snapshot they hold, so nothing tears.
//   store side:  serve::FeatureStore::Republish(new_placement), same
//                discipline.
//   admission:   opt::AdmissionController::UpdateModelSharing re-prices
//                the per-row prior and resets the EWMA calibration
//                window (it measured the old placement).
//   exporter:    serve::SnapshotExporter::SetPeriod stretches/tightens
//                the publish cadence against a staleness SLO.
//
// Every decision -- migrated or held -- lands in a bounded audit trail
// (Decisions()) carrying the cost-model inputs that produced it, plus
// tuner.* registry metrics and a structured DW_LOG line.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "numa/memory_model.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "opt/admission_controller.h"
#include "opt/serving_replication.h"
#include "opt/store_placement.h"
#include "serve/feature_store.h"
#include "serve/model_registry.h"

namespace dw::serve {
// Forward declared: snapshot_exporter.h includes serving_engine.h, which
// includes this header -- the exporter hook must not close that cycle.
class SnapshotExporter;
}  // namespace dw::serve

namespace dw::opt {

struct TunerOptions {
  /// Background scan cadence (Start()). Zero means MANUAL: Start()
  /// spawns no thread and the owner drives ScanOnce() itself -- the
  /// deterministic mode tests and benches use.
  std::chrono::milliseconds scan_period{250};
  /// Serving staleness SLO in ms, judged against the mean staleness
  /// observed over a scan interval. When an exporter is attached for a
  /// family, the tuner halves its period floor while staleness
  /// overshoots the SLO and doubles it (capped at the SLO itself) while
  /// staleness sits under staleness_slack * SLO, saving publish
  /// bandwidth. <= 0 disables exporter-period control.
  double staleness_slo_ms = 0.0;
  /// Stretch threshold as a fraction of the SLO (see above).
  double staleness_slack = 0.25;
  /// Hysteresis gate: the challenger strategy must model at least this
  /// cost advantage (incumbent cost / challenger cost) for a scan to
  /// count as a flip vote. 1.0 votes on any modeled win.
  double min_advantage = 1.05;
  /// Hysteresis depth: consecutive voting scans required before the
  /// tuner migrates. Guards a noisy boundary workload from flapping
  /// (every flip copies a model or a table).
  int confirm_scans = 2;
  /// Evidence floor: a scan that observed fewer rows (or gathers) than
  /// this does not vote -- a quiet interval says nothing about the mix.
  uint64_t min_observed_rows = 256;
  /// Memory-model constants for the choosers (match the engine's).
  numa::MemoryModelParams model_params{};
};

/// One audit-trail entry: what the tuner saw and what it did about it.
struct TunerDecision {
  uint64_t scan = 0;  ///< ScanOnce() sequence number, from 1
  std::string family;
  /// "replication" | "store_placement" | "exporter_period"
  std::string kind;
  std::string from;      ///< incumbent strategy (or period in ms)
  std::string to;        ///< chosen strategy (or period in ms)
  bool migrated = false; ///< false: held by hysteresis
  // Cost-model inputs the choosers re-ran on.
  double observed_reads_per_period = 0.0;  ///< rows/publish or gathers/refresh
  uint64_t observed_rows = 0;        ///< rows (or gathers) this interval
  double observed_staleness_ms = 0.0;  ///< exporter decisions only
  /// Store decisions only: the interval's store.delta_bytes /
  /// store.full_bytes ratio -- what publishes actually wrote vs what
  /// full rewrites would have. 1.0 (full rewrite) when the interval saw
  /// no refresh bytes; fed into StoreTrafficEstimate::churn_fraction so
  /// the chooser prices replication's refresh penalty at the churn the
  /// store really sees.
  double observed_churn = 1.0;
  double incumbent_cost_sec = 0.0;   ///< modeled period cost, incumbent
  double challenger_cost_sec = 0.0;  ///< modeled period cost, challenger
  double advantage = 0.0;            ///< incumbent / challenger cost
  std::string rationale;  ///< chooser rationale, or why the tuner held
};

/// The live placement control loop. Register families (AddFamily) and
/// optionally their exporters (AttachExporter) before Start(); drive
/// scans from the background thread or manually through ScanOnce().
/// Thread-safe; typically owned by serve::ServingEngine (EnableTuner).
class PlacementTuner {
 public:
  /// `registry` is the metric source the engine's workers write into
  /// (and the sink for the tuner's own tuner.* instruments); it must be
  /// non-null and outlive the tuner. A DISABLED registry leaves the
  /// tuner blind (every observed rate reads 0), so the owner should
  /// refuse to enable tuning without telemetry.
  PlacementTuner(const numa::Topology& topo, obs::Registry* registry,
                 TunerOptions options);
  ~PlacementTuner();

  PlacementTuner(const PlacementTuner&) = delete;
  PlacementTuner& operator=(const PlacementTuner&) = delete;

  /// Registers one family for tuning; call before Start(). `family`
  /// must be non-null and outlive the tuner; `store` may be null (no
  /// store side), as may `admission` (no prior re-pricing on
  /// migration). `traffic` carries the registration-time batch shape
  /// (expected_batch_rows, model_touch_fraction); its reads_per_publish
  /// is ignored -- that is exactly the number the tuner observes.
  void AddFamily(serve::ModelFamily* family, serve::FeatureStore* store,
                 AdmissionController* admission, int admission_id,
                 const ServingTrafficEstimate& traffic);

  /// Attaches `family`'s exporter for staleness-SLO period control
  /// (checked: the family must have been added). Inert unless
  /// TunerOptions::staleness_slo_ms > 0.
  void AttachExporter(const std::string& family,
                      serve::SnapshotExporter* exporter);

  /// Starts the background scan thread (none in manual mode,
  /// scan_period == 0). Once.
  void Start();

  /// Stops and joins the scan thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// One synchronous scan-and-migrate pass over every family; the unit
  /// the background thread loops. Returns the number of migrations
  /// performed (model + store flips; exporter adjustments excluded).
  /// Safe to call concurrently with the background thread and with live
  /// traffic.
  int ScanOnce();

  /// The audit trail, oldest first (bounded: the newest kMaxDecisions).
  std::vector<TunerDecision> Decisions() const;

  uint64_t scans() const;
  /// Completed migrations: model replication + store placement flips.
  uint64_t flips() const;
  uint64_t period_adjustments() const;

  /// Retained audit-trail bound (holds included).
  static constexpr size_t kMaxDecisions = 512;

 private:
  struct TunedFamily {
    serve::ModelFamily* family = nullptr;
    serve::FeatureStore* store = nullptr;
    AdmissionController* admission = nullptr;
    int admission_id = 0;
    serve::SnapshotExporter* exporter = nullptr;
    /// Registration-time batch shape; reads_per_publish is overwritten
    /// with the observed rate every scan.
    ServingTrafficEstimate traffic;
    /// Version watermarks from the previous scan: the interval's publish
    /// / refresh counts diff against these (and migrations advance them,
    /// so a tuner-caused republish never masquerades as trainer traffic).
    uint64_t last_model_version = 0;
    uint64_t last_store_version = 0;
    /// Consecutive confirming votes toward a pending flip.
    int model_votes = 0;
    int store_votes = 0;
    obs::Gauge* reads_per_publish_gauge = nullptr;
    obs::Gauge* reads_per_refresh_gauge = nullptr;
  };

  void Loop();
  void TuneModel(const obs::SnapshotDelta& delta, TunedFamily& tf,
                 int* migrations);
  void TuneStore(const obs::SnapshotDelta& delta, TunedFamily& tf,
                 int* migrations);
  void TuneExporter(const obs::SnapshotDelta& delta, TunedFamily& tf);
  /// Appends to the audit trail, bumps the tuner.* counters, and emits
  /// the structured log line (mu_ held).
  void RecordDecision(TunerDecision d);

  const numa::Topology topo_;
  obs::Registry* registry_;
  const TunerOptions options_;

  obs::Counter* scans_counter_ = nullptr;
  obs::Counter* model_flips_counter_ = nullptr;
  obs::Counter* store_flips_counter_ = nullptr;
  obs::Counter* holds_counter_ = nullptr;
  obs::Counter* period_adjust_counter_ = nullptr;

  /// Guards the families, the decision trail, and the scan state (one
  /// scan at a time; scans are monitoring-rate, contention-free).
  mutable std::mutex mu_;
  std::deque<TunedFamily> families_;
  std::deque<TunerDecision> decisions_;
  obs::RegistrySnapshot prev_snapshot_;
  uint64_t scan_seq_ = 0;
  uint64_t flips_ = 0;
  uint64_t period_adjustments_ = 0;

  /// Background-thread lifecycle (separate from mu_: Stop() must never
  /// wait behind a scan to set the flag).
  std::mutex loop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace dw::opt
