#include "opt/serving_replication.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dw::opt {

using serve::Replication;

namespace {

/// Builds the memory-model input for one traffic period (reads_per_publish
/// scored batches + one publish) under `rep`. Request payload bytes are
/// omitted: they are identical under both strategies and would only dilute
/// the quantity being compared (where the MODEL bytes come from).
numa::SimulationInput PeriodInput(const numa::Topology& topo,
                                  const ServingTrafficEstimate& t,
                                  Replication rep) {
  const int nodes = topo.num_nodes;
  const double model_bytes = static_cast<double>(t.dim) * sizeof(double);
  const double batch_model_bytes =
      model_bytes * std::clamp(t.model_touch_fraction, 0.0, 1.0);
  // The blocked kernel streams the model once per BATCH, so the batch
  // width converts the caller's row count into model streams: wider
  // batches amortize reads, fewer streams, less payoff from replicating.
  const double batches_per_publish = std::max(0.0, t.reads_per_publish) /
                                     std::max(1.0, t.expected_batch_rows);
  // Traffic is balanced: every socket serves an equal share of the
  // batches (the same balanced-routing regime bench_serving simulates).
  const double batches_per_node =
      batches_per_publish / static_cast<double>(nodes);

  numa::SimulationInput in(nodes);
  for (int n = 0; n < nodes; ++n) {
    numa::AccessCounters c;
    const auto share =
        static_cast<uint64_t>(batches_per_node * batch_model_bytes);
    if (rep == Replication::kPerNode) {
      // Reads are node-local everywhere. The publish is one thread
      // copying the model into EVERY node's replica back to back, so its
      // full num_nodes * model_bytes cost lands on the publisher's node
      // (charging it per target node would wrongly model the copies as
      // parallel and hide the replication factor).
      c.model_read_bytes = share;
      if (n == 0) {
        c.local_write_bytes =
            static_cast<uint64_t>(model_bytes) * static_cast<uint64_t>(nodes);
      }
    } else {
      // One copy on node 0: its reads are local, every other socket's
      // cross the shared interconnect; the publish writes once.
      if (n == 0) {
        c.model_read_bytes = share;
        c.local_write_bytes = static_cast<uint64_t>(model_bytes);
      } else {
        c.remote_read_bytes = share;
      }
    }
    in.traffic.per_node[n] = c;
    in.active_workers[n] = topo.cores_per_node;
  }
  in.model_bytes = static_cast<uint64_t>(model_bytes);
  // Serving readers never store to the replica, so no socket shares a
  // written cacheline under either strategy; the kPerMachine penalty is
  // the remote-read term above, not coherence stalls.
  in.model_sharing_sockets = 1;
  return in;
}

}  // namespace

ServingReplicationChoice ChooseServingReplication(
    const numa::Topology& topo, const ServingTrafficEstimate& traffic,
    const numa::MemoryModelParams& params) {
  DW_CHECK_GT(traffic.dim, 0u) << "traffic estimate needs the model dim";
  const numa::MemoryModel model(topo, params);

  ServingReplicationChoice out;
  out.replica_bytes = static_cast<double>(traffic.dim) * sizeof(double);
  out.per_node_cost_sec =
      model.SimulateEpoch(PeriodInput(topo, traffic, Replication::kPerNode))
          .total_sec;
  out.per_machine_cost_sec =
      model
          .SimulateEpoch(PeriodInput(topo, traffic, Replication::kPerMachine))
          .total_sec;

  std::ostringstream why;
  // Hot swap double-buffers: while a Publish is in flight both the old and
  // the new snapshot are live, so kPerNode needs 2 replicas of headroom on
  // EVERY node (the optimizer's "if there is available memory" rule,
  // Sec. 3.4, applied to the serving side). A model too big to
  // double-buffer strains kPerMachine's node 0 just the same -- no
  // strategy truly satisfies the constraint -- but the single copy at
  // least caps the machine-wide footprint at one node's worth, so it is
  // the least-bad forced choice, stated as such.
  const double node_ram_bytes = topo.ram_per_node_gb * 1024.0 * 1024.0 * 1024.0;
  if (2.0 * out.replica_bytes > node_ram_bytes) {
    out.replication = Replication::kPerMachine;
    why << "replica (" << out.replica_bytes * 1e-9
        << " GB) cannot double-buffer in per-node RAM under any strategy; "
           "single-copy PerMachine minimizes machine-wide footprint";
    out.rationale = why.str();
    return out;
  }
  if (topo.num_nodes <= 1) {
    // One socket: the strategies are byte-identical; keep the single copy.
    out.replication = Replication::kPerMachine;
    why << "single socket: one copy is already node-local everywhere";
    out.rationale = why.str();
    return out;
  }
  out.replication = out.per_node_cost_sec < out.per_machine_cost_sec
                        ? Replication::kPerNode
                        : Replication::kPerMachine;
  why << "period cost PerNode " << out.per_node_cost_sec << "s vs PerMachine "
      << out.per_machine_cost_sec << "s at " << traffic.reads_per_publish
      << " rows/publish (batch width " << traffic.expected_batch_rows
      << ") on " << topo.num_nodes << " sockets";
  out.rationale = why.str();
  return out;
}

}  // namespace dw::opt
