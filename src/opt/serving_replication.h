// Serving-side replication chooser (the registry's analogue of the
// training optimizer in optimizer.h).
//
// The paper's Sec. 3.2-3.3 argument is that replication should be picked
// by a cost model per workload, not hard-coded. Training applies it to
// mutable replicas (write traffic dominates); serving is the read-mostly
// end of the same tradeoff, where the decision is between
//
//   kPerNode:    one immutable copy per socket. Every read is node-local
//                DRAM, but every Publish() writes the model once per
//                socket and the footprint is num_nodes * model bytes.
//   kPerMachine: one copy on node 0. Publishes write once, but the other
//                sockets' reads all cross the shared interconnect (QPI),
//                which saturates long before per-socket DRAM does.
//
// ChooseServingReplication() decides by simulating one "traffic period"
// of the family -- `reads_per_publish` scored rows, batched at
// `expected_batch_rows` per model stream, followed by one republish --
// under both strategies with the same calibrated numa::MemoryModel the
// trainer uses, and picking the cheaper one. The read/write asymmetry
// alpha (rows per publish) is the serving twin of the paper's write/read
// cost ratio: read-heavy families on multi-socket topologies come out
// kPerNode (the Fig. 8 serving regime), while republish-dominated
// families come out kPerMachine.
#pragma once

#include <string>

#include "matrix/sparse_vector.h"
#include "numa/memory_model.h"
#include "numa/topology.h"
#include "serve/replication.h"

namespace dw::opt {

/// Per-family traffic estimate the registry hands the chooser at
/// registration time. Defaults describe a read-heavy scoring family; the
/// only field without a usable default is `dim`.
struct ServingTrafficEstimate {
  /// Model dimension (doubles). Fixes the replica footprint and the bytes
  /// one batched scoring pass streams.
  matrix::Index dim = 0;
  /// Expected rows per flushed mini-batch (RequestBatcher flush width).
  /// Load-bearing for the byte model: the blocked PredictBatch kernel
  /// streams the model replica ONCE per batch, so the period's model
  /// traffic is (reads_per_publish / expected_batch_rows) streams --
  /// wider batches amortize reads and shrink the payoff of replication.
  double expected_batch_rows = 64.0;
  /// Fraction of the model one batched scoring pass touches: 1.0 for
  /// dense rows (the blocked kernel streams every tile once per batch),
  /// lower for sparse families whose rows hit few coordinates.
  double model_touch_fraction = 1.0;
  /// Read/write asymmetry: ROWS scored per Publish(). Serving is
  /// read-mostly, so the default is high; a family refreshed by a fast
  /// SnapshotExporter against light traffic can be far lower (fractions
  /// are fine: 0.25 means one row per four publishes).
  double reads_per_publish = 65536.0;
};

/// The chooser's decision plus its reasoning (mirrors opt::PlanChoice).
struct ServingReplicationChoice {
  serve::Replication replication = serve::Replication::kPerNode;
  double per_node_cost_sec = 0.0;     ///< simulated period cost, kPerNode
  double per_machine_cost_sec = 0.0;  ///< simulated period cost, kPerMachine
  double replica_bytes = 0.0;         ///< footprint of ONE replica
  std::string rationale;
};

/// Picks the replication for one serving family on `topo` by costing both
/// strategies through the calibrated memory model.
ServingReplicationChoice ChooseServingReplication(
    const numa::Topology& topo, const ServingTrafficEstimate& traffic,
    const numa::MemoryModelParams& params = {});

}  // namespace dw::opt
