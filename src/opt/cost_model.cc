#include "opt/cost_model.h"

#include <algorithm>

#include "numa/bandwidth_probe.h"

namespace dw::opt {

using engine::AccessMethod;
using matrix::MatrixStats;

AccessCost EstimateAccessCost(const MatrixStats& stats, AccessMethod method,
                              models::UpdateSparsity row_write_sparsity,
                              bool col_maintains_aux) {
  AccessCost c;
  c.method = method;
  switch (method) {
    case AccessMethod::kRowWise:
      c.reads = static_cast<double>(stats.sum_ni);
      c.writes = row_write_sparsity == models::UpdateSparsity::kDense
                     ? static_cast<double>(stats.cols) * stats.rows
                     : static_cast<double>(stats.sum_ni);
      break;
    case AccessMethod::kColWise:
      c.reads = static_cast<double>(stats.sum_ni) *
                (col_maintains_aux ? 2.0 : 1.0);
      c.writes = static_cast<double>(stats.cols) +
                 (col_maintains_aux ? static_cast<double>(stats.sum_ni) : 0.0);
      break;
    case AccessMethod::kColToRow:
      c.reads = static_cast<double>(stats.sum_ni_sq);
      c.writes = static_cast<double>(stats.cols);
      break;
  }
  return c;
}

double CostRatio(const MatrixStats& stats, double alpha) {
  return stats.CostRatio(alpha);
}

AccessMethod ChooseAccessMethod(const MatrixStats& stats,
                                const models::ModelSpec& spec, double alpha) {
  double best_cost = 0.0;
  AccessMethod best = AccessMethod::kRowWise;
  bool have = false;
  auto consider = [&](AccessMethod m) {
    const AccessCost c = EstimateAccessCost(
        stats, m, spec.RowWriteSparsity(), spec.ColumnStepMaintainsAux());
    if (!have || c.Total(alpha) < best_cost) {
      best_cost = c.Total(alpha);
      best = m;
      have = true;
    }
  };
  if (spec.HasRow()) consider(AccessMethod::kRowWise);
  if (spec.HasCol()) consider(AccessMethod::kColWise);
  if (spec.HasCtr()) consider(AccessMethod::kColToRow);
  return best;
}

double AlphaForTopology(const numa::Topology& topo) {
  if (topo.alpha > 0.0) return topo.alpha;
  // Paper Sec. 3.2: ~4 on 2 sockets, ~12 on 8; linear in socket count.
  const double sockets = std::max(1, topo.num_nodes);
  return std::clamp(4.0 + (sockets - 2.0) * (8.0 / 6.0), 1.0, 16.0);
}

double MeasureAlphaOnHost(int threads) {
  const double ratio = numa::MeasureWriteReadCostRatio(threads);
  return std::clamp(ratio, 1.0, 100.0);
}

}  // namespace dw::opt
