#include "serve/model_registry.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "util/logging.h"

namespace dw::serve {

const char* ToString(Replication r) {
  switch (r) {
    case Replication::kPerNode:
      return "PerNode";
    case Replication::kPerMachine:
      return "PerMachine";
  }
  return "?";
}

ModelRegistry::ModelRegistry(const numa::Topology& topo,
                             Replication replication)
    : allocator_(std::make_shared<numa::NumaAllocator>(topo)),
      replication_(replication) {}

uint64_t ModelRegistry::Publish(const std::string& name,
                                const std::vector<double>& weights) {
  DW_CHECK(!weights.empty()) << "publishing an empty model";
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const auto dim = static_cast<matrix::Index>(weights.size());
  if (next_version_ == 1) {
    dim_.store(dim, std::memory_order_release);
  } else {
    DW_CHECK_EQ(dim, dim_.load(std::memory_order_relaxed))
        << "model dimension changed across Publish";
  }
  const uint64_t version = next_version_++;

  // Build the replacement entirely off to the side; readers keep scoring
  // against the old snapshot until the single pointer store below.
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->name_ = name;
  snap->dim_ = static_cast<matrix::Index>(weights.size());
  snap->allocator_ = allocator_;
  const int copies = replication_ == Replication::kPerNode
                         ? allocator_->topology().num_nodes
                         : 1;
  snap->replicas_.reserve(copies);
  for (int n = 0; n < copies; ++n) {
    auto replica = allocator_->AllocateOnNode<double>(n, weights.size());
    std::memcpy(replica.data(), weights.data(),
                weights.size() * sizeof(double));
    snap->replicas_.push_back(std::move(replica));
  }

  std::atomic_store_explicit(
      &current_, std::shared_ptr<const ModelSnapshot>(std::move(snap)),
      std::memory_order_release);
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Acquire() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

uint64_t ModelRegistry::current_version() const {
  const auto snap = Acquire();
  return snap ? snap->version() : 0;
}

}  // namespace dw::serve
