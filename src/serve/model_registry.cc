#include "serve/model_registry.h"

#include <cstring>
#include <utility>

#include "kernels/score_kernels.h"

namespace dw::serve {

const char* ToString(Replication r) {
  switch (r) {
    case Replication::kPerNode:
      return "PerNode";
    case Replication::kPerMachine:
      return "PerMachine";
  }
  return "?";
}

// --- ModelFamily ----------------------------------------------------------

ModelFamily::ModelFamily(std::string name,
                         std::shared_ptr<numa::NumaAllocator> allocator,
                         Replication replication, std::string rationale,
                         matrix::Index dim, bool quantized)
    : name_(std::move(name)),
      allocator_(std::move(allocator)),
      replication_(replication),
      rationale_(std::move(rationale)),
      dim_(dim),
      quantized_(quantized) {}

uint64_t ModelFamily::Publish(
    const std::vector<double>& weights,
    std::chrono::steady_clock::time_point exported_at) {
  DW_CHECK(!weights.empty()) << "publishing an empty model to " << name_;
  DW_CHECK_EQ(static_cast<matrix::Index>(weights.size()), dim_)
      << "model dimension mismatch for family " << name_;
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  return PublishLocked(weights, exported_at);
}

uint64_t ModelFamily::Republish(Replication replication) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const auto snap =
      std::atomic_load_explicit(&current_, std::memory_order_acquire);
  DW_CHECK(snap != nullptr)
      << "republishing family " << name_ << " before any publish";
  if (replication == replication_.load(std::memory_order_relaxed)) {
    return snap->version_;
  }
  // Copy the served weights out of replica 0 (every replica is
  // identical), flip the strategy, and run the regular publish body: the
  // migration IS just another hot-swap, preserving the source snapshot's
  // export timestamp so staleness does not reset.
  const std::vector<double> weights(
      snap->replicas_[0].data(), snap->replicas_[0].data() + snap->dim_);
  replication_.store(replication, std::memory_order_release);
  return PublishLocked(weights, snap->exported_at_);
}

uint64_t ModelFamily::PublishLocked(
    const std::vector<double>& weights,
    std::chrono::steady_clock::time_point exported_at) {
  const uint64_t version = next_version_++;

  // Build the replacement entirely off to the side; readers keep scoring
  // against the old snapshot until the single pointer store below.
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->version_ = version;
  snap->family_ = name_;
  snap->dim_ = dim_;
  snap->exported_at_ = exported_at;
  snap->allocator_ = allocator_;
  const int copies =
      replication_.load(std::memory_order_relaxed) == Replication::kPerNode
          ? allocator_->topology().num_nodes
          : 1;
  snap->replicas_.reserve(copies);
  for (int n = 0; n < copies; ++n) {
    auto replica = allocator_->AllocateOnNode<double>(n, weights.size());
    std::memcpy(replica.data(), weights.data(),
                weights.size() * sizeof(double));
    snap->replicas_.push_back(std::move(replica));
  }
  if (quantized_) {
    // Quantize ONCE, then replicate the int8 image with the same
    // placement as the f64 copies: every reader's node-local int8
    // replica dequantizes with the same per-family scale.
    std::vector<int8_t> qimage(weights.size());
    snap->q_scale_ =
        kernels::QuantizeWeights(weights.data(), dim_, qimage.data());
    snap->q_replicas_.reserve(copies);
    for (int n = 0; n < copies; ++n) {
      auto q = allocator_->AllocateOnNode<int8_t>(n, qimage.size());
      std::memcpy(q.data(), qimage.data(), qimage.size() * sizeof(int8_t));
      snap->q_replicas_.push_back(std::move(q));
    }
  }

  // Counter first, pointer second: a reader that acquires the NEW
  // snapshot must never see a current_version() older than it (workers
  // diff the two for versions-behind staleness; the opposite order would
  // let the difference underflow). A reader in the one-instruction window
  // sees the OLD snapshot with the new counter -- i.e. "one behind",
  // which is true: version `version` is already committed.
  current_version_.store(version, std::memory_order_release);
  std::atomic_store_explicit(
      &current_, std::shared_ptr<const ModelSnapshot>(std::move(snap)),
      std::memory_order_release);
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelFamily::Acquire() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

// --- ModelRegistry --------------------------------------------------------

ModelRegistry::ModelRegistry(const numa::Topology& topo)
    : allocator_(std::make_shared<numa::NumaAllocator>(topo)) {}

ModelFamily* ModelRegistry::RegisterFamily(const std::string& name,
                                           const FamilyOptions& options) {
  DW_CHECK(!name.empty()) << "family needs a name";
  std::lock_guard<std::mutex> lk(register_mu_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;

  Replication replication;
  std::string rationale;
  if (options.replication_override.has_value()) {
    replication = *options.replication_override;
    rationale = "explicit override";
  } else {
    const opt::ServingReplicationChoice choice =
        opt::ChooseServingReplication(allocator_->topology(), options.traffic);
    replication = choice.replication;
    rationale = choice.rationale;
  }
  DW_CHECK_GT(options.traffic.dim, 0u)
      << "family " << name << " needs traffic.dim";

  owned_.push_back(std::unique_ptr<ModelFamily>(
      new ModelFamily(name, allocator_, replication, std::move(rationale),
                      options.traffic.dim, options.quantized)));
  ModelFamily* family = owned_.back().get();
  by_name_[name] = family;
  return family;
}

ModelFamily* ModelRegistry::FindFamily(const std::string& name) const {
  std::lock_guard<std::mutex> lk(register_mu_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<ModelFamily*> ModelRegistry::Families() const {
  std::lock_guard<std::mutex> lk(register_mu_);
  std::vector<ModelFamily*> out;
  out.reserve(owned_.size());
  for (const auto& f : owned_) out.push_back(f.get());
  return out;
}

int ModelRegistry::num_families() const {
  std::lock_guard<std::mutex> lk(register_mu_);
  return static_cast<int>(owned_.size());
}

}  // namespace dw::serve
