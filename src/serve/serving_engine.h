// The model serving engine: a concurrent scoring service over trained
// models (ROADMAP north star: heavy read traffic, as fast as the hardware
// allows).
//
// Architecture: producers Submit() single-row requests; the RequestBatcher
// coalesces them into mini-batches; a pool of worker threads -- pinned to
// physical CPUs through the same virtual-topology map the trainer uses --
// pops batches and scores every row with ModelSpec::Predict against the
// replica of its own NUMA node (serve::ModelRegistry). Inference never
// writes shared state, so with kPerNode replication the hot path touches
// only node-local memory: the read-mostly endpoint of the paper's Sec. 3.3
// tradeoff. kPerMachine routes every node to the node-0 copy and exists as
// the bench baseline (remote reads cross the simulated interconnect).
//
// Workers account their logical traffic with numa::AccessCounters exactly
// like training epochs do, so bench_serving can report both measured
// rows/sec and memory-model throughput on the paper's topologies, and they
// record per-request latency into engine::LatencyRecorder for p50/p99.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/metrics.h"
#include "models/model_spec.h"
#include "numa/access_counters.h"
#include "numa/memory_model.h"
#include "numa/topology.h"
#include "serve/model_registry.h"
#include "serve/request_batcher.h"
#include "util/barrier.h"
#include "util/status.h"
#include "util/timer.h"

namespace dw::serve {

/// How a worker scores a flushed mini-batch.
enum class ScoringMode {
  /// One ModelSpec::PredictBatch call per batch: the GLM kernels tile the
  /// node-local replica through the cache hierarchy (column-blocked for
  /// dense rows, monotone-cursor gather for sparse rows), so each model
  /// block is read once per batch instead of once per row.
  kBatched,
  /// N ModelSpec::Predict calls, one per row; the pre-PredictBatch
  /// behavior, kept as the bench_serving baseline.
  kScalar,
};

const char* ToString(ScoringMode m);

struct ServingOptions {
  numa::Topology topology = numa::HostTopology();
  /// Scoring threads; -1 means one per virtual core. Workers are assigned
  /// to nodes round-robin so every socket serves traffic at any count.
  int num_threads = -1;
  Replication replication = Replication::kPerNode;
  RequestBatcher::Options batch;
  /// Pin workers to physical CPUs through the topology map.
  bool pin_threads = true;
  ScoringMode scoring = ScoringMode::kBatched;
};

/// Aggregated serving counters since Start().
struct ServingStats {
  uint64_t requests = 0;  ///< rows scored (fulfilled futures)
  uint64_t batches = 0;
  double wall_sec = 0.0;
  double rows_per_sec = 0.0;        ///< requests / wall_sec
  double mean_batch_rows = 0.0;
  double p50_latency_ms = 0.0;      ///< submit-to-score, per request
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;      ///< exact worst case (never decimated)
  uint64_t local_replica_batches = 0;   ///< routed to the worker's node
  uint64_t remote_replica_batches = 0;  ///< crossed the interconnect
  numa::AccessCounters traffic;         ///< logical totals across workers
};

/// Construct, Publish() at least one model, Start(), then Score().
class ServingEngine {
 public:
  /// `spec` must outlive the engine; it supplies Predict().
  ServingEngine(const models::ModelSpec* spec, ServingOptions options);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Publishes a model version (atomic hot-swap; callable any time, also
  /// while serving). Returns the new version.
  uint64_t Publish(const std::string& name,
                   const std::vector<double>& weights);

  /// Publishes a trainer export: `server.Publish(engine.Export())`.
  uint64_t Publish(const engine::ModelExport& exported);

  /// Starts the worker pool. Fails if no model has been published.
  Status Start();

  /// Drains the queue (every accepted request is still scored), then
  /// stops and joins the workers. Idempotent and final: a stopped engine
  /// cannot be Start()ed again.
  void Stop();

  /// Enqueues one sparse row for scoring. The future resolves with
  /// ModelSpec::Predict of the row under the current model.
  StatusOr<std::future<double>> Score(std::vector<matrix::Index> indices,
                                      std::vector<double> values);

  /// Convenience: Score() and wait for the result.
  StatusOr<double> ScoreSync(std::vector<matrix::Index> indices,
                             std::vector<double> values);

  /// Counters aggregated across workers (callable while serving).
  ServingStats Stats() const;

  /// Serving traffic shaped for numa::MemoryModel::SimulateEpoch -- the
  /// serving analogue of engine::Engine::last_epoch_sim().
  numa::SimulationInput SimInput() const;

  const ModelRegistry& registry() const { return registry_; }
  const ServingOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(worker_nodes_.size()); }

 private:
  struct WorkerState;

  void WorkerLoop(int worker_id);

  const models::ModelSpec* spec_;
  ServingOptions options_;
  ModelRegistry registry_;
  RequestBatcher batcher_;

  std::vector<numa::CoreId> worker_cores_;
  std::vector<numa::NodeId> worker_nodes_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> workers_;
  /// Atomic: Stats() may run on a monitoring thread while the owner
  /// Stop()s; stopped_wall_sec_ is published by the release store.
  std::atomic<bool> running_{false};
  bool stopped_ = false;  ///< owner-thread only (Start/Stop)
  WallTimer serve_timer_;
  double stopped_wall_sec_ = 0.0;
};

}  // namespace dw::serve
