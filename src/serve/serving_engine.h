// The model serving engine: a concurrent scoring service over trained
// models (ROADMAP north star: heavy read traffic, as fast as the hardware
// allows), serving many named model FAMILIES at once.
//
// Architecture: callers RegisterFamily() each model they serve (wide LR,
// narrow SVM, ...), each with its own ModelSpec and traffic estimate; the
// registry picks the family's replication through the opt:: cost model
// (override for benches). Producers Score(family, row); the
// RequestBatcher coalesces each family's requests in its own bounded
// queue; a pool of worker threads -- pinned to physical CPUs through the
// same virtual-topology map the trainer uses -- pops single-family
// mini-batches round-robin and scores every row with that family's
// ModelSpec against the family's replica on the worker's own NUMA node.
// Inference never writes shared state, so with kPerNode replication the
// hot path touches only node-local memory: the read-mostly endpoint of
// the paper's Sec. 3.3 tradeoff.
//
// Requests come in two forms. CARRIED requests ship their own feature
// vector (Score(family, indices, values)). ID-KEYED requests name a row
// in the family's registered serve::FeatureStore (Score(family, row_id)):
// the payload is one integer, and the worker gathers the features at
// scoring time from the store's placement on its own node -- the
// data/worker collocation of the paper's Fig. 9 applied to serving-time
// feature fetch. Stores hot-swap atomically like model snapshots, and a
// worker acquires ONE store snapshot per batch, so a refresh can never
// tear the rows of an in-flight batch across table versions.
//
// Workers account their logical traffic with numa::AccessCounters exactly
// like training epochs do, so bench_serving can report both measured
// rows/sec and memory-model throughput on the paper's topologies.
//
// TELEMETRY: the engine owns an obs::Registry and every serving counter
// is a registry instrument -- lock-free sharded counters for rows/bytes,
// bounded-error histograms for latency, staleness, and the per-stage
// decomposition (admit/queue/batch-form/gather/score/complete), with the
// worker's NUMA traffic drained into per-node numa.* counters so
// serve-time local/remote DRAM requests are visible the way the paper
// reports them for training. ServingStats()/FamilyServingStats are THIN
// VIEWS over the registry (plus live queue state), so existing callers
// keep working; a sampled obs::SpanRecorder keeps whole per-request
// stage breakdowns; options_.telemetry=false swaps in a no-op registry
// (the bench_serving overhead baseline).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/metrics.h"
#include "models/model_spec.h"
#include "numa/access_counters.h"
#include "numa/memory_model.h"
#include "numa/topology.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "opt/admission_controller.h"
#include "opt/placement_tuner.h"
#include "serve/feature_store.h"
#include "serve/model_registry.h"
#include "serve/request_batcher.h"
#include "util/barrier.h"
#include "util/status.h"
#include "util/timer.h"

namespace dw::serve {

/// How a worker scores a flushed mini-batch.
enum class ScoringMode {
  /// One ModelSpec::PredictBatch call per batch: the GLM kernels tile the
  /// node-local replica through the cache hierarchy (column-blocked for
  /// dense rows, monotone-cursor gather for sparse rows), so each model
  /// block is read once per batch instead of once per row.
  kBatched,
  /// N ModelSpec::Predict calls, one per row; the pre-PredictBatch
  /// behavior, kept as the bench_serving baseline.
  kScalar,
};

const char* ToString(ScoringMode m);

/// Thrown through a KEY-KEYED request's future when the key vanished
/// between admission and the gather: the worker resolves keys against the
/// batch's pinned store snapshot, and a key the admission check saw can
/// be evicted by a delta publish that lands in between. Callers holding
/// the raw future see this from .get(); ScoreKeySync translates it to
/// Status::NotFound. Counted per family as store.key_misses.
class StoreKeyMiss : public std::runtime_error {
 public:
  StoreKeyMiss(const std::string& family, uint64_t key)
      : std::runtime_error("key " + std::to_string(key) +
                           " not present in the feature store for family " +
                           family),
        key_(key) {}
  uint64_t key() const { return key_; }

 private:
  uint64_t key_;
};

struct ServingOptions {
  numa::Topology topology = numa::HostTopology();
  /// Scoring threads; -1 means one per virtual core. Workers are assigned
  /// to nodes round-robin so every socket serves traffic at any count.
  int num_threads = -1;
  /// Default per-family queue options (overridable per family).
  RequestBatcher::Options batch;
  /// Pin workers to physical CPUs through the topology map.
  bool pin_threads = true;
  ScoringMode scoring = ScoringMode::kBatched;
  /// Full telemetry (registry instruments + stage histograms + sampled
  /// spans). false swaps in a DISABLED registry: every instrument write
  /// is a no-op, every Stats() counter reads 0 -- the bench_serving
  /// overhead baseline, not a production mode.
  bool telemetry = true;
  /// Span ring capacity (0 disables tracing but keeps stage histograms).
  size_t trace_capacity = 256;
  /// Sample every Nth accepted request into the span ring; 0 disables.
  /// Forwarded into each family's RequestBatcher::Options (an explicit
  /// per-family trace_sample_every in ServingFamilyOptions::batch wins).
  uint64_t trace_sample_every = 64;
};

/// Per-family knobs at registration. Replication is NOT one of them: the
/// registry derives it from `traffic` through opt::ChooseServingReplication
/// unless the bench-only override is set.
struct ServingFamilyOptions {
  /// Traffic estimate for the replication chooser; `traffic.dim` is
  /// required (it also fixes the admission dimension check). The same
  /// estimate seeds the admission controller's memory-model prior for
  /// the family's per-row service time.
  opt::ServingTrafficEstimate traffic;
  /// Bench/ablation escape hatch; leave unset in production.
  std::optional<Replication> replication_override;
  /// Family-specific queue bounds; defaults to ServingOptions::batch.
  std::optional<RequestBatcher::Options> batch;
  /// Fair-queuing weights for known clients (relative shares of the
  /// family's batches and admission capacity). Clients not listed here
  /// get weight 1 on first Submit.
  std::vector<std::pair<ClientId, double>> client_weights;
  /// Serve this family from int8-quantized replicas: every Publish also
  /// builds an int8 image (symmetric per-family scale, zero point 0) and
  /// batched workers score through the spec's dequantize-free
  /// PredictBatchQuantized kernel, moving 1/8 the model bytes. Scores
  /// carry the bounded quantization error documented at
  /// kernels::QuantizeWeights. RegisterFamily refuses this for specs
  /// without SupportsQuantizedPredict(). Scalar-mode workers (the bench
  /// baseline) keep scoring the f64 replica.
  bool quantized = false;
};

/// Per-client admission/service counters inside FamilyServingStats.
struct ClientServingStats {
  std::string client;
  double weight = 1.0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;  ///< full-share and over-budget refusals
  uint64_t served = 0;    ///< rows handed to workers in batches
  uint64_t queue_depth = 0;
};

/// Per-family serving counters since Start().
struct FamilyServingStats {
  std::string family;
  Replication replication = Replication::kPerNode;
  /// The scoring-kernel dispatch level every batched kernel ran at
  /// ("scalar" | "avx2" | "avx512"; kernels::ActiveKernelLevel()).
  std::string kernel_level;
  /// True when the family serves from int8-quantized replicas.
  bool quantized = false;
  /// Rows scored through the batched kernels (subset of `requests`;
  /// scalar-mode and fallback rows are excluded).
  uint64_t kernel_rows = 0;
  uint64_t requests = 0;  ///< rows scored (fulfilled futures)
  uint64_t batches = 0;
  double rows_per_sec = 0.0;
  double mean_batch_rows = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  uint64_t local_replica_batches = 0;
  uint64_t remote_replica_batches = 0;
  // Admission counters (cost-aware: opt::AdmissionController).
  uint64_t accepted = 0;
  uint64_t rejected = 0;       ///< all back-pressure refusals
  uint64_t rejected_cost = 0;  ///< the delay-budget subset of `rejected`
  uint64_t queue_depth = 0;    ///< rows queued right now
  uint64_t flush_size = 0;
  uint64_t flush_deadline = 0;
  uint64_t flush_drain = 0;
  // The admission controller's view of the family (all microseconds per
  // row): the memory-model prior, the calibrated estimate admission
  // tests against the delay budget, and the workers' measured EWMA that
  // calibrates it online.
  double prior_row_us = 0.0;
  double est_row_us = 0.0;
  double measured_row_us_ewma = 0.0;
  uint64_t cost_reports = 0;  ///< worker batch timings folded in
  /// Per-client fair-queuing view, first-seen order.
  std::vector<ClientServingStats> clients;
  // Snapshot staleness at scoring time (per batch): ms since the served
  // version's weights left the trainer, and how many newer publishes
  // existed when the batch was scored.
  double mean_staleness_ms = 0.0;
  double max_staleness_ms = 0.0;
  double mean_versions_behind = 0.0;
  uint64_t max_versions_behind = 0;
  uint64_t served_version = 0;  ///< current version at Stats() time
  // Serving-time feature store (id-keyed requests); all zero for a
  // family without a registered store.
  uint64_t id_rows = 0;           ///< rows scored via Score(family, row_id)
  uint64_t local_store_rows = 0;  ///< gathered from the worker's own node
  uint64_t remote_store_rows = 0; ///< gathered across the interconnect
  uint64_t store_version = 0;     ///< current table version at Stats() time
  uint64_t store_local_bytes = 0;   ///< feature bytes gathered node-locally
  uint64_t store_remote_bytes = 0;  ///< feature bytes gathered remotely
  // KV-keyed serving (ScoreKey) and delta-refresh accounting; all zero
  // for a family scored purely by row id or carried payloads.
  uint64_t key_rows = 0;    ///< rows scored via ScoreKey (subset of id_rows)
  uint64_t key_misses = 0;  ///< key lookups that missed the pinned snapshot
  uint64_t store_delta_bytes = 0;  ///< bytes actually written by publishes
  uint64_t store_full_bytes = 0;   ///< what full rewrites would have written
  uint64_t store_evictions = 0;    ///< keys evicted by the page clock
  uint64_t store_live_rows = 0;    ///< resident keys at Stats() time
  /// Mean per-row time in each lifecycle stage (obs::Stage order:
  /// admit, queue, batch-form, gather, score, complete), microseconds.
  /// Batch-level stages are row-weighted means.
  std::array<double, obs::kNumStages> mean_stage_us{};
};

/// Aggregated serving counters since Start().
struct ServingStats {
  uint64_t requests = 0;  ///< rows scored (fulfilled futures)
  uint64_t batches = 0;
  double wall_sec = 0.0;
  double rows_per_sec = 0.0;        ///< requests / wall_sec
  double mean_batch_rows = 0.0;
  double p50_latency_ms = 0.0;      ///< submit-to-score, per request
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;      ///< exact worst case (never decimated)
  uint64_t local_replica_batches = 0;   ///< routed to the worker's node
  uint64_t remote_replica_batches = 0;  ///< crossed the interconnect
  numa::AccessCounters traffic;         ///< logical totals across workers
  std::vector<FamilyServingStats> families;  ///< registration order
};

/// Construct, RegisterFamily() + Publish() each model, Start(), then
/// Score(family, row).
class ServingEngine {
 public:
  explicit ServingEngine(ServingOptions options);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Registers a named family served by `spec` (must outlive the engine).
  /// The registry chooses its replication from the traffic estimate.
  /// Fails after Start() and on duplicate names.
  Status RegisterFamily(const std::string& family,
                        const models::ModelSpec* spec,
                        const ServingFamilyOptions& fopts);

  /// Registers a read-only feature table of `rows` x `dim` doubles for
  /// `family`, enabling the id-keyed request form Score(family, row_id).
  /// The table's placement across sockets (replicated vs sharded) is
  /// chosen by opt::ChooseStorePlacement from `sopts.reads_per_refresh`
  /// and the table shape unless the bench-only
  /// `sopts.placement_override` pins it. `dim` must equal the family's
  /// model dimension (an id-keyed row feeds the family's PredictBatch
  /// directly). Fails after Start(), on unknown families, on duplicate
  /// stores, and on shape mismatches.
  Status RegisterStore(const std::string& family, matrix::Index rows,
                       matrix::Index dim, const StoreOptions& sopts = {});

  /// Publishes a new feature table version into `family`'s store
  /// (atomic hot-swap; callable any time, also while serving -- a batch
  /// in flight keeps gathering from the snapshot it acquired, so a
  /// refresh never tears a batch). `row_major` is rows x dim doubles,
  /// row r at offset r * dim. The store must be registered (checked).
  /// Returns the new table version.
  uint64_t PublishStore(const std::string& family,
                        const std::vector<double>& row_major);

  /// Publishes a DELTA into `family`'s store: upserts `keys[i]` with row
  /// `row_major[i*dim .. (i+1)*dim)`, cloning only the touched pages into
  /// a new snapshot (copy-on-write; untouched pages are shared with the
  /// previous version) and hot-swapping it exactly like PublishStore.
  /// Refresh cost therefore scales with churn, not table size. When the
  /// store is at capacity, cold pages are evicted (clock over pages) to
  /// make room; evicted keys miss until re-published. The store must be
  /// registered (checked); a delta may also BOOTSTRAP a store that has
  /// never seen a full PublishStore (never-touched pages simply stay
  /// unallocated). Returns the publish report (new version + byte
  /// accounting).
  StorePublishReport PublishStoreDelta(const std::string& family,
                                       const std::vector<uint64_t>& keys,
                                       const std::vector<double>& row_major);

  /// Publishes a model version into `family` (atomic hot-swap; callable
  /// any time, also while serving). The family must be registered
  /// (checked). Returns the new version.
  uint64_t Publish(const std::string& family,
                   const std::vector<double>& weights);

  /// Publishes a trainer export: `server.Publish("ctr", engine.Export())`.
  /// Carries the export timestamp through for staleness accounting.
  uint64_t Publish(const std::string& family,
                   const engine::ModelExport& exported);

  /// Starts the worker pool. Fails unless at least one family is
  /// registered and every registered family has a published version.
  Status Start();

  /// Drains the queues (every accepted request is still scored), then
  /// stops and joins the workers (the tuner's scan thread first, so no
  /// migration races the drain). Idempotent and final: a stopped engine
  /// cannot be Start()ed again.
  void Stop();

  /// Enables the live placement tuner over every registered family: a
  /// control loop that re-runs the registration-time choosers on the
  /// traffic the registry actually observed and live-migrates
  /// replication / store placement when the decision flips (see
  /// opt::PlacementTuner). Call AFTER Start() -- the tuner reads live
  /// traffic -- and at most once; requires telemetry (a disabled
  /// registry leaves the tuner blind, checked). Returns the tuner
  /// (engine-owned; also reachable through tuner()) so callers can
  /// AttachExporter() or drive ScanOnce() manually in tests/benches.
  opt::PlacementTuner* EnableTuner(const opt::TunerOptions& topts);

  /// The live placement tuner; nullptr until EnableTuner().
  opt::PlacementTuner* tuner() { return tuner_.get(); }

  /// Enqueues one sparse row for scoring against `family`, attributed to
  /// the trailing `client` for fair queuing and per-client admission
  /// shares. The future resolves with that family's ModelSpec::Predict
  /// of the row under the family's current model. InvalidArgument on an
  /// empty or oversized client id.
  StatusOr<std::future<double>> Score(const std::string& family,
                                      std::vector<matrix::Index> indices,
                                      std::vector<double> values,
                                      ClientId client);

  /// Single-tenant convenience: Score() as kDefaultClient.
  StatusOr<std::future<double>> Score(const std::string& family,
                                      std::vector<matrix::Index> indices,
                                      std::vector<double> values);

  /// Enqueues one ID-KEYED request for `client`: the features for
  /// `row_id` come from the family's registered FeatureStore, gathered
  /// by the scoring worker from its node's placement -- the data/worker
  /// collocation of the paper's Fig. 9, applied to serving. Admission
  /// mirrors the carried form's Status codes: NotFound for an unknown
  /// family, InvalidArgument for an out-of-range row id (as for an
  /// out-of-range feature index) or a bad client id, FailedPrecondition
  /// when no store is registered or nothing is published yet,
  /// ResourceExhausted on back-pressure.
  StatusOr<std::future<double>> Score(const std::string& family,
                                      matrix::Index row_id, ClientId client);

  /// Single-tenant convenience: id-keyed Score() as kDefaultClient.
  StatusOr<std::future<double>> Score(const std::string& family,
                                      matrix::Index row_id);

  /// Enqueues one KEY-KEYED request for `client`: the request ships a
  /// 64-bit key instead of a dense row id, and the scoring worker
  /// resolves it through the store's sharded key index against the
  /// batch's pinned snapshot (lock-free probe, no master lock on the hot
  /// path). Admission mirrors the id form's Status codes, plus NotFound
  /// for a key absent from the current index (also counted as a
  /// store.key_misses hit -- the caller-visible symptom of eviction). A
  /// key evicted between admission and the gather resolves the future
  /// with a StoreKeyMiss exception instead.
  StatusOr<std::future<double>> ScoreKey(const std::string& family,
                                         uint64_t key, ClientId client);

  /// Single-tenant convenience: key-keyed ScoreKey() as kDefaultClient.
  StatusOr<std::future<double>> ScoreKey(const std::string& family,
                                         uint64_t key);

  /// String-keyed convenience: hashes `key` through FeatureStore::HashKey
  /// (FNV-1a). The caller owns collision avoidance at publish time --
  /// the store keys rows by the 64-bit hash.
  StatusOr<std::future<double>> ScoreKey(const std::string& family,
                                         std::string_view key,
                                         ClientId client);

  StatusOr<std::future<double>> ScoreKey(const std::string& family,
                                         std::string_view key);

  /// Convenience: Score() and wait for the result.
  StatusOr<double> ScoreSync(const std::string& family,
                             std::vector<matrix::Index> indices,
                             std::vector<double> values, ClientId client);

  StatusOr<double> ScoreSync(const std::string& family,
                             std::vector<matrix::Index> indices,
                             std::vector<double> values);

  /// Convenience: id-keyed Score() and wait for the result.
  StatusOr<double> ScoreSync(const std::string& family,
                             matrix::Index row_id, ClientId client);

  StatusOr<double> ScoreSync(const std::string& family,
                             matrix::Index row_id);

  /// Convenience: key-keyed ScoreKey() and wait. A key that vanished
  /// between admission and the gather (StoreKeyMiss through the future)
  /// comes back as Status::NotFound, same as an admission-time miss.
  StatusOr<double> ScoreKeySync(const std::string& family, uint64_t key,
                                ClientId client);

  StatusOr<double> ScoreKeySync(const std::string& family, uint64_t key);

  StatusOr<double> ScoreKeySync(const std::string& family,
                                std::string_view key, ClientId client);

  StatusOr<double> ScoreKeySync(const std::string& family,
                                std::string_view key);

  /// Looks up a family's registered feature store; nullptr when the
  /// family is unknown or has no store. Valid for the engine's lifetime.
  const FeatureStore* FindStore(const std::string& family) const;

  /// Counters aggregated across workers (callable while serving),
  /// globally and per family.
  ServingStats Stats() const;

  /// Serving traffic shaped for numa::MemoryModel::SimulateEpoch -- the
  /// serving analogue of engine::Engine::last_epoch_sim().
  numa::SimulationInput SimInput() const;

  const ModelRegistry& registry() const { return registry_; }
  /// The admission cost model (estimates readable while serving).
  const opt::AdmissionController& admission() const { return admission_; }
  /// The engine's metric registry: every serving counter/histogram lives
  /// here (disabled when options().telemetry is false). Exposed so an
  /// obs::TelemetryExporter can scrape it while serving.
  obs::Registry& telemetry() { return obs_; }
  const obs::Registry& telemetry() const { return obs_; }
  /// Sampled request traces (readable while serving).
  const obs::SpanRecorder& spans() const { return spans_; }
  const ServingOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(worker_nodes_.size()); }
  int num_families() const;

 private:
  struct WorkerState;

  /// A family's registry instruments, resolved once at RegisterFamily
  /// (labels {family=<name>}). Raw pointers into obs_, stable for the
  /// engine's life; copyable so COW table copies share them. On a
  /// disabled registry these are no-op instruments, never nullptr.
  struct FamilyInstruments {
    obs::Counter* rows = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* local_replica_batches = nullptr;
    obs::Counter* remote_replica_batches = nullptr;
    obs::Counter* id_rows = nullptr;
    obs::Counter* local_store_rows = nullptr;
    obs::Counter* remote_store_rows = nullptr;
    obs::Counter* store_local_bytes = nullptr;
    obs::Counter* store_remote_bytes = nullptr;
    /// store.key_rows / store.key_misses: KV-keyed requests resolved
    /// through the sharded key index, and the lookups that missed it
    /// (the caller-visible symptom of eviction).
    obs::Counter* key_rows = nullptr;
    obs::Counter* key_misses = nullptr;
    /// store.delta_bytes / store.full_bytes / store.evictions: publish
    /// byte odometers and clock evictions, written by the store itself
    /// on every Publish/PublishDelta/Republish (AttachInstruments), so
    /// tuner-driven flips are accounted too.
    obs::Counter* store_delta_bytes = nullptr;
    obs::Counter* store_full_bytes = nullptr;
    obs::Counter* store_evictions = nullptr;
    /// serve.kernel_rows{family=...,kernel=<level>,weights=f64|int8}:
    /// rows scored through the batched dispatch kernels.
    obs::Counter* kernel_rows = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::Histogram* staleness_ms = nullptr;
    obs::Histogram* versions_behind = nullptr;
    /// serve.stage_us{family=...,stage=<name>}, obs::Stage order.
    std::array<obs::Histogram*, obs::kNumStages> stage_us{};
  };

  /// One registered family's serving handle (index == its FamilyId).
  struct FamilyState {
    std::string name;
    ModelFamily* family = nullptr;
    const models::ModelSpec* spec = nullptr;
    /// Feature table for id-keyed requests; nullptr when none is
    /// registered (owned by stores_, so COW table copies share it).
    FeatureStore* store = nullptr;
    FamilyId queue = 0;
    /// Score from the snapshot's int8 replicas (batched mode only).
    bool quantized = false;
    /// The registration-time traffic estimate, kept so EnableTuner can
    /// seed the tuner's choosers with the family's batch shape (the
    /// observed read rate then replaces the estimated one every scan).
    opt::ServingTrafficEstimate traffic;
    FamilyInstruments inst;
  };

  /// The registered families plus their name index, published as one
  /// immutable unit: Score() may race RegisterFamily() before Start()
  /// (two services booting), so the hot-path lookup reads a COW table
  /// with a single atomic load, mirroring ModelRegistry::families_.
  struct FamilyTable {
    std::vector<FamilyState> families;
    std::unordered_map<std::string, FamilyId> ids;
  };

  void WorkerLoop(int worker_id);

  /// Current table (atomic_load; never nullptr).
  std::shared_ptr<const FamilyTable> Table() const;

  /// Admission-path family lookup shared by both Score forms: frozen raw
  /// pointer post-Start, COW load pre-Start (`keepalive` pins the cold
  /// table for the caller's use). nullptr for unknown families.
  const FamilyState* FindFamilyState(
      const std::string& family,
      std::shared_ptr<const FamilyTable>* keepalive) const;

  ServingOptions options_;
  /// Declared before everything that resolves instruments out of it
  /// (admission_, batcher_, the family table), so it outlives every
  /// raw instrument pointer on teardown.
  obs::Registry obs_;
  obs::SpanRecorder spans_;
  /// numa.{local,remote,model}_read_bytes{node=N}: serve-time logical
  /// DRAM traffic per node, the serving analogue of the training
  /// epochs' AccessCounters report (indexed by NodeId).
  struct NodeTraffic {
    obs::Counter* local_read_bytes = nullptr;
    obs::Counter* remote_read_bytes = nullptr;
    obs::Counter* model_read_bytes = nullptr;
  };
  std::vector<NodeTraffic> node_traffic_;
  ModelRegistry registry_;
  /// Estimates per-family batch service times (memory-model prior +
  /// worker-measured EWMA); the batcher consults it at admission and the
  /// workers feed measured batch times back into it.
  opt::AdmissionController admission_;
  RequestBatcher batcher_;
  /// Places feature-store shards/replicas (its ledger is the stores'
  /// placement record, separate from the registry's model ledger).
  std::shared_ptr<numa::NumaAllocator> store_allocator_;
  /// Owns the feature stores; append-only under register_mu_, so the raw
  /// pointers in FamilyState stay stable.
  std::vector<std::unique_ptr<FeatureStore>> stores_;
  /// Live placement tuner (EnableTuner); declared after everything it
  /// scans (obs_, registry_, admission_, stores_) so it is torn down
  /// first.
  std::unique_ptr<opt::PlacementTuner> tuner_;

  /// Serializes RegisterFamily (copy + swap of table_) and Start().
  std::mutex register_mu_;
  /// Accessed only through std::atomic_load/atomic_store.
  std::shared_ptr<const FamilyTable> table_;
  /// Set once by Start() to the final table (frozen from then on, and
  /// kept alive by table_): Score() reads this raw pointer instead of
  /// paying a shared_ptr atomic load + refcount bounce per single-row
  /// submit on the admission hot path. nullptr before Start().
  std::atomic<const FamilyTable*> frozen_table_{nullptr};

  std::vector<numa::CoreId> worker_cores_;
  std::vector<numa::NodeId> worker_nodes_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> workers_;
  /// Atomic: Stats() may run on a monitoring thread while the owner
  /// Stop()s; stopped_wall_sec_ is published by the release store.
  std::atomic<bool> running_{false};
  bool stopped_ = false;  ///< owner-thread only (Start/Stop)
  WallTimer serve_timer_;
  double stopped_wall_sec_ = 0.0;
};

}  // namespace dw::serve
