// NUMA-placed, versioned, KV-grade feature tables for keyed serving.
//
// Carried-feature requests make the CLIENT the feature source: every
// Score(family, indices, values) ships the row over the wire and the
// worker streams it from wherever the request buffer landed. For wide
// models that is the anti-pattern the paper's Fig. 9 data-replication
// study warns about -- the serving path ignores the data/worker
// collocation that governs main-memory throughput. A FeatureStore flips
// the source: the table of feature rows is registered per model family,
// placed across sockets through the same numa::NumaAllocator machinery
// the trainer uses, and a request names only a row id or an entity key;
// the scoring worker gathers the features from its node's placement at
// scoring time.
//
// The table is organized as fixed-size PAGES of rows, each page holding
// one NUMA fragment per node (a full copy of the page's span under
// kReplicated; the slots with slot % nodes == n, compacted, under
// kSharded -- so sharding stays row-granular round-robin exactly as
// before, pages only change the ALLOCATION granularity). Three things
// ride on that:
//
//   Keys.   A per-node open-addressing key -> slot index (hash-sharded
//           across nodes like the data pages) lets requests ship a
//           uint64 entity key -- or a string, hashed through HashKey()
//           -- instead of a dense row id. Lookups are lock-free reads
//           against the published snapshot.
//   Deltas. PublishDelta(keys, rows) clones ONLY the pages and index
//           shards the delta touches, shares every untouched page with
//           the previous version, and hot-swaps exactly like a full
//           Publish. Refresh bandwidth is O(churned pages), not
//           O(table) -- the bytes-moved win the PIM literature chases,
//           applied to the refresh path.
//   Eviction. When every slot is live and a delta brings new keys, a
//           clock sweep over pages (reference bits set by scoring-time
//           gathers) evicts a cold page: its keys tombstone out of the
//           index and later lookups miss (surfaced by the engine as a
//           per-family kNotFound + store.key_misses). Capacity is
//           bounded by the construction-time shape; churning entity
//           sets recycle slots instead of growing.
//
// Placement is not passed in by the caller: it is chosen at construction
// by opt::ChooseStorePlacement() from the calibrated memory model, the
// topology, and the store's traffic estimate (table shape, gathers per
// refresh, expected churn). Benches that need a fixed strategy set
// StoreOptions::placement_override.
//
// Hot-swap: every publish builds the new version entirely off to the
// side and installs it with one atomic pointer store, exactly like
// ModelFamily. Workers Acquire() one immutable FeatureStoreSnapshot per
// batch, so a refresh never tears the rows of an in-flight batch across
// versions. The table SHAPE (rows x dim) is fixed at construction so
// request admission can validate row ids once, ahead of whichever
// version eventually serves the batch.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matrix/sparse_vector.h"
#include "numa/numa_allocator.h"
#include "opt/store_placement.h"
#include "serve/replication.h"
#include "util/logging.h"

namespace dw::obs {
class Counter;
}  // namespace dw::obs

namespace dw::serve {

/// One page's NUMA fragments. Immutable once linked into a snapshot;
/// untouched pages are SHARED between consecutive versions (that sharing
/// is what makes a delta publish O(churn)).
struct StorePage {
  /// fragments[n] lives on node n. kReplicated: the full page span.
  /// kSharded: the page's slots with slot % nodes == n, compacted.
  std::vector<numa::NodeArray<double>> fragments;
};

/// One open-addressing key->slot shard (linear probing). Shard i is
/// allocated on node i through the store's index allocator; snapshots
/// share unchanged shards exactly like data pages.
struct StoreIndexShard {
  /// marker: 0 empty, UINT64_MAX tombstone, else slot + 1. The zeroed
  /// NodeArray allocation IS the empty table.
  struct Entry {
    uint64_t key;
    uint64_t marker;
  };
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTombstone = ~uint64_t{0};

  numa::NodeArray<Entry> entries;
  uint64_t capacity = 0;  ///< power of two (0 = never populated)
  uint64_t live = 0;
  uint64_t tombstones = 0;
};

/// Per-shard index occupancy, for load-factor/balance tests and stats.
struct StoreIndexShardStats {
  numa::NodeId node = 0;
  uint64_t capacity = 0;
  uint64_t live = 0;
  uint64_t tombstones = 0;
};

/// What one publish moved. delta_bytes / full_bytes is the observed
/// churn fraction the placement tuner re-costs on.
struct StorePublishReport {
  uint64_t version = 0;
  uint64_t delta_bytes = 0;    ///< bytes actually written (pages + index)
  uint64_t full_bytes = 0;     ///< bytes a full rewrite would have written
  uint64_t touched_pages = 0;  ///< pages cloned (evicted pages excluded)
  uint64_t evicted_keys = 0;   ///< keys tombstoned to make room
  uint64_t live_rows = 0;      ///< live slots after the publish
};

/// Avalanching mix for u64 entity keys (splitmix64 finalizer): the shard
/// choice and probe sequence both need high bits that move.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One immutable, versioned feature table. Readers hold it via
/// shared_ptr, so a snapshot stays valid for as long as any in-flight
/// batch references it, even after newer versions are published.
class FeatureStoreSnapshot {
 public:
  uint64_t version() const { return version_; }
  /// Family this table serves.
  const std::string& family() const { return family_; }
  /// Slot capacity (fixed shape), NOT the live-key count.
  matrix::Index rows() const { return rows_; }
  matrix::Index dim() const { return dim_; }
  StorePlacement placement() const { return placement_; }
  int num_shards() const { return num_nodes_; }
  /// Rows per page (a multiple of num_shards, so every page starts on
  /// the round-robin boundary).
  matrix::Index page_rows() const { return page_rows_; }
  size_t num_pages() const { return pages_.size(); }
  /// Live (key-addressable) slots in this version.
  uint64_t live_rows() const { return live_rows_; }

  /// Node owning row `row`'s bytes for a reader on `node`: the reader's
  /// own node under kReplicated (its local copy), the interleaved shard
  /// owner under kSharded. Drives the worker's local/remote gather
  /// accounting. Both indices are validated: an out-of-range row under
  /// kSharded would otherwise read past a shard (and silently serve a
  /// neighboring row's features, or worse).
  numa::NodeId OwnerNodeFor(numa::NodeId node, matrix::Index row) const {
    CheckIndices(node, row);
    if (placement_ == StorePlacement::kReplicated) return node;
    return static_cast<numa::NodeId>(row % static_cast<matrix::Index>(
                                               num_nodes_));
  }

  /// Feature row `row` (dim() doubles) for a reader on `node`: the
  /// node-local page fragment under kReplicated, the owner fragment
  /// (possibly remote) under kSharded. Same index validation as
  /// OwnerNodeFor. The slot's page must be resident (live slot, or any
  /// slot of a full Publish); gathering an evicted slot is a bug the
  /// caller screens with SlotLive().
  const double* RowForNode(numa::NodeId node, matrix::Index row) const {
    CheckIndices(node, row);
    const StorePage* page = pages_[row / page_rows_].get();
    DW_CHECK(page != nullptr)
        << "row " << row << " gathered from an evicted page of store "
        << family_;
    const matrix::Index in_page = row % page_rows_;
    if (placement_ == StorePlacement::kReplicated) {
      return page->fragments[node].data() +
             static_cast<size_t>(in_page) * dim_;
    }
    const matrix::Index nodes = static_cast<matrix::Index>(num_nodes_);
    return page->fragments[row % nodes].data() +
           static_cast<size_t>(in_page / nodes) * dim_;
  }

  /// Lock-free key lookup against this version's index: the slot holding
  /// `key`'s feature row, or nullopt (never published, or evicted).
  std::optional<matrix::Index> LookupSlot(uint64_t key) const {
    const uint64_t h = MixKey(key);
    const StoreIndexShard* shard =
        index_shards_[h % static_cast<uint64_t>(num_nodes_)].get();
    if (shard == nullptr || shard->capacity == 0) return std::nullopt;
    const uint64_t mask = shard->capacity - 1;
    uint64_t i = (h >> 17) & mask;
    for (uint64_t probes = 0; probes <= mask; ++probes) {
      const StoreIndexShard::Entry& e = shard->entries[i];
      if (e.marker == StoreIndexShard::kEmpty) return std::nullopt;
      if (e.marker != StoreIndexShard::kTombstone && e.key == key) {
        return static_cast<matrix::Index>(e.marker - 1);
      }
      i = (i + 1) & mask;
    }
    return std::nullopt;
  }

  /// Whether slot `row` holds a live feature row in this version. Id-
  /// keyed gathers screen with this so a row id whose entity was evicted
  /// misses (kNotFound) instead of reading a dropped page.
  bool SlotLive(matrix::Index row) const {
    CheckIndices(0, row);
    return ((*occupancy_)[row >> 6] >> (row & 63)) & 1u;
  }

  /// Marks row `row`'s page referenced for the store's clock eviction.
  /// Called by scoring workers on every gather; relaxed store, no
  /// ordering needed (a lost touch just ages the page faster).
  void TouchRow(matrix::Index row) const {
    (*ref_bits_)[row / page_rows_].store(1, std::memory_order_relaxed);
  }

  /// Per-shard index stats (capacity/live/tombstones), for balance and
  /// load-factor tests.
  std::vector<StoreIndexShardStats> IndexStats() const;

 private:
  friend class FeatureStore;
  FeatureStoreSnapshot() = default;

  void CheckIndices(numa::NodeId node, matrix::Index row) const {
    DW_CHECK_GE(node, 0) << "negative node for store " << family_;
    DW_CHECK_LT(node, num_nodes_) << "node out of range for store "
                                  << family_;
    DW_CHECK_LT(row, rows_) << "row out of range for store " << family_;
  }

  uint64_t version_ = 0;
  std::string family_;
  matrix::Index rows_ = 0;
  matrix::Index dim_ = 0;
  StorePlacement placement_ = StorePlacement::kReplicated;
  int num_nodes_ = 1;
  matrix::Index page_rows_ = 64;
  uint64_t live_rows_ = 0;
  /// Keep the ledgers the pages/index report into alive even if a reader
  /// outlives the store. Declared before the owning members so they are
  /// destroyed after them (their destructors post to the ledgers).
  std::shared_ptr<numa::NumaAllocator> allocator_;
  std::shared_ptr<numa::NumaAllocator> index_allocator_;
  /// Page chain; nullptr = evicted (or never-populated) page. Untouched
  /// entries are shared with the previous version.
  std::vector<std::shared_ptr<const StorePage>> pages_;
  /// Key index, one shard per node; unchanged shards shared like pages.
  std::vector<std::shared_ptr<const StoreIndexShard>> index_shards_;
  /// Bitmap of live slots (one bit per slot), cloned per publish.
  std::shared_ptr<const std::vector<uint64_t>> occupancy_;
  /// Per-page reference bits for clock eviction. Shared with the store
  /// and ALL versions (capacity is fixed, so the page count is too).
  std::shared_ptr<std::vector<std::atomic<uint8_t>>> ref_bits_;
};

/// Construction-time description of a store. The traffic estimate feeds
/// the placement chooser (its rows/dim are filled in from the
/// constructor arguments, so only the read/refresh asymmetry and the
/// expected churn need stating).
struct StoreOptions {
  /// Expected row gathers per table refresh.
  double reads_per_refresh = 65536.0;
  /// Expected fraction of the table each refresh rewrites (1.0 = full
  /// rewrite, the pre-delta behavior). Scales the refresh cost in the
  /// placement chooser; the tuner later replaces it with the OBSERVED
  /// delta_bytes / full_bytes ratio.
  double churn_per_refresh = 1.0;
  /// Allocation granularity of the copy-on-write page chain, in rows.
  /// Rounded up to a multiple of the node count. Smaller pages shrink
  /// delta bytes; larger pages shrink per-page overhead.
  matrix::Index page_rows = 64;
  /// Explicit placement for benches/ablations; leave unset in production
  /// so the cost model decides.
  std::optional<StorePlacement> placement_override;
};

/// One family's feature store: a versioned immutable page chain, a
/// hash-sharded key index, and the placement strategy chosen at
/// construction. Obtained from ServingEngine::RegisterStore (or
/// constructed directly for tests).
class FeatureStore {
 public:
  /// Chooses the placement through opt::ChooseStorePlacement unless
  /// options.placement_override pins it. `rows`/`dim` fix the slot
  /// capacity and row width for every future version.
  FeatureStore(std::string family,
               std::shared_ptr<numa::NumaAllocator> allocator,
               matrix::Index rows, matrix::Index dim,
               const StoreOptions& options);

  const std::string& family() const { return family_; }
  /// Slot capacity, fixed at construction. Lock-free; safe on the
  /// request admission hot path (row-id validation).
  matrix::Index rows() const { return rows_; }
  matrix::Index dim() const { return dim_; }
  /// The placement the NEXT publish builds under. Lock-free: chosen at
  /// construction, thereafter changed only by Republish (the placement
  /// tuner's live-migration path).
  StorePlacement placement() const {
    return placement_.load(std::memory_order_acquire);
  }
  /// Why the chooser picked the construction-time placement ("explicit
  /// override" when the caller pinned it instead).
  const std::string& rationale() const { return rationale_; }

  /// Stable hash for string entity keys; callers that key by string pass
  /// HashKey(name) everywhere a u64 key is taken (FNV-1a, then mixed at
  /// lookup -- collisions are a caller-namespace concern, as in any
  /// hashed KV front door).
  static uint64_t HashKey(std::string_view key);

  /// Full rewrite: copies the row-major table (`rows() * dim()` doubles,
  /// row r at offset r * dim()) into a fresh page chain under identity
  /// keys (key r -> slot r, all slots live) and installs it as the
  /// store's current version (monotonic from 1). The size must match
  /// the fixed shape: admission validates row ids against rows() once,
  /// which is only sound if every version agrees. Resets any prior
  /// key->slot state.
  uint64_t Publish(const std::vector<double>& row_major);

  /// Delta publish: upserts `keys[i] -> row_major[i*dim .. )`, cloning
  /// only the touched pages and index shards; every untouched page is
  /// shared with the previous version. New keys take free slots; when
  /// none remain, a clock sweep evicts a cold page (its keys then miss).
  /// Dies on shape mismatch or a duplicate key within one delta.
  StorePublishReport PublishDelta(const std::vector<uint64_t>& keys,
                                  const std::vector<double>& row_major);

  /// Live migration: re-lays the CURRENT version's resident pages under
  /// `placement` and installs the result as a new version through the
  /// regular hot-swap path -- in-flight batches keep the snapshot they
  /// gathered from and no row ever tears. Delta-aware: only resident
  /// pages are copied (evicted pages stay evicted) and the key index and
  /// occupancy are SHARED with the previous version, so a tuner-driven
  /// flip pays O(live pages), never a full-table rebuild plus rehash.
  /// No-op (returns the current version) when the placement already
  /// matches. CHECKs that a version has been published.
  uint64_t Republish(StorePlacement placement);

  /// Acquires the current table (nullptr before the first publish).
  std::shared_ptr<const FeatureStoreSnapshot> Acquire() const;

  /// Version of the current table (0 before the first publish).
  /// Lock-free: admission gates id-keyed requests on it.
  uint64_t current_version() const {
    return current_version_.load(std::memory_order_acquire);
  }

  /// Whether `key` resolves in the CURRENT version (admission screen for
  /// key-keyed requests; the serving batch re-resolves against its own
  /// pinned snapshot).
  bool ContainsKey(uint64_t key) const {
    const auto snap = Acquire();
    return snap != nullptr && snap->LookupSlot(key).has_value();
  }

  /// Publish-bandwidth odometers (monotonic since construction); the
  /// placement tuner's observed-churn inputs mirror these through the
  /// attached registry counters.
  uint64_t delta_bytes_total() const {
    return delta_bytes_total_.load(std::memory_order_relaxed);
  }
  uint64_t full_bytes_total() const {
    return full_bytes_total_.load(std::memory_order_relaxed);
  }
  uint64_t evictions_total() const {
    return evictions_total_.load(std::memory_order_relaxed);
  }

  /// Wires the store's publish-side accounting into the family's
  /// registry instruments (store.delta_bytes / store.full_bytes /
  /// store.evictions). Any pointer may be null (telemetry disabled).
  /// Publishes from ANY path -- engine PublishStore, tuner Republish,
  /// direct PublishDelta -- account through these, which is why the
  /// counters live here and not in the engine wrappers.
  void AttachInstruments(obs::Counter* delta_bytes, obs::Counter* full_bytes,
                         obs::Counter* evictions);

 private:
  struct DeltaRow {
    uint64_t key;
    matrix::Index slot;
    size_t src;  ///< row index into the delta's row_major block
  };

  /// Fresh snapshot shell carrying the fixed shape, the allocators, and
  /// the shared ref bits (pages/index/occupancy filled by the caller).
  std::shared_ptr<FeatureStoreSnapshot> MakeShell(
      StorePlacement placement) const;
  /// Shared publish tail: stamps the next version into `snap` and
  /// `report`, bumps the odometers/counters, and installs (version
  /// counter first, then the pointer). publish_mu_ held.
  void InstallLocked(std::shared_ptr<FeatureStoreSnapshot> snap,
                     StorePublishReport* report);
  /// Clones (or grows) shard `s` of `base` and applies the upserts and
  /// tombstones recorded for it. Returns the new shard and adds the
  /// bytes it allocated to *delta_bytes. publish_mu_ held.
  std::shared_ptr<const StoreIndexShard> RebuildShard(
      const StoreIndexShard* base, int shard_id,
      const std::vector<std::pair<uint64_t, matrix::Index>>& upserts,
      const std::vector<uint64_t>& removals, uint64_t* delta_bytes);
  /// Evicts one cold page via the clock sweep (never one in
  /// `pinned_pages`), tombstoning its keys and freeing its slots.
  /// Returns the evicted page id. Dies if every page is pinned.
  /// publish_mu_ held.
  size_t EvictOnePage(const std::vector<uint8_t>& pinned_pages,
                      std::vector<uint64_t>* removed_keys,
                      uint64_t* evicted_keys);
  /// Bytes one full rewrite moves under `placement`.
  uint64_t FullRewriteBytes(StorePlacement placement) const;
  matrix::Index PageSpan(size_t page) const {
    const matrix::Index start =
        static_cast<matrix::Index>(page) * page_rows_;
    return std::min(page_rows_, rows_ - start);
  }
  /// Allocates `page`'s fragments under `placement` (exact span -- the
  /// ledger must stay byte-exact) and adds their bytes to *delta_bytes.
  std::shared_ptr<StorePage> AllocatePage(size_t page,
                                          StorePlacement placement,
                                          uint64_t* delta_bytes);
  /// Writes `row` (dim_ doubles) into `slot`'s position in `page` under
  /// `placement` (all fragments when replicated, the owner when sharded).
  void WriteSlot(StorePage* page, StorePlacement placement,
                 matrix::Index slot, const double* row);

  const std::string family_;
  std::shared_ptr<numa::NumaAllocator> allocator_;
  /// Key-index allocations go through a PRIVATE allocator over the same
  /// topology: index shards are NUMA-placed like data pages, but their
  /// bytes must not pollute the data ledger callers assert against.
  std::shared_ptr<numa::NumaAllocator> index_allocator_;
  const matrix::Index rows_;
  const matrix::Index dim_;
  matrix::Index page_rows_ = 64;
  size_t num_pages_ = 0;
  /// Construction choice, rewritten only by Republish (under
  /// publish_mu_); atomic so stats paths may read it lock-free
  /// mid-migration.
  std::atomic<StorePlacement> placement_{StorePlacement::kReplicated};
  std::string rationale_;
  /// Serializes publishers so installation order matches version order
  /// (same discipline as ModelFamily::publish_mu_).
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;
  std::atomic<uint64_t> current_version_{0};
  /// Accessed only through std::atomic_load/atomic_store.
  std::shared_ptr<const FeatureStoreSnapshot> current_;

  // --- publisher master state (publish_mu_ held) -------------------------
  std::unordered_map<uint64_t, matrix::Index> key_to_slot_;
  std::vector<uint64_t> slot_to_key_;
  std::vector<uint8_t> slot_live_;
  std::vector<matrix::Index> free_slots_;
  matrix::Index next_slot_ = 0;
  size_t clock_hand_ = 0;
  /// Shared with every snapshot (see FeatureStoreSnapshot::ref_bits_).
  std::shared_ptr<std::vector<std::atomic<uint8_t>>> ref_bits_;

  // --- publish-bandwidth accounting --------------------------------------
  std::atomic<uint64_t> delta_bytes_total_{0};
  std::atomic<uint64_t> full_bytes_total_{0};
  std::atomic<uint64_t> evictions_total_{0};
  obs::Counter* delta_bytes_counter_ = nullptr;
  obs::Counter* full_bytes_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace dw::serve
