// NUMA-placed, versioned, read-only feature tables for id-keyed serving.
//
// Carried-feature requests make the CLIENT the feature source: every
// Score(family, indices, values) ships the row over the wire and the
// worker streams it from wherever the request buffer landed. For wide
// models that is the anti-pattern the paper's Fig. 9 data-replication
// study warns about -- the serving path ignores the data/worker
// collocation that governs main-memory throughput. A FeatureStore flips
// the source: the table of feature rows is registered per model family,
// placed across sockets through the same numa::NumaAllocator machinery
// the trainer uses, and a request names only a row id; the scoring
// worker gathers the features from its node's placement at scoring time.
//
// Placement is not passed in by the caller: it is chosen at construction
// by opt::ChooseStorePlacement() from the calibrated memory model, the
// topology, and the store's traffic estimate (table shape, gathers per
// refresh) -- mirroring how opt::ChooseServingReplication picks the model
// side. Benches that need a fixed strategy set
// StoreOptions::placement_override.
//
// Hot-swap: Publish() builds the new table version entirely off to the
// side and installs it with one atomic pointer store, exactly like
// ModelFamily. Workers Acquire() one immutable FeatureStoreSnapshot per
// batch, so a refresh never tears the rows of an in-flight batch across
// versions. The table SHAPE (rows x dim) is fixed at construction so
// request admission can validate row ids once, ahead of whichever
// version eventually serves the batch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "matrix/sparse_vector.h"
#include "numa/numa_allocator.h"
#include "opt/store_placement.h"
#include "serve/replication.h"
#include "util/logging.h"

namespace dw::serve {

/// One immutable, versioned feature table. Readers hold it via
/// shared_ptr, so a snapshot stays valid for as long as any in-flight
/// batch references it, even after newer versions are published.
class FeatureStoreSnapshot {
 public:
  uint64_t version() const { return version_; }
  /// Family this table serves.
  const std::string& family() const { return family_; }
  matrix::Index rows() const { return rows_; }
  matrix::Index dim() const { return dim_; }
  StorePlacement placement() const { return placement_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Node owning row `row`'s bytes for a reader on `node`: the reader's
  /// own node under kReplicated (its local copy), the interleaved shard
  /// owner under kSharded. Drives the worker's local/remote gather
  /// accounting. Both indices are validated: an out-of-range row under
  /// kSharded would otherwise read past a shard (and silently serve a
  /// neighboring row's features, or worse).
  numa::NodeId OwnerNodeFor(numa::NodeId node, matrix::Index row) const {
    CheckIndices(node, row);
    if (placement_ == StorePlacement::kReplicated) return node;
    return static_cast<numa::NodeId>(row % static_cast<matrix::Index>(
                                               num_nodes_));
  }

  /// Feature row `row` (dim() doubles) for a reader on `node`: the
  /// node-local copy under kReplicated, the owner shard (possibly
  /// remote) under kSharded. Same index validation as OwnerNodeFor.
  const double* RowForNode(numa::NodeId node, matrix::Index row) const {
    CheckIndices(node, row);
    if (placement_ == StorePlacement::kReplicated) {
      return shards_[node].data() + static_cast<size_t>(row) * dim_;
    }
    const matrix::Index nodes = static_cast<matrix::Index>(num_nodes_);
    return shards_[row % nodes].data() +
           static_cast<size_t>(row / nodes) * dim_;
  }

 private:
  friend class FeatureStore;
  FeatureStoreSnapshot() = default;

  void CheckIndices(numa::NodeId node, matrix::Index row) const {
    DW_CHECK_GE(node, 0) << "negative node for store " << family_;
    DW_CHECK_LT(node, num_nodes_) << "node out of range for store "
                                  << family_;
    DW_CHECK_LT(row, rows_) << "row out of range for store " << family_;
  }

  uint64_t version_ = 0;
  std::string family_;
  matrix::Index rows_ = 0;
  matrix::Index dim_ = 0;
  StorePlacement placement_ = StorePlacement::kReplicated;
  int num_nodes_ = 1;
  /// Keeps the ledger the shards report into alive even if a reader
  /// outlives the store. Declared before shards_ so it is destroyed
  /// after them (their destructors post to the ledger).
  std::shared_ptr<numa::NumaAllocator> allocator_;
  /// kReplicated: one full table per node. kSharded: shard n holds rows
  /// r with r % num_nodes == n, compacted at slot r / num_nodes.
  std::vector<numa::NodeArray<double>> shards_;
};

/// Construction-time description of a store. The traffic estimate feeds
/// the placement chooser (its rows/dim are filled in from the
/// constructor arguments, so only the read/refresh asymmetry needs
/// stating).
struct StoreOptions {
  /// Expected row gathers per table refresh.
  double reads_per_refresh = 65536.0;
  /// Explicit placement for benches/ablations; leave unset in production
  /// so the cost model decides.
  std::optional<StorePlacement> placement_override;
};

/// One family's feature store: a versioned immutable table chain plus the
/// placement strategy fixed at construction. Obtained from
/// ServingEngine::RegisterStore (or constructed directly for tests).
class FeatureStore {
 public:
  /// Chooses the placement through opt::ChooseStorePlacement unless
  /// options.placement_override pins it. `rows`/`dim` fix the table
  /// shape for every future version.
  FeatureStore(std::string family,
               std::shared_ptr<numa::NumaAllocator> allocator,
               matrix::Index rows, matrix::Index dim,
               const StoreOptions& options);

  const std::string& family() const { return family_; }
  /// Table shape, fixed at construction. Lock-free; safe on the request
  /// admission hot path (row-id validation).
  matrix::Index rows() const { return rows_; }
  matrix::Index dim() const { return dim_; }
  /// The placement the NEXT publish builds under. Lock-free: chosen at
  /// construction, thereafter changed only by Republish (the placement
  /// tuner's live-migration path).
  StorePlacement placement() const {
    return placement_.load(std::memory_order_acquire);
  }
  /// Why the chooser picked the construction-time placement ("explicit
  /// override" when the caller pinned it instead).
  const std::string& rationale() const { return rationale_; }

  /// Copies the row-major table (`rows() * dim()` doubles, row r at
  /// offset r * dim()) into fresh per-node placements and installs them
  /// as the store's current version (monotonic from 1). The size must
  /// match the fixed shape: admission validates row ids against rows()
  /// once, which is only sound if every version agrees.
  uint64_t Publish(const std::vector<double>& row_major);

  /// Live migration: rebuilds the CURRENT table under `placement` and
  /// installs it as a new version through the regular hot-swap path --
  /// in-flight batches keep the snapshot they gathered from and no row
  /// ever tears. No-op (returns the current version) when the placement
  /// already matches. CHECKs that a version has been published.
  uint64_t Republish(StorePlacement placement);

  /// Acquires the current table (nullptr before the first Publish).
  std::shared_ptr<const FeatureStoreSnapshot> Acquire() const;

  /// Version of the current table (0 before the first Publish).
  /// Lock-free: admission gates id-keyed requests on it.
  uint64_t current_version() const {
    return current_version_.load(std::memory_order_acquire);
  }

 private:
  /// Publish body with publish_mu_ already held (shared by Publish and
  /// Republish, which must flip placement_ and rebuild atomically with
  /// respect to other publishers).
  uint64_t PublishLocked(const std::vector<double>& row_major);

  const std::string family_;
  std::shared_ptr<numa::NumaAllocator> allocator_;
  const matrix::Index rows_;
  const matrix::Index dim_;
  /// Construction choice, rewritten only by Republish (under
  /// publish_mu_); atomic so stats paths may read it lock-free
  /// mid-migration.
  std::atomic<StorePlacement> placement_{StorePlacement::kReplicated};
  std::string rationale_;
  /// Serializes publishers so installation order matches version order
  /// (same discipline as ModelFamily::publish_mu_).
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;
  std::atomic<uint64_t> current_version_{0};
  /// Accessed only through std::atomic_load/atomic_store.
  std::shared_ptr<const FeatureStoreSnapshot> current_;
};

}  // namespace dw::serve
