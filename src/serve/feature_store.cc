#include "serve/feature_store.h"

#include <cstring>
#include <utility>

namespace dw::serve {

const char* ToString(StorePlacement p) {
  switch (p) {
    case StorePlacement::kReplicated:
      return "Replicated";
    case StorePlacement::kSharded:
      return "Sharded";
  }
  return "?";
}

FeatureStore::FeatureStore(std::string family,
                           std::shared_ptr<numa::NumaAllocator> allocator,
                           matrix::Index rows, matrix::Index dim,
                           const StoreOptions& options)
    : family_(std::move(family)),
      allocator_(std::move(allocator)),
      rows_(rows),
      dim_(dim) {
  DW_CHECK(allocator_ != nullptr) << "store needs an allocator";
  DW_CHECK_GT(rows_, 0u) << "store " << family_ << " needs rows";
  DW_CHECK_GT(dim_, 0u) << "store " << family_ << " needs dim";
  if (options.placement_override.has_value()) {
    placement_ = *options.placement_override;
    rationale_ = "explicit override";
  } else {
    opt::StoreTrafficEstimate traffic;
    traffic.rows = rows_;
    traffic.dim = dim_;
    traffic.reads_per_refresh = options.reads_per_refresh;
    const opt::StorePlacementChoice choice =
        opt::ChooseStorePlacement(allocator_->topology(), traffic);
    placement_ = choice.placement;
    rationale_ = choice.rationale;
  }
}

uint64_t FeatureStore::Publish(const std::vector<double>& row_major) {
  DW_CHECK_EQ(row_major.size(),
              static_cast<size_t>(rows_) * static_cast<size_t>(dim_))
      << "feature table shape mismatch for store " << family_;
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  return PublishLocked(row_major);
}

uint64_t FeatureStore::Republish(StorePlacement placement) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const auto snap =
      std::atomic_load_explicit(&current_, std::memory_order_acquire);
  DW_CHECK(snap != nullptr)
      << "republishing store " << family_ << " before any publish";
  if (placement == placement_.load(std::memory_order_relaxed)) {
    return snap->version_;
  }
  // Materialize the served table row-major from wherever the OLD
  // placement put the rows (node 0 resolves both layouts), flip the
  // strategy, and run the regular publish body: the migration IS just
  // another hot-swap.
  std::vector<double> row_major(static_cast<size_t>(rows_) *
                                static_cast<size_t>(dim_));
  for (matrix::Index r = 0; r < rows_; ++r) {
    std::memcpy(row_major.data() + static_cast<size_t>(r) * dim_,
                snap->RowForNode(0, r), dim_ * sizeof(double));
  }
  placement_.store(placement, std::memory_order_release);
  return PublishLocked(row_major);
}

uint64_t FeatureStore::PublishLocked(const std::vector<double>& row_major) {
  const uint64_t version = next_version_++;

  // Build the replacement entirely off to the side; workers keep
  // gathering from the old snapshot until the single pointer store below.
  auto snap = std::shared_ptr<FeatureStoreSnapshot>(new FeatureStoreSnapshot());
  snap->version_ = version;
  snap->family_ = family_;
  snap->rows_ = rows_;
  snap->dim_ = dim_;
  const StorePlacement placement = placement_.load(std::memory_order_relaxed);
  snap->placement_ = placement;
  snap->num_nodes_ = allocator_->topology().num_nodes;
  snap->allocator_ = allocator_;
  const int nodes = snap->num_nodes_;
  if (placement == StorePlacement::kReplicated) {
    snap->shards_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      auto replica = allocator_->AllocateOnNode<double>(n, row_major.size());
      std::memcpy(replica.data(), row_major.data(),
                  row_major.size() * sizeof(double));
      snap->shards_.push_back(std::move(replica));
    }
  } else {
    // Round-robin interleave: shard n compacts rows n, n+nodes, ... so a
    // spray of row ids balances gather load across sockets.
    snap->shards_.reserve(nodes);
    for (int n = 0; n < nodes; ++n) {
      const size_t shard_rows =
          (static_cast<size_t>(rows_) + nodes - 1 - n) / nodes;
      auto shard = allocator_->AllocateOnNode<double>(
          n, shard_rows * static_cast<size_t>(dim_));
      for (size_t slot = 0; slot < shard_rows; ++slot) {
        const size_t row = slot * nodes + n;
        std::memcpy(shard.data() + slot * dim_,
                    row_major.data() + row * dim_, dim_ * sizeof(double));
      }
      snap->shards_.push_back(std::move(shard));
    }
  }

  // Counter first, pointer second, mirroring ModelFamily::Publish: a
  // worker that acquires the NEW snapshot must never see a
  // current_version() older than it.
  current_version_.store(version, std::memory_order_release);
  std::atomic_store_explicit(
      &current_, std::shared_ptr<const FeatureStoreSnapshot>(std::move(snap)),
      std::memory_order_release);
  return version;
}

std::shared_ptr<const FeatureStoreSnapshot> FeatureStore::Acquire() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

}  // namespace dw::serve
