#include "serve/feature_store.h"

#include <cstring>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace dw::serve {

const char* ToString(StorePlacement p) {
  switch (p) {
    case StorePlacement::kReplicated:
      return "Replicated";
    case StorePlacement::kSharded:
      return "Sharded";
  }
  return "?";
}

std::vector<StoreIndexShardStats> FeatureStoreSnapshot::IndexStats() const {
  std::vector<StoreIndexShardStats> out;
  out.reserve(index_shards_.size());
  for (size_t s = 0; s < index_shards_.size(); ++s) {
    StoreIndexShardStats st;
    st.node = static_cast<numa::NodeId>(s);
    if (const StoreIndexShard* shard = index_shards_[s].get()) {
      st.capacity = shard->capacity;
      st.live = shard->live;
      st.tombstones = shard->tombstones;
    }
    out.push_back(st);
  }
  return out;
}

FeatureStore::FeatureStore(std::string family,
                           std::shared_ptr<numa::NumaAllocator> allocator,
                           matrix::Index rows, matrix::Index dim,
                           const StoreOptions& options)
    : family_(std::move(family)),
      allocator_(std::move(allocator)),
      rows_(rows),
      dim_(dim) {
  DW_CHECK(allocator_ != nullptr) << "store needs an allocator";
  DW_CHECK_GT(rows_, 0u) << "store " << family_ << " needs rows";
  DW_CHECK_GT(dim_, 0u) << "store " << family_ << " needs dim";
  index_allocator_ =
      std::make_shared<numa::NumaAllocator>(allocator_->topology());
  const matrix::Index nodes =
      static_cast<matrix::Index>(allocator_->topology().num_nodes);
  // Pages start on round-robin boundaries so a page's slots split across
  // the node fragments without per-page phase arithmetic.
  matrix::Index pr = std::max<matrix::Index>(options.page_rows, 1);
  pr = ((pr + nodes - 1) / nodes) * nodes;
  page_rows_ = pr;
  num_pages_ = (static_cast<size_t>(rows_) + page_rows_ - 1) / page_rows_;
  ref_bits_ =
      std::make_shared<std::vector<std::atomic<uint8_t>>>(num_pages_);
  slot_to_key_.assign(rows_, 0);
  slot_live_.assign(rows_, 0);
  if (options.placement_override.has_value()) {
    placement_ = *options.placement_override;
    rationale_ = "explicit override";
  } else {
    opt::StoreTrafficEstimate traffic;
    traffic.rows = rows_;
    traffic.dim = dim_;
    traffic.reads_per_refresh = options.reads_per_refresh;
    traffic.churn_fraction = options.churn_per_refresh;
    const opt::StorePlacementChoice choice =
        opt::ChooseStorePlacement(allocator_->topology(), traffic);
    placement_ = choice.placement;
    rationale_ = choice.rationale;
  }
}

uint64_t FeatureStore::HashKey(std::string_view key) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

void FeatureStore::AttachInstruments(obs::Counter* delta_bytes,
                                     obs::Counter* full_bytes,
                                     obs::Counter* evictions) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  delta_bytes_counter_ = delta_bytes;
  full_bytes_counter_ = full_bytes;
  evictions_counter_ = evictions;
}

std::shared_ptr<FeatureStoreSnapshot> FeatureStore::MakeShell(
    StorePlacement placement) const {
  auto snap =
      std::shared_ptr<FeatureStoreSnapshot>(new FeatureStoreSnapshot());
  snap->family_ = family_;
  snap->rows_ = rows_;
  snap->dim_ = dim_;
  snap->placement_ = placement;
  snap->num_nodes_ = allocator_->topology().num_nodes;
  snap->page_rows_ = page_rows_;
  snap->allocator_ = allocator_;
  snap->index_allocator_ = index_allocator_;
  snap->ref_bits_ = ref_bits_;
  return snap;
}

uint64_t FeatureStore::FullRewriteBytes(StorePlacement placement) const {
  const uint64_t table =
      static_cast<uint64_t>(rows_) * dim_ * sizeof(double);
  return placement == StorePlacement::kReplicated
             ? table * allocator_->topology().num_nodes
             : table;
}

std::shared_ptr<StorePage> FeatureStore::AllocatePage(
    size_t page, StorePlacement placement, uint64_t* delta_bytes) {
  const int nodes = allocator_->topology().num_nodes;
  const matrix::Index span = PageSpan(page);
  auto p = std::make_shared<StorePage>();
  p->fragments.reserve(nodes);
  for (int n = 0; n < nodes; ++n) {
    // Exact spans, no rounding slack: the byte ledger is part of the
    // placement contract tests assert against.
    const size_t frag_rows =
        placement == StorePlacement::kReplicated
            ? static_cast<size_t>(span)
            : (static_cast<size_t>(span) + nodes - 1 - n) / nodes;
    p->fragments.push_back(allocator_->AllocateOnNode<double>(
        n, frag_rows * static_cast<size_t>(dim_)));
    *delta_bytes += frag_rows * static_cast<size_t>(dim_) * sizeof(double);
  }
  return p;
}

void FeatureStore::WriteSlot(StorePage* page, StorePlacement placement,
                             matrix::Index slot, const double* row) {
  const matrix::Index in_page = slot % page_rows_;
  if (placement == StorePlacement::kReplicated) {
    for (numa::NodeArray<double>& frag : page->fragments) {
      std::memcpy(frag.data() + static_cast<size_t>(in_page) * dim_, row,
                  static_cast<size_t>(dim_) * sizeof(double));
    }
    return;
  }
  const matrix::Index nodes =
      static_cast<matrix::Index>(page->fragments.size());
  std::memcpy(page->fragments[slot % nodes].data() +
                  static_cast<size_t>(in_page / nodes) * dim_,
              row, static_cast<size_t>(dim_) * sizeof(double));
}

std::shared_ptr<const StoreIndexShard> FeatureStore::RebuildShard(
    const StoreIndexShard* base, int shard_id,
    const std::vector<std::pair<uint64_t, matrix::Index>>& upserts,
    const std::vector<uint64_t>& removals, uint64_t* delta_bytes) {
  const uint64_t base_live = base != nullptr ? base->live : 0;
  const uint64_t base_tomb = base != nullptr ? base->tombstones : 0;
  uint64_t cap = base != nullptr ? base->capacity : 0;
  // Grow (rehash, dropping tombstones) when the projected occupancy
  // passes the probe-length knee; otherwise clone bytes and upsert in
  // place, reusing tombstones -- the O(shard bytes) fast path.
  const uint64_t projected = base_live + base_tomb + upserts.size();
  const bool grow = cap == 0 || projected * 10 > cap * 7;
  if (grow) {
    const uint64_t want =
        std::max<uint64_t>(16, (base_live + upserts.size()) * 2);
    cap = 16;
    while (cap < want) cap <<= 1;
  }
  auto shard = std::make_shared<StoreIndexShard>();
  shard->capacity = cap;
  shard->entries = index_allocator_->AllocateOnNode<StoreIndexShard::Entry>(
      shard_id, cap);
  *delta_bytes += cap * sizeof(StoreIndexShard::Entry);
  const uint64_t mask = cap - 1;
  const auto place_fresh = [&](uint64_t key, uint64_t marker) {
    uint64_t i = (MixKey(key) >> 17) & mask;
    while (shard->entries[i].marker != StoreIndexShard::kEmpty) {
      i = (i + 1) & mask;
    }
    shard->entries[i].key = key;
    shard->entries[i].marker = marker;
  };
  if (grow) {
    if (base != nullptr) {
      for (uint64_t i = 0; i < base->capacity; ++i) {
        const StoreIndexShard::Entry& e = base->entries[i];
        if (e.marker != StoreIndexShard::kEmpty &&
            e.marker != StoreIndexShard::kTombstone) {
          place_fresh(e.key, e.marker);
        }
      }
    }
    shard->live = base_live;
    shard->tombstones = 0;
  } else {
    std::memcpy(shard->entries.data(), base->entries.data(),
                cap * sizeof(StoreIndexShard::Entry));
    shard->live = base_live;
    shard->tombstones = base_tomb;
  }
  for (const uint64_t key : removals) {
    uint64_t i = (MixKey(key) >> 17) & mask;
    for (uint64_t probes = 0; probes <= mask; ++probes) {
      StoreIndexShard::Entry& e = shard->entries[i];
      DW_CHECK(e.marker != StoreIndexShard::kEmpty)
          << "evicted key " << key << " missing from index of store "
          << family_;
      if (e.marker != StoreIndexShard::kTombstone && e.key == key) {
        e.marker = StoreIndexShard::kTombstone;
        --shard->live;
        ++shard->tombstones;
        break;
      }
      i = (i + 1) & mask;
    }
  }
  for (const auto& [key, slot] : upserts) {
    uint64_t i = (MixKey(key) >> 17) & mask;
    uint64_t tombstone = cap;  // first reusable grave on the probe path
    for (;;) {
      StoreIndexShard::Entry& e = shard->entries[i];
      if (e.marker == StoreIndexShard::kEmpty) break;
      if (e.marker == StoreIndexShard::kTombstone) {
        if (tombstone == cap) tombstone = i;
      } else if (e.key == key) {
        // Re-inserted within the window that evicted it, or an update
        // racing the same slot: overwrite in place.
        e.marker = static_cast<uint64_t>(slot) + 1;
        i = cap;
        break;
      }
      i = (i + 1) & mask;
    }
    if (i == cap) continue;  // updated in place above
    const uint64_t target = tombstone != cap ? tombstone : i;
    if (tombstone != cap) --shard->tombstones;
    shard->entries[target].key = key;
    shard->entries[target].marker = static_cast<uint64_t>(slot) + 1;
    ++shard->live;
  }
  return shard;
}

size_t FeatureStore::EvictOnePage(const std::vector<uint8_t>& pinned_pages,
                                  std::vector<uint64_t>* removed_keys,
                                  uint64_t* evicted_keys) {
  std::vector<std::atomic<uint8_t>>& refs = *ref_bits_;
  const auto resident = [&](size_t p) {
    if (pinned_pages[p] != 0) return false;
    const matrix::Index start =
        static_cast<matrix::Index>(p) * page_rows_;
    const matrix::Index span = PageSpan(p);
    for (matrix::Index i = 0; i < span; ++i) {
      if (slot_live_[start + i] != 0) return true;
    }
    return false;
  };
  size_t victim = num_pages_;
  // Clock with second chance: a referenced page survives one sweep (its
  // bit clears); an unreferenced one is the victim. 2N steps guarantee
  // every page gets its chance spent before the forced pass below.
  for (size_t step = 0; step < 2 * num_pages_ && victim == num_pages_;
       ++step) {
    const size_t p = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_pages_;
    if (!resident(p)) continue;
    if (refs[p].exchange(0, std::memory_order_relaxed) != 0) continue;
    victim = p;
  }
  if (victim == num_pages_) {
    // Gathers kept re-touching everything mid-sweep; take the first
    // evictable page regardless of reference.
    for (size_t p = 0; p < num_pages_ && victim == num_pages_; ++p) {
      if (resident(p)) victim = p;
    }
  }
  DW_CHECK_LT(victim, num_pages_)
      << "store " << family_
      << " cannot evict: every page is pinned by the in-flight delta";
  const matrix::Index start =
      static_cast<matrix::Index>(victim) * page_rows_;
  const matrix::Index span = PageSpan(victim);
  for (matrix::Index i = 0; i < span; ++i) {
    const matrix::Index slot = start + i;
    if (slot_live_[slot] == 0) continue;
    const uint64_t key = slot_to_key_[slot];
    key_to_slot_.erase(key);
    removed_keys->push_back(key);
    slot_live_[slot] = 0;
    free_slots_.push_back(slot);
    ++*evicted_keys;
  }
  refs[victim].store(0, std::memory_order_relaxed);
  return victim;
}

uint64_t FeatureStore::Publish(const std::vector<double>& row_major) {
  DW_CHECK_EQ(row_major.size(),
              static_cast<size_t>(rows_) * static_cast<size_t>(dim_))
      << "feature table shape mismatch for store " << family_;
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const StorePlacement placement =
      placement_.load(std::memory_order_relaxed);
  const int nodes = allocator_->topology().num_nodes;

  // A full rewrite resets the key space to the identity map (key r ->
  // slot r, all slots live) -- the legacy dense-row-id contract.
  key_to_slot_.clear();
  key_to_slot_.reserve(rows_);
  free_slots_.clear();
  next_slot_ = rows_;
  for (matrix::Index r = 0; r < rows_; ++r) {
    key_to_slot_.emplace(r, r);
    slot_to_key_[r] = r;
    slot_live_[r] = 1;
  }

  StorePublishReport report;
  report.full_bytes = FullRewriteBytes(placement);
  report.live_rows = rows_;

  auto snap = MakeShell(placement);
  snap->pages_.resize(num_pages_);
  for (size_t p = 0; p < num_pages_; ++p) {
    auto page = AllocatePage(p, placement, &report.delta_bytes);
    const matrix::Index start = static_cast<matrix::Index>(p) * page_rows_;
    const matrix::Index span = PageSpan(p);
    for (matrix::Index i = 0; i < span; ++i) {
      WriteSlot(page.get(), placement, start + i,
                row_major.data() + static_cast<size_t>(start + i) * dim_);
    }
    snap->pages_[p] = std::move(page);
    ++report.touched_pages;
  }

  std::vector<std::vector<std::pair<uint64_t, matrix::Index>>> upserts(
      nodes);
  for (matrix::Index r = 0; r < rows_; ++r) {
    const uint64_t key = r;
    upserts[MixKey(key) % static_cast<uint64_t>(nodes)].emplace_back(key,
                                                                     r);
  }
  snap->index_shards_.resize(nodes);
  for (int s = 0; s < nodes; ++s) {
    snap->index_shards_[s] =
        RebuildShard(nullptr, s, upserts[s], {}, &report.delta_bytes);
  }

  auto occ = std::make_shared<std::vector<uint64_t>>(
      (static_cast<size_t>(rows_) + 63) / 64, 0);
  for (matrix::Index r = 0; r < rows_; ++r) {
    (*occ)[r >> 6] |= uint64_t{1} << (r & 63);
  }
  report.delta_bytes += occ->size() * sizeof(uint64_t);
  snap->occupancy_ = std::move(occ);
  snap->live_rows_ = rows_;

  InstallLocked(std::move(snap), &report);
  return report.version;
}

StorePublishReport FeatureStore::PublishDelta(
    const std::vector<uint64_t>& keys,
    const std::vector<double>& row_major) {
  DW_CHECK(!keys.empty()) << "empty delta publish for store " << family_;
  DW_CHECK_EQ(row_major.size(), keys.size() * static_cast<size_t>(dim_))
      << "feature table shape mismatch for store " << family_ << " (delta of "
      << keys.size() << " keys x dim " << dim_ << ")";
  DW_CHECK_LE(keys.size(), static_cast<size_t>(rows_))
      << "delta exceeds the capacity of store " << family_;
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const StorePlacement placement =
      placement_.load(std::memory_order_relaxed);
  const int nodes = allocator_->topology().num_nodes;
  const auto prev =
      std::atomic_load_explicit(&current_, std::memory_order_acquire);

  StorePublishReport report;
  report.full_bytes = FullRewriteBytes(placement);

  // 1. Slot assignment. Existing keys overwrite their slot in place (the
  //    index does not change for them); new keys pull from the free
  //    list, then the never-used tail, then a clock eviction. Pages this
  //    delta writes are pinned against eviction.
  std::vector<DeltaRow> delta_rows;
  delta_rows.reserve(keys.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size());
  std::vector<uint8_t> pinned(num_pages_, 0);
  std::vector<std::vector<std::pair<uint64_t, matrix::Index>>> upserts(
      nodes);
  std::vector<uint64_t> removed_keys;
  std::vector<size_t> evicted_pages;
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t key = keys[i];
    DW_CHECK(seen.insert(key).second)
        << "duplicate key " << key << " in one delta publish for store "
        << family_;
    matrix::Index slot;
    const auto it = key_to_slot_.find(key);
    if (it != key_to_slot_.end()) {
      slot = it->second;
    } else {
      if (free_slots_.empty() && next_slot_ < rows_) {
        slot = next_slot_++;
      } else {
        if (free_slots_.empty()) {
          evicted_pages.push_back(
              EvictOnePage(pinned, &removed_keys, &report.evicted_keys));
        }
        DW_CHECK(!free_slots_.empty())
            << "store " << family_ << " has no evictable slots";
        slot = free_slots_.back();
        free_slots_.pop_back();
      }
      key_to_slot_.emplace(key, slot);
      upserts[MixKey(key) % static_cast<uint64_t>(nodes)].emplace_back(
          key, slot);
    }
    slot_to_key_[slot] = key;
    slot_live_[slot] = 1;
    pinned[slot / page_rows_] = 1;
    delta_rows.push_back(DeltaRow{key, slot, i});
  }
  std::vector<std::vector<uint64_t>> removals(nodes);
  for (const uint64_t key : removed_keys) {
    removals[MixKey(key) % static_cast<uint64_t>(nodes)].push_back(key);
  }

  // 2. Page chain: clone the touched pages (copying their previous
  //    contents), drop the evicted ones, SHARE everything else.
  auto snap = MakeShell(placement);
  if (prev != nullptr) {
    snap->pages_ = prev->pages_;
  } else {
    snap->pages_.assign(num_pages_, nullptr);
  }
  std::vector<std::shared_ptr<StorePage>> writable(num_pages_);
  for (size_t p = 0; p < num_pages_; ++p) {
    if (pinned[p] == 0) continue;
    auto page = AllocatePage(p, placement, &report.delta_bytes);
    if (const StorePage* old = snap->pages_[p].get()) {
      for (size_t n = 0; n < page->fragments.size(); ++n) {
        if (old->fragments[n].size() > 0) {
          std::memcpy(page->fragments[n].data(), old->fragments[n].data(),
                      old->fragments[n].size() * sizeof(double));
        }
      }
    }
    writable[p] = page;
    snap->pages_[p] = std::move(page);
    ++report.touched_pages;
  }
  for (const size_t p : evicted_pages) {
    // A page evicted mid-delta can have its freed slots reused by LATER
    // keys of the same delta; it is then pinned + cloned above and must
    // stay linked (occupancy already screens its dead slots).
    if (pinned[p] == 0) snap->pages_[p] = nullptr;
  }
  for (const DeltaRow& dr : delta_rows) {
    WriteSlot(writable[dr.slot / page_rows_].get(), placement, dr.slot,
              row_major.data() + dr.src * static_cast<size_t>(dim_));
  }

  // 3. Key index: only shards whose key SET changed rebuild (pure
  //    overwrites ride the shared shard).
  snap->index_shards_.resize(nodes);
  for (int s = 0; s < nodes; ++s) {
    const StoreIndexShard* base =
        prev != nullptr ? prev->index_shards_[s].get() : nullptr;
    if (upserts[s].empty() && removals[s].empty() && base != nullptr) {
      snap->index_shards_[s] = prev->index_shards_[s];
    } else {
      snap->index_shards_[s] = RebuildShard(base, s, upserts[s],
                                            removals[s],
                                            &report.delta_bytes);
    }
  }

  // 4. Occupancy, rebuilt from the master liveness bytes (O(capacity)
  //    bits -- noise next to one cloned page).
  auto occ = std::make_shared<std::vector<uint64_t>>(
      (static_cast<size_t>(rows_) + 63) / 64, 0);
  uint64_t live = 0;
  for (matrix::Index r = 0; r < rows_; ++r) {
    if (slot_live_[r] != 0) {
      (*occ)[r >> 6] |= uint64_t{1} << (r & 63);
      ++live;
    }
  }
  report.delta_bytes += occ->size() * sizeof(uint64_t);
  report.live_rows = live;
  snap->occupancy_ = std::move(occ);
  snap->live_rows_ = live;

  InstallLocked(std::move(snap), &report);
  return report;
}

uint64_t FeatureStore::Republish(StorePlacement placement) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const auto prev =
      std::atomic_load_explicit(&current_, std::memory_order_acquire);
  DW_CHECK(prev != nullptr)
      << "republishing store " << family_ << " before any publish";
  if (placement == placement_.load(std::memory_order_relaxed)) {
    return prev->version_;
  }
  // Delta-aware migration: re-lay ONLY the resident pages under the new
  // placement, fragment to fragment -- no dense materialization, no
  // index rehash (slots do not move, so the key index and occupancy are
  // shared with the previous version).
  placement_.store(placement, std::memory_order_release);
  StorePublishReport report;
  report.full_bytes = FullRewriteBytes(placement);
  const StorePlacement old_placement = prev->placement_;
  const matrix::Index old_nodes =
      static_cast<matrix::Index>(prev->num_nodes_);
  auto snap = MakeShell(placement);
  snap->pages_.resize(num_pages_);
  for (size_t p = 0; p < num_pages_; ++p) {
    const StorePage* old = prev->pages_[p].get();
    if (old == nullptr) continue;
    auto page = AllocatePage(p, placement, &report.delta_bytes);
    const matrix::Index start = static_cast<matrix::Index>(p) * page_rows_;
    const matrix::Index span = PageSpan(p);
    for (matrix::Index i = 0; i < span; ++i) {
      const matrix::Index slot = start + i;
      const double* src =
          old_placement == StorePlacement::kReplicated
              ? old->fragments[0].data() + static_cast<size_t>(i) * dim_
              : old->fragments[slot % old_nodes].data() +
                    static_cast<size_t>(i / old_nodes) * dim_;
      WriteSlot(page.get(), placement, slot, src);
    }
    snap->pages_[p] = std::move(page);
    ++report.touched_pages;
  }
  snap->index_shards_ = prev->index_shards_;
  snap->occupancy_ = prev->occupancy_;
  snap->live_rows_ = prev->live_rows_;
  report.live_rows = prev->live_rows_;
  InstallLocked(std::move(snap), &report);
  return report.version;
}

void FeatureStore::InstallLocked(std::shared_ptr<FeatureStoreSnapshot> snap,
                                 StorePublishReport* report) {
  const uint64_t version = next_version_++;
  snap->version_ = version;
  report->version = version;
  delta_bytes_total_.fetch_add(report->delta_bytes,
                               std::memory_order_relaxed);
  full_bytes_total_.fetch_add(report->full_bytes,
                              std::memory_order_relaxed);
  evictions_total_.fetch_add(report->evicted_keys,
                             std::memory_order_relaxed);
  if (delta_bytes_counter_ != nullptr) {
    delta_bytes_counter_->Add(report->delta_bytes);
  }
  if (full_bytes_counter_ != nullptr) {
    full_bytes_counter_->Add(report->full_bytes);
  }
  if (evictions_counter_ != nullptr && report->evicted_keys > 0) {
    evictions_counter_->Add(report->evicted_keys);
  }
  // Counter first, pointer second, mirroring ModelFamily::Publish: a
  // worker that acquires the NEW snapshot must never see a
  // current_version() older than it.
  current_version_.store(version, std::memory_order_release);
  std::atomic_store_explicit(
      &current_,
      std::shared_ptr<const FeatureStoreSnapshot>(std::move(snap)),
      std::memory_order_release);
}

std::shared_ptr<const FeatureStoreSnapshot> FeatureStore::Acquire() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

}  // namespace dw::serve
