#include "serve/snapshot_exporter.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::serve {

SnapshotExporter::SnapshotExporter(engine::Engine* trainer,
                                   ServingEngine* server, std::string family,
                                   Options options)
    : trainer_(trainer),
      server_(server),
      family_(std::move(family)),
      options_(options) {
  DW_CHECK(trainer_ != nullptr);
  DW_CHECK(server_ != nullptr);
  DW_CHECK_GT(options_.period.count(), 0);
  DW_CHECK_GT(options_.max_publish_fraction, 0.0);
  DW_CHECK_LE(options_.max_publish_fraction, 1.0);
  obs::Registry& reg = server_->telemetry();
  const obs::Labels labels = {{"family", family_}};
  publishes_counter_ = reg.GetCounter("exporter.publishes", labels);
  paced_counter_ = reg.GetCounter("exporter.paced_periods", labels);
  version_gauge_ = reg.GetGauge("exporter.last_version", labels);
  period_gauge_ = reg.GetGauge("exporter.effective_period_ms", labels);
  publish_ms_hist_ = reg.GetHistogram("exporter.publish_ms", labels);
}

SnapshotExporter::~SnapshotExporter() { Stop(); }

void SnapshotExporter::Start() {
  DW_CHECK(server_->registry().FindFamily(family_) != nullptr)
      << "exporter family not registered: " << family_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    DW_CHECK(!started_) << "exporter started twice";
    started_ = true;
  }
  if (options_.publish_on_start) PublishOnce();
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotExporter::Stop() {
  // Claim the join under the lock: concurrent Stop() calls (owner
  // destructor vs an explicit shutdown path) must not both reach
  // thread_.join() -- only the claimant joins and flushes.
  std::thread claimed;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    if (thread_.joinable()) {
      claimed = std::move(thread_);
      flush = started_ && options_.publish_on_stop;
    }
  }
  stop_cv_.notify_all();
  if (!claimed.joinable()) return;
  claimed.join();
  // One last flush AFTER the loop is gone: the final trained model must
  // not be lost to a period boundary, and with the thread joined there is
  // no publisher left to race with.
  if (flush) PublishOnce();
}

void SnapshotExporter::PublishOnce() {
  WallTimer timer;
  // Export() reads the engine's mutex-guarded export buffer (refreshed by
  // the averager/epoch boundary); Publish() copies it into fresh replicas
  // and hot-swaps. Neither step touches the training hot path.
  const engine::ModelExport exported = trainer_->Export();
  const uint64_t version = server_->Publish(family_, exported);
  const double ms = timer.Seconds() * 1e3;
  publishes_counter_->Increment();
  version_gauge_->Set(static_cast<double>(version));
  publish_ms_hist_->Record(ms);

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.publishes;
  stats_.last_version = version;
  stats_.max_publish_ms = std::max(stats_.max_publish_ms, ms);
  // Running mean: cheap and exact enough for a publish-rate counter.
  stats_.mean_publish_ms +=
      (ms - stats_.mean_publish_ms) / static_cast<double>(stats_.publishes);
  // EWMA drives the pacing: it tracks a drifting publish cost (model
  // growing mid-training, replicas added) faster than the all-time mean.
  stats_.ewma_publish_ms =
      stats_.publishes == 1 ? ms
                            : stats_.ewma_publish_ms +
                                  0.3 * (ms - stats_.ewma_publish_ms);
}

SnapshotExporter::Stats SnapshotExporter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SnapshotExporter::SetPeriod(std::chrono::milliseconds period) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    period_override_ms_ =
        period.count() > 0
            ? std::chrono::duration<double, std::milli>(period).count()
            : 0.0;
    period_dirty_ = true;
  }
  // Wake an armed sleep so a long OLD period does not delay the new
  // cadence (tightening 5s -> 50ms must not wait out the 5s first).
  stop_cv_.notify_all();
}

double SnapshotExporter::period_floor_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return period_override_ms_ > 0.0
             ? period_override_ms_
             : std::chrono::duration<double, std::milli>(options_.period)
                   .count();
}

void SnapshotExporter::Loop() {
  SetCurrentThreadName("dw-exporter");
  const double configured_ms =
      std::chrono::duration<double, std::milli>(options_.period).count();
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    // Latency-derived pacing: never spend more than max_publish_fraction
    // of wall time inside Export()+Publish(). The floor -- the runtime
    // override when set, `period` otherwise -- keeps the configured
    // cadence for cheap publishes; only expensive ones stretch it
    // (stats_ is guarded by the lk we hold).
    const double floor_ms =
        period_override_ms_ > 0.0 ? period_override_ms_ : configured_ms;
    const double paced_ms =
        stats_.ewma_publish_ms / options_.max_publish_fraction;
    const double effective_ms = std::max(floor_ms, paced_ms);
    stats_.effective_period_ms = effective_ms;
    period_gauge_->Set(effective_ms);
    if (effective_ms > floor_ms) {
      ++stats_.paced_periods;
      paced_counter_->Increment();
    }
    period_dirty_ = false;
    const auto wait = std::chrono::duration<double, std::milli>(effective_ms);
    if (stop_cv_.wait_for(lk, wait,
                          [this] { return stop_ || period_dirty_; })) {
      if (stop_) break;
      continue;  // re-derive the period without publishing early
    }
    lk.unlock();
    PublishOnce();
    lk.lock();
  }
}

}  // namespace dw::serve
