#include "serve/snapshot_exporter.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/thread_util.h"
#include "util/timer.h"

namespace dw::serve {

SnapshotExporter::SnapshotExporter(engine::Engine* trainer,
                                   ServingEngine* server, std::string family,
                                   Options options)
    : trainer_(trainer),
      server_(server),
      family_(std::move(family)),
      options_(options) {
  DW_CHECK(trainer_ != nullptr);
  DW_CHECK(server_ != nullptr);
  DW_CHECK_GT(options_.period.count(), 0);
}

SnapshotExporter::~SnapshotExporter() { Stop(); }

void SnapshotExporter::Start() {
  DW_CHECK(server_->registry().FindFamily(family_) != nullptr)
      << "exporter family not registered: " << family_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    DW_CHECK(!started_) << "exporter started twice";
    started_ = true;
  }
  if (options_.publish_on_start) PublishOnce();
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotExporter::Stop() {
  // Claim the join under the lock: concurrent Stop() calls (owner
  // destructor vs an explicit shutdown path) must not both reach
  // thread_.join() -- only the claimant joins and flushes.
  std::thread claimed;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    if (thread_.joinable()) {
      claimed = std::move(thread_);
      flush = started_ && options_.publish_on_stop;
    }
  }
  stop_cv_.notify_all();
  if (!claimed.joinable()) return;
  claimed.join();
  // One last flush AFTER the loop is gone: the final trained model must
  // not be lost to a period boundary, and with the thread joined there is
  // no publisher left to race with.
  if (flush) PublishOnce();
}

void SnapshotExporter::PublishOnce() {
  WallTimer timer;
  // Export() reads the engine's mutex-guarded export buffer (refreshed by
  // the averager/epoch boundary); Publish() copies it into fresh replicas
  // and hot-swaps. Neither step touches the training hot path.
  const engine::ModelExport exported = trainer_->Export();
  const uint64_t version = server_->Publish(family_, exported);
  const double ms = timer.Seconds() * 1e3;

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.publishes;
  stats_.last_version = version;
  stats_.max_publish_ms = std::max(stats_.max_publish_ms, ms);
  // Running mean: cheap and exact enough for a publish-rate counter.
  stats_.mean_publish_ms +=
      (ms - stats_.mean_publish_ms) / static_cast<double>(stats_.publishes);
}

SnapshotExporter::Stats SnapshotExporter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SnapshotExporter::Loop() {
  SetCurrentThreadName("dw-exporter");
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lk, options_.period, [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    PublishOnce();
    lk.lock();
  }
}

}  // namespace dw::serve
