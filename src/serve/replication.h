// Replication granularity of the read-only serving replicas, split out of
// model_registry.h so the opt:: serving cost model can name it without
// pulling in (or cyclically depending on) the registry itself.
#pragma once

namespace dw::serve {

/// Granularity of the read-only serving replicas (the serving analogue of
/// engine::ModelReplication; PerCore buys nothing for immutable state).
enum class Replication {
  kPerNode,     ///< one copy per NUMA node, readers route to the local one
  kPerMachine,  ///< one shared copy on node 0 (the Fig. 8 baseline)
};

const char* ToString(Replication r);

/// Placement of a family's read-only serving-time feature table (the
/// serving analogue of engine::DataReplication -- Fig. 9's axis applied
/// to id-keyed scoring, where the WORKERS gather the features).
enum class StorePlacement {
  kReplicated,  ///< full table copy on every node; every gather is local
  kSharded,     ///< rows interleaved across nodes; 1/n of gathers local
};

const char* ToString(StorePlacement p);

}  // namespace dw::serve
