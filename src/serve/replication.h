// Replication granularity of the read-only serving replicas, split out of
// model_registry.h so the opt:: serving cost model can name it without
// pulling in (or cyclically depending on) the registry itself.
#pragma once

namespace dw::serve {

/// Granularity of the read-only serving replicas (the serving analogue of
/// engine::ModelReplication; PerCore buys nothing for immutable state).
enum class Replication {
  kPerNode,     ///< one copy per NUMA node, readers route to the local one
  kPerMachine,  ///< one shared copy on node 0 (the Fig. 8 baseline)
};

const char* ToString(Replication r);

}  // namespace dw::serve
