// NUMA-replicated, versioned model snapshots for the serving path, keyed
// by named model FAMILY.
//
// The registry holds many concurrently-served families ("ctr-wide-lr",
// "spam-narrow-svm", ...). Each family keeps its own immutable, versioned
// snapshot chain, and -- the paper's Sec. 3.2-3.3 point, applied to
// serving -- its replication is not passed in by the caller: it is chosen
// at registration by opt::ChooseServingReplication() from the calibrated
// memory model, the topology, and the family's traffic estimate (model
// dim, expected batch width, read/write asymmetry). Benches that need a
// fixed strategy set FamilyOptions::replication_override.
//
// Training (engine::Engine) exports a consensus model; Publish() turns
// each export into an immutable ModelSnapshot whose weights are replicated
// through the same numa::NumaAllocator machinery the trainer uses. Serving
// is the read-mostly regime where PerNode replication usually wins: every
// reader scores against its node-local copy and no cacheline is ever
// shared across sockets. kPerMachine (one shared copy) is what the cost
// model picks when republish traffic or footprint dominates, and the
// bench baseline mirroring Fig. 8.
//
// Hot-swap: Publish() builds the new snapshot off to the side and installs
// it with one atomic pointer store. Concurrent readers either keep the
// snapshot they already acquired (it is immutable and refcounted) or see
// the new one -- never a mix of versions, never a torn weight vector.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "matrix/sparse_vector.h"
#include "numa/numa_allocator.h"
#include "numa/topology.h"
#include "opt/serving_replication.h"
#include "serve/replication.h"
#include "util/logging.h"

namespace dw::serve {

/// One immutable, versioned model. Readers hold it via shared_ptr, so a
/// snapshot stays valid for as long as any in-flight batch references it,
/// even after newer versions are published.
class ModelSnapshot {
 public:
  uint64_t version() const { return version_; }
  /// Family this snapshot belongs to.
  const std::string& family() const { return family_; }
  matrix::Index dim() const { return dim_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  /// When the weights left the trainer (Publish time for raw weights).
  /// Serving staleness = now - exported_at().
  std::chrono::steady_clock::time_point exported_at() const {
    return exported_at_;
  }

  /// Node owning the replica that serves a reader on `node`. The index is
  /// validated against the replica count: an out-of-range node under
  /// kPerNode would otherwise index past replicas_ (and silently read a
  /// neighboring family's weights, or worse).
  numa::NodeId ReplicaNodeFor(numa::NodeId node) const {
    DW_CHECK_GE(node, 0) << "negative node for " << family_;
    if (replicas_.size() == 1) return replicas_[0].node();
    DW_CHECK_LT(node, static_cast<numa::NodeId>(replicas_.size()))
        << "node out of range for " << family_;
    return replicas_[node].node();
  }

  /// Weights a reader on `node` scores against: its node-local copy under
  /// kPerNode, the single shared copy under kPerMachine. Same node-index
  /// validation as ReplicaNodeFor.
  const double* WeightsForNode(numa::NodeId node) const {
    DW_CHECK_GE(node, 0) << "negative node for " << family_;
    if (replicas_.size() == 1) return replicas_[0].data();
    DW_CHECK_LT(node, static_cast<numa::NodeId>(replicas_.size()))
        << "node out of range for " << family_;
    return replicas_[node].data();
  }

  /// True when this snapshot also carries int8-quantized replicas
  /// (FamilyOptions::quantized): Publish() quantized the weights once
  /// (kernels::QuantizeWeights) and replicated the int8 image with the
  /// same placement as the f64 replicas.
  bool quantized() const { return !q_replicas_.empty(); }

  /// Dequantization scale of the int8 replicas (weights ~= scale * q,
  /// zero point 0). Only meaningful when quantized().
  double int8_scale() const { return q_scale_; }

  /// Int8 weights a reader on `node` scores against; same placement and
  /// node validation as WeightsForNode. CHECKs quantized().
  const int8_t* QuantizedWeightsForNode(numa::NodeId node) const {
    DW_CHECK(!q_replicas_.empty())
        << family_ << " has no quantized replicas";
    DW_CHECK_GE(node, 0) << "negative node for " << family_;
    if (q_replicas_.size() == 1) return q_replicas_[0].data();
    DW_CHECK_LT(node, static_cast<numa::NodeId>(q_replicas_.size()))
        << "node out of range for " << family_;
    return q_replicas_[node].data();
  }

 private:
  friend class ModelFamily;
  ModelSnapshot() = default;

  uint64_t version_ = 0;
  std::string family_;
  matrix::Index dim_ = 0;
  std::chrono::steady_clock::time_point exported_at_{};
  /// Keeps the ledger the replicas report into alive even if a reader
  /// outlives the registry. Declared before replicas_ so it is destroyed
  /// after them (their destructors post to the ledger).
  std::shared_ptr<numa::NumaAllocator> allocator_;
  std::vector<numa::NodeArray<double>> replicas_;
  /// Int8 image of the same weights, same replication (empty unless the
  /// family opted in). 1/8 the bytes of replicas_: the bandwidth cut the
  /// quantized scoring path exists for.
  std::vector<numa::NodeArray<int8_t>> q_replicas_;
  double q_scale_ = 0.0;
};

/// Registration-time description of a family. The traffic estimate feeds
/// the replication chooser; `dim` is required (it fixes the footprint and
/// lets admission validate feature indices before the first publish).
struct FamilyOptions {
  opt::ServingTrafficEstimate traffic;
  /// Explicit strategy for benches/ablations; leave unset in production
  /// so the cost model decides.
  std::optional<Replication> replication_override;
  /// Build int8-quantized replicas alongside the f64 ones at every
  /// Publish (symmetric per-family scale, see kernels::QuantizeWeights).
  /// Costs one dim-sized int8 image per replica; enables the
  /// dequantize-free scoring path with its documented error bound.
  bool quantized = false;
};

/// One named model family: a versioned immutable snapshot chain plus the
/// replication strategy fixed at registration. Obtained from
/// ModelRegistry::RegisterFamily; pointers stay valid for the registry's
/// lifetime (families are never removed).
class ModelFamily {
 public:
  const std::string& name() const { return name_; }
  /// The strategy the NEXT publish builds under. Lock-free: chosen at
  /// registration, thereafter changed only by Republish (the placement
  /// tuner's live-migration path).
  Replication replication() const {
    return replication_.load(std::memory_order_acquire);
  }
  /// Why the chooser picked the registration-time strategy ("explicit
  /// override" when the caller pinned it instead).
  const std::string& rationale() const { return rationale_; }
  /// Model dimension, fixed at registration. Lock-free; safe on the
  /// request admission hot path.
  matrix::Index dim() const { return dim_; }
  /// True when every Publish also builds int8 replicas (fixed at
  /// registration via FamilyOptions::quantized).
  bool quantized() const { return quantized_; }

  /// Copies `weights` into fresh per-node replicas and installs them as
  /// the family's current version (monotonic from 1). The weight count
  /// must equal dim(): admission validates feature indices against dim()
  /// once, which is only sound if every version a batch might score
  /// against agrees. `exported_at` stamps when the weights left the
  /// trainer, for staleness accounting.
  uint64_t Publish(const std::vector<double>& weights,
                   std::chrono::steady_clock::time_point exported_at =
                       std::chrono::steady_clock::now());

  /// Live migration: rebuilds the CURRENT weights under `replication`
  /// and installs them as a new version through the regular hot-swap
  /// path -- concurrent readers keep the snapshot they hold and no batch
  /// ever tears. The source snapshot's export timestamp carries over: a
  /// migration moves bytes, it does not refresh the model, so staleness
  /// accounting must not reset. No-op (returns the current version) when
  /// the replication already matches. CHECKs that a version has been
  /// published.
  uint64_t Republish(Replication replication);

  /// Acquires the current snapshot (nullptr before the first Publish).
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  /// Version of the current snapshot (0 before the first Publish).
  /// Lock-free: workers diff this against an acquired snapshot's version
  /// to count how many publishes the batch is behind.
  uint64_t current_version() const {
    return current_version_.load(std::memory_order_acquire);
  }

 private:
  friend class ModelRegistry;
  ModelFamily(std::string name, std::shared_ptr<numa::NumaAllocator> allocator,
              Replication replication, std::string rationale,
              matrix::Index dim, bool quantized);

  /// Publish body with publish_mu_ already held (shared by Publish and
  /// Republish, which must flip replication_ and rebuild atomically with
  /// respect to other publishers).
  uint64_t PublishLocked(const std::vector<double>& weights,
                         std::chrono::steady_clock::time_point exported_at);

  const std::string name_;
  std::shared_ptr<numa::NumaAllocator> allocator_;
  /// Registration choice, rewritten only by Republish (under
  /// publish_mu_); atomic so admission/stats paths may read it lock-free
  /// mid-migration.
  std::atomic<Replication> replication_;
  const std::string rationale_;
  const matrix::Index dim_;
  const bool quantized_;
  /// Serializes publishers so installation order matches version order
  /// (readers rely on current_version() never going backwards). A
  /// blocking mutex: the critical section spans the replica allocation
  /// and full-model copies, far too long to spin through.
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;
  std::atomic<uint64_t> current_version_{0};
  /// Accessed only through std::atomic_load/atomic_store.
  std::shared_ptr<const ModelSnapshot> current_;
};

/// The registry of named families. Registration AND lookup are rare,
/// publish-rate paths (the per-request hot path resolves names through
/// ServingEngine's own table), so one mutex guards the map -- no
/// lock-free machinery where none is needed.
class ModelRegistry {
 public:
  explicit ModelRegistry(const numa::Topology& topo);

  /// Registers `name`, choosing its replication through
  /// opt::ChooseServingReplication(topology, options.traffic) unless
  /// options.replication_override is set. Registering an existing name
  /// returns the existing family unchanged (first registration wins).
  ModelFamily* RegisterFamily(const std::string& name,
                              const FamilyOptions& options);

  /// Looks up a registered family; nullptr if unknown. Returned pointers
  /// stay valid for the registry's lifetime.
  ModelFamily* FindFamily(const std::string& name) const;

  /// All families in registration order.
  std::vector<ModelFamily*> Families() const;

  int num_families() const;

  const numa::Topology& topology() const { return allocator_->topology(); }

  /// Placement ledger: where every family's current replica bytes live.
  const numa::NodeLedger& ledger() const { return allocator_->ledger(); }

 private:
  std::shared_ptr<numa::NumaAllocator> allocator_;
  /// Guards owned_ and by_name_.
  mutable std::mutex register_mu_;
  /// Owns the families; append-only, so ModelFamily* stay stable (and
  /// remain valid after FindFamily returns without the lock).
  std::vector<std::unique_ptr<ModelFamily>> owned_;
  std::unordered_map<std::string, ModelFamily*> by_name_;
};

}  // namespace dw::serve
