// NUMA-replicated, versioned model snapshots for the serving path.
//
// Training (engine::Engine) exports a consensus model; the registry turns
// each export into an immutable ModelSnapshot whose weights are replicated
// per NUMA node through the same numa::NumaAllocator machinery the trainer
// uses for its mutable replicas. Serving is the read-mostly regime where
// the paper's PerNode replication (Sec. 3.3) is unambiguously right: every
// reader scores against its node-local copy and no cacheline is ever
// shared across sockets. kPerMachine (one shared copy) exists as the
// baseline the serving bench compares against, mirroring Fig. 8.
//
// Hot-swap: Publish() builds the new snapshot off to the side and installs
// it with one atomic pointer store. Concurrent readers either keep the
// snapshot they already acquired (it is immutable and refcounted) or see
// the new one -- never a mix of versions, never a torn weight vector.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "matrix/sparse_vector.h"
#include "numa/numa_allocator.h"
#include "numa/topology.h"

namespace dw::serve {

/// Granularity of the read-only serving replicas (the serving analogue of
/// engine::ModelReplication; PerCore buys nothing for immutable state).
enum class Replication {
  kPerNode,     ///< one copy per NUMA node, readers route to the local one
  kPerMachine,  ///< one shared copy on node 0 (the Fig. 8 baseline)
};

const char* ToString(Replication r);

/// One immutable, versioned model. Readers hold it via shared_ptr, so a
/// snapshot stays valid for as long as any in-flight batch references it,
/// even after newer versions are published.
class ModelSnapshot {
 public:
  uint64_t version() const { return version_; }
  const std::string& name() const { return name_; }
  matrix::Index dim() const { return dim_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  /// Node owning the replica that serves a reader on `node`.
  numa::NodeId ReplicaNodeFor(numa::NodeId node) const {
    return replicas_.size() == 1 ? replicas_[0].node()
                                 : replicas_[node].node();
  }

  /// Weights a reader on `node` scores against: its node-local copy under
  /// kPerNode, the single shared copy under kPerMachine.
  const double* WeightsForNode(numa::NodeId node) const {
    return replicas_.size() == 1 ? replicas_[0].data()
                                 : replicas_[node].data();
  }

 private:
  friend class ModelRegistry;
  ModelSnapshot() = default;

  uint64_t version_ = 0;
  std::string name_;
  matrix::Index dim_ = 0;
  /// Keeps the ledger the replicas report into alive even if a reader
  /// outlives the registry. Declared before replicas_ so it is destroyed
  /// after them (their destructors post to the ledger).
  std::shared_ptr<numa::NumaAllocator> allocator_;
  std::vector<numa::NodeArray<double>> replicas_;
};

/// Holds the current snapshot and swaps it atomically on republish.
class ModelRegistry {
 public:
  ModelRegistry(const numa::Topology& topo, Replication replication);

  /// Copies `weights` into fresh per-node replicas and installs them as
  /// the current version. Returns the new version (monotonic from 1).
  /// The first Publish fixes the registry's model dimension; publishing a
  /// different dimension later is a programming error (checked): readers
  /// validate feature indices against dim() once at admission, which is
  /// only sound if every version a batch might score against agrees.
  uint64_t Publish(const std::string& name,
                   const std::vector<double>& weights);

  /// Acquires the current snapshot (nullptr before the first Publish).
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t current_version() const;

  /// Model dimension shared by every published version (0 before the
  /// first Publish). Lock-free; safe on the request admission hot path.
  matrix::Index dim() const { return dim_.load(std::memory_order_acquire); }

  Replication replication() const { return replication_; }
  const numa::Topology& topology() const { return allocator_->topology(); }

  /// Placement ledger: where the current snapshot's replica bytes live.
  const numa::NodeLedger& ledger() const { return allocator_->ledger(); }

 private:
  std::shared_ptr<numa::NumaAllocator> allocator_;
  Replication replication_;
  /// Serializes publishers so installation order matches version order
  /// (readers rely on current_version() never going backwards). A
  /// blocking mutex: the critical section spans the replica allocation
  /// and full-model copies, far too long to spin through.
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;
  std::atomic<matrix::Index> dim_{0};
  /// Accessed only through std::atomic_load/atomic_store.
  std::shared_ptr<const ModelSnapshot> current_;
};

}  // namespace dw::serve
