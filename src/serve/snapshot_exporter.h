// Background training->serving snapshot pipeline: the serving twin of the
// paper's Sec. 3.3 asynchronous model averager.
//
// Training exports used to reach serving by hand: the caller ran some
// epochs, called engine::Engine::Export(), and published the result. The
// exporter automates this on a period, DURING training: a background
// thread wakes every `period`, pulls the engine's export buffer (a
// thread-safe consensus copy refreshed at every averaging round and epoch
// boundary -- epochs never block on it), and publishes the snapshot into
// the serving registry's family. Serving traffic then scores against
// weights at most ~period + one averaging interval behind the trainer,
// and ServingStats' per-family staleness columns measure exactly that
// lag, so bench_serving can chart the staleness-vs-throughput tradeoff.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "engine/engine.h"
#include "serve/serving_engine.h"

namespace dw::serve {

/// Periodically publishes `trainer`'s export into one serving family.
class SnapshotExporter {
 public:
  struct Options {
    /// Export-and-publish cadence FLOOR. Shorter = fresher models, more
    /// publish bandwidth (every publish copies the model once per
    /// replica). The effective period is derived from this and the
    /// measured publish latency (see max_publish_fraction).
    std::chrono::milliseconds period{50};
    /// Ceiling on the fraction of wall time spent INSIDE
    /// Export()+Publish(): the loop stretches its sleep to at least
    /// measured_publish_latency / max_publish_fraction, so a family
    /// whose publish is slow (wide model, many replicas) paces itself
    /// down instead of spending most of the exporter thread's life --
    /// and the registry's publish bandwidth -- on copies. With the
    /// default 5%, a 10ms publish is republished at most every 200ms no
    /// matter how short `period` is. Must be in (0, 1].
    double max_publish_fraction = 0.05;
    /// Publish one export immediately on Start(), so the family is
    /// servable before the first period elapses (ServingEngine::Start()
    /// requires every family published).
    bool publish_on_start = true;
    /// Publish one final export inside Stop(), so the last trained model
    /// is never lost to an unlucky period boundary (training that ends
    /// mid-period would otherwise serve a snapshot up to `period` old
    /// forever).
    bool publish_on_stop = true;
  };

  /// Publish-side counters (registry publish latency, NOT serving-side
  /// staleness -- that lives in FamilyServingStats).
  struct Stats {
    uint64_t publishes = 0;
    uint64_t last_version = 0;     ///< last version this exporter installed
    double mean_publish_ms = 0.0;  ///< Export()+Publish() wall latency
    double max_publish_ms = 0.0;
    /// EWMA of the publish latency (what the pacing reacts to; the mean
    /// is the whole-run record).
    double ewma_publish_ms = 0.0;
    /// The period the loop last armed: Options::period, or the stretched
    /// latency-derived value when publishes run long.
    double effective_period_ms = 0.0;
    /// Sleeps stretched past Options::period by the publish-time ceiling.
    uint64_t paced_periods = 0;
  };

  /// `trainer` and `server` must outlive the exporter; `family` must be
  /// registered on `server` (checked at Start).
  SnapshotExporter(engine::Engine* trainer, ServingEngine* server,
                   std::string family, Options options);
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Starts the background publisher (idempotent-hostile: once).
  void Start();

  /// Stops and joins the publisher thread, flushing one final export
  /// first (publish_on_stop). Idempotent; also run by the destructor.
  /// The last installed snapshot stays served.
  void Stop();

  Stats stats() const;

  /// Overrides the pacing FLOOR at runtime (the placement tuner's
  /// staleness-SLO control): the loop re-derives its effective period
  /// from this value on its next wake, so a long armed sleep does not
  /// delay the new cadence. The publish-latency ceiling
  /// (max_publish_fraction) still applies on top. Values <= 0 restore
  /// Options::period.
  void SetPeriod(std::chrono::milliseconds period);

  /// The pacing floor currently in force, in ms: the SetPeriod override
  /// when set, Options::period otherwise.
  double period_floor_ms() const;

 private:
  void Loop();
  void PublishOnce();

  engine::Engine* trainer_;
  ServingEngine* server_;
  const std::string family_;
  const Options options_;

  /// Telemetry mirrors on the server's registry (exporter.* metrics,
  /// labeled by family); no-op instruments when the server runs with
  /// telemetry off. stats_ stays authoritative -- the pacing loop reads
  /// it, never the registry.
  obs::Counter* publishes_counter_ = nullptr;
  obs::Counter* paced_counter_ = nullptr;
  obs::Gauge* version_gauge_ = nullptr;
  obs::Gauge* period_gauge_ = nullptr;
  obs::Histogram* publish_ms_hist_ = nullptr;

  std::thread thread_;
  mutable std::mutex mu_;  ///< guards stop_ for the cv + the stats
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
  /// Runtime pacing-floor override in ms (0: none); guarded by mu_.
  /// period_dirty_ wakes an armed sleep so the change applies now.
  double period_override_ms_ = 0.0;
  bool period_dirty_ = false;
  Stats stats_;
};

}  // namespace dw::serve
