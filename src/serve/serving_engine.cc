#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "util/logging.h"
#include "util/thread_util.h"

namespace dw::serve {

using matrix::Index;

const char* ToString(ScoringMode m) {
  return m == ScoringMode::kBatched ? "Batched" : "Scalar";
}

// Per-worker mutable state. Workers update it under a spinlock taken once
// per batch (cold relative to the scoring loop); Stats() aggregates under
// the same locks.
struct ServingEngine::WorkerState {
  mutable SpinLock mu;
  engine::LatencyRecorder latencies;
  numa::AccessCounters counters;
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t local_replica_batches = 0;
  uint64_t remote_replica_batches = 0;
};

ServingEngine::ServingEngine(const models::ModelSpec* spec,
                             ServingOptions options)
    : spec_(spec),
      options_(std::move(options)),
      registry_(options_.topology, options_.replication),
      batcher_(options_.batch) {
  DW_CHECK(spec_ != nullptr);
  const numa::Topology& topo = options_.topology;
  const int nw = options_.num_threads > 0 ? options_.num_threads
                                          : topo.total_cores();
  // Round-robin workers over nodes so every socket serves traffic at any
  // thread count (core ids are node-major: node n owns cores
  // [n*cores_per_node, (n+1)*cores_per_node)).
  worker_cores_.reserve(nw);
  worker_nodes_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    const numa::NodeId node = w % topo.num_nodes;
    const int slot = (w / topo.num_nodes) % topo.cores_per_node;
    const numa::CoreId core = node * topo.cores_per_node + slot;
    worker_cores_.push_back(core);
    worker_nodes_.push_back(node);
  }
  // Built once here (never rebuilt) so a monitoring thread's Stats() can
  // iterate the states concurrently with Start().
  worker_states_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
}

ServingEngine::~ServingEngine() { Stop(); }

uint64_t ServingEngine::Publish(const std::string& name,
                                const std::vector<double>& weights) {
  return registry_.Publish(name, weights);
}

uint64_t ServingEngine::Publish(const engine::ModelExport& exported) {
  return registry_.Publish(exported.spec_name, exported.weights);
}

Status ServingEngine::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("already started");
  }
  if (stopped_) {
    // Stop() shuts the batcher down for good (drain semantics); a stopped
    // engine cannot be revived -- construct a fresh one.
    return Status::FailedPrecondition("engine was stopped; not restartable");
  }
  if (registry_.current_version() == 0) {
    return Status::FailedPrecondition("no model published");
  }
  const int nw = num_workers();
  workers_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  serve_timer_.Reset();
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void ServingEngine::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  batcher_.Shutdown();
  for (auto& t : workers_) t.join();
  workers_.clear();
  stopped_wall_sec_ = serve_timer_.Seconds();
  running_.store(false, std::memory_order_release);
  stopped_ = true;
}

StatusOr<std::future<double>> ServingEngine::Score(
    std::vector<Index> indices, std::vector<double> values) {
  // Requests cross a trust boundary: an out-of-range feature index would
  // read past the replica inside SparseVectorView::Dot. The registry
  // enforces one dimension across all published versions, so this
  // admission check holds for whichever version scores the batch -- and
  // reading the lock-free dim() avoids a contended snapshot acquire per
  // single-row submit.
  const Index dim = registry_.dim();
  if (dim == 0) {
    return Status::FailedPrecondition("no model published");
  }
  if (indices.empty()) {
    // Explicit dense form: value k scores against coordinate k.
    if (values.size() > dim) {
      return Status::InvalidArgument("dense row wider than the model");
    }
  } else {
    // The validation scan doubles as an identity test: an identity-indexed
    // row is rewritten to the dense form for free, so it skips index
    // traffic and takes the tiled kernel downstream.
    bool identity = indices.size() <= dim;
    Index pos = 0;
    for (const Index i : indices) {
      if (i >= dim) {
        return Status::InvalidArgument("feature index out of range");
      }
      identity = identity && i == pos++;
    }
    if (identity && indices.size() == values.size()) {
      indices.clear();
    }
  }
  // Without workers a queued promise would never resolve (ScoreSync would
  // hang); the batcher itself only rejects after Shutdown.
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not started");
  }
  return batcher_.Submit(std::move(indices), std::move(values));
}

StatusOr<double> ServingEngine::ScoreSync(std::vector<Index> indices,
                                          std::vector<double> values) {
  auto fut = Score(std::move(indices), std::move(values));
  if (!fut.ok()) return fut.status();
  return std::move(fut).value().get();
}

void ServingEngine::WorkerLoop(int worker_id) {
  SetCurrentThreadName("dw-serve-" + std::to_string(worker_id));
  const numa::Topology& topo = options_.topology;
  const numa::NodeId node = worker_nodes_[worker_id];
  if (options_.pin_threads) {
    const int cpu =
        topo.PhysicalCpuOfCore(worker_cores_[worker_id], NumOnlineCpus());
    (void)PinCurrentThreadToCpu(cpu);
  }
  WorkerState& ws = *worker_states_[worker_id];
  const bool batched = options_.scoring == ScoringMode::kBatched;

  Batch batch;
  // Batched-mode scratch, reused across batches (no per-batch allocation
  // once warm).
  std::vector<matrix::SparseVectorView> views;
  std::vector<double> scores;
  while (batcher_.NextBatch(&batch)) {
    // One registry acquire per BATCH: the snapshot is pinned for the whole
    // scan, so a concurrent Publish can never tear a batch across
    // versions.
    const auto snap = registry_.Acquire();
    const double* weights = snap->WeightsForNode(node);
    const bool replica_local = snap->ReplicaNodeFor(node) == node;

    uint64_t batch_nnz = 0;
    if (batched) {
      const size_t rows = batch.rows();
      views.clear();
      views.reserve(rows);
      for (const ScoreRequest& req : batch.requests) views.push_back(req.View());
      scores.resize(rows);
      spec_->PredictBatch(weights, snap->dim(), views.data(), rows,
                          scores.data());
      for (size_t r = 0; r < rows; ++r) {
        batch.requests[r].result.set_value(scores[r]);
      }
    }

    numa::AccessCounters delta;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(batch.rows());
    for (ScoreRequest& req : batch.requests) {
      if (!batched) {
        req.result.set_value(spec_->Predict(weights, req.View()));
      }
      // Stamped after set_value so the recorded latency covers the full
      // submit-to-resolution interval, including this batch's scoring.
      const auto resolved_at = std::chrono::steady_clock::now();
      const uint64_t nnz = req.values.size();
      batch_nnz += nnz;
      // Request payload arrives node-local (the batch was just written);
      // model reads hit the routed replica. Dense requests carry no index
      // array.
      delta.local_read_bytes +=
          nnz * sizeof(double) + req.indices.size() * sizeof(Index);
      if (!batched) {
        // Scalar mode re-gathers the replica per row.
        const uint64_t model_bytes = nnz * sizeof(double);
        if (replica_local) {
          delta.model_read_bytes += model_bytes;
        } else {
          delta.remote_read_bytes += model_bytes;
        }
      }
      delta.flops += 2 * nnz;
      ++delta.updates;
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(resolved_at -
                                                    req.enqueued_at)
              .count());
    }
    if (batched) {
      // The spec reports what its batched kernel actually streams: the
      // blocked GLM kernels read each model tile once per row chunk; the
      // reference default re-gathers per row like scalar mode.
      const uint64_t model_bytes = spec_->PredictBatchModelBytes(
          snap->dim(), batch_nnz, batch.rows());
      if (replica_local) {
        delta.model_read_bytes += model_bytes;
      } else {
        delta.remote_read_bytes += model_bytes;
      }
    }

    std::lock_guard<SpinLock> g(ws.mu);
    ws.counters.Merge(delta);
    ws.batches += 1;
    ws.rows += batch.rows();
    if (replica_local) {
      ws.local_replica_batches += 1;
    } else {
      ws.remote_replica_batches += 1;
    }
    for (double ms : latencies_ms) ws.latencies.Record(ms);
  }
}

ServingStats ServingEngine::Stats() const {
  ServingStats s;
  engine::LatencyRecorder all;
  for (const auto& ws : worker_states_) {
    std::lock_guard<SpinLock> g(ws->mu);
    s.requests += ws->rows;
    s.batches += ws->batches;
    s.local_replica_batches += ws->local_replica_batches;
    s.remote_replica_batches += ws->remote_replica_batches;
    s.traffic.Merge(ws->counters);
    all.Merge(ws->latencies);
  }
  s.wall_sec = running_.load(std::memory_order_acquire)
                   ? serve_timer_.Seconds()
                   : stopped_wall_sec_;
  if (s.wall_sec > 0.0) {
    s.rows_per_sec = static_cast<double>(s.requests) / s.wall_sec;
  }
  if (s.batches > 0) {
    s.mean_batch_rows =
        static_cast<double>(s.requests) / static_cast<double>(s.batches);
  }
  const std::vector<double> pct = all.Percentiles({50.0, 99.0});
  s.p50_latency_ms = pct[0];
  s.p99_latency_ms = pct[1];
  s.max_latency_ms = all.MaxMs();
  return s;
}

numa::SimulationInput ServingEngine::SimInput() const {
  const numa::Topology& topo = options_.topology;
  numa::SimulationInput in(topo.num_nodes);
  for (int w = 0; w < num_workers(); ++w) {
    const WorkerState& ws = *worker_states_[w];
    std::lock_guard<SpinLock> g(ws.mu);
    in.traffic.Add(worker_nodes_[w], ws.counters);
    ++in.active_workers[worker_nodes_[w]];
  }
  // Read-only serving never writes shared lines, but a PerMachine replica
  // is still read by every socket; the memory model charges the remote
  // reads accounted above.
  in.model_sharing_sockets =
      options_.replication == Replication::kPerMachine ? topo.num_nodes : 1;
  const auto snap = registry_.Acquire();
  if (snap) {
    in.model_bytes = static_cast<uint64_t>(snap->dim()) * sizeof(double);
  }
  return in;
}

}  // namespace dw::serve
