#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>

#include "kernels/dispatch.h"
#include "util/logging.h"
#include "util/thread_util.h"

namespace dw::serve {

using matrix::Index;

const char* ToString(ScoringMode m) {
  return m == ScoringMode::kBatched ? "Batched" : "Scalar";
}

namespace {

// The admission controller shares the engine's drain parallelism: N
// workers retire a family's backlog N times faster than one, so the
// queueing-delay estimate divides by the pool size.
opt::AdmissionControllerOptions AdmissionOptionsFor(
    const ServingOptions& options) {
  opt::AdmissionControllerOptions o;
  o.drain_workers = options.num_threads > 0
                        ? options.num_threads
                        : options.topology.total_cores();
  return o;
}

}  // namespace

// Per-worker mutable state: the NUMA traffic ledger SimInput() needs
// attributed per worker node. All per-family serving counters moved into
// registry instruments; the spinlock survives only for the AccessCounters
// merge (once per batch, cold relative to the scoring loop).
struct ServingEngine::WorkerState {
  mutable SpinLock mu;
  numa::AccessCounters counters;
};

ServingEngine::ServingEngine(ServingOptions options)
    : options_(std::move(options)),
      obs_(obs::RegistryOptions{options_.telemetry}),
      spans_(options_.telemetry ? options_.trace_capacity : 0),
      registry_(options_.topology),
      admission_(options_.topology, AdmissionOptionsFor(options_)),
      store_allocator_(
          std::make_shared<numa::NumaAllocator>(options_.topology)),
      table_(std::make_shared<const FamilyTable>()) {
  // Admission and the batcher publish their counters on the engine's
  // registry; attach before any family registration resolves instruments.
  admission_.AttachRegistry(&obs_);
  batcher_.AttachRegistry(&obs_);
  batcher_.AttachController(&admission_);
  // Serve-time NUMA traffic per node (the serving analogue of the
  // training counters the paper reports); on a disabled registry these
  // are no-op instruments and the adds vanish.
  node_traffic_.resize(options_.topology.num_nodes);
  for (int n = 0; n < options_.topology.num_nodes; ++n) {
    const obs::Labels labels = {{"node", std::to_string(n)}};
    node_traffic_[n].local_read_bytes =
        obs_.GetCounter("numa.local_read_bytes", labels);
    node_traffic_[n].remote_read_bytes =
        obs_.GetCounter("numa.remote_read_bytes", labels);
    node_traffic_[n].model_read_bytes =
        obs_.GetCounter("numa.model_read_bytes", labels);
  }
  const numa::Topology& topo = options_.topology;
  const int nw = options_.num_threads > 0 ? options_.num_threads
                                          : topo.total_cores();
  // Round-robin workers over nodes so every socket serves traffic at any
  // thread count (core ids are node-major: node n owns cores
  // [n*cores_per_node, (n+1)*cores_per_node)).
  worker_cores_.reserve(nw);
  worker_nodes_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    const numa::NodeId node = w % topo.num_nodes;
    const int slot = (w / topo.num_nodes) % topo.cores_per_node;
    const numa::CoreId core = node * topo.cores_per_node + slot;
    worker_cores_.push_back(core);
    worker_nodes_.push_back(node);
  }
  // Built once here (never rebuilt) so a monitoring thread's Stats() can
  // iterate the states concurrently with Start().
  worker_states_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
}

ServingEngine::~ServingEngine() { Stop(); }

std::shared_ptr<const ServingEngine::FamilyTable> ServingEngine::Table()
    const {
  return std::atomic_load_explicit(&table_, std::memory_order_acquire);
}

int ServingEngine::num_families() const {
  return static_cast<int>(Table()->families.size());
}

Status ServingEngine::RegisterFamily(const std::string& family,
                                     const models::ModelSpec* spec,
                                     const ServingFamilyOptions& fopts) {
  if (spec == nullptr) {
    return Status::InvalidArgument("family needs a ModelSpec");
  }
  if (running_.load(std::memory_order_acquire) || stopped_) {
    return Status::FailedPrecondition(
        "families must be registered before Start()");
  }
  if (fopts.traffic.dim == 0) {
    return Status::InvalidArgument("traffic estimate needs dim: " + family);
  }
  // Refused up front rather than CHECK-failing in a worker: quantized
  // serving needs the spec's dequantize-free int8 kernel.
  if (fopts.quantized && !spec->SupportsQuantizedPredict()) {
    return Status::InvalidArgument(
        "family " + family + ": spec " + spec->name() +
        " does not support quantized scoring");
  }
  std::lock_guard<std::mutex> lk(register_mu_);
  // Re-checked under the lock: Start() holds register_mu_ for its whole
  // setup, so a registration racing Start() either lands before the
  // worker pool snapshots the table or is refused here -- never between.
  if (running_.load(std::memory_order_acquire) || stopped_) {
    return Status::FailedPrecondition(
        "families must be registered before Start()");
  }
  const auto current = Table();
  if (current->ids.count(family) > 0) {
    return Status::InvalidArgument("family already registered: " + family);
  }
  FamilyOptions reg_opts;
  reg_opts.traffic = fopts.traffic;
  reg_opts.replication_override = fopts.replication_override;
  reg_opts.quantized = fopts.quantized;
  FamilyState fs;
  fs.name = family;
  fs.family = registry_.RegisterFamily(family, reg_opts);
  fs.spec = spec;
  fs.quantized = fopts.quantized;
  fs.traffic = fopts.traffic;
  RequestBatcher::Options bopts = fopts.batch.value_or(options_.batch);
  // Engine-level trace sampling flows into the queue unless the family
  // set its own; a disabled registry keeps the spans ring empty anyway
  // (spans_ has capacity 0), but skipping the sampler saves the branch.
  if (options_.telemetry && bopts.trace_sample_every == 0) {
    bopts.trace_sample_every = options_.trace_sample_every;
  }
  fs.queue = batcher_.AddQueue(bopts, family);
  // Queue ids and family ids stay aligned: families[id].queue == id, so
  // a popped Batch::family indexes the table directly.
  DW_CHECK_EQ(fs.queue, static_cast<FamilyId>(current->families.size()));
  // The family's serving instruments, resolved once; workers hold these
  // raw pointers and never touch the registry again.
  {
    const obs::Labels labels = {{"family", family}};
    fs.inst.rows = obs_.GetCounter("serve.rows", labels);
    fs.inst.batches = obs_.GetCounter("serve.batches", labels);
    fs.inst.local_replica_batches =
        obs_.GetCounter("serve.local_replica_batches", labels);
    fs.inst.remote_replica_batches =
        obs_.GetCounter("serve.remote_replica_batches", labels);
    fs.inst.id_rows = obs_.GetCounter("store.id_rows", labels);
    fs.inst.local_store_rows =
        obs_.GetCounter("store.local_gather_rows", labels);
    fs.inst.remote_store_rows =
        obs_.GetCounter("store.remote_gather_rows", labels);
    fs.inst.store_local_bytes =
        obs_.GetCounter("store.local_gather_bytes", labels);
    fs.inst.store_remote_bytes =
        obs_.GetCounter("store.remote_gather_bytes", labels);
    fs.inst.key_rows = obs_.GetCounter("store.key_rows", labels);
    fs.inst.key_misses = obs_.GetCounter("store.key_misses", labels);
    fs.inst.store_delta_bytes = obs_.GetCounter("store.delta_bytes", labels);
    fs.inst.store_full_bytes = obs_.GetCounter("store.full_bytes", labels);
    fs.inst.store_evictions = obs_.GetCounter("store.evictions", labels);
    // The dispatch level is resolved once per process, so the label is
    // fixed here; `weights` says which replica the batched kernel reads.
    obs::Labels kernel_labels = labels;
    kernel_labels.emplace_back(
        "kernel", kernels::ToString(kernels::ActiveKernelLevel()));
    kernel_labels.emplace_back("weights",
                               fopts.quantized ? "int8" : "f64");
    fs.inst.kernel_rows =
        obs_.GetCounter("serve.kernel_rows", std::move(kernel_labels));
    fs.inst.latency_ms = obs_.GetHistogram("serve.latency_ms", labels);
    fs.inst.staleness_ms = obs_.GetHistogram("serve.staleness_ms", labels);
    fs.inst.versions_behind =
        obs_.GetHistogram("serve.versions_behind", labels);
    for (int st = 0; st < obs::kNumStages; ++st) {
      obs::Labels stage_labels = labels;
      stage_labels.emplace_back("stage", obs::StageName(st));
      fs.inst.stage_us[st] =
          obs_.GetHistogram("serve.stage_us", std::move(stage_labels));
    }
  }
  // The admission controller's ids stay aligned too: the batcher indexes
  // it by FamilyId at admission time. Its prior is seeded from the same
  // traffic estimate the replication chooser used, against the
  // replication that chooser actually picked.
  opt::AdmissionFamilyProfile prof;
  prof.name = family;
  prof.dim = fopts.traffic.dim;
  prof.expected_batch_rows = fopts.traffic.expected_batch_rows;
  prof.model_touch_fraction = fopts.traffic.model_touch_fraction;
  prof.model_sharing_sockets =
      fs.family->replication() == Replication::kPerMachine
          ? options_.topology.num_nodes
          : 1;
  DW_CHECK_EQ(admission_.AddFamily(prof), fs.queue);
  for (const auto& [client, weight] : fopts.client_weights) {
    batcher_.SetClientWeight(fs.queue, client, weight);
  }
  auto next = std::make_shared<FamilyTable>(*current);
  next->ids[family] = fs.queue;
  next->families.push_back(std::move(fs));
  std::atomic_store_explicit(
      &table_, std::shared_ptr<const FamilyTable>(std::move(next)),
      std::memory_order_release);
  return Status::OK();
}

Status ServingEngine::RegisterStore(const std::string& family,
                                    matrix::Index rows, matrix::Index dim,
                                    const StoreOptions& sopts) {
  if (rows == 0 || dim == 0) {
    return Status::InvalidArgument("feature store needs rows and dim: " +
                                   family);
  }
  std::lock_guard<std::mutex> lk(register_mu_);
  // Same freeze discipline as RegisterFamily: the COW table is immutable
  // once workers snapshot it, so stores attach before Start() only.
  if (running_.load(std::memory_order_acquire) || stopped_) {
    return Status::FailedPrecondition(
        "stores must be registered before Start()");
  }
  const auto current = Table();
  const auto it = current->ids.find(family);
  if (it == current->ids.end()) {
    return Status::NotFound("unknown family: " + family);
  }
  const FamilyState& fs = current->families[it->second];
  if (fs.store != nullptr) {
    return Status::InvalidArgument("store already registered for family " +
                                   family);
  }
  if (dim != fs.family->dim()) {
    return Status::InvalidArgument(
        "store dim " + std::to_string(dim) + " does not match family dim " +
        std::to_string(fs.family->dim()) + " for " + family);
  }
  stores_.push_back(std::make_unique<FeatureStore>(family, store_allocator_,
                                                   rows, dim, sopts));
  // The store writes its own publish odometers onto the family's
  // counters, so tuner-driven Republish flips (which bypass the engine's
  // PublishStore wrapper) are accounted exactly like caller publishes.
  const FamilyInstruments& inst = fs.inst;
  stores_.back()->AttachInstruments(inst.store_delta_bytes,
                                    inst.store_full_bytes,
                                    inst.store_evictions);
  auto next = std::make_shared<FamilyTable>(*current);
  next->families[it->second].store = stores_.back().get();
  std::atomic_store_explicit(
      &table_, std::shared_ptr<const FamilyTable>(std::move(next)),
      std::memory_order_release);
  return Status::OK();
}

uint64_t ServingEngine::PublishStore(const std::string& family,
                                     const std::vector<double>& row_major) {
  const auto table = Table();
  const auto it = table->ids.find(family);
  DW_CHECK(it != table->ids.end())
      << "publish to unregistered family " << family;
  FeatureStore* store = table->families[it->second].store;
  DW_CHECK(store != nullptr)
      << "no feature store registered for family " << family;
  return store->Publish(row_major);
}

StorePublishReport ServingEngine::PublishStoreDelta(
    const std::string& family, const std::vector<uint64_t>& keys,
    const std::vector<double>& row_major) {
  const auto table = Table();
  const auto it = table->ids.find(family);
  DW_CHECK(it != table->ids.end())
      << "delta publish to unregistered family " << family;
  FeatureStore* store = table->families[it->second].store;
  DW_CHECK(store != nullptr)
      << "no feature store registered for family " << family;
  return store->PublishDelta(keys, row_major);
}

const FeatureStore* ServingEngine::FindStore(const std::string& family) const {
  const auto table = Table();
  const auto it = table->ids.find(family);
  return it == table->ids.end() ? nullptr : table->families[it->second].store;
}

uint64_t ServingEngine::Publish(const std::string& family,
                                const std::vector<double>& weights) {
  ModelFamily* f = registry_.FindFamily(family);
  DW_CHECK(f != nullptr) << "publish to unregistered family " << family;
  return f->Publish(weights);
}

uint64_t ServingEngine::Publish(const std::string& family,
                                const engine::ModelExport& exported) {
  ModelFamily* f = registry_.FindFamily(family);
  DW_CHECK(f != nullptr) << "publish to unregistered family " << family;
  return f->Publish(exported.weights, exported.exported_at);
}

Status ServingEngine::Start() {
  // Held through worker spawn and the running_ store: a RegisterFamily
  // racing Start() must not slip a family in after the workers cached
  // the table (their per-family state would be sized without it).
  std::lock_guard<std::mutex> lk(register_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("already started");
  }
  if (stopped_) {
    // Stop() shuts the batcher down for good (drain semantics); a stopped
    // engine cannot be revived -- construct a fresh one.
    return Status::FailedPrecondition("engine was stopped; not restartable");
  }
  const auto table = Table();
  if (table->families.empty()) {
    return Status::FailedPrecondition("no families registered");
  }
  for (const FamilyState& fs : table->families) {
    if (fs.family->current_version() == 0) {
      return Status::FailedPrecondition("no model published for family " +
                                        fs.name);
    }
    // A registered store promises the id-keyed form works; starting with
    // an empty table would make every Score(family, row_id) fail until
    // the first refresh lands.
    if (fs.store != nullptr && fs.store->current_version() == 0) {
      return Status::FailedPrecondition(
          "no feature table published for family " + fs.name);
    }
  }
  // The family set is final (RegisterFamily refuses once running_ is
  // set, checked under register_mu_ which we hold): freeze a raw pointer
  // for the admission hot path. table_ keeps the object alive.
  frozen_table_.store(table.get(), std::memory_order_release);
  const int nw = num_workers();
  workers_.reserve(nw);
  for (int w = 0; w < nw; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  serve_timer_.Reset();
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

opt::PlacementTuner* ServingEngine::EnableTuner(
    const opt::TunerOptions& topts) {
  std::lock_guard<std::mutex> lk(register_mu_);
  // The tuner diffs live registry counters; before Start() there is no
  // traffic to observe, and after Stop() there is nothing to migrate.
  DW_CHECK(running_.load(std::memory_order_acquire))
      << "EnableTuner: start the engine first";
  DW_CHECK(tuner_ == nullptr) << "tuner already enabled";
  DW_CHECK(options_.telemetry)
      << "the tuner is blind without telemetry: every observed rate on a "
         "disabled registry reads 0";
  tuner_ = std::make_unique<opt::PlacementTuner>(options_.topology, &obs_,
                                                 topts);
  // The family set froze at Start(), so this walk sees every family.
  for (const FamilyState& fs : Table()->families) {
    tuner_->AddFamily(fs.family, fs.store, &admission_, fs.queue,
                      fs.traffic);
  }
  tuner_->Start();
  return tuner_.get();
}

void ServingEngine::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Tuner first: no migration may land while the drain runs down.
  if (tuner_ != nullptr) tuner_->Stop();
  batcher_.Shutdown();
  for (auto& t : workers_) t.join();
  workers_.clear();
  stopped_wall_sec_ = serve_timer_.Seconds();
  running_.store(false, std::memory_order_release);
  stopped_ = true;
}

const ServingEngine::FamilyState* ServingEngine::FindFamilyState(
    const std::string& family,
    std::shared_ptr<const FamilyTable>* keepalive) const {
  // Post-Start the table is frozen and the raw pointer skips the
  // shared_ptr machinery; pre-Start (cold setup/validation calls) fall
  // back to the COW load that tolerates concurrent registration.
  const FamilyTable* frozen = frozen_table_.load(std::memory_order_acquire);
  if (frozen == nullptr) {
    *keepalive = Table();
    frozen = keepalive->get();
  }
  const auto it = frozen->ids.find(family);
  return it == frozen->ids.end() ? nullptr : &frozen->families[it->second];
}

StatusOr<std::future<double>> ServingEngine::Score(
    const std::string& family, std::vector<Index> indices,
    std::vector<double> values) {
  return Score(family, std::move(indices), std::move(values),
               kDefaultClient);
}

StatusOr<std::future<double>> ServingEngine::Score(
    const std::string& family, std::vector<Index> indices,
    std::vector<double> values, ClientId client) {
  // Span anchor: validation from here to enqueue is the admit stage.
  // One clock read per submit, skipped on the no-telemetry baseline.
  const auto admitted_at = options_.telemetry
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  std::shared_ptr<const FamilyTable> keepalive;
  const FamilyState* fsp = FindFamilyState(family, &keepalive);
  if (fsp == nullptr) {
    return Status::NotFound("unknown family: " + family);
  }
  const FamilyState& fs = *fsp;
  // The family's dimension is fixed at registration, so admission can
  // validate feature indices once, and the check holds for whichever
  // version eventually scores the batch. Requests cross a trust
  // boundary: an out-of-range index would read past the replica inside
  // SparseVectorView::Dot.
  if (fs.family->current_version() == 0) {
    return Status::FailedPrecondition("no model published for family " +
                                      family);
  }
  const Index dim = fs.family->dim();
  if (indices.empty()) {
    // Explicit dense form: value k scores against coordinate k.
    if (values.size() > dim) {
      return Status::InvalidArgument("dense row wider than the model");
    }
  } else {
    // The validation scan doubles as an identity test: an identity-indexed
    // row is rewritten to the dense form for free, so it skips index
    // traffic and takes the tiled kernel downstream.
    bool identity = indices.size() <= dim;
    Index pos = 0;
    for (const Index i : indices) {
      if (i >= dim) {
        return Status::InvalidArgument("feature index out of range");
      }
      identity = identity && i == pos++;
    }
    if (identity && indices.size() == values.size()) {
      indices.clear();
    }
  }
  // Without workers a queued promise would never resolve (ScoreSync would
  // hang); the batcher itself only rejects after Shutdown.
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not started");
  }
  return batcher_.Submit(fs.queue, std::move(indices), std::move(values),
                         std::move(client), admitted_at);
}

StatusOr<std::future<double>> ServingEngine::Score(const std::string& family,
                                                   Index row_id) {
  return Score(family, row_id, kDefaultClient);
}

StatusOr<std::future<double>> ServingEngine::Score(const std::string& family,
                                                   Index row_id,
                                                   ClientId client) {
  const auto admitted_at = options_.telemetry
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  std::shared_ptr<const FamilyTable> keepalive;
  const FamilyState* fsp = FindFamilyState(family, &keepalive);
  if (fsp == nullptr) {
    return Status::NotFound("unknown family: " + family);
  }
  const FamilyState& fs = *fsp;
  if (fs.store == nullptr) {
    return Status::FailedPrecondition(
        "no feature store registered for family " + family);
  }
  if (fs.family->current_version() == 0) {
    return Status::FailedPrecondition("no model published for family " +
                                      family);
  }
  // Same trust boundary as the carried form's index scan, same Status
  // code: the table shape is fixed at registration, so this one check
  // holds for whichever version eventually serves the batch (an
  // out-of-range id would read past a shard in RowForNode).
  if (row_id >= fs.store->rows()) {
    return Status::InvalidArgument("row id out of range for family " +
                                   family);
  }
  if (fs.store->current_version() == 0) {
    return Status::FailedPrecondition(
        "no feature table published for family " + family);
  }
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not started");
  }
  return batcher_.SubmitId(fs.queue, row_id, std::move(client), admitted_at);
}

StatusOr<std::future<double>> ServingEngine::ScoreKey(
    const std::string& family, uint64_t key, ClientId client) {
  const auto admitted_at = options_.telemetry
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  std::shared_ptr<const FamilyTable> keepalive;
  const FamilyState* fsp = FindFamilyState(family, &keepalive);
  if (fsp == nullptr) {
    return Status::NotFound("unknown family: " + family);
  }
  const FamilyState& fs = *fsp;
  if (fs.store == nullptr) {
    return Status::FailedPrecondition(
        "no feature store registered for family " + family);
  }
  if (fs.family->current_version() == 0) {
    return Status::FailedPrecondition("no model published for family " +
                                      family);
  }
  if (fs.store->current_version() == 0) {
    return Status::FailedPrecondition(
        "no feature table published for family " + family);
  }
  // The admission-time analogue of the id form's range check, probed
  // lock-free against the current index. Unlike the shape check this one
  // is best-effort -- a delta landing after admission can still evict
  // the key, which the worker surfaces as a StoreKeyMiss -- but it turns
  // the common case (a key that was never published, or evicted long
  // ago) into a cheap synchronous NotFound instead of a queued failure.
  if (!fs.store->ContainsKey(key)) {
    fs.inst.key_misses->Add(1);
    return Status::NotFound("key " + std::to_string(key) +
                            " not present in the feature store for family " +
                            family);
  }
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not started");
  }
  return batcher_.SubmitKey(fs.queue, key, std::move(client), admitted_at);
}

StatusOr<std::future<double>> ServingEngine::ScoreKey(
    const std::string& family, uint64_t key) {
  return ScoreKey(family, key, kDefaultClient);
}

StatusOr<std::future<double>> ServingEngine::ScoreKey(
    const std::string& family, std::string_view key, ClientId client) {
  return ScoreKey(family, FeatureStore::HashKey(key), std::move(client));
}

StatusOr<std::future<double>> ServingEngine::ScoreKey(
    const std::string& family, std::string_view key) {
  return ScoreKey(family, FeatureStore::HashKey(key), kDefaultClient);
}

StatusOr<double> ServingEngine::ScoreSync(const std::string& family,
                                          std::vector<Index> indices,
                                          std::vector<double> values,
                                          ClientId client) {
  auto fut =
      Score(family, std::move(indices), std::move(values), std::move(client));
  if (!fut.ok()) return fut.status();
  return std::move(fut).value().get();
}

StatusOr<double> ServingEngine::ScoreSync(const std::string& family,
                                          std::vector<Index> indices,
                                          std::vector<double> values) {
  return ScoreSync(family, std::move(indices), std::move(values),
                   kDefaultClient);
}

StatusOr<double> ServingEngine::ScoreSync(const std::string& family,
                                          Index row_id, ClientId client) {
  auto fut = Score(family, row_id, std::move(client));
  if (!fut.ok()) return fut.status();
  try {
    return std::move(fut).value().get();
  } catch (const StoreKeyMiss& miss) {
    // A delta evicted the slot between admission and the gather; only
    // reachable on stores mixing id traffic with delta publishes.
    return Status::NotFound(miss.what());
  }
}

StatusOr<double> ServingEngine::ScoreSync(const std::string& family,
                                          Index row_id) {
  return ScoreSync(family, row_id, kDefaultClient);
}

StatusOr<double> ServingEngine::ScoreKeySync(const std::string& family,
                                             uint64_t key, ClientId client) {
  auto fut = ScoreKey(family, key, std::move(client));
  if (!fut.ok()) return fut.status();
  try {
    return std::move(fut).value().get();
  } catch (const StoreKeyMiss& miss) {
    // Evicted between admission and the gather: same Status the
    // admission-time miss returns, so callers see one code either way.
    return Status::NotFound(miss.what());
  }
}

StatusOr<double> ServingEngine::ScoreKeySync(const std::string& family,
                                             uint64_t key) {
  return ScoreKeySync(family, key, kDefaultClient);
}

StatusOr<double> ServingEngine::ScoreKeySync(const std::string& family,
                                             std::string_view key,
                                             ClientId client) {
  return ScoreKeySync(family, FeatureStore::HashKey(key), std::move(client));
}

StatusOr<double> ServingEngine::ScoreKeySync(const std::string& family,
                                             std::string_view key) {
  return ScoreKeySync(family, FeatureStore::HashKey(key), kDefaultClient);
}

void ServingEngine::WorkerLoop(int worker_id) {
  SetCurrentThreadName("dw-serve-" + std::to_string(worker_id));
  const numa::Topology& topo = options_.topology;
  const numa::NodeId node = worker_nodes_[worker_id];
  if (options_.pin_threads) {
    const int cpu =
        topo.PhysicalCpuOfCore(worker_cores_[worker_id], NumOnlineCpus());
    (void)PinCurrentThreadToCpu(cpu);
  }
  WorkerState& ws = *worker_states_[worker_id];
  const bool batched = options_.scoring == ScoringMode::kBatched;
  // One table load for the worker's whole life: the set is frozen once
  // Start() succeeds (RegisterFamily refuses while running).
  const auto table = Table();

  Batch batch;
  // Per-batch scratch, reused across batches (no per-batch allocation
  // once warm).
  std::vector<matrix::SparseVectorView> views;
  std::vector<size_t> view_req;
  std::vector<double> scores;
  std::vector<size_t> traced_rows;
  while (batcher_.NextBatch(&batch)) {
    // Wall time of this batch's whole service (snapshot acquire, view
    // build, kernel, promise resolution) -- the measured quantity that
    // calibrates the admission controller's cost estimate online.
    WallTimer batch_timer;
    // Stage boundary: formed_at -> picked_at is the batch-form stage
    // (a ready batch waiting for a free worker).
    const auto picked_at = std::chrono::steady_clock::now();
    const FamilyState& fs = table->families[batch.family];
    const FamilyInstruments& inst = fs.inst;
    // One registry acquire per BATCH: the snapshot is pinned for the whole
    // scan, so a concurrent Publish can never tear a batch across
    // versions. The null retry covers the first-publish window where the
    // version counter is visible a beat before the snapshot pointer
    // (admission gates on the counter).
    auto snap = fs.family->Acquire();
    while (snap == nullptr) {
      std::this_thread::yield();
      snap = fs.family->Acquire();
    }
    // One STORE acquire per batch, same discipline: every id- or
    // key-keyed row in the batch gathers from a single table version, so
    // a concurrent PublishStore/PublishStoreDelta can refresh the store
    // mid-flight without ever tearing a batch across feature versions
    // (keys resolve through the SNAPSHOT's index, not the live one).
    std::shared_ptr<const FeatureStoreSnapshot> store_snap;
    for (const ScoreRequest& req : batch.requests) {
      if (req.by_id || req.by_key) {
        store_snap = fs.store->Acquire();
        while (store_snap == nullptr) {
          std::this_thread::yield();
          store_snap = fs.store->Acquire();
        }
        break;
      }
    }
    const double* weights = snap->WeightsForNode(node);
    const bool replica_local = snap->ReplicaNodeFor(node) == node;
    // Quantized serving is a batched-kernel property: scalar mode (the
    // per-row bench baseline) keeps reading the f64 replica. snap->
    // quantized() is re-checked per snapshot only as a belt -- a family
    // registered quantized builds int8 replicas on every Publish.
    const bool use_int8 = batched && fs.quantized && snap->quantized();
    // Staleness of the version this batch serves: how long ago its
    // weights left the trainer, and how many publishes have landed since.
    const auto acquired_at = std::chrono::steady_clock::now();
    const double staleness_ms =
        std::chrono::duration<double, std::milli>(acquired_at -
                                                  snap->exported_at())
            .count();
    // Clamped: Publish() orders counter-before-pointer, but a belt to
    // that suspender keeps a reordering bug from poisoning the stats
    // with a 2^64 underflow.
    const uint64_t cur_version = fs.family->current_version();
    const uint64_t versions_behind =
        cur_version > snap->version() ? cur_version - snap->version() : 0;

    // Views for every row: carried rows view their own payload; id- and
    // key-keyed rows view the store snapshot directly in the explicit
    // dense form -- zero copies, and the feature bytes come from
    // wherever the store's placement put the row (the quantity the
    // Fig. 9-style bench varies). A key the snapshot's index no longer
    // holds (evicted since admission) resolves its promise with
    // StoreKeyMiss here and drops out of the batch, so the kernel below
    // scores a compacted view array; view_req maps each view back to its
    // request.
    const size_t submitted_rows = batch.rows();
    views.clear();
    views.reserve(submitted_rows);
    view_req.clear();
    view_req.reserve(submitted_rows);
    traced_rows.clear();
    numa::AccessCounters delta;
    uint64_t id_rows = 0;
    uint64_t key_rows = 0;
    uint64_t key_misses = 0;
    uint64_t local_store_rows = 0;
    uint64_t remote_store_rows = 0;
    uint64_t store_local_bytes = 0;
    uint64_t store_remote_bytes = 0;
    for (size_t ri = 0; ri < batch.requests.size(); ++ri) {
      ScoreRequest& req = batch.requests[ri];
      if (req.by_id || req.by_key) {
        Index slot = req.row_id;
        if (req.by_key) {
          const std::optional<Index> found = store_snap->LookupSlot(req.key);
          if (!found.has_value()) {
            ++key_misses;
            req.result.set_exception(std::make_exception_ptr(
                StoreKeyMiss(fs.name, req.key)));
            continue;
          }
          slot = *found;
          ++key_rows;
        } else if (!store_snap->SlotLive(slot)) {
          // The row id named a slot a delta has since evicted; same
          // surfacing as a key miss (the id form predates eviction, so
          // this only fires on stores mixing deltas with id traffic).
          ++key_misses;
          req.result.set_exception(std::make_exception_ptr(
              StoreKeyMiss(fs.name, static_cast<uint64_t>(slot))));
          continue;
        }
        // Feed the eviction clock: a gathered page is a hot page.
        store_snap->TouchRow(slot);
        const size_t fdim = store_snap->dim();
        views.push_back({nullptr, store_snap->RowForNode(node, slot), fdim});
        view_req.push_back(ri);
        ++id_rows;
        const uint64_t feature_bytes = fdim * sizeof(double);
        if (store_snap->OwnerNodeFor(node, slot) == node) {
          ++local_store_rows;
          store_local_bytes += feature_bytes;
          delta.local_read_bytes += feature_bytes;
        } else {
          ++remote_store_rows;
          store_remote_bytes += feature_bytes;
          delta.remote_read_bytes += feature_bytes;
        }
      } else {
        views.push_back(req.View());
        view_req.push_back(ri);
        // Carried payload arrives node-local (the batch was just
        // written). Dense requests carry no index array.
        delta.local_read_bytes += req.values.size() * sizeof(double) +
                                  req.indices.size() * sizeof(Index);
      }
    }
    const size_t rows = views.size();
    // Stage boundary: picked_at -> gathered_at is the gather stage
    // (snapshot acquires + view build + store row gathers).
    const auto gathered_at = std::chrono::steady_clock::now();

    // The kernel. Scalar mode scores every row before resolving any, so
    // the score/complete stage boundary means the same thing in both
    // modes (the pre-PredictBatch code resolved row r before scoring
    // r+1, which folded the kernel into the completion loop).
    scores.resize(rows);
    if (use_int8) {
      fs.spec->PredictBatchQuantized(snap->QuantizedWeightsForNode(node),
                                     snap->int8_scale(), snap->dim(),
                                     views.data(), rows, scores.data());
    } else if (batched) {
      fs.spec->PredictBatch(weights, snap->dim(), views.data(), rows,
                            scores.data());
    } else {
      for (size_t r = 0; r < rows; ++r) {
        scores[r] = fs.spec->Predict(weights, views[r]);
      }
    }
    const auto scored_at = std::chrono::steady_clock::now();

    uint64_t batch_nnz = 0;
    for (size_t r = 0; r < rows; ++r) {
      ScoreRequest& req = batch.requests[view_req[r]];
      req.result.set_value(scores[r]);
      // Stamped after set_value so the recorded latency covers the full
      // submit-to-resolution interval, including this batch's scoring.
      const auto resolved_at = std::chrono::steady_clock::now();
      const uint64_t nnz = views[r].nnz;
      batch_nnz += nnz;
      if (!batched) {
        // Scalar mode re-gathers the replica per row.
        const uint64_t model_bytes = nnz * sizeof(double);
        if (replica_local) {
          delta.model_read_bytes += model_bytes;
        } else {
          delta.remote_read_bytes += model_bytes;
        }
      }
      delta.flops += 2 * nnz;
      ++delta.updates;
      inst.latency_ms->Record(
          std::chrono::duration<double, std::milli>(resolved_at -
                                                    req.enqueued_at)
              .count());
      // Per-row stages: the admit time rode in on the request, the queue
      // stage ends when the flush policy formed this batch.
      if (req.admit_us > 0.0) {
        inst.stage_us[static_cast<int>(obs::Stage::kAdmit)]->Record(
            req.admit_us);
      }
      inst.stage_us[static_cast<int>(obs::Stage::kQueue)]->Record(
          std::chrono::duration<double, std::micro>(batch.formed_at -
                                                    req.enqueued_at)
              .count());
      if (req.traced) traced_rows.push_back(view_req[r]);
    }
    const auto completed_at = std::chrono::steady_clock::now();
    if (batched && rows > 0) {
      // The spec reports what its batched kernel actually streams: the
      // blocked GLM kernels read each model tile once per row chunk; the
      // reference default re-gathers per row like scalar mode.
      const uint64_t model_bytes =
          use_int8 ? fs.spec->PredictBatchQuantizedModelBytes(
                         snap->dim(), batch_nnz, rows)
                   : fs.spec->PredictBatchModelBytes(snap->dim(), batch_nnz,
                                                     rows);
      if (replica_local) {
        delta.model_read_bytes += model_bytes;
      } else {
        delta.remote_read_bytes += model_bytes;
      }
    }
    // Feed the measured service time back into admission BEFORE the
    // stats merge: the next Submit's drain estimate should already see
    // this batch's evidence.
    admission_.ReportBatch(batch.family, rows, batch_timer.Seconds());

    // Batch-level stages, row-weighted so the stage histograms' means
    // stay per-row (one Record call, not `rows` identical ones).
    const auto us = [](std::chrono::steady_clock::duration d) {
      return std::chrono::duration<double, std::micro>(d).count();
    };
    const double batch_form_us = us(picked_at - batch.formed_at);
    const double gather_us = us(gathered_at - picked_at);
    const double score_us = us(scored_at - gathered_at);
    const double complete_us = us(completed_at - scored_at);
    inst.stage_us[static_cast<int>(obs::Stage::kBatchForm)]->Record(
        batch_form_us, rows);
    inst.stage_us[static_cast<int>(obs::Stage::kGather)]->Record(gather_us,
                                                                 rows);
    inst.stage_us[static_cast<int>(obs::Stage::kScore)]->Record(score_us,
                                                                rows);
    inst.stage_us[static_cast<int>(obs::Stage::kComplete)]->Record(
        complete_us, rows);

    // Family counters: lock-free sharded adds, no spinlock.
    inst.batches->Increment();
    inst.rows->Add(rows);
    if (batched) inst.kernel_rows->Add(rows);
    (replica_local ? inst.local_replica_batches
                   : inst.remote_replica_batches)
        ->Increment();
    inst.staleness_ms->Record(staleness_ms);
    inst.versions_behind->Record(static_cast<double>(versions_behind));
    if (id_rows > 0) {
      inst.id_rows->Add(id_rows);
      inst.local_store_rows->Add(local_store_rows);
      inst.remote_store_rows->Add(remote_store_rows);
      inst.store_local_bytes->Add(store_local_bytes);
      inst.store_remote_bytes->Add(store_remote_bytes);
    }
    if (key_rows > 0) inst.key_rows->Add(key_rows);
    if (key_misses > 0) inst.key_misses->Add(key_misses);
    // Per-node logical traffic for telemetry scrapes; the exact merge
    // below stays authoritative for SimInput()/Stats().traffic.
    const NodeTraffic& nt = node_traffic_[node];
    nt.local_read_bytes->Add(delta.local_read_bytes);
    nt.remote_read_bytes->Add(delta.remote_read_bytes);
    nt.model_read_bytes->Add(delta.model_read_bytes);

    // Sampled spans: stage boundaries chain (queue ends at formed_at,
    // batch-form at picked_at, ...), so the stages sum to total_us
    // exactly, up to the shared batch-level tail.
    for (const size_t r : traced_rows) {
      const ScoreRequest& req = batch.requests[r];
      obs::SpanRecord rec;
      rec.family = fs.name;
      rec.client = req.client.str();
      rec.by_id = req.by_id;
      rec.batch_rows = rows;
      rec.stage_us[static_cast<int>(obs::Stage::kAdmit)] = req.admit_us;
      rec.stage_us[static_cast<int>(obs::Stage::kQueue)] =
          us(batch.formed_at - req.enqueued_at);
      rec.stage_us[static_cast<int>(obs::Stage::kBatchForm)] = batch_form_us;
      rec.stage_us[static_cast<int>(obs::Stage::kGather)] = gather_us;
      rec.stage_us[static_cast<int>(obs::Stage::kScore)] = score_us;
      rec.stage_us[static_cast<int>(obs::Stage::kComplete)] = complete_us;
      rec.total_us = req.admit_us + us(completed_at - req.enqueued_at);
      spans_.Record(std::move(rec));
    }

    std::lock_guard<SpinLock> g(ws.mu);
    ws.counters.Merge(delta);
  }
}

// A THIN VIEW over the registry: every serving counter is read back from
// the instruments the workers write, so Stats() holds no per-family locks
// at all (the only lock left is each worker's AccessCounters spinlock).
// With options_.telemetry == false everything here reads zero except the
// traffic ledger, versions, and wall time -- the documented contract of
// running with telemetry off.
ServingStats ServingEngine::Stats() const {
  ServingStats s;
  const auto table = Table();
  const size_t nf = table->families.size();
  s.families.resize(nf);
  obs::HistogramSnapshot all_lat;
  for (const auto& ws : worker_states_) {
    std::lock_guard<SpinLock> g(ws->mu);
    s.traffic.Merge(ws->counters);
  }
  s.wall_sec = running_.load(std::memory_order_acquire)
                   ? serve_timer_.Seconds()
                   : stopped_wall_sec_;
  for (size_t f = 0; f < nf; ++f) {
    const FamilyState& fs = table->families[f];
    const FamilyInstruments& inst = fs.inst;
    FamilyServingStats& out = s.families[f];
    out.family = fs.name;
    out.replication = fs.family->replication();
    out.kernel_level = kernels::ToString(kernels::ActiveKernelLevel());
    out.quantized = fs.quantized;
    out.kernel_rows = inst.kernel_rows->Value();
    out.served_version = fs.family->current_version();
    out.store_version =
        fs.store != nullptr ? fs.store->current_version() : 0;
    out.requests = inst.rows->Value();
    out.batches = inst.batches->Value();
    out.local_replica_batches = inst.local_replica_batches->Value();
    out.remote_replica_batches = inst.remote_replica_batches->Value();
    out.id_rows = inst.id_rows->Value();
    out.local_store_rows = inst.local_store_rows->Value();
    out.remote_store_rows = inst.remote_store_rows->Value();
    out.store_local_bytes = inst.store_local_bytes->Value();
    out.store_remote_bytes = inst.store_remote_bytes->Value();
    out.key_rows = inst.key_rows->Value();
    out.key_misses = inst.key_misses->Value();
    out.store_delta_bytes = inst.store_delta_bytes->Value();
    out.store_full_bytes = inst.store_full_bytes->Value();
    out.store_evictions = inst.store_evictions->Value();
    if (fs.store != nullptr) {
      // Live even on a disabled registry: read off the current snapshot,
      // not an instrument.
      const auto store_snap = fs.store->Acquire();
      out.store_live_rows = store_snap != nullptr ? store_snap->live_rows()
                                                  : 0;
    }
    const obs::HistogramSnapshot lat = inst.latency_ms->Snapshot();
    out.p50_latency_ms = lat.Percentile(50.0);
    out.p99_latency_ms = lat.Percentile(99.0);
    out.max_latency_ms = lat.max;  // exact even in the bucketed histogram
    const obs::HistogramSnapshot stale = inst.staleness_ms->Snapshot();
    out.mean_staleness_ms = stale.Mean();
    out.max_staleness_ms = stale.max;
    const obs::HistogramSnapshot behind = inst.versions_behind->Snapshot();
    out.mean_versions_behind = behind.Mean();
    // min/max are exact, and version lags are integers well under 2^53.
    out.max_versions_behind = static_cast<uint64_t>(behind.max);
    for (int st = 0; st < obs::kNumStages; ++st) {
      out.mean_stage_us[st] = inst.stage_us[st]->Snapshot().Mean();
    }
    const RequestBatcher::QueueStats qs = batcher_.queue_stats(fs.queue);
    out.accepted = qs.accepted;
    out.rejected = qs.rejected_full + qs.rejected_cost;
    out.rejected_cost = qs.rejected_cost;
    out.queue_depth = qs.depth;
    out.flush_size = qs.flush_size;
    out.flush_deadline = qs.flush_deadline;
    out.flush_drain = qs.flush_drain;
    out.clients.reserve(qs.clients.size());
    for (const RequestBatcher::ClientStats& cs : qs.clients) {
      ClientServingStats c;
      c.client = cs.client.str();
      c.weight = cs.weight;
      c.accepted = cs.accepted;
      c.rejected = cs.rejected;
      c.served = cs.served;
      c.queue_depth = cs.depth;
      out.clients.push_back(std::move(c));
    }
    const opt::AdmissionEstimate est = admission_.Estimate(fs.queue);
    out.prior_row_us = est.prior_row_sec * 1e6;
    out.est_row_us = est.est_row_sec * 1e6;
    out.measured_row_us_ewma = est.measured_row_sec_ewma * 1e6;
    out.cost_reports = est.reported_batches;
    if (out.batches > 0) {
      out.mean_batch_rows = static_cast<double>(out.requests) /
                            static_cast<double>(out.batches);
    }
    if (s.wall_sec > 0.0) {
      out.rows_per_sec = static_cast<double>(out.requests) / s.wall_sec;
    }
    s.requests += out.requests;
    s.batches += out.batches;
    s.local_replica_batches += out.local_replica_batches;
    s.remote_replica_batches += out.remote_replica_batches;
    all_lat.Merge(lat);
  }
  if (s.wall_sec > 0.0) {
    s.rows_per_sec = static_cast<double>(s.requests) / s.wall_sec;
  }
  if (s.batches > 0) {
    s.mean_batch_rows =
        static_cast<double>(s.requests) / static_cast<double>(s.batches);
  }
  s.p50_latency_ms = all_lat.Percentile(50.0);
  s.p99_latency_ms = all_lat.Percentile(99.0);
  s.max_latency_ms = all_lat.max;
  return s;
}

numa::SimulationInput ServingEngine::SimInput() const {
  const numa::Topology& topo = options_.topology;
  numa::SimulationInput in(topo.num_nodes);
  for (int w = 0; w < num_workers(); ++w) {
    const WorkerState& ws = *worker_states_[w];
    std::lock_guard<SpinLock> g(ws.mu);
    in.traffic.Add(worker_nodes_[w], ws.counters);
    ++in.active_workers[worker_nodes_[w]];
  }
  // Read-only serving never writes shared lines, but a PerMachine replica
  // is still read by every socket; the memory model charges the remote
  // reads accounted above. model_bytes is the served working set: one
  // replica per family (what a node's LLC must hold to serve everything).
  in.model_sharing_sockets = 1;
  uint64_t served_bytes = 0;
  const auto table = Table();
  for (const FamilyState& fs : table->families) {
    if (fs.family->replication() == Replication::kPerMachine) {
      in.model_sharing_sockets = topo.num_nodes;
    }
    served_bytes += static_cast<uint64_t>(fs.family->dim()) * sizeof(double);
  }
  in.model_bytes = served_bytes;
  return in;
}

}  // namespace dw::serve
