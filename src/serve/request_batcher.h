// Request coalescing for the serving hot path.
//
// Single-row score requests are tiny; dispatching each one to a worker
// would spend more time on queue traffic than on math, and the model
// replica would be re-read from DRAM for every row. The batcher coalesces
// requests into dense mini-batches so one worker runs the row-wise access
// method over max_batch_size rows against a replica that stays hot in
// cache -- the serving analogue of an epoch's sequential row scan.
//
// Flush policy: a batch is released as soon as it reaches max_batch_size
// rows (flush on size), or when the OLDEST queued request has waited
// max_delay (flush on deadline), whichever comes first. Shutdown() drains:
// workers keep receiving partial batches until the queue is empty, so no
// accepted request is ever dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "matrix/sparse_vector.h"
#include "util/status.h"

namespace dw::serve {

/// One single-row score request: an owned sparse feature vector plus the
/// promise the scoring worker fulfills. Empty `indices` with nonempty
/// `values` is the explicit DENSE form (value k at coordinate k) -- half
/// the payload, and the batched kernels skip index loads entirely.
struct ScoreRequest {
  std::vector<matrix::Index> indices;
  std::vector<double> values;
  std::promise<double> result;
  std::chrono::steady_clock::time_point enqueued_at;

  matrix::SparseVectorView View() const {
    return {indices.empty() ? nullptr : indices.data(), values.data(),
            values.size()};
  }
};

/// A mini-batch handed to one scoring worker.
struct Batch {
  std::vector<ScoreRequest> requests;
  size_t rows() const { return requests.size(); }
};

/// Bounded MPMC queue with size/deadline batch formation.
class RequestBatcher {
 public:
  struct Options {
    size_t max_batch_size = 64;
    std::chrono::microseconds max_delay{500};
    /// Admission bound: Submit rejects (back-pressure) beyond this many
    /// queued rows instead of letting latency grow without limit.
    size_t max_queue_rows = 1 << 16;
  };

  explicit RequestBatcher(const Options& opts);

  /// Enqueues one row. The future resolves once a worker scores the batch
  /// containing it. Fails with ResourceExhausted when the queue is full
  /// and FailedPrecondition after Shutdown().
  StatusOr<std::future<double>> Submit(std::vector<matrix::Index> indices,
                                       std::vector<double> values);

  /// Blocks until a batch is ready under the flush policy; returns false
  /// only once the batcher is shut down AND fully drained.
  bool NextBatch(Batch* out);

  /// Stops admission and wakes all waiting workers to drain the queue.
  void Shutdown();

  /// Rows currently queued (racy snapshot; for tests and stats).
  size_t pending() const;

  const Options& options() const { return opts_; }

 private:
  const Options opts_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<ScoreRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace dw::serve
