// Request coalescing for the serving hot path, one bounded queue per
// model family.
//
// Single-row score requests are tiny; dispatching each one to a worker
// would spend more time on queue traffic than on math, and the model
// replica would be re-read from DRAM for every row. The batcher coalesces
// requests into dense mini-batches so one worker runs the row-wise access
// method over max_batch_size rows against a replica that stays hot in
// cache -- the serving analogue of an epoch's sequential row scan.
//
// Families do not share queues: a mini-batch is scored against ONE
// family's replica, so mixing families in a queue would shred batches at
// flush time, and a burst against one family must back-pressure that
// family alone (per-family max_queue_rows), not starve its neighbors.
// Workers drain all queues through one condition variable, taking ready
// batches round-robin across families.
//
// Flush policy (per family): a batch is released as soon as the queue
// reaches max_batch_size rows (flush on size), or when the OLDEST queued
// request has waited max_delay (flush on deadline), whichever comes
// first. Shutdown() drains: workers keep receiving partial batches until
// every queue is empty, so no accepted request is ever dropped. Every
// queue counts its admissions, rejections, and flush reasons
// (QueueStats), the raw material of ServingStats' per-family rows.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "matrix/sparse_vector.h"
#include "util/status.h"

namespace dw::serve {

/// Index of a family's queue inside the batcher (assigned by AddQueue in
/// registration order; the serving engine maps family name -> id once).
using FamilyId = int;

/// One single-row score request: an owned sparse feature vector plus the
/// promise the scoring worker fulfills. Empty `indices` with nonempty
/// `values` is the explicit DENSE form (value k at coordinate k) -- half
/// the payload, and the batched kernels skip index loads entirely.
///
/// The ID-KEYED form (`by_id`) carries no features at all: `row_id`
/// names a row in the family's FeatureStore and the scoring worker
/// gathers the features from its node's placement at scoring time, so
/// the payload is one integer regardless of model width.
struct ScoreRequest {
  std::vector<matrix::Index> indices;
  std::vector<double> values;
  /// Id-keyed form (Score(family, row_id)): indices/values stay empty and
  /// View() must not be used -- the worker builds the view from the
  /// store snapshot it acquired for the batch.
  bool by_id = false;
  matrix::Index row_id = 0;
  std::promise<double> result;
  std::chrono::steady_clock::time_point enqueued_at;

  matrix::SparseVectorView View() const {
    return {indices.empty() ? nullptr : indices.data(), values.data(),
            values.size()};
  }
};

/// Why a batch left its queue.
enum class FlushReason {
  kSize,      ///< the queue reached max_batch_size
  kDeadline,  ///< the oldest request aged past max_delay
  kDrain,     ///< shutdown drained the remainder
};

const char* ToString(FlushReason r);

/// A mini-batch handed to one scoring worker; all rows belong to `family`.
struct Batch {
  FamilyId family = 0;
  FlushReason reason = FlushReason::kSize;
  std::vector<ScoreRequest> requests;
  size_t rows() const { return requests.size(); }
};

/// Bounded MPMC queues (one per family) with size/deadline batch
/// formation and a shared worker wait.
class RequestBatcher {
 public:
  struct Options {
    size_t max_batch_size = 64;
    std::chrono::microseconds max_delay{500};
    /// Admission bound: Submit rejects (back-pressure) beyond this many
    /// queued rows IN THIS FAMILY instead of letting latency grow without
    /// limit.
    size_t max_queue_rows = 1 << 16;
  };

  /// Per-family admission counters (snapshot; `depth` is racy-by-design
  /// monitoring data, the totals are exact at quiescence).
  struct QueueStats {
    uint64_t accepted = 0;
    uint64_t rejected_full = 0;  ///< Submit refusals on a full queue
    uint64_t flush_size = 0;
    uint64_t flush_deadline = 0;
    uint64_t flush_drain = 0;
    size_t depth = 0;  ///< rows queued right now
  };

  RequestBatcher() = default;

  /// Adds a family queue; returns its id (dense, from 0). Callable while
  /// workers run (registration is rare; the lock is shared with the hot
  /// path but uncontended).
  FamilyId AddQueue(const Options& opts);

  /// Enqueues one carried-feature row on `family`'s queue. The future
  /// resolves once a worker scores the batch containing it. Fails with
  /// ResourceExhausted when that family's queue is full and
  /// FailedPrecondition after Shutdown().
  StatusOr<std::future<double>> Submit(FamilyId family,
                                       std::vector<matrix::Index> indices,
                                       std::vector<double> values);

  /// Enqueues one id-keyed request on `family`'s queue. Admission is
  /// UNIFIED with Submit(): the same ResourceExhausted/FailedPrecondition
  /// codes apply (the caller validates row_id against the family's store
  /// bounds, exactly as it validates carried feature indices against the
  /// model dim, so both request forms report identical Status codes for
  /// analogous failures).
  StatusOr<std::future<double>> SubmitId(FamilyId family,
                                         matrix::Index row_id);

  /// Blocks until some family has a batch ready under the flush policy;
  /// returns false only once the batcher is shut down AND every queue is
  /// drained. Ready queues are served round-robin so one hot family
  /// cannot starve the others.
  bool NextBatch(Batch* out);

  /// Stops admission and wakes all waiting workers to drain the queues.
  void Shutdown();

  /// Rows currently queued across all families (racy snapshot).
  size_t pending() const;

  QueueStats queue_stats(FamilyId family) const;
  const Options& options(FamilyId family) const;
  int num_queues() const;

 private:
  struct FamilyQueue {
    Options opts;
    std::deque<ScoreRequest> queue;
    uint64_t accepted = 0;
    uint64_t rejected_full = 0;
    uint64_t flush_size = 0;
    uint64_t flush_deadline = 0;
    uint64_t flush_drain = 0;
  };

  /// Shared admission tail of Submit/SubmitId: bounds-checks the queue,
  /// applies back-pressure, and enqueues. Both request forms go through
  /// here so their admission Status codes can never diverge.
  StatusOr<std::future<double>> Enqueue(FamilyId family, ScoreRequest req);

  /// Pops up to max_batch_size rows of queue `f` into `out` (mu_ held).
  void TakeBatch(FamilyId f, FlushReason reason, Batch* out);

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  /// deque: stable references across AddQueue.
  std::deque<FamilyQueue> queues_;
  /// Round-robin cursor over queues for size/deadline flushes.
  size_t next_queue_ = 0;
  bool shutdown_ = false;
};

}  // namespace dw::serve
